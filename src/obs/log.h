// Structured leveled logging for the long-running service stack.
//
// Until now the daemon's only voice was ad-hoc stderr: when a worker
// stalls or a peer drops, nothing says who, when, or on which job.  The
// logger replaces that with one thread-safe sink emitting either a human
// line
//
//   2026-08-07T12:31:05.123456Z INFO  service: worker connected worker=3
//
// or one JSON document per line (JSONL) with the same content, so a
// scrape/ingest pipeline parses logs with the same io::JsonValue used for
// every other wire format.  Messages carry typed key=value fields; the
// service attaches correlation ids (conn=, job=, shard=, worker=) so a
// dropped peer or failed shard is attributable across interleaved
// connections.
//
// Configuration: SRAMLP_LOG=trace|debug|info|warn|error|off sets the
// initial level (default info); the CLI's --log-level / --log-file /
// --log-format flags override it per process.  Level filtering is one
// relaxed atomic load, so disabled calls cost a branch; the determinism
// contract is structural — log output never feeds a result document, and
// the wall clock is read only through obs::wall_clock_micros().
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

namespace sramlp::obs {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Parse "trace" / "debug" / "info" / "warn" / "error" / "off"; throws
/// sramlp::Error on anything else.
LogLevel log_level_from_string(std::string_view text);
const char* to_string(LogLevel level);

/// One typed key=value attachment.  Built by the helpers below so call
/// sites read as log_info("service", "worker connected", {kv("worker", id)}).
struct LogField {
  enum class Kind { kString, kUint, kDouble, kBool };
  std::string key;
  Kind kind = Kind::kString;
  std::string string_value;
  std::uint64_t uint_value = 0;
  double double_value = 0.0;
  bool bool_value = false;
};

LogField kv(std::string key, std::string value);
LogField kv(std::string key, const char* value);
LogField kv(std::string key, std::uint64_t value);
LogField kv(std::string key, int value);
LogField kv(std::string key, double value);
LogField kv(std::string key, bool value);
/// Fingerprints log as zero-padded hex — the form a human greps for.
LogField kv_hex(std::string key, std::uint64_t value);

class Logger {
 public:
  enum class Format { kHuman, kJsonl };

  /// The process-wide logger.  First use reads SRAMLP_LOG for the level;
  /// output goes to stderr until redirected.
  static Logger& global();

  /// Point output at @p path (append; empty = back to stderr), pick the
  /// format, set the level.  Safe at any time from any thread.
  /// @p max_bytes caps the log file for long soaks: once the file reaches
  /// the cap after a write, it is rotated to `path + ".1"` (replacing any
  /// previous `.1`) and a fresh file is started, so a soak never holds
  /// more than ~2x the cap on disk.  0 (the default) keeps today's
  /// unbounded append; the cap is ignored when logging to stderr.
  void configure(LogLevel level, Format format, const std::string& path,
                 std::size_t max_bytes = 0);
  void set_level(LogLevel level);
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  void log(LogLevel level, std::string_view component,
           std::string_view message,
           std::initializer_list<LogField> fields = {});

  Logger();
  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

 private:
  struct Impl;
  Impl* impl_;
  std::atomic<int> level_;
};

// Call-site sugar on the global logger.
void log_trace(std::string_view component, std::string_view message,
               std::initializer_list<LogField> fields = {});
void log_debug(std::string_view component, std::string_view message,
               std::initializer_list<LogField> fields = {});
void log_info(std::string_view component, std::string_view message,
              std::initializer_list<LogField> fields = {});
void log_warn(std::string_view component, std::string_view message,
              std::initializer_list<LogField> fields = {});
void log_error(std::string_view component, std::string_view message,
               std::initializer_list<LogField> fields = {});

}  // namespace sramlp::obs
