#include "obs/trace.h"

#include <unistd.h>

#include <cstdio>

#include "io/json.h"
#include "obs/clock.h"
#include "util/error.h"

namespace sramlp::obs {

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(std::size_t capacity) {
  SRAMLP_REQUIRE(capacity > 0, "tracer capacity must be positive");
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  ring_.reserve(capacity);
  capacity_ = capacity;
  next_ = 0;
  recorded_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::record(Span span) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) return;  // enable() never ran; drop
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[next_] = std::move(span);
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::string Tracer::dump_chrome_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
  io::JsonValue events = io::JsonValue::array();
  // Oldest first: once the ring has wrapped, the oldest span sits at
  // next_ (the slot about to be overwritten).
  const std::size_t count = ring_.size();
  const std::size_t start = count == capacity_ ? next_ : 0;
  for (std::size_t i = 0; i < count; ++i) {
    const Span& span = ring_[(start + i) % count];
    io::JsonValue event = io::JsonValue::object();
    event.set("name", io::JsonValue::string(span.name));
    event.set("cat", io::JsonValue::string(span.category));
    event.set("ph", io::JsonValue::string("X"));
    event.set("ts", io::JsonValue::integer(span.ts_us));
    event.set("dur", io::JsonValue::integer(span.dur_us));
    event.set("pid", io::JsonValue::integer(pid));
    event.set("tid", io::JsonValue::integer(span.tid));
    if (!span.args.empty()) {
      io::JsonValue args = io::JsonValue::object();
      for (const auto& [key, value] : span.args)
        args.set(key, io::JsonValue::integer(value));
      event.set("args", std::move(args));
    }
    events.push_back(std::move(event));
  }
  io::JsonValue doc = io::JsonValue::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", io::JsonValue::string("ms"));
  return doc.dump();
}

void Tracer::write_chrome_json(const std::string& path) const {
  const std::string text = dump_chrome_json();
  std::FILE* file = std::fopen(path.c_str(), "w");
  SRAMLP_REQUIRE(file != nullptr, "cannot open trace file " + path);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool ok = written == text.size() && std::fclose(file) == 0;
  SRAMLP_REQUIRE(ok, "short write to trace file " + path);
}

std::uint32_t trace_thread_id() {
  static std::atomic<std::uint32_t> next_id{0};
  thread_local const std::uint32_t id =
      next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

SpanGuard::SpanGuard(const char* name, const char* category) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  active_ = true;
  span_.name = name;
  span_.category = category;
  span_.tid = trace_thread_id();
  span_.ts_us = monotonic_micros();
}

SpanGuard::~SpanGuard() {
  if (!active_) return;
  const std::uint64_t end = monotonic_micros();
  span_.dur_us = end > span_.ts_us ? end - span_.ts_us : 0;
  Tracer::global().record(std::move(span_));
}

void SpanGuard::arg(const char* key, std::uint64_t value) {
  if (!active_) return;
  span_.args.emplace_back(key, value);
}

}  // namespace sramlp::obs
