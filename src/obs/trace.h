// Span tracing: reconstruct a whole steal-interleaved job visually.
//
// Logs say what happened, metrics say how often; neither shows WHY a
// 40-point job took 246 ms — for that you need the timeline: which worker
// held which shard when, how long each lease round-trip took, where the
// finalize sat behind a cache spill.  The tracer records begin/end spans
// (job -> shard -> lease -> execute -> finalize, service-side and
// worker-side) into a fixed-capacity ring buffer and dumps them as Chrome
// trace-event JSON — load the file at ui.perfetto.dev (or
// chrome://tracing) and the interleaving is a picture.
//
// Disabled is the default and costs one relaxed atomic load per span site
// (no clock reads, no allocation).  Enabled, each completed span takes a
// mutex for the ring append — span rate is per shard/lease, not per
// simulated cycle, so contention is negligible.  The ring overwrites the
// oldest spans when full: a long soak keeps the most recent window, which
// is the one you want when something just went wrong.
//
// Determinism: spans carry obs::monotonic_micros() timestamps and flow
// only into trace dumps — never into result documents.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sramlp::obs {

class Tracer {
 public:
  /// One completed span (Chrome "X" phase: start + duration).
  struct Span {
    std::string name;                ///< e.g. "shard", "lease", "execute"
    std::string category;            ///< "service" or "worker"
    std::uint64_t ts_us = 0;         ///< monotonic start, microseconds
    std::uint64_t dur_us = 0;
    std::uint32_t tid = 0;           ///< stable per-thread ordinal
    /// Numeric correlation args (job fingerprint, shard id, points, ...).
    std::vector<std::pair<std::string, std::uint64_t>> args;
  };

  /// The process-wide tracer all span sites record into.
  static Tracer& global();

  /// Start recording into a ring of @p capacity spans (replaces any
  /// previous ring and its contents).
  void enable(std::size_t capacity = 1 << 16);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void record(Span span);

  /// Spans currently held (<= capacity) and total ever recorded.
  std::size_t size() const;
  std::uint64_t recorded() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}), oldest span first.
  /// Loadable in Perfetto / chrome://tracing.
  std::string dump_chrome_json() const;
  /// dump_chrome_json() to @p path (throws sramlp::Error on I/O failure).
  void write_chrome_json(const std::string& path) const;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<Span> ring_;
  std::size_t capacity_ = 0;
  std::size_t next_ = 0;        ///< ring slot the next span lands in
  std::uint64_t recorded_ = 0;  ///< total spans ever recorded
};

/// A stable small ordinal for the calling thread (trace "tid" field).
std::uint32_t trace_thread_id();

/// RAII span: stamps the start on construction, records on destruction.
/// When the tracer is disabled at construction the guard is inert (no
/// clock read, no allocation).
class SpanGuard {
 public:
  SpanGuard(const char* name, const char* category);
  ~SpanGuard();

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Attach a numeric correlation arg (no-op when inert).
  void arg(const char* key, std::uint64_t value);
  bool active() const { return active_; }

 private:
  bool active_ = false;
  Tracer::Span span_;
};

}  // namespace sramlp::obs
