#include "obs/clock.h"

#include <chrono>

namespace sramlp::obs {

std::uint64_t monotonic_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t wall_clock_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace sramlp::obs
