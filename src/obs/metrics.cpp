#include "obs/metrics.h"

#include <bit>
#include <cstdio>

#include "util/error.h"

namespace sramlp::obs {

namespace {

/// %.17g — the repo-wide exact double rendering (matches io::JsonValue).
std::string format_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string render_labels(const Labels& labels,
                          const std::string& extra_key = {},
                          const std::string& extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key + "=\"" + escape_label(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + escape_label(extra_value) + "\"";
  }
  out += '}';
  return out;
}

io::JsonValue labels_json(const Labels& labels) {
  io::JsonValue v = io::JsonValue::object();
  for (const auto& [key, value] : labels)
    v.set(key, io::JsonValue::string(value));
  return v;
}

}  // namespace

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    SRAMLP_REQUIRE(bounds_[i - 1] < bounds_[i],
                   "histogram bucket bounds must be strictly ascending");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(double value) {
  std::size_t bucket = 0;
  while (bucket < bounds_.size() && value > bounds_[bucket]) ++bucket;
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  // Accumulate the sum as a CAS loop over the double's bit pattern —
  // atomic<double>::fetch_add is C++20 but not yet dependable across the
  // toolchains this builds on.
  std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const double next = std::bit_cast<double>(expected) + value;
    if (sum_bits_.compare_exchange_weak(expected, std::bit_cast<std::uint64_t>(next),
                                        std::memory_order_relaxed))
      return;
  }
}

std::uint64_t Histogram::bucket_count(std::size_t index) const {
  SRAMLP_REQUIRE(index <= bounds_.size(), "histogram bucket index out of range");
  return counts_[index].load(std::memory_order_relaxed);
}

std::uint64_t Histogram::total_count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    total += counts_[i].load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  SRAMLP_REQUIRE(start > 0.0 && factor > 1.0 && count > 0,
                 "exponential bounds need start > 0, factor > 1, count > 0");
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

// --- Registry ----------------------------------------------------------------

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Registry::Family& Registry::family(const std::string& name,
                                   const std::string& help, Type type) {
  for (const auto& family : families_) {
    if (family->name == name) {
      SRAMLP_REQUIRE(family->type == type,
                     "metric '" + name + "' already registered with a "
                     "different type");
      return *family;
    }
  }
  auto created = std::make_unique<Family>();
  created->name = name;
  created->help = help;
  created->type = type;
  families_.push_back(std::move(created));
  return *families_.back();
}

Registry::Instance& Registry::instance(Family& family, const Labels& labels) {
  for (const auto& instance : family.instances)
    if (instance->labels == labels) return *instance;
  auto created = std::make_unique<Instance>();
  created->labels = labels;
  family.instances.push_back(std::move(created));
  return *family.instances.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instance& inst = instance(family(name, help, Type::kCounter), labels);
  if (!inst.counter) inst.counter = std::make_unique<Counter>();
  return *inst.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instance& inst = instance(family(name, help, Type::kGauge), labels);
  if (!inst.gauge) inst.gauge = std::make_unique<Gauge>();
  return *inst.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               const std::vector<double>& bounds,
                               const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instance& inst = instance(family(name, help, Type::kHistogram), labels);
  if (!inst.histogram) {
    inst.histogram = std::make_unique<Histogram>(bounds);
  } else {
    SRAMLP_REQUIRE(inst.histogram->bounds() == bounds,
                   "histogram '" + name +
                       "' already registered with different buckets");
  }
  return *inst.histogram;
}

std::string Registry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& family : families_) {
    out += "# HELP " + family->name + " " + family->help + "\n";
    out += "# TYPE " + family->name + " ";
    out += family->type == Type::kCounter
               ? "counter"
               : family->type == Type::kGauge ? "gauge" : "histogram";
    out += '\n';
    for (const auto& inst : family->instances) {
      if (family->type == Type::kCounter) {
        out += family->name + render_labels(inst->labels) + " " +
               std::to_string(inst->counter->value()) + "\n";
      } else if (family->type == Type::kGauge) {
        out += family->name + render_labels(inst->labels) + " " +
               std::to_string(inst->gauge->value()) + "\n";
      } else {
        const Histogram& h = *inst->histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < h.bounds().size(); ++b) {
          cumulative += h.bucket_count(b);
          out += family->name + "_bucket" +
                 render_labels(inst->labels, "le",
                               format_double(h.bounds()[b])) +
                 " " + std::to_string(cumulative) + "\n";
        }
        cumulative += h.bucket_count(h.bounds().size());
        out += family->name + "_bucket" +
               render_labels(inst->labels, "le", "+Inf") + " " +
               std::to_string(cumulative) + "\n";
        out += family->name + "_sum" + render_labels(inst->labels) + " " +
               format_double(h.sum()) + "\n";
        out += family->name + "_count" + render_labels(inst->labels) + " " +
               std::to_string(cumulative) + "\n";
      }
    }
  }
  return out;
}

io::JsonValue Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  io::JsonValue doc = io::JsonValue::object();
  for (const auto& family : families_) {
    io::JsonValue entry = io::JsonValue::object();
    entry.set("type", io::JsonValue::string(
                          family->type == Type::kCounter
                              ? "counter"
                              : family->type == Type::kGauge ? "gauge"
                                                             : "histogram"));
    entry.set("help", io::JsonValue::string(family->help));
    io::JsonValue instances = io::JsonValue::array();
    for (const auto& inst : family->instances) {
      io::JsonValue record = io::JsonValue::object();
      record.set("labels", labels_json(inst->labels));
      if (family->type == Type::kCounter) {
        record.set("value", io::JsonValue::integer(inst->counter->value()));
      } else if (family->type == Type::kGauge) {
        const std::int64_t value = inst->gauge->value();
        // Gauges are near-zero levels (depths, in-flight counts); the
        // exact unsigned lane carries non-negative values, the double
        // lane the (rare) negative ones.
        if (value >= 0)
          record.set("value", io::JsonValue::integer(
                                  static_cast<std::uint64_t>(value)));
        else
          record.set("value",
                     io::JsonValue::number(static_cast<double>(value)));
      } else {
        const Histogram& h = *inst->histogram;
        io::JsonValue bounds = io::JsonValue::array();
        io::JsonValue counts = io::JsonValue::array();
        for (std::size_t b = 0; b < h.bounds().size(); ++b) {
          bounds.push_back(io::JsonValue::number(h.bounds()[b]));
          counts.push_back(io::JsonValue::integer(h.bucket_count(b)));
        }
        counts.push_back(
            io::JsonValue::integer(h.bucket_count(h.bounds().size())));
        record.set("bounds", std::move(bounds));
        record.set("counts", std::move(counts));
        record.set("sum", io::JsonValue::number(h.sum()));
        record.set("count", io::JsonValue::integer(h.total_count()));
      }
      instances.push_back(std::move(record));
    }
    entry.set("instances", std::move(instances));
    doc.set(family->name, std::move(entry));
  }
  return doc;
}

}  // namespace sramlp::obs
