// The telemetry clock seam — the ONLY sanctioned wall-clock access in the
// library.
//
// The determinism lint bans clock reads in src/ because a timestamp that
// feeds a result artifact makes runs unrepeatable.  Telemetry is the one
// legitimate consumer of time: log lines, latency histograms and trace
// spans describe WHEN the system did something, never WHAT it computed.
// Concentrating every clock read behind these two functions keeps the
// lint's allowlist to exactly one file (src/obs/clock.cpp) and makes the
// invariant auditable: if any code outside obs/ needs a timestamp, it must
// call through here, and anything obs/ returns must never reach a
// serialized document.
#pragma once

#include <cstdint>

namespace sramlp::obs {

/// Monotonic microseconds since an arbitrary process-local epoch.  Use for
/// durations, rates and trace-span timestamps (Perfetto only needs a
/// consistent timebase, not civil time).
std::uint64_t monotonic_micros();

/// Civil time as microseconds since the Unix epoch.  Use only for log-line
/// timestamps, where a human correlates output across processes.
std::uint64_t wall_clock_micros();

}  // namespace sramlp::obs
