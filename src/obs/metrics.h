// Metrics registry: lock-cheap counters, gauges and fixed-bucket
// histograms with Prometheus text exposition.
//
// The service's ServiceStats RPC answers "how many so far"; tuning the
// steal protocol, the cache tiers or a queueing policy needs the shape of
// the distribution — lease latencies, shard execution times, queue depth
// over time.  The registry holds those series:
//
//   * Counter   — monotone uint64, one relaxed fetch_add per increment;
//   * Gauge     — signed level (queue depth, jobs in flight), add/sub/set;
//   * Histogram — fixed ascending upper bounds chosen at registration,
//                 one relaxed fetch_add into the matching bucket per
//                 observation (cumulative counts are computed at scrape
//                 time, not on the hot path).
//
// Identity is (name, label set); registering the same identity twice
// returns the same instance, so call sites cache a reference (function-
// local static) and pay zero lookups after the first.  Exposition renders
// either Prometheus text (https://prometheus.io/docs/instrumenting/
// exposition_formats/ — `sramlp_dist stats --format prom` serves it from
// a live daemon) or JSON through io::JsonValue.  Registration order is
// preserved, so equal registries expose equal bytes.
//
// Determinism: metric values are observational — nothing here may ever be
// read back into a result document.  Durations fed to histograms come
// from obs::monotonic_micros(), the sanctioned clock seam.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "io/json.h"

namespace sramlp::obs {

/// Label set: ordered key=value pairs (the order given at registration is
/// the exposition order).
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) { value_.fetch_sub(d, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  /// @p bounds are ascending bucket upper limits; a final +Inf bucket is
  /// implicit.  An observation lands in the FIRST bucket whose bound is
  /// >= the value (Prometheus `le` semantics).
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);
  /// Sugar for duration observations in seconds from a monotonic-micros
  /// interval.
  void observe_micros(std::uint64_t micros) {
    observe(static_cast<double>(micros) * 1e-6);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) count; index bounds_.size() is +Inf.
  std::uint64_t bucket_count(std::size_t index) const;
  std::uint64_t total_count() const;
  double sum() const;

  /// @p count bounds starting at @p start, each @p factor times the last —
  /// the standard latency ladder (e.g. 100us * 4^k).
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< bounds+1 slots
  std::atomic<std::uint64_t> sum_bits_{0};  ///< double, CAS-accumulated
};

class Registry {
 public:
  /// The process-wide registry every subsystem registers into; the
  /// service's `metrics` request exposes it.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register-or-fetch.  Same (name, labels) returns the same instance;
  /// the same name with a different metric type throws sramlp::Error.
  /// @p help is fixed by the first registration of a name.
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       const std::vector<double>& bounds,
                       const Labels& labels = {});

  /// Prometheus text exposition (content type text/plain; version 0.0.4).
  std::string prometheus_text() const;
  /// The same content as one JSON document (the stats RPC attaches it).
  io::JsonValue to_json() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Instance {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    Type type = Type::kCounter;
    std::vector<std::unique_ptr<Instance>> instances;
  };

  Family& family(const std::string& name, const std::string& help, Type type);
  Instance& instance(Family& family, const Labels& labels);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Family>> families_;  ///< registration order
};

}  // namespace sramlp::obs
