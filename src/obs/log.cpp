#include "obs/log.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

#include "io/json.h"
#include "obs/clock.h"
#include "util/error.h"

namespace sramlp::obs {

namespace {

/// ISO-8601 UTC with microseconds: the one timestamp format both the human
/// and JSONL emitters share, so grep lines up across formats.
std::string format_timestamp(std::uint64_t wall_micros) {
  const std::time_t seconds = static_cast<std::time_t>(wall_micros / 1000000);
  const unsigned micros = static_cast<unsigned>(wall_micros % 1000000);
  std::tm tm{};
  ::gmtime_r(&seconds, &tm);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%06uZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, micros);
  return buf;
}

std::string field_value_text(const LogField& field) {
  switch (field.kind) {
    case LogField::Kind::kString:
      return field.string_value;
    case LogField::Kind::kUint:
      return std::to_string(field.uint_value);
    case LogField::Kind::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", field.double_value);
      return buf;
    }
    case LogField::Kind::kBool:
      return field.bool_value ? "true" : "false";
  }
  return {};
}

io::JsonValue field_value_json(const LogField& field) {
  switch (field.kind) {
    case LogField::Kind::kString:
      return io::JsonValue::string(field.string_value);
    case LogField::Kind::kUint:
      return io::JsonValue::integer(field.uint_value);
    case LogField::Kind::kDouble:
      return io::JsonValue::number(field.double_value);
    case LogField::Kind::kBool:
      return io::JsonValue::boolean(field.bool_value);
  }
  return io::JsonValue::null();
}

LogLevel level_from_env() {
  const char* env = std::getenv("SRAMLP_LOG");
  if (env == nullptr || *env == '\0') return LogLevel::kInfo;
  try {
    return log_level_from_string(env);
  } catch (const Error&) {
    return LogLevel::kInfo;  // a typo in the env must not kill the process
  }
}

}  // namespace

LogLevel log_level_from_string(std::string_view text) {
  if (text == "trace") return LogLevel::kTrace;
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn" || text == "warning") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off" || text == "none") return LogLevel::kOff;
  throw Error("unknown log level '" + std::string(text) +
              "' (want trace|debug|info|warn|error|off)");
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogField kv(std::string key, std::string value) {
  LogField f;
  f.key = std::move(key);
  f.kind = LogField::Kind::kString;
  f.string_value = std::move(value);
  return f;
}

LogField kv(std::string key, const char* value) {
  return kv(std::move(key), std::string(value));
}

LogField kv(std::string key, std::uint64_t value) {
  LogField f;
  f.key = std::move(key);
  f.kind = LogField::Kind::kUint;
  f.uint_value = value;
  return f;
}

LogField kv(std::string key, int value) {
  return kv(std::move(key), static_cast<std::uint64_t>(
                                value < 0 ? 0 : value));
}

LogField kv(std::string key, double value) {
  LogField f;
  f.key = std::move(key);
  f.kind = LogField::Kind::kDouble;
  f.double_value = value;
  return f;
}

LogField kv(std::string key, bool value) {
  LogField f;
  f.key = std::move(key);
  f.kind = LogField::Kind::kBool;
  f.bool_value = value;
  return f;
}

LogField kv_hex(std::string key, std::uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return kv(std::move(key), std::string(buf));
}

struct Logger::Impl {
  std::mutex mutex;
  Format format = Format::kHuman;
  std::FILE* out = stderr;
  bool owns_out = false;
  std::string path;            // non-empty only when owns_out
  std::size_t max_bytes = 0;   // 0 = unbounded append
  std::size_t bytes = 0;       // current file size (tracked, not stat'd)

  ~Impl() {
    if (owns_out && out != nullptr) std::fclose(out);
  }
};

Logger::Logger()
    : impl_(new Impl), level_(static_cast<int>(level_from_env())) {}

Logger::~Logger() { delete impl_; }

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

void Logger::configure(LogLevel level, Format format, const std::string& path,
                       std::size_t max_bytes) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->owns_out && impl_->out != nullptr) std::fclose(impl_->out);
  impl_->out = stderr;
  impl_->owns_out = false;
  impl_->path.clear();
  impl_->max_bytes = 0;
  impl_->bytes = 0;
  if (!path.empty()) {
    std::FILE* file = std::fopen(path.c_str(), "a");
    SRAMLP_REQUIRE(file != nullptr, "cannot open log file " + path);
    impl_->out = file;
    impl_->owns_out = true;
    impl_->path = path;
    impl_->max_bytes = max_bytes;
    // Appending to an existing file: start the size counter from what is
    // already there, so the cap bounds total file size, not this process's
    // contribution.
    if (std::fseek(file, 0, SEEK_END) == 0) {
      const long at = std::ftell(file);
      if (at > 0) impl_->bytes = static_cast<std::size_t>(at);
    }
  }
  impl_->format = format;
  level_.store(static_cast<int>(level), std::memory_order_relaxed);
}

void Logger::set_level(LogLevel level) {
  level_.store(static_cast<int>(level), std::memory_order_relaxed);
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message,
                 std::initializer_list<LogField> fields) {
  if (!enabled(level) || level == LogLevel::kOff) return;
  const std::string timestamp = format_timestamp(wall_clock_micros());

  std::string line;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->format == Format::kJsonl) {
    io::JsonValue doc = io::JsonValue::object();
    doc.set("ts", io::JsonValue::string(timestamp));
    doc.set("level", io::JsonValue::string(to_string(level)));
    doc.set("component", io::JsonValue::string(std::string(component)));
    doc.set("msg", io::JsonValue::string(std::string(message)));
    for (const LogField& field : fields)
      doc.set(field.key, field_value_json(field));
    line = doc.dump();
  } else {
    line = timestamp;
    line += ' ';
    std::string tag = to_string(level);
    for (char& c : tag) c = static_cast<char>(::toupper(c));
    line += tag;
    line.append(6 - tag.size(), ' ');
    line += component;
    line += ": ";
    line += message;
    for (const LogField& field : fields) {
      line += ' ';
      line += field.key;
      line += '=';
      line += field_value_text(field);
    }
  }
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), impl_->out);
  std::fflush(impl_->out);
  if (impl_->owns_out && impl_->max_bytes > 0) {
    impl_->bytes += line.size();
    if (impl_->bytes >= impl_->max_bytes) {
      // Rotate: the full file becomes path.1 (replacing any previous one)
      // and a fresh file takes its place.  Rotation happens after the write
      // so a single oversized line still lands somewhere.
      std::fclose(impl_->out);
      std::rename(impl_->path.c_str(), (impl_->path + ".1").c_str());
      std::FILE* file = std::fopen(impl_->path.c_str(), "w");
      if (file != nullptr) {
        impl_->out = file;
      } else {
        impl_->out = stderr;  // disk trouble: keep logging, drop the cap
        impl_->owns_out = false;
        impl_->max_bytes = 0;
      }
      impl_->bytes = 0;
    }
  }
}

void log_trace(std::string_view component, std::string_view message,
               std::initializer_list<LogField> fields) {
  Logger::global().log(LogLevel::kTrace, component, message, fields);
}

void log_debug(std::string_view component, std::string_view message,
               std::initializer_list<LogField> fields) {
  Logger::global().log(LogLevel::kDebug, component, message, fields);
}

void log_info(std::string_view component, std::string_view message,
              std::initializer_list<LogField> fields) {
  Logger::global().log(LogLevel::kInfo, component, message, fields);
}

void log_warn(std::string_view component, std::string_view message,
              std::initializer_list<LogField> fields) {
  Logger::global().log(LogLevel::kWarn, component, message, fields);
}

void log_error(std::string_view component, std::string_view message,
               std::initializer_list<LogField> fields) {
  Logger::global().log(LogLevel::kError, component, message, fields);
}

}  // namespace sramlp::obs
