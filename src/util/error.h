// Error handling used across the library.
//
// Library code validates its preconditions with SRAMLP_REQUIRE and throws
// `sramlp::Error` (an std::runtime_error) on violation.  This keeps the
// public API honest about contract violations without aborting the host
// process, which matters for a library that test harnesses embed.
#pragma once

#include <stdexcept>
#include <string>

namespace sramlp {

/// Exception thrown on any contract or configuration violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* cond, const char* file, int line,
                               const std::string& msg) {
  std::string full = std::string(file) + ":" + std::to_string(line) +
                     ": requirement failed: " + cond;
  if (!msg.empty()) full += " — " + msg;
  throw Error(full);
}
}  // namespace detail

}  // namespace sramlp

/// Validate a precondition; throws sramlp::Error with location info on failure.
#define SRAMLP_REQUIRE(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) ::sramlp::detail::raise(#cond, __FILE__, __LINE__, msg); \
  } while (false)
