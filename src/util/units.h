// Unit helpers for the electrical quantities used throughout the library.
//
// All physical values are carried as plain `double` in base SI units
// (volts, farads, seconds, amperes, joules, watts, ohms).  The constexpr
// factors below make call sites self-documenting:
//
//     double c_bl = 500 * units::fF;     // 500 femtofarads
//     double t_ck = 3 * units::ns;       // 3 nanoseconds
//
// and the `as_*` helpers convert back for reporting:
//
//     table.cell(units::as_fJ(energy)); // joules -> femtojoules
#pragma once

namespace sramlp::units {

// --- multipliers: value * factor -> base SI unit -------------------------
inline constexpr double fF = 1e-15;  ///< femtofarad -> farad
inline constexpr double pF = 1e-12;  ///< picofarad  -> farad
inline constexpr double nF = 1e-9;   ///< nanofarad  -> farad

inline constexpr double ps = 1e-12;  ///< picosecond -> second
inline constexpr double ns = 1e-9;   ///< nanosecond -> second
inline constexpr double us = 1e-6;   ///< microsecond-> second

inline constexpr double mV = 1e-3;   ///< millivolt  -> volt

inline constexpr double uA = 1e-6;   ///< microampere-> ampere
inline constexpr double mA = 1e-3;   ///< milliampere-> ampere

inline constexpr double fJ = 1e-15;  ///< femtojoule -> joule
inline constexpr double pJ = 1e-12;  ///< picojoule  -> joule
inline constexpr double nJ = 1e-9;   ///< nanojoule  -> joule

inline constexpr double uW = 1e-6;   ///< microwatt  -> watt
inline constexpr double mW = 1e-3;   ///< milliwatt  -> watt

inline constexpr double kOhm = 1e3;  ///< kiloohm    -> ohm

// --- converters: base SI unit -> display unit ----------------------------
constexpr double as_fF(double farads) { return farads / fF; }
constexpr double as_pF(double farads) { return farads / pF; }
constexpr double as_ps(double seconds) { return seconds / ps; }
constexpr double as_ns(double seconds) { return seconds / ns; }
constexpr double as_mV(double volts) { return volts / mV; }
constexpr double as_uA(double amperes) { return amperes / uA; }
constexpr double as_fJ(double joules) { return joules / fJ; }
constexpr double as_pJ(double joules) { return joules / pJ; }
constexpr double as_uW(double watts) { return watts / uW; }
constexpr double as_mW(double watts) { return watts / mW; }

}  // namespace sramlp::units
