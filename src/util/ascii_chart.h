// ASCII line charts for waveform output in benches/examples.
//
// The paper's Figure 6 shows Spice waveforms (bit-line discharge, cell node
// voltages, RES power decay).  The benches redraw them in the terminal:
//
//   1.60 |**.
//        |   ***
//   0.80 |      ****
//        |          *****
//   0.00 |               ***********
//        +--------------------------
//        0 ns                  30 ns
#pragma once

#include <string>
#include <vector>

namespace sramlp::util {

/// Render options for an ASCII chart.
struct ChartOptions {
  int width = 72;        ///< plot area width in characters
  int height = 16;       ///< plot area height in characters
  std::string x_label;   ///< label under the x axis
  std::string y_label;   ///< label before the y axis values
  double y_min = 0.0;    ///< lower y bound (used when autoscale_y is false)
  double y_max = 0.0;    ///< upper y bound (used when autoscale_y is false)
  bool autoscale_y = true;
};

/// A single series: x/y sample pairs plus the glyph used to draw it.
struct Series {
  std::string name;
  char glyph = '*';
  std::vector<double> x;
  std::vector<double> y;
};

/// Draw one or more series into a character grid and return it as a string.
/// Series are drawn in order, later series overdraw earlier ones.
std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& options);

}  // namespace sramlp::util
