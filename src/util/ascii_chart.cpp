#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/table.h"

namespace sramlp::util {

namespace {

struct Bounds {
  double x_min = std::numeric_limits<double>::max();
  double x_max = std::numeric_limits<double>::lowest();
  double y_min = std::numeric_limits<double>::max();
  double y_max = std::numeric_limits<double>::lowest();
};

Bounds find_bounds(const std::vector<Series>& series) {
  Bounds b;
  for (const auto& s : series) {
    for (double v : s.x) {
      b.x_min = std::min(b.x_min, v);
      b.x_max = std::max(b.x_max, v);
    }
    for (double v : s.y) {
      b.y_min = std::min(b.y_min, v);
      b.y_max = std::max(b.y_max, v);
    }
  }
  if (b.x_max <= b.x_min) b.x_max = b.x_min + 1.0;
  if (b.y_max <= b.y_min) b.y_max = b.y_min + 1.0;
  return b;
}

}  // namespace

std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& options) {
  SRAMLP_REQUIRE(!series.empty(), "chart needs at least one series");
  SRAMLP_REQUIRE(options.width >= 8 && options.height >= 4,
                 "chart area too small");
  for (const auto& s : series)
    SRAMLP_REQUIRE(s.x.size() == s.y.size(),
                   "series x/y sample counts must match");

  Bounds b = find_bounds(series);
  if (!options.autoscale_y) {
    b.y_min = options.y_min;
    b.y_max = options.y_max;
    if (b.y_max <= b.y_min) b.y_max = b.y_min + 1.0;
  }

  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));

  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double fx = (s.x[i] - b.x_min) / (b.x_max - b.x_min);
      const double fy = (s.y[i] - b.y_min) / (b.y_max - b.y_min);
      if (fy < 0.0 || fy > 1.0) continue;  // clipped by fixed y bounds
      int cx = static_cast<int>(std::lround(fx * (w - 1)));
      int cy = static_cast<int>(std::lround((1.0 - fy) * (h - 1)));
      cx = std::clamp(cx, 0, w - 1);
      cy = std::clamp(cy, 0, h - 1);
      grid[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] =
          s.glyph;
    }
  }

  // Y-axis labels on the top, middle and bottom rows.
  std::string out;
  if (!options.y_label.empty()) out += options.y_label + '\n';
  const int label_width = 10;
  for (int row = 0; row < h; ++row) {
    std::string label(static_cast<std::size_t>(label_width), ' ');
    const bool labelled = row == 0 || row == h - 1 || row == h / 2;
    if (labelled) {
      const double frac = 1.0 - static_cast<double>(row) / (h - 1);
      std::string v = fmt(b.y_min + frac * (b.y_max - b.y_min), 2);
      if (v.size() < static_cast<std::size_t>(label_width) - 1)
        label = std::string(label_width - 1 - v.size(), ' ') + v + ' ';
    }
    out += label + '|' + grid[static_cast<std::size_t>(row)] + '\n';
  }
  out += std::string(static_cast<std::size_t>(label_width), ' ') + '+' +
         std::string(static_cast<std::size_t>(w), '-') + '\n';
  std::string x_line(static_cast<std::size_t>(label_width) + 1, ' ');
  x_line += fmt(b.x_min, 2);
  std::string x_hi = fmt(b.x_max, 2);
  const std::size_t total =
      static_cast<std::size_t>(label_width) + 1 + static_cast<std::size_t>(w);
  if (x_line.size() + x_hi.size() < total)
    x_line += std::string(total - x_line.size() - x_hi.size(), ' ');
  x_line += x_hi;
  out += x_line + '\n';
  if (!options.x_label.empty())
    out += std::string(static_cast<std::size_t>(label_width) + 1, ' ') +
           options.x_label + '\n';

  // Legend when more than one series is drawn.
  if (series.size() > 1) {
    out += "  legend:";
    for (const auto& s : series) {
      out += "  ";
      out += s.glyph;
      out += " = " + s.name;
    }
    out += '\n';
  }
  return out;
}

}  // namespace sramlp::util
