#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/error.h"

namespace sramlp::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SRAMLP_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  SRAMLP_REQUIRE(cells.size() == headers_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

namespace {

std::string horizontal_rule(const std::vector<std::size_t>& widths) {
  std::string line = "+";
  for (std::size_t w : widths) {
    line.append(w + 2, '-');
    line += '+';
  }
  line += '\n';
  return line;
}

void append_row(std::string& out, const std::vector<std::string>& cells,
                const std::vector<std::size_t>& widths) {
  out += '|';
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out += ' ';
    out += cells[i];
    out.append(widths[i] - cells[i].size() + 1, ' ');
    out += '|';
  }
  out += '\n';
}

}  // namespace

std::string Table::str(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  std::string out;
  if (!title.empty()) out += title + '\n';
  const std::string rule = horizontal_rule(widths);
  out += rule;
  append_row(out, headers_, widths);
  out += rule;
  for (const auto& row : rows_) append_row(out, row, widths);
  out += rule;
  return out;
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string fmt_percent(double ratio, int decimals) {
  return fmt(ratio * 100.0, decimals) + " %";
}

std::string fmt_count(long long value) { return std::to_string(value); }

}  // namespace sramlp::util
