// Deterministic pseudo-random number generation (xoshiro256**).
//
// Used for pseudo-random March address orders (DOF-1 exercises), random data
// backgrounds and property-test inputs.  Deterministic seeding keeps every
// test and bench reproducible; <random> engines are avoided because their
// streams are implementation-defined across standard libraries.
#pragma once

#include <cstdint>

namespace sramlp::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  /// Seeds the four 64-bit lanes from @p seed via splitmix64.
  explicit constexpr Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    std::uint64_t x = seed;
    for (auto& lane : state_) {
      // splitmix64 step
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      lane = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  constexpr std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) by rejection sampling; bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    // Rejection keeps the draw exactly uniform without 128-bit arithmetic;
    // the expected number of retries is below 2 for any bound.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    std::uint64_t x = next_u64();
    while (x >= limit) x = next_u64();
    return x % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Fair coin flip.
  constexpr bool next_bool() { return (next_u64() & 1ull) != 0; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Fisher–Yates shuffle of a random-access container using Rng.
template <typename Container>
void shuffle(Container& items, Rng& rng) {
  const auto n = items.size();
  if (n < 2) return;
  for (auto i = n - 1; i > 0; --i) {
    const auto j = static_cast<decltype(i)>(rng.next_below(i + 1));
    using std::swap;
    swap(items[i], items[j]);
  }
}

}  // namespace sramlp::util
