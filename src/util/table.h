// Plain-text table formatting for benches and examples.
//
// The benches reproduce the paper's tables; this renders them with aligned
// columns and an optional title, e.g.
//
//   Table 1 - PRR for different March algorithms
//   +-----------+------+-------+--------+---------+--------+
//   | Algorithm | #elm | #oper | #read  | #write  | PRR    |
//   +-----------+------+-------+--------+---------+--------+
//   | March C-  |    6 |    10 |      5 |       5 | 47.3 % |
//   ...
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sramlp::util {

/// Column-aligned ASCII table builder.
class Table {
 public:
  /// @param headers column headings, fixes the column count.
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  /// Render with +---+ borders. @param title optional caption line above.
  std::string str(const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with @p decimals digits after the point (locale-free).
std::string fmt(double value, int decimals = 2);

/// Format as a percentage with one decimal, e.g. 0.473 -> "47.3 %".
std::string fmt_percent(double ratio, int decimals = 1);

/// Format an integral count with no decorations.
std::string fmt_count(long long value);

}  // namespace sramlp::util
