// Streaming descriptive statistics (Welford's algorithm).
//
// Benches summarise per-cycle energies and waveform samples; this avoids
// keeping full sample vectors when only mean/min/max/stddev are reported.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

namespace sramlp::util {

/// Single-pass accumulator for count/mean/variance/min/max.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Population variance (0 for fewer than two samples).
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::max();
  double max_ = std::numeric_limits<double>::lowest();
};

/// Relative closeness check used by tests and calibration code:
/// |a-b| <= tol * max(|a|,|b|, tiny).
inline bool approx_equal(double a, double b, double tol = 1e-9) {
  const double scale =
      std::max({std::fabs(a), std::fabs(b), 1e-300});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace sramlp::util
