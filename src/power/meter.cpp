#include "power/meter.h"

#include <algorithm>

namespace sramlp::power {

double EnergyMeter::supply_total() const {
  double total = 0.0;
  for (std::size_t i = 0; i < kEnergySourceCount; ++i)
    if (kEnergySourceInfo[i].supply_drawn) total += totals_[i];
  return total;
}

double EnergyMeter::precharge_total() const {
  double total = 0.0;
  for (std::size_t i = 0; i < kEnergySourceCount; ++i)
    if (kEnergySourceInfo[i].supply_drawn &&
        kEnergySourceInfo[i].precharge_related)
      total += totals_[i];
  return total;
}

double EnergyMeter::supply_per_cycle() const {
  return cycles_ == 0 ? 0.0
                      : supply_total() / static_cast<double>(cycles_);
}

std::vector<BreakdownEntry> EnergyMeter::breakdown() const {
  const double supply = supply_total();
  std::vector<BreakdownEntry> entries;
  for (std::size_t i = 0; i < kEnergySourceCount; ++i) {
    if (totals_[i] <= 0.0) continue;
    const bool drawn = kEnergySourceInfo[i].supply_drawn;
    entries.push_back({static_cast<EnergySource>(i), totals_[i],
                       (drawn && supply > 0.0) ? totals_[i] / supply : 0.0});
  }
  std::sort(entries.begin(), entries.end(),
            [](const BreakdownEntry& a, const BreakdownEntry& b) {
              return a.energy_j > b.energy_j;
            });
  return entries;
}

void EnergyMeter::reset() {
  totals_.fill(0.0);
  cycles_ = 0;
}

}  // namespace sramlp::power
