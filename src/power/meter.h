// Per-source energy accounting for the cycle simulator.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "power/energy_source.h"

namespace sramlp::power {

/// One line of a breakdown report.
struct BreakdownEntry {
  EnergySource source;
  double energy_j;
  double share;  ///< fraction of supply energy (0 for non-supply sinks)
};

/// Accumulates energy per source and counts clock cycles.
///
/// "Supply energy" is what the paper's PF / PLPT measure: everything drawn
/// from VDD.  Bit-line decay stress is tracked too (for the α analysis and
/// Fig. 6b) but spends charge that the supply already paid for at pre-charge
/// time, so it is excluded from supply totals.
class EnergyMeter {
 public:
  /// Attribute @p joules to @p source. Negative amounts are rejected.
  void add(EnergySource source, double joules);

  /// Advance the cycle counter (call once per simulated clock cycle).
  void tick_cycle() { ++cycles_; }

  std::uint64_t cycles() const { return cycles_; }

  /// Total energy attributed to one source.
  double total(EnergySource source) const {
    return totals_[static_cast<std::size_t>(source)];
  }

  /// Total energy drawn from the supply (all supply_drawn sources).
  double supply_total() const;

  /// Supply energy attributed to pre-charge-related sources only.
  double precharge_total() const;

  /// Average supply energy per clock cycle; 0 when no cycle elapsed.
  double supply_per_cycle() const;

  /// Per-source report, largest supply share first; zero-energy sources
  /// are omitted.
  std::vector<BreakdownEntry> breakdown() const;

  /// Reset all totals and the cycle count.
  void reset();

 private:
  std::array<double, kEnergySourceCount> totals_{};
  std::uint64_t cycles_ = 0;
};

}  // namespace sramlp::power
