// Per-source energy accounting for the cycle simulator.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "power/energy_source.h"
#include "util/error.h"

namespace sramlp::power {

/// One line of a breakdown report.
struct BreakdownEntry {
  EnergySource source;
  double energy_j;
  double share;  ///< fraction of supply energy (0 for non-supply sinks)
};

/// Accumulates energy per source and counts clock cycles.
///
/// "Supply energy" is what the paper's PF / PLPT measure: everything drawn
/// from VDD.  Bit-line decay stress is tracked too (for the α analysis and
/// Fig. 6b) but spends charge that the supply already paid for at pre-charge
/// time, so it is excluded from supply totals.
class EnergyMeter {
 public:
  /// Attribute @p joules to @p source. Negative amounts are rejected.
  void add(EnergySource source, double joules) {
    SRAMLP_REQUIRE(source != EnergySource::kCount, "not a real source");
    SRAMLP_REQUIRE(joules >= 0.0, "energy contributions must be non-negative");
    totals_[static_cast<std::size_t>(source)] += joules;
  }

  /// Attribute @p joules to @p source, @p count times.  The accumulation is
  /// performed as @p count successive additions, so the result is
  /// bit-identical to calling add(source, joules) @p count times — the
  /// identity the cohort-bulk metering of the bitsliced SramArray path
  /// depends on for exact parity with the per-column reference path.
  void add(EnergySource source, double joules, std::uint64_t count) {
    SRAMLP_REQUIRE(source != EnergySource::kCount, "not a real source");
    SRAMLP_REQUIRE(joules >= 0.0, "energy contributions must be non-negative");
    double& total = totals_[static_cast<std::size_t>(source)];
    for (std::uint64_t i = 0; i < count; ++i) total += joules;
  }

  /// Advance the cycle counter (call once per simulated clock cycle).
  void tick_cycle() { ++cycles_; }

  /// Advance the cycle counter by @p count cycles (idle blocks).
  void tick_cycles(std::uint64_t count) { cycles_ += count; }

  std::uint64_t cycles() const { return cycles_; }

  /// Total energy attributed to one source.
  double total(EnergySource source) const {
    return totals_[static_cast<std::size_t>(source)];
  }

  /// Mutable view of the per-source accumulators, for the simulator's
  /// block executor: it copies them into registers for the duration of a
  /// run and writes them back, performing exactly the additions add()
  /// would have — same values, same order, same totals to the bit.
  std::array<double, kEnergySourceCount>& raw_totals() { return totals_; }

  /// Total energy drawn from the supply (all supply_drawn sources).
  double supply_total() const;

  /// Supply energy attributed to pre-charge-related sources only.
  double precharge_total() const;

  /// Average supply energy per clock cycle; 0 when no cycle elapsed.
  double supply_per_cycle() const;

  /// Per-source report, largest supply share first; zero-energy sources
  /// are omitted.
  std::vector<BreakdownEntry> breakdown() const;

  /// Reset all totals and the cycle count.
  void reset();

 private:
  std::array<double, kEnergySourceCount> totals_{};
  std::uint64_t cycles_ = 0;
};

}  // namespace sramlp::power
