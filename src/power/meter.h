// Per-source energy accounting for the cycle simulator — the PROBE half of
// the probe/sink metering layer.
//
// The meter is the single point every simulated energy event passes
// through: the SramArray engines call add()/add_spread() and the meter (a)
// accumulates the scalar per-source totals and (b) forwards the event —
// (source, joules, count, cycle) — to an optionally attached MeterSink.
// power::PowerTrace (power/trace.h) is the shipped sink: it folds the
// event stream into fixed time windows and per-March-element accumulators
// for peak-power analysis.  Attaching a sink never changes the scalar
// totals: the accumulation arithmetic is identical with and without one
// (regression-tested in test_bitsliced_parity.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "power/energy_source.h"
#include "util/error.h"

namespace sramlp::power {

/// One line of a breakdown report.
struct BreakdownEntry {
  EnergySource source;
  double energy_j;
  double share;  ///< fraction of supply energy (0 for non-supply sinks)
};

/// Subscriber to an EnergyMeter's event stream (the sink half of the
/// probe/sink layer).  Implementations must not touch the meter they are
/// attached to (no re-entrancy).
class MeterSink {
 public:
  virtual ~MeterSink() = default;

  /// @p count events of @p joules each, all at clock cycle @p cycle (the
  /// meter's cycle counter at accumulation time).
  virtual void on_add(EnergySource source, double joules, std::uint64_t count,
                      std::uint64_t cycle) = 0;

  /// A block accumulation of @p joules total spread uniformly over the
  /// @p cycles cycles starting at @p first_cycle (idle windows).
  virtual void on_spread(EnergySource source, double joules,
                         std::uint64_t first_cycle,
                         std::uint64_t cycles) = 0;

  // --- bulk-fold contract (the traced batch fast path) ----------------------
  //
  // A sink whose accumulators are per (source, window) and per
  // (source, element) blocks of repeated additions may opt into bulk
  // folding: the simulator's batch executor then keeps working copies of
  // the current window/element blocks in registers — exactly like it holds
  // the meter's raw totals — performs on each copy the additions on_add
  // would have performed, and writes the blocks back at window boundaries
  // and spill points.  Because each (source, window/element) accumulator
  // receives the identical addition sequence, the folded result is
  // bit-identical to the per-cycle event stream.  Sinks that need the
  // events themselves (waveform writers) simply keep the default: the
  // executor falls back to per-cycle delivery.

  /// Opt in to bulk folding.  Returning true promises the three methods
  /// below are implemented and that skipping per-event on_add delivery in
  /// favour of direct slot accumulation is observationally equivalent.
  virtual bool bulk_fold_supported() const { return false; }

  /// Window width in cycles (>= 1); window index = cycle / width.
  virtual std::uint64_t bulk_window_cycles() const { return 1; }

  /// Writable per-source accumulator block (kEnergySourceCount doubles,
  /// indexed by EnergySource) of window @p window.  Requesting a window
  /// finalizes all earlier ones, so requests must be monotone; the pointer
  /// is invalidated by any other call into the sink.
  virtual double* bulk_window_slots(std::uint64_t window) {
    (void)window;
    return nullptr;
  }

  /// Writable per-source accumulator block of the current element.
  /// Invalidated by any other call into the sink.
  virtual double* bulk_element_slots() { return nullptr; }
};

/// Accumulates energy per source and counts clock cycles.
///
/// "Supply energy" is what the paper's PF / PLPT measure: everything drawn
/// from VDD.  Bit-line decay stress is tracked too (for the α analysis and
/// Fig. 6b) but spends charge that the supply already paid for at pre-charge
/// time, so it is excluded from supply totals.
///
/// Copy/move semantics: the measurements (totals, cycle count) are copied;
/// the attached sink is NOT.  A sink subscribes to one live meter — result
/// snapshots (SessionResult::meter) must not carry a pointer to a trace
/// whose run has ended.
class EnergyMeter {
 public:
  EnergyMeter() = default;
  EnergyMeter(const EnergyMeter& other)
      : totals_(other.totals_), cycles_(other.cycles_) {}
  EnergyMeter(EnergyMeter&& other) noexcept
      : totals_(other.totals_), cycles_(other.cycles_) {}
  EnergyMeter& operator=(const EnergyMeter& other) {
    totals_ = other.totals_;
    cycles_ = other.cycles_;
    return *this;
  }
  EnergyMeter& operator=(EnergyMeter&& other) noexcept {
    totals_ = other.totals_;
    cycles_ = other.cycles_;
    return *this;
  }

  /// Attribute @p joules to @p source. Negative amounts are rejected.
  void add(EnergySource source, double joules) {
    SRAMLP_REQUIRE(source != EnergySource::kCount, "not a real source");
    SRAMLP_REQUIRE(joules >= 0.0, "energy contributions must be non-negative");
    totals_[static_cast<std::size_t>(source)] += joules;
    if (sink_ != nullptr) sink_->on_add(source, joules, 1, cycles_);
  }

  /// Attribute @p joules to @p source, @p count times.
  ///
  /// The accumulation is performed as @p count successive additions — NOT
  /// as a single `joules * count` fused product.  IEEE-754 addition is not
  /// distributive: 0.1 added ten times is 0.9999999999999999, 10 * 0.1 is
  /// 1.0.  The bitsliced SramArray engine meters whole decay cohorts with
  /// one bulk add where the per-column reference engine performs one add
  /// per column; the repeated-addition identity is what keeps the two
  /// engines' totals bit-identical (the parity contract of
  /// test_bitsliced_parity.cpp, pinned directly by
  /// test_power.cpp:BulkAddBitIdenticalToScalarAdds).  Do not "optimise"
  /// this into a multiplication.
  void add(EnergySource source, double joules, std::uint64_t count) {
    SRAMLP_REQUIRE(source != EnergySource::kCount, "not a real source");
    SRAMLP_REQUIRE(joules >= 0.0, "energy contributions must be non-negative");
    double& total = totals_[static_cast<std::size_t>(source)];
    for (std::uint64_t i = 0; i < count; ++i) total += joules;
    if (sink_ != nullptr) sink_->on_add(source, joules, count, cycles_);
  }

  /// Attribute `cycles * joules_per_cycle` to @p source as one addition,
  /// telling an attached sink the energy covers the @p cycles cycles
  /// starting NOW (idle blocks: the scalar total is one multiply-add — the
  /// exact arithmetic the idle paths always used — while the trace spreads
  /// it across the windows the block spans).
  void add_spread(EnergySource source, double joules_per_cycle,
                  std::uint64_t cycles) {
    SRAMLP_REQUIRE(source != EnergySource::kCount, "not a real source");
    SRAMLP_REQUIRE(joules_per_cycle >= 0.0,
                   "energy contributions must be non-negative");
    const double joules = static_cast<double>(cycles) * joules_per_cycle;
    totals_[static_cast<std::size_t>(source)] += joules;
    if (sink_ != nullptr) sink_->on_spread(source, joules, cycles_, cycles);
  }

  /// Subscribe @p sink to subsequent events (nullptr detaches).  Wiring,
  /// not measurement: reset() keeps the sink, copies drop it.
  void attach_sink(MeterSink* sink) { sink_ = sink; }
  bool has_sink() const { return sink_ != nullptr; }
  MeterSink* sink() { return sink_; }

  /// Advance the cycle counter (call once per simulated clock cycle).
  void tick_cycle() { ++cycles_; }

  /// Advance the cycle counter by @p count cycles (idle blocks).
  void tick_cycles(std::uint64_t count) { cycles_ += count; }

  std::uint64_t cycles() const { return cycles_; }

  /// Total energy attributed to one source.
  double total(EnergySource source) const {
    return totals_[static_cast<std::size_t>(source)];
  }

  /// Mutable view of the per-source accumulators, for the simulator's
  /// block executor: it copies them into registers for the duration of a
  /// run and writes them back, performing exactly the additions add()
  /// would have — same values, same order, same totals to the bit.
  /// Available with no sink, or with a bulk-fold-capable sink (whose
  /// window/element blocks the executor folds the same way — see
  /// MeterSink::bulk_fold_supported).  A sink that needs the event stream
  /// itself keeps this unavailable: raw accumulation would bypass it
  /// (SramArray routes such runs through the per-cycle path instead).
  std::array<double, kEnergySourceCount>& raw_totals() {
    SRAMLP_REQUIRE(sink_ == nullptr || sink_->bulk_fold_supported(),
                   "raw accumulator access would bypass the attached "
                   "trace sink; use the per-cycle metering path");
    return totals_;
  }

  /// Total energy drawn from the supply (all supply_drawn sources).
  double supply_total() const;

  /// Supply energy attributed to pre-charge-related sources only.
  double precharge_total() const;

  /// Average supply energy per clock cycle; 0 when no cycle elapsed.
  double supply_per_cycle() const;

  /// Per-source report, largest supply share first; zero-energy sources
  /// are omitted.
  std::vector<BreakdownEntry> breakdown() const;

  /// Reset all totals and the cycle count (the attached sink stays).
  void reset();

 private:
  std::array<double, kEnergySourceCount> totals_{};
  std::uint64_t cycles_ = 0;
  MeterSink* sink_ = nullptr;
};

}  // namespace sramlp::power
