#include "power/report.h"

#include <cstdio>
#include <sstream>

namespace sramlp::power {

namespace {

double per_cycle(const EnergyMeter& meter, double energy) {
  return meter.cycles() == 0
             ? 0.0
             : energy / static_cast<double>(meter.cycles());
}

}  // namespace

std::string to_csv(const EnergyMeter& meter) {
  std::ostringstream out;
  out << "source,energy_j,energy_per_cycle_j,share,supply_drawn\n";
  out.precision(9);
  for (const auto& entry : meter.breakdown()) {
    const auto& meta = info(entry.source);
    out << '"' << meta.name << "\"," << std::scientific << entry.energy_j
        << ',' << per_cycle(meter, entry.energy_j) << ',' << std::fixed
        << entry.share << ',' << (meta.supply_drawn ? 1 : 0) << '\n';
  }
  return out.str();
}

std::string to_markdown(const EnergyMeter& meter) {
  std::string out = "| source | pJ/cycle | share |\n|---|---|---|\n";
  char buf[160];
  for (const auto& entry : meter.breakdown()) {
    const auto& meta = info(entry.source);
    std::snprintf(buf, sizeof buf, "| %s | %.4f | %.1f %% |\n", meta.name,
                  per_cycle(meter, entry.energy_j) * 1e12,
                  meta.supply_drawn ? entry.share * 100.0 : 0.0);
    out += buf;
  }
  return out;
}

io::JsonValue to_json(const EnergyMeter& meter) {
  io::JsonValue v = io::JsonValue::object();
  v.set("cycles", io::JsonValue::integer(meter.cycles()));
  v.set("supply_energy_j", io::JsonValue::number(meter.supply_total()));
  v.set("supply_per_cycle_j", io::JsonValue::number(meter.supply_per_cycle()));
  const double supply = meter.supply_total();
  v.set("precharge_share",
        io::JsonValue::number(
            supply > 0.0 ? meter.precharge_total() / supply : 0.0));
  io::JsonValue breakdown = io::JsonValue::array();
  for (const auto& entry : meter.breakdown()) {
    const auto& meta = info(entry.source);
    io::JsonValue row = io::JsonValue::object();
    row.set("source", io::JsonValue::string(meta.name));
    row.set("energy_j", io::JsonValue::number(entry.energy_j));
    row.set("energy_per_cycle_j",
            io::JsonValue::number(per_cycle(meter, entry.energy_j)));
    row.set("share", io::JsonValue::number(entry.share));
    row.set("supply_drawn", io::JsonValue::boolean(meta.supply_drawn));
    breakdown.push_back(std::move(row));
  }
  v.set("breakdown", std::move(breakdown));
  return v;
}

std::string summary_line(const EnergyMeter& meter) {
  char buf[160];
  const double supply = meter.supply_total();
  const double share =
      supply > 0.0 ? meter.precharge_total() / supply * 100.0 : 0.0;
  std::snprintf(buf, sizeof buf,
                "%.2f pJ/cycle over %llu cycles (%.1f %% pre-charge-related)",
                meter.supply_per_cycle() * 1e12,
                static_cast<unsigned long long>(meter.cycles()), share);
  return buf;
}

}  // namespace sramlp::power
