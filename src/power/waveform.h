// WaveformWriter — per-cycle energy waveform export (CSV / JSONL).
//
// PowerTrace folds the meter's event stream into windows; a waveform
// writer keeps the time axis instead: one record per simulated cycle that
// drew energy, with the full per-source breakdown — the view to load into
// a plotting tool when a windowed peak number is not enough.
//
// The writer is a plain MeterSink that needs the raw event stream, so it
// deliberately does NOT opt into bulk folding (bulk_fold_supported stays
// false): attaching one routes the array through its per-cycle metering
// path, where every event reaches on_add with its cycle stamp.  Idle
// blocks (March "Del" elements) arrive as one on_spread covering millions
// of cycles; the writer keeps them as ONE record with a span column rather
// than exploding the file — energy in a record is the total over its span.
//
// Record layout (CSV header written on construction; JSONL one object per
// line with the same fields):
//
//   run   — 0-based ordinal of the March run within the file.  Runs are
//           detected by the meter's cycle counter restarting (each run
//           resets its meter), so files with several runs — e.g. a
//           compare_modes pair: functional first, low-power second — split
//           without any extra wiring.
//   cycle — first cycle of the record's span
//   span  — cycles covered (1 for operation cycles, the block length for
//           idle spreads)
//   supply_j — supply energy drawn over the span (sum of the supply-drawn
//           source columns; excludes stored-charge sinks)
//   one column per EnergySource, in enum order (energy_source.h names)
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "power/energy_source.h"
#include "power/meter.h"

namespace sramlp::power {

enum class WaveformFormat { kCsv, kJsonl };

class WaveformWriter final : public MeterSink {
 public:
  /// Opens @p path for writing (truncates) and emits the CSV header when
  /// the format asks for one.  Throws on I/O failure.
  WaveformWriter(const std::string& path, WaveformFormat format);
  ~WaveformWriter() override;

  WaveformWriter(const WaveformWriter&) = delete;
  WaveformWriter& operator=(const WaveformWriter&) = delete;

  // --- MeterSink ----------------------------------------------------------
  void on_add(EnergySource source, double joules, std::uint64_t count,
              std::uint64_t cycle) override;
  void on_spread(EnergySource source, double joules, std::uint64_t first_cycle,
                 std::uint64_t cycles) override;

  /// Flush the pending record and the stdio buffer.  Called by the
  /// destructor; call explicitly to inspect the file while the writer is
  /// still attached.
  void finish();

  std::uint64_t records_written() const { return records_; }

 private:
  void flush_record();
  void write_record(std::uint64_t cycle, std::uint64_t span,
                    const double* slots);

  std::FILE* file_ = nullptr;
  WaveformFormat format_;
  std::uint64_t run_ = 0;
  std::uint64_t records_ = 0;
  bool have_pending_ = false;
  bool first_event_seen_ = false;
  std::uint64_t pending_cycle_ = 0;
  std::uint64_t pending_span_ = 1;
  std::uint64_t last_cycle_ = 0;
  double pending_[kEnergySourceCount] = {};
};

}  // namespace sramlp::power
