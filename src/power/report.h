// Export helpers for energy measurements: CSV, markdown and JSON
// renderings of an EnergyMeter's per-source breakdown, used by benches and
// by downstream tooling that wants machine-readable results.
#pragma once

#include <string>

#include "io/json.h"
#include "power/meter.h"

namespace sramlp::power {

/// "source,energy_j,energy_per_cycle_j,share,supply_drawn" rows, one per
/// non-zero source, ordered by energy (largest first).
std::string to_csv(const EnergyMeter& meter);

/// GitHub-flavoured markdown table of the breakdown, energies in pJ/cycle.
std::string to_markdown(const EnergyMeter& meter);

/// JSON rendering of the same breakdown (largest supply share first, zero
/// sources omitted) plus the meter totals, built on the io/ JSON writer:
/// {"cycles", "supply_energy_j", "supply_per_cycle_j", "precharge_share",
///  "breakdown": [{"source", "energy_j", "energy_per_cycle_j", "share",
///                 "supply_drawn"}, ...]}.
io::JsonValue to_json(const EnergyMeter& meter);

/// One-line summary: "NN.NN pJ/cycle over C cycles (P% pre-charge-related)".
std::string summary_line(const EnergyMeter& meter);

}  // namespace sramlp::power
