// Export helpers for energy measurements: CSV and markdown renderings of
// an EnergyMeter's per-source breakdown, used by benches and by downstream
// tooling that wants machine-readable results.
#pragma once

#include <string>

#include "power/meter.h"

namespace sramlp::power {

/// "source,energy_j,energy_per_cycle_j,share,supply_drawn" rows, one per
/// non-zero source, ordered by energy (largest first).
std::string to_csv(const EnergyMeter& meter);

/// GitHub-flavoured markdown table of the breakdown, energies in pJ/cycle.
std::string to_markdown(const EnergyMeter& meter);

/// One-line summary: "NN.NN pJ/cycle over C cycles (P% pre-charge-related)".
std::string summary_line(const EnergyMeter& meter);

}  // namespace sramlp::power
