// PowerTrace — the time-resolved sink of the probe/sink metering layer.
//
// The scalar EnergyMeter answers "how much energy did each source draw";
// it cannot say WHEN the power is drawn, what the worst window looks like,
// or which March element dominates.  A PowerTrace subscribes to the
// meter's event stream (MeterSink) and folds every
// (source, joules, count, cycle) event into
//
//   * fixed windows of window_cycles cycles — supply energy per window,
//     the basis of peak-window power (test-power literature treats peak
//     power as a first-class constraint next to average power);
//   * per-March-element accumulators — the execution backend marks element
//     boundaries (begin_element), so the trace attributes supply energy to
//     the March element whose cycles drew it.
//
// Determinism contract: every accumulator is per (source, window) or
// (source, element), and bulk events accumulate as repeated additions —
// the same identity EnergyMeter::add(source, joules, count) maintains —
// so the two SramArray column engines, which emit identical per-source
// event sequences at identical cycles, produce bit-identical traces
// (regression-tested in test_bitsliced_parity.cpp).  Energy lands at the
// cycle the SUPPLY delivers it: a lazily-settled cohort's recharge lands
// in the window of the recharge cycle (that is when the pre-charge circuit
// drains VDD), and idle blocks (March "Del" elements) spread their
// clock/control energy uniformly across the windows they span.  Non-supply
// sinks (bit-line decay stress) are outside the trace: window and element
// power is a supply-side measure, like the paper's PF / PLPT.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "power/energy_source.h"
#include "power/meter.h"

namespace sramlp::power {

/// Opt-in configuration of a PowerTrace (see core::SessionConfig::trace).
struct TraceConfig {
  /// Accumulation window width in clock cycles (>= 1).
  std::uint64_t window_cycles = 64;
  /// Retain the full per-window supply series in the summary (off by
  /// default: a 512x512 March run spans tens of thousands of windows).
  bool keep_windows = false;
};

/// Supply energy attributed to one March element.
struct ElementEnergy {
  std::size_t element = 0;         ///< index into MarchTest::elements()
  std::uint64_t start_cycle = 0;   ///< first cycle of the element
  std::uint64_t cycles = 0;        ///< cycles the element spanned
  double supply_energy_j = 0.0;    ///< supply energy drawn in those cycles
  double precharge_energy_j = 0.0; ///< pre-charge-related part of it
};

/// What a traced run reports (core::SessionResult::trace).
struct TraceSummary {
  std::uint64_t window_cycles = 0;  ///< window width used
  std::uint64_t total_cycles = 0;   ///< cycles the run spanned
  std::uint64_t windows = 0;        ///< windows covering the run
  std::uint64_t peak_window = 0;    ///< index of the peak window (first max)
  double peak_window_energy_j = 0.0;  ///< supply energy of the peak window
  /// Peak-window supply power [W]: peak energy over one full window's
  /// duration (a partial final window is rated against the full width —
  /// conservative, never overstating its power).
  double peak_power_w = 0.0;
  double supply_energy_j = 0.0;     ///< window-accumulated supply total
  double average_power_w = 0.0;     ///< supply_energy_j over the whole run
  std::vector<ElementEnergy> elements;  ///< execution order
  /// Per-window supply energy [J]; only when TraceConfig::keep_windows.
  std::vector<double> window_supply_j;
};

/// The windowed trace accumulator.  Attach to an EnergyMeter
/// (EnergyMeter::attach_sink) to subscribe to a cycle-accurate run, or
/// feed closed-form expectations directly via add_supply_block.
class PowerTrace final : public MeterSink {
 public:
  /// @param clock_period_s converts window energy to power; pass the
  ///   technology's clock_period (0 disables the power conversions).
  PowerTrace(const TraceConfig& config, double clock_period_s);

  /// Mark the start of March element @p element at @p cycle (the meter's
  /// cycle counter).  Idempotent while the element is unchanged; elements
  /// must arrive in execution order.  Events before the first call land in
  /// an implicit element 0.
  void begin_element(std::size_t element, std::uint64_t cycle);

  // --- MeterSink (driven by the attached EnergyMeter) ---------------------
  void on_add(EnergySource source, double joules, std::uint64_t count,
              std::uint64_t cycle) override;
  void on_spread(EnergySource source, double joules, std::uint64_t first_cycle,
                 std::uint64_t cycles) override;

  // Bulk-fold contract: every trace accumulator is a per (source, window)
  // or (source, element) chain of repeated additions, so the batch
  // executor may fold whole runs directly into the slot blocks — the
  // addition sequences (and therefore the bits) match per-cycle on_add
  // delivery exactly.  This is what keeps traced runs on the engine's
  // batched fast path instead of forcing per-cycle execution.
  bool bulk_fold_supported() const override { return true; }
  std::uint64_t bulk_window_cycles() const override {
    return config_.window_cycles;
  }
  double* bulk_window_slots(std::uint64_t window) override;
  double* bulk_element_slots() override;

  /// Closed-form entry point (no meter involved): spread @p joules of
  /// supply energy uniformly over [first_cycle, first_cycle + cycles),
  /// attributed to the current element.  The AnalyticBackend emits its
  /// per-element expectation through this.
  void add_supply_block(double joules, std::uint64_t first_cycle,
                        std::uint64_t cycles);

  /// Reduce the accumulators to the reportable summary.  @p total_cycles
  /// is the run length (meter cycle count after the run).
  TraceSummary summarize(std::uint64_t total_cycles) const;

 private:
  /// Per-window / per-element accumulator block: one slot per source plus
  /// one "direct" slot for unsourced closed-form supply blocks.
  static constexpr std::size_t kDirectSlot = kEnergySourceCount;
  using Slots = std::array<double, kEnergySourceCount + 1>;

  struct ElementAcc {
    std::size_t element = 0;
    std::uint64_t start_cycle = 0;
    Slots slots{};
  };

  Slots& window_at(std::uint64_t index);
  ElementAcc& element_now();
  /// Uniform spread of @p joules over the windows [first, first + cycles).
  void spread_windows(std::size_t slot, double joules, std::uint64_t first,
                      std::uint64_t cycles);
  /// Fold every retained window below @p window into the scalar running
  /// state (supply total, peak, optional kept series) and release it.
  /// Event cycles are monotone within a run, so a window behind the
  /// event frontier can never receive energy again — retained storage
  /// stays O(spread look-ahead), not O(run length), whatever the window
  /// width.
  void fold_below(std::uint64_t window);
  void finalize_window(double supply);

  TraceConfig config_;
  double clock_period_;
  /// Retained (still writable) windows; windows_[0] is base_window_.
  std::vector<Slots> windows_;
  std::uint64_t base_window_ = 0;
  // Running reduction over finalized windows, in window order — the same
  // deterministic fold summarize() used to perform at the end.
  double folded_supply_ = 0.0;
  double peak_energy_ = 0.0;
  std::uint64_t peak_window_ = 0;
  std::vector<double> kept_supply_;  ///< per-window series (keep_windows)
  std::vector<ElementAcc> elements_;
};

}  // namespace sramlp::power
