// Taxonomy of energy sinks tracked by the cycle-accurate simulator.
//
// The paper's §5 identifies five test-mode power sources:
//   1. pre-charge circuits (RES fight on unselected columns)   -> kPrechargeResFight
//   2. array row transition (restore at VDD)                   -> kRowTransitionRestore
//   3. driver of signal LPtest                                 -> kLpTestDriver
//   4. Read Equivalent Stress consumption in the cells         -> kCellRes (+ kBitlineDecayStress)
//   5. modified pre-charge control logic                       -> kControlLogic
// plus the per-operation energies that make up Pr and Pw.
#pragma once

#include <array>
#include <cstddef>

namespace sramlp::power {

/// Every distinct sink the EnergyMeter can attribute energy to.
enum class EnergySource : std::size_t {
  // --- pre-charge related (the activity the paper reduces) ---
  kPrechargeResFight,      ///< supply current through pre-charge keepers
                           ///< feeding RES on unselected columns (paper P_A)
  kPrechargeRestoreRead,   ///< selected-column bit-line restore after a read
  kPrechargeRestoreWrite,  ///< selected-column bit-line restore after a write
  kPrechargeNextColumn,    ///< recharge of the follower column's decayed
                           ///< bit-lines by its one-cycle pre-charge (LP mode)
  kRowTransitionRestore,   ///< all-column restore cycle at row hand-over
                           ///< (paper P_B, LP mode only)
  // --- cell-side stress bookkeeping ---
  kCellRes,                ///< dynamic energy of cell internal nodes under RES
                           ///< (paper: ~3 orders below the pre-charge share)
  kBitlineDecayStress,     ///< stress dissipated in cells while a floating
                           ///< bit-line discharges (LP mode). NOT drawn from
                           ///< the supply: it spends charge already stored on
                           ///< the bit-line capacitance.
  // --- mode-control overhead (LP mode only) ---
  kLpTestDriver,           ///< LPtest signal line (word-line-equivalent load)
  kControlLogic,           ///< modified pre-charge control element switching
  // --- per-operation periphery (present in both modes) ---
  kWordline,               ///< word-line swing
  kDecoder,                ///< row/column decoders
  kAddressBus,             ///< address buffers and bus
  kClockTree,              ///< clock distribution
  kMemoryControl,          ///< the memory's normal control FSM
  kSenseAmp,               ///< read sensing
  kWriteDriver,            ///< write drivers
  kDataIo,                 ///< data multiplexers and I/O
  kCount                   ///< number of sources (not a source)
};

inline constexpr std::size_t kEnergySourceCount =
    static_cast<std::size_t>(EnergySource::kCount);

/// Static properties of a source, used for reporting.
struct EnergySourceInfo {
  const char* name;
  bool supply_drawn;       ///< counts toward supply energy (test power)
  bool precharge_related;  ///< part of the activity the paper targets
};

/// Lookup table indexed by EnergySource.
constexpr std::array<EnergySourceInfo, kEnergySourceCount>
    kEnergySourceInfo{{
        {"precharge RES fight (P_A)", true, true},
        {"precharge restore after read", true, true},
        {"precharge restore after write", true, true},
        {"next-column precharge recharge", true, true},
        {"row-transition restore (P_B)", true, true},
        {"cell RES dynamic", true, false},
        {"bit-line decay stress (stored charge)", false, false},
        {"LPtest line driver", true, false},
        {"modified pre-charge control logic", true, false},
        {"word-line swing", true, false},
        {"decoders", true, false},
        {"address bus", true, false},
        {"clock tree", true, false},
        {"memory control FSM", true, false},
        {"sense amplifiers", true, false},
        {"write drivers", true, false},
        {"data I/O", true, false},
    }};

constexpr const EnergySourceInfo& info(EnergySource s) {
  return kEnergySourceInfo[static_cast<std::size_t>(s)];
}

constexpr const char* to_string(EnergySource s) { return info(s).name; }

}  // namespace sramlp::power
