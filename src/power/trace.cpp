#include "power/trace.h"

#include <algorithm>

#include "util/error.h"

namespace sramlp::power {

namespace {

using Slots = std::array<double, kEnergySourceCount + 1>;

/// Sum a slot block in fixed source order — the deterministic reduction
/// both column engines share.
double supply_of(const Slots& slots) {
  double total = slots[kEnergySourceCount];  // direct (unsourced) supply
  for (std::size_t i = 0; i < kEnergySourceCount; ++i)
    if (kEnergySourceInfo[i].supply_drawn) total += slots[i];
  return total;
}

double precharge_of(const Slots& slots) {
  double total = 0.0;
  for (std::size_t i = 0; i < kEnergySourceCount; ++i)
    if (kEnergySourceInfo[i].supply_drawn &&
        kEnergySourceInfo[i].precharge_related)
      total += slots[i];
  return total;
}

}  // namespace

PowerTrace::PowerTrace(const TraceConfig& config, double clock_period_s)
    : config_(config), clock_period_(clock_period_s) {
  SRAMLP_REQUIRE(config_.window_cycles >= 1,
                 "trace windows must span at least one cycle");
  SRAMLP_REQUIRE(clock_period_ >= 0.0, "negative clock period");
}

void PowerTrace::begin_element(std::size_t element, std::uint64_t cycle) {
  if (!elements_.empty() && elements_.back().element == element) return;
  ElementAcc acc;
  acc.element = element;
  acc.start_cycle = cycle;
  elements_.push_back(acc);
}

void PowerTrace::finalize_window(double supply) {
  folded_supply_ += supply;
  if (supply > peak_energy_) {
    peak_energy_ = supply;
    peak_window_ = base_window_;
  }
  if (config_.keep_windows) kept_supply_.push_back(supply);
  ++base_window_;
}

void PowerTrace::fold_below(std::uint64_t window) {
  while (base_window_ < window && !windows_.empty()) {
    finalize_window(supply_of(windows_.front()));
    windows_.erase(windows_.begin());
  }
  // Zero-energy gap windows between the retained block and the new event.
  while (base_window_ < window) finalize_window(0.0);
}

PowerTrace::Slots& PowerTrace::window_at(std::uint64_t index) {
  SRAMLP_REQUIRE(index >= base_window_,
                 "trace events must not move backwards in time");
  const std::uint64_t offset = index - base_window_;
  if (offset >= windows_.size())
    windows_.resize(static_cast<std::size_t>(offset) + 1);
  return windows_[static_cast<std::size_t>(offset)];
}

PowerTrace::ElementAcc& PowerTrace::element_now() {
  if (elements_.empty()) elements_.push_back(ElementAcc{});
  return elements_.back();
}

void PowerTrace::on_add(EnergySource source, double joules,
                        std::uint64_t count, std::uint64_t cycle) {
  // Supply-side instrument: stored-charge sinks (bit-line decay stress)
  // never reach the windows or the element breakdown.
  if (joules == 0.0 || count == 0 || !info(source).supply_drawn) return;
  const std::size_t slot = static_cast<std::size_t>(source);
  fold_below(cycle / config_.window_cycles);
  double& window = window_at(cycle / config_.window_cycles)[slot];
  double& element = element_now().slots[slot];
  // Repeated additions, not joules * count: the same identity the meter's
  // bulk add maintains, so both column engines — one emitting count events
  // of 1, the other one event of count — accumulate the same bits.
  for (std::uint64_t i = 0; i < count; ++i) {
    window += joules;
    element += joules;
  }
}

double* PowerTrace::bulk_window_slots(std::uint64_t window) {
  fold_below(window);
  return window_at(window).data();
}

double* PowerTrace::bulk_element_slots() { return element_now().slots.data(); }

void PowerTrace::on_spread(EnergySource source, double joules,
                           std::uint64_t first_cycle, std::uint64_t cycles) {
  if (joules == 0.0 || cycles == 0 || !info(source).supply_drawn) return;
  const std::size_t slot = static_cast<std::size_t>(source);
  element_now().slots[slot] += joules;
  spread_windows(slot, joules, first_cycle, cycles);
}

void PowerTrace::add_supply_block(double joules, std::uint64_t first_cycle,
                                  std::uint64_t cycles) {
  SRAMLP_REQUIRE(joules >= 0.0, "energy contributions must be non-negative");
  if (joules == 0.0 || cycles == 0) return;
  element_now().slots[kDirectSlot] += joules;
  spread_windows(kDirectSlot, joules, first_cycle, cycles);
}

void PowerTrace::spread_windows(std::size_t slot, double joules,
                                std::uint64_t first, std::uint64_t cycles) {
  const std::uint64_t w_cycles = config_.window_cycles;
  fold_below(first / w_cycles);
  const double per_cycle = joules / static_cast<double>(cycles);
  std::uint64_t cycle = first;
  std::uint64_t left = cycles;
  while (left > 0) {
    const std::uint64_t window = cycle / w_cycles;
    const std::uint64_t in_window =
        std::min<std::uint64_t>(left, (window + 1) * w_cycles - cycle);
    window_at(window)[slot] += per_cycle * static_cast<double>(in_window);
    cycle += in_window;
    left -= in_window;
  }
}

TraceSummary PowerTrace::summarize(std::uint64_t total_cycles) const {
  const std::uint64_t w_cycles = config_.window_cycles;
  TraceSummary summary;
  summary.window_cycles = w_cycles;
  summary.total_cycles = total_cycles;
  const std::uint64_t implied = (total_cycles + w_cycles - 1) / w_cycles;
  summary.windows =
      std::max<std::uint64_t>(implied, base_window_ + windows_.size());

  // Continue the running fold over the still-retained windows (summarize
  // must stay const and repeatable, so the tail folds into locals).
  summary.supply_energy_j = folded_supply_;
  summary.peak_window_energy_j = peak_energy_;
  summary.peak_window = peak_window_;
  if (config_.keep_windows) summary.window_supply_j = kept_supply_;
  for (std::size_t w = 0; w < windows_.size(); ++w) {
    const double supply = supply_of(windows_[w]);
    summary.supply_energy_j += supply;
    if (supply > summary.peak_window_energy_j) {
      summary.peak_window_energy_j = supply;
      summary.peak_window = base_window_ + w;
    }
    if (config_.keep_windows) summary.window_supply_j.push_back(supply);
  }
  if (config_.keep_windows)
    summary.window_supply_j.resize(
        static_cast<std::size_t>(summary.windows), 0.0);

  const double window_s = static_cast<double>(w_cycles) * clock_period_;
  if (window_s > 0.0)
    summary.peak_power_w = summary.peak_window_energy_j / window_s;
  const double run_s = static_cast<double>(total_cycles) * clock_period_;
  if (run_s > 0.0) summary.average_power_w = summary.supply_energy_j / run_s;

  summary.elements.reserve(elements_.size());
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    const ElementAcc& acc = elements_[i];
    ElementEnergy element;
    element.element = acc.element;
    element.start_cycle = acc.start_cycle;
    const std::uint64_t end = i + 1 < elements_.size()
                                  ? elements_[i + 1].start_cycle
                                  : total_cycles;
    element.cycles = end > acc.start_cycle ? end - acc.start_cycle : 0;
    element.supply_energy_j = supply_of(acc.slots);
    element.precharge_energy_j = precharge_of(acc.slots);
    summary.elements.push_back(element);
  }

  return summary;
}

}  // namespace sramlp::power
