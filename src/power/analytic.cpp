#include "power/analytic.h"

#include <cmath>

#include "util/error.h"

namespace sramlp::power {

void AlgorithmCounts::validate() const {
  SRAMLP_REQUIRE(elements > 0, "algorithm needs at least one element");
  SRAMLP_REQUIRE(operations > 0, "algorithm needs at least one operation");
  SRAMLP_REQUIRE(reads >= 0 && writes >= 0, "negative op counts");
  SRAMLP_REQUIRE(reads + writes == operations,
                 "reads + writes must equal operations");
}

namespace {

std::size_t address_bits(std::size_t words) {
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < words) ++bits;
  return bits == 0 ? 1 : bits;
}

}  // namespace

AnalyticModel::AnalyticModel(const TechnologyParams& tech, std::size_t rows,
                             std::size_t cols, std::size_t word_width)
    : tech_(tech), rows_(rows), cols_(cols), word_width_(word_width) {
  tech_.validate();
  SRAMLP_REQUIRE(rows_ >= 1 && cols_ >= 1, "empty array");
  SRAMLP_REQUIRE(word_width_ >= 1, "word width must be at least 1");
  SRAMLP_REQUIRE(cols_ % word_width_ == 0,
                 "columns must divide evenly into words");
  SRAMLP_REQUIRE(cols_ >= 2 * word_width_,
                 "LP test mode needs at least two word groups per row");
}

double AnalyticModel::peripheral_per_cycle() const {
  const std::size_t words = rows_ * (cols_ / word_width_);
  const double bits = static_cast<double>(address_bits(words));
  return tech_.e_wordline(cols_) +
         bits * (tech_.e_decoder_per_address_bit +
                 tech_.e_addressbus_per_bit) +
         tech_.e_clock_tree + tech_.e_control_base;
}

double AnalyticModel::idle_energy_per_cycle() const {
  return tech_.e_clock_tree + tech_.e_control_base;
}

double AnalyticModel::pr() const {
  const double w = static_cast<double>(word_width_);
  // Unselected columns of the active row: pre-charge fight plus the tiny
  // dynamic disturbance of the stressed cells themselves.
  const double background =
      static_cast<double>(cols_ - word_width_) *
      (p_a() + tech_.e_cell_res_dynamic());
  return peripheral_per_cycle() +
         w * (tech_.e_sense_amp_per_bit + tech_.e_data_io_per_bit +
              tech_.e_read_restore() + tech_.e_cell_res_dynamic()) +
         background;
}

double AnalyticModel::pw() const {
  const double w = static_cast<double>(word_width_);
  const double background =
      static_cast<double>(cols_ - word_width_) *
      (p_a() + tech_.e_cell_res_dynamic());
  return peripheral_per_cycle() +
         w * (tech_.e_write_driver_per_bit + tech_.e_data_io_per_bit +
              tech_.e_write_restore()) +
         background;
}

double AnalyticModel::pf(const AlgorithmCounts& counts) const {
  counts.validate();
  return (static_cast<double>(counts.reads) * pr() +
          static_cast<double>(counts.writes) * pw()) /
         static_cast<double>(counts.operations);
}

double AnalyticModel::plpt_paper(const AlgorithmCounts& counts) const {
  counts.validate();
  const double saving =
      static_cast<double>(cols_ - 2 * word_width_) * p_a() -
      (static_cast<double>(counts.elements) /
       static_cast<double>(counts.operations)) *
          p_b();
  return pf(counts) - saving;
}

double AnalyticModel::row_transition_period_cycles(int ops_per_element) const {
  SRAMLP_REQUIRE(ops_per_element > 0, "element needs operations");
  return static_cast<double>(ops_per_element) *
         static_cast<double>(cols_ / word_width_);
}

double AnalyticModel::row_transition_rate(
    const AlgorithmCounts& counts) const {
  counts.validate();
  // Per element e: rows transitions over rows * (cols/w) * ops_e cycles.
  // Aggregated over the test: #elm / ((cols/w) * #ops).
  return static_cast<double>(counts.elements) /
         (static_cast<double>(cols_ / word_width_) *
          static_cast<double>(counts.operations));
}

double AnalyticModel::plpt(const AlgorithmCounts& counts) const {
  counts.validate();
  const double rate = row_transition_rate(counts);
  const double w = static_cast<double>(word_width_);
  const double elm_per_op = static_cast<double>(counts.elements) /
                            static_cast<double>(counts.operations);

  // Removed: background RES on all but the selected and follower groups.
  const double removed =
      static_cast<double>(cols_ - 2 * word_width_) * p_a();

  // Added back, per cycle:
  //  * row-transition restore — one near-full bit-line recharge per column,
  //    once per transition: rate * cols * P_B = (#elm/#ops) * w * P_B,
  const double row_restore = rate * static_cast<double>(cols_) * p_b();
  //  * the follower group's pre-charge recharging its decayed bit-lines,
  //    once per address advance (advances happen at the same aggregate rate
  //    #elm/#ops as the paper's transition bookkeeping),
  const double follower_recharge = elm_per_op * w * p_b();
  //  * one LPtest line charge+discharge per transition,
  const double lptest = rate * tech_.e_lptest_driver(cols_);
  //  * background RES during the single functional restore cycle,
  const double restore_cycle_res =
      rate * static_cast<double>(cols_ - word_width_) * p_a();
  //  * one control element switching per column-group advance.
  const double ctrl = w * tech_.e_control_element_switch();

  return pf(counts) - removed + row_restore + follower_recharge + lptest +
         restore_cycle_res + ctrl;
}

double AnalyticModel::prr_paper(const AlgorithmCounts& counts) const {
  const double f = pf(counts);
  return f > 0.0 ? 1.0 - plpt_paper(counts) / f : 0.0;
}

double AnalyticModel::prr(const AlgorithmCounts& counts) const {
  const double f = pf(counts);
  return f > 0.0 ? 1.0 - plpt(counts) / f : 0.0;
}

}  // namespace sramlp::power
