#include "power/technology.h"

#include <cmath>

#include "util/error.h"

namespace sramlp::power {

double TechnologyParams::decayed_voltage(double v0, double cycles) const {
  SRAMLP_REQUIRE(cycles >= 0.0, "cannot decay backwards in time");
  return v0 * std::exp(-cycles / decay_tau_cycles);
}

double TechnologyParams::cycles_to_discharge() const {
  return -decay_tau_cycles * std::log(discharged_threshold);
}

void TechnologyParams::validate() const {
  SRAMLP_REQUIRE(vdd > 0.0, "vdd must be positive");
  SRAMLP_REQUIRE(clock_period > 0.0, "clock period must be positive");
  SRAMLP_REQUIRE(c_bitline > 0.0 && c_cellnode > 0.0,
                 "capacitances must be positive");
  SRAMLP_REQUIRE(read_swing > 0.0 && read_swing < vdd,
                 "read swing must lie inside the rail");
  SRAMLP_REQUIRE(res_fight_current > 0.0, "fight current must be positive");
  SRAMLP_REQUIRE(decay_tau_cycles > 0.0, "decay constant must be positive");
  SRAMLP_REQUIRE(discharged_threshold > 0.0 && discharged_threshold < 1.0,
                 "threshold must be a fraction of VDD");
}

}  // namespace sramlp::power
