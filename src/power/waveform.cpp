#include "power/waveform.h"

#include "util/error.h"

namespace sramlp::power {

namespace {

/// Machine-friendly column identifiers, in EnergySource enum order (the
/// human-readable info() names carry spaces and parentheses).
constexpr const char* kColumnNames[kEnergySourceCount] = {
    "precharge_res_fight",    "precharge_restore_read",
    "precharge_restore_write", "precharge_next_column",
    "row_transition_restore", "cell_res",
    "bitline_decay_stress",   "lptest_driver",
    "control_logic",          "wordline",
    "decoder",                "address_bus",
    "clock_tree",             "memory_control",
    "sense_amp",              "write_driver",
    "data_io"};
static_assert(kEnergySourceCount == 17,
              "new EnergySource: add its waveform column name above");

const char* column_name(EnergySource source) {
  return kColumnNames[static_cast<std::size_t>(source)];
}

}  // namespace

WaveformWriter::WaveformWriter(const std::string& path, WaveformFormat format)
    : format_(format) {
  file_ = std::fopen(path.c_str(), "w");
  SRAMLP_REQUIRE(file_ != nullptr,
                 "cannot open waveform output file: " + path);
  if (format_ == WaveformFormat::kCsv) {
    std::fputs("run,cycle,span,supply_j", file_);
    for (std::size_t i = 0; i < kEnergySourceCount; ++i)
      std::fprintf(file_, ",%s",
                   column_name(static_cast<EnergySource>(i)));
    std::fputc('\n', file_);
  }
}

WaveformWriter::~WaveformWriter() {
  finish();
  if (file_ != nullptr) std::fclose(file_);
}

void WaveformWriter::on_add(EnergySource source, double joules,
                            std::uint64_t count, std::uint64_t cycle) {
  if (joules == 0.0 || count == 0) return;
  if (first_event_seen_ && cycle < last_cycle_) {
    // The meter's cycle counter restarted: a new run began.
    flush_record();
    ++run_;
  }
  first_event_seen_ = true;
  last_cycle_ = cycle;
  if (have_pending_ && pending_cycle_ != cycle) flush_record();
  if (!have_pending_) {
    have_pending_ = true;
    pending_cycle_ = cycle;
    pending_span_ = 1;
    for (double& v : pending_) v = 0.0;
  }
  // Repeated addition, matching the meter's accumulation identity.
  double& slot = pending_[static_cast<std::size_t>(source)];
  for (std::uint64_t i = 0; i < count; ++i) slot += joules;
}

void WaveformWriter::on_spread(EnergySource source, double joules,
                               std::uint64_t first_cycle,
                               std::uint64_t cycles) {
  if (joules == 0.0 || cycles == 0) return;
  if (first_event_seen_ && first_cycle < last_cycle_) {
    flush_record();
    ++run_;
  }
  first_event_seen_ = true;
  last_cycle_ = first_cycle + cycles;
  // One record per idle block; consecutive spreads over the same block
  // (clock + control) merge.
  if (have_pending_ &&
      !(pending_cycle_ == first_cycle && pending_span_ == cycles))
    flush_record();
  if (!have_pending_) {
    have_pending_ = true;
    pending_cycle_ = first_cycle;
    pending_span_ = cycles;
    for (double& v : pending_) v = 0.0;
  }
  pending_[static_cast<std::size_t>(source)] += joules;
}

void WaveformWriter::finish() {
  flush_record();
  if (file_ != nullptr) std::fflush(file_);
}

void WaveformWriter::flush_record() {
  if (!have_pending_) return;
  have_pending_ = false;
  write_record(pending_cycle_, pending_span_, pending_);
}

void WaveformWriter::write_record(std::uint64_t cycle, std::uint64_t span,
                                  const double* slots) {
  double supply = 0.0;
  for (std::size_t i = 0; i < kEnergySourceCount; ++i)
    if (info(static_cast<EnergySource>(i)).supply_drawn) supply += slots[i];
  if (format_ == WaveformFormat::kCsv) {
    std::fprintf(file_, "%llu,%llu,%llu,%.17g",
                 static_cast<unsigned long long>(run_),
                 static_cast<unsigned long long>(cycle),
                 static_cast<unsigned long long>(span), supply);
    for (std::size_t i = 0; i < kEnergySourceCount; ++i)
      std::fprintf(file_, ",%.17g", slots[i]);
    std::fputc('\n', file_);
  } else {
    std::fprintf(file_,
                 "{\"run\":%llu,\"cycle\":%llu,\"span\":%llu,"
                 "\"supply_j\":%.17g",
                 static_cast<unsigned long long>(run_),
                 static_cast<unsigned long long>(cycle),
                 static_cast<unsigned long long>(span), supply);
    for (std::size_t i = 0; i < kEnergySourceCount; ++i)
      std::fprintf(file_, ",\"%s\":%.17g",
                   column_name(static_cast<EnergySource>(i)), slots[i]);
    std::fputs("}\n", file_);
  }
  ++records_;
}

}  // namespace sramlp::power
