// Technology operating point and derived per-event energies.
//
// All event energies the cycle simulator charges to the EnergyMeter derive
// from this one parameter set.  The default preset reproduces the paper's
// experimental setup: 0.13 um, VDD = 1.6 V, 3 ns clock, 512x512 array.
//
// Calibration notes (see DESIGN.md §5):
//  * res_fight_current is the steady current a '0'-storing cell sinks from a
//    live pre-charge keeper during a Read Equivalent Stress; the device-level
//    fixture in circuit/subcircuits.h measures the same quantity and an
//    integration test keeps the two consistent.
//  * decay_tau_cycles makes a floating bit-line cross the logic-0 threshold
//    in ~9 clock cycles, matching the paper's Fig. 6.
//  * the peripheral energies put the unselected-column pre-charge activity
//    at ~50 % of functional-mode test power, consistent with the paper's
//    measured ~50 % PRR and the 70-80 % total pre-charge share it cites.
#pragma once

#include <cstddef>

namespace sramlp::power {

/// Process / design-point parameters plus derived per-event energies.
struct TechnologyParams {
  // --- operating point -------------------------------------------------
  double vdd = 1.6;           ///< supply [V]
  double clock_period = 3e-9; ///< cycle time [s]

  // --- array electricals -----------------------------------------------
  double c_bitline = 300e-15;          ///< bit-line capacitance [F]
  double c_cellnode = 2e-15;           ///< cell internal node capacitance [F]
  double c_wordline_per_column = 1e-15;///< word-line load per column [F]
  double read_swing = 0.4;             ///< bit-line swing sensed on read [V]
  double res_fight_current = 26e-6;    ///< RES fight current [A] (sets P_A)
  double decay_tau_cycles = 3.0;       ///< floating-BL decay constant [cycles]
  double discharged_threshold = 0.05;  ///< fraction of VDD treated as logic 0

  // --- peripheral event energies [J] -----------------------------------
  double e_decoder_per_address_bit = 0.4e-12;
  double e_addressbus_per_bit = 0.4e-12;
  double e_clock_tree = 6e-12;
  double e_sense_amp_per_bit = 3e-12;
  double e_write_driver_per_bit = 5e-12;
  double e_data_io_per_bit = 4e-12;
  double e_control_base = 1.5e-12;     ///< memory control FSM, per cycle

  // --- modified pre-charge control logic --------------------------------
  /// Load switched by one control element; ~3 orders below a bit-line.
  double c_control_element = 0.5e-15;

  /// The paper's experimental technology.
  static TechnologyParams tech_0p13um() { return {}; }

  // --- derived event energies -------------------------------------------

  /// Paper P_A x T: supply energy one pre-charge circuit spends feeding a
  /// full RES for one cycle (fight current flows during the WL-high half).
  double e_res_fight_per_cycle() const {
    return vdd * res_fight_current * 0.5 * clock_period;
  }

  /// Dynamic energy of the cell's internal nodes bouncing during one RES.
  /// The disturbed node rises to roughly read_swing/2.
  double e_cell_res_dynamic() const {
    const double dv = 0.5 * read_swing;
    return c_cellnode * dv * dv;
  }

  /// Selected-column bit-line restore after a read (swing only).
  double e_read_restore() const { return c_bitline * vdd * read_swing; }

  /// Selected-column bit-line restore after a write (full rail).
  double e_write_restore() const { return c_bitline * vdd * vdd; }

  /// Recharging one bit-line from @p v_from back to VDD.
  double e_bitline_restore_from(double v_from) const {
    const double dv = vdd - v_from;
    return dv > 0.0 ? c_bitline * vdd * dv : 0.0;
  }

  /// Word-line swing energy for a row of @p columns cells.
  double e_wordline(std::size_t columns) const {
    return c_wordline_per_column * static_cast<double>(columns) * vdd * vdd;
  }

  /// LPtest line: same equivalent capacitance as a word line (paper §5.3).
  double e_lptest_driver(std::size_t columns) const {
    return e_wordline(columns);
  }

  /// One modified pre-charge control element switching once.
  double e_control_element_switch() const {
    return c_control_element * vdd * vdd;
  }

  /// Voltage of a floating bit-line @p cycles after its pre-charge switched
  /// off, starting from @p v0 (discharged through the cell, Fig. 6a).
  double decayed_voltage(double v0, double cycles) const;

  /// Cycles for a floating bit-line to fall from VDD below the logic-0
  /// threshold (paper Fig. 6: "nearly nine clock cycles").
  double cycles_to_discharge() const;

  /// Basic sanity checks; throws sramlp::Error when violated.
  void validate() const;
};

}  // namespace sramlp::power
