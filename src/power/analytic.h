// The paper's §5 closed-form power model.
//
// Implements, symbol for symbol:
//
//   PF   = (#read * Pr + #write * Pw) / #operations
//   PLPT = PF - [ (#col - 2) * P_A  -  (#elm / #operations) * P_B ]
//   PRR  = 1 - PLPT / PF
//   F(row transition) = 1 / (#March-element-operations * #memory-columns)
//
// plus a refined variant that also carries the second-order terms the paper
// argues are negligible (LPtest line driver, the full-array RES during the
// one functional restore cycle, control-element switching), so the benches
// can show that they are indeed negligible.  The same per-event energies
// feed the cycle-accurate simulator, and an integration test checks that
// the two agree.
//
// The model is generalised over the word width w (paper §6 future work,
// word-oriented memories): a word access activates w columns, the LP mode
// pre-charges 2w columns, and the saving becomes (#col - 2w) * P_A.
#pragma once

#include <cstddef>
#include <string>

#include "power/technology.h"

namespace sramlp::power {

/// March-algorithm statistics consumed by the model (the columns of the
/// paper's Table 1).  reads + writes must equal operations.
struct AlgorithmCounts {
  std::string name;
  int elements = 0;    ///< #elm  — March elements
  int operations = 0;  ///< #oper — total operations over all elements
  int reads = 0;       ///< #read
  int writes = 0;      ///< #write

  void validate() const;
};

/// Closed-form evaluation of PF / PLPT / PRR for one array organisation.
class AnalyticModel {
 public:
  /// @param word_width columns activated per access (1 = bit-oriented).
  AnalyticModel(const TechnologyParams& tech, std::size_t rows,
                std::size_t cols, std::size_t word_width = 1);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t word_width() const { return word_width_; }
  const TechnologyParams& tech() const { return tech_; }

  /// Paper P_A: supply energy of one pre-charge circuit feeding one RES for
  /// one cycle [J/cycle].
  double p_a() const { return tech_.e_res_fight_per_cycle(); }

  /// Paper P_B: energy of one column restoration at a row transition [J].
  /// One of the two bit-lines of each column has been driven to ~0 by the
  /// indirectly-selected cells ("half of all the bit lines in the array"),
  /// so restoring a column costs one full-rail recharge: C_BL * VDD^2.
  /// With the transition rate #elm/(#ops * #cols), the amortised per-cycle
  /// cost is exactly the paper's (#elm/#ops) * P_B term.
  double p_b() const { return tech_.e_write_restore(); }

  /// Periphery active every cycle regardless of operation type [J/cycle].
  double peripheral_per_cycle() const;

  /// Energy of one idle cycle (March "Del" pauses): word lines low, only
  /// the clock tree and the control FSM burn energy [J/cycle].
  double idle_energy_per_cycle() const;

  /// Energy of one read / write cycle in functional test mode, including
  /// the (cols - w) background RES columns [J].
  double pr() const;
  double pw() const;

  /// Average functional-test-mode energy per cycle for an algorithm [J].
  double pf(const AlgorithmCounts& counts) const;

  /// PLPT using the paper's formula verbatim.
  double plpt_paper(const AlgorithmCounts& counts) const;

  /// PLPT including the second-order terms (LPtest driver, restore-cycle
  /// background RES, control-element switching).
  double plpt(const AlgorithmCounts& counts) const;

  /// Power Reduction Ratio 1 - PLPT/PF for each variant.
  double prr_paper(const AlgorithmCounts& counts) const;
  double prr(const AlgorithmCounts& counts) const;

  /// Mean cycles between row transitions: #operations * (#cols / w) /
  /// #elements-weighted — the paper's examples: 512 cycles for a one-op
  /// element, 2048 for a four-op element (512 columns, w = 1).
  double row_transition_period_cycles(int ops_per_element) const;

  /// Row-transition rate for a whole algorithm [transitions/cycle].
  double row_transition_rate(const AlgorithmCounts& counts) const;

 private:
  TechnologyParams tech_;
  std::size_t rows_;
  std::size_t cols_;
  std::size_t word_width_;
};

}  // namespace sramlp::power
