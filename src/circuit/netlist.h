// Netlist container for the switch-level transient simulator.
//
// A Circuit is a set of capacitive nodes connected by branches (resistors
// and MOSFETs).  Nodes are either free (their voltage integrates I/C) or
// fixed (rails and driven signals; their voltage follows a schedule).
// The TransientSim in transient.h integrates the network.
#pragma once

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

#include "circuit/mos.h"

namespace sramlp::circuit {

/// Index of a node within its Circuit.
using NodeId = std::size_t;

/// Piecewise-linear voltage schedule for driven (fixed) nodes.
/// Points must be added in non-decreasing time order; the value is held
/// constant before the first and after the last point.
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;
  /// Constant schedule.
  explicit PiecewiseLinear(double constant) { add(0.0, constant); }

  /// Append a (time, value) breakpoint.
  void add(double time_s, double volts);

  /// Value at @p time_s with linear interpolation between breakpoints.
  double at(double time_s) const;

  bool empty() const { return points_.empty(); }

 private:
  struct Point {
    double t;
    double v;
  };
  std::vector<Point> points_;
};

/// Builds a square-ish digital waveform: starts at @p v0, then at each entry
/// of @p edges toggles to the other rail with a linear slew of @p slew_s.
PiecewiseLinear make_square_wave(double v0, double v1,
                                 const std::vector<double>& edges,
                                 double slew_s);

/// Ideal linear resistor between nodes a and b.
struct Resistor {
  NodeId a;
  NodeId b;
  double conductance;  ///< 1/ohms
};

/// MOSFET branch; current flows between drain and source as a function of
/// the three terminal voltages (see mos.h).
struct Mosfet {
  MosType type;
  NodeId gate;
  NodeId drain;
  NodeId source;
  MosParams params;
};

/// A branch is one of the supported two/three-terminal elements.
using BranchElement = std::variant<Resistor, Mosfet>;

/// Named branch with its accumulated dissipation (filled by the simulator).
struct Branch {
  std::string name;
  BranchElement element;
};

/// One electrical node.
struct Node {
  std::string name;
  double capacitance = 0.0;  ///< farads; ignored for fixed nodes
  double v0 = 0.0;           ///< initial voltage
  bool fixed = false;        ///< true for rails / driven signals
  PiecewiseLinear schedule;  ///< drive waveform when fixed
};

/// Mutable netlist.  All add_* methods return ids/indices for probing.
class Circuit {
 public:
  /// Free node with capacitance @p cap_f, initial voltage @p v0.
  NodeId add_node(std::string name, double cap_f, double v0 = 0.0);

  /// Fixed node pinned at @p volts forever (power/ground rail).
  NodeId add_rail(std::string name, double volts);

  /// Fixed node following @p schedule (digital control signal).
  NodeId add_signal(std::string name, PiecewiseLinear schedule);

  std::size_t add_resistor(std::string name, NodeId a, NodeId b, double ohms);
  std::size_t add_nmos(std::string name, NodeId gate, NodeId drain,
                       NodeId source, const MosParams& params);
  std::size_t add_pmos(std::string name, NodeId gate, NodeId drain,
                       NodeId source, const MosParams& params);

  /// CMOS transmission gate = NMOS + PMOS in parallel with complementary
  /// gate signals. Returns the index of the NMOS half (PMOS is next).
  std::size_t add_transmission_gate(const std::string& name, NodeId ctrl,
                                    NodeId ctrl_n, NodeId a, NodeId b,
                                    const MosParams& nmos_params,
                                    const MosParams& pmos_params);

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Branch>& branches() const { return branches_; }

  /// Look up a node id by name; throws if absent.
  NodeId node(const std::string& name) const;

 private:
  NodeId add_node_impl(Node node);

  std::vector<Node> nodes_;
  std::vector<Branch> branches_;
};

}  // namespace sramlp::circuit
