// Waveform storage and analysis.
//
// The transient simulator records node voltages (and derived powers) into
// Waveform objects; benches and tests then ask questions such as "when does
// the bit-line cross 5 % of VDD?" (paper Fig. 6: ~9 clock cycles).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace sramlp::circuit {

/// A uniformly- or non-uniformly-sampled scalar signal over time.
class Waveform {
 public:
  Waveform() = default;
  explicit Waveform(std::string name) : name_(std::move(name)) {}

  void append(double time_s, double value) {
    time_.push_back(time_s);
    value_.push_back(value);
  }

  const std::string& name() const { return name_; }
  std::size_t size() const { return time_.size(); }
  bool empty() const { return time_.empty(); }
  const std::vector<double>& times() const { return time_; }
  const std::vector<double>& values() const { return value_; }

  /// Linear interpolation at @p time_s; clamps outside the record.
  double at(double time_s) const;

  /// First time the signal crosses @p threshold in the given direction
  /// (rising: from below to >=; falling: from above to <=), searching from
  /// @p from_time. Returns nullopt if it never does.
  std::optional<double> time_of_crossing(double threshold, bool rising,
                                         double from_time = 0.0) const;

  double front_value() const;
  double back_value() const;
  double min_value() const;
  double max_value() const;

  /// Trapezoidal integral of the signal over its whole record
  /// (e.g. power -> energy).
  double integral() const;

 private:
  std::string name_;
  std::vector<double> time_;
  std::vector<double> value_;
};

/// Write a set of waveforms sharing a time base to CSV ("time,sig1,sig2,...").
/// All waveforms are resampled onto the first one's time points via at().
std::string to_csv(const std::vector<const Waveform*>& waves);

}  // namespace sramlp::circuit
