#include "circuit/netlist.h"

#include "util/error.h"

namespace sramlp::circuit {

void PiecewiseLinear::add(double time_s, double volts) {
  SRAMLP_REQUIRE(points_.empty() || time_s >= points_.back().t,
                 "schedule breakpoints must be time-ordered");
  points_.push_back({time_s, volts});
}

double PiecewiseLinear::at(double time_s) const {
  SRAMLP_REQUIRE(!points_.empty(), "empty schedule sampled");
  if (time_s <= points_.front().t) return points_.front().v;
  if (time_s >= points_.back().t) return points_.back().v;
  // Linear scan; schedules are short (a handful of edges).
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (time_s <= points_[i].t) {
      const Point& p0 = points_[i - 1];
      const Point& p1 = points_[i];
      if (p1.t <= p0.t) return p1.v;  // coincident breakpoints: step
      const double f = (time_s - p0.t) / (p1.t - p0.t);
      return p0.v + f * (p1.v - p0.v);
    }
  }
  return points_.back().v;
}

PiecewiseLinear make_square_wave(double v0, double v1,
                                 const std::vector<double>& edges,
                                 double slew_s) {
  PiecewiseLinear pl;
  double current = v0;
  pl.add(0.0, current);
  for (double t : edges) {
    const double next = (current == v0) ? v1 : v0;
    pl.add(t, current);
    pl.add(t + slew_s, next);
    current = next;
  }
  return pl;
}

NodeId Circuit::add_node_impl(Node node) {
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

NodeId Circuit::add_node(std::string name, double cap_f, double v0) {
  SRAMLP_REQUIRE(cap_f > 0.0, "free nodes need positive capacitance");
  Node n;
  n.name = std::move(name);
  n.capacitance = cap_f;
  n.v0 = v0;
  return add_node_impl(std::move(n));
}

NodeId Circuit::add_rail(std::string name, double volts) {
  Node n;
  n.name = std::move(name);
  n.v0 = volts;
  n.fixed = true;
  n.schedule = PiecewiseLinear(volts);
  return add_node_impl(std::move(n));
}

NodeId Circuit::add_signal(std::string name, PiecewiseLinear schedule) {
  SRAMLP_REQUIRE(!schedule.empty(), "signal node needs a schedule");
  Node n;
  n.name = std::move(name);
  n.v0 = schedule.at(0.0);
  n.fixed = true;
  n.schedule = std::move(schedule);
  return add_node_impl(std::move(n));
}

std::size_t Circuit::add_resistor(std::string name, NodeId a, NodeId b,
                                  double ohms) {
  SRAMLP_REQUIRE(ohms > 0.0, "resistance must be positive");
  SRAMLP_REQUIRE(a < nodes_.size() && b < nodes_.size(), "bad node id");
  branches_.push_back({std::move(name), Resistor{a, b, 1.0 / ohms}});
  return branches_.size() - 1;
}

std::size_t Circuit::add_nmos(std::string name, NodeId gate, NodeId drain,
                              NodeId source, const MosParams& params) {
  SRAMLP_REQUIRE(gate < nodes_.size() && drain < nodes_.size() &&
                     source < nodes_.size(),
                 "bad node id");
  branches_.push_back(
      {std::move(name), Mosfet{MosType::kNmos, gate, drain, source, params}});
  return branches_.size() - 1;
}

std::size_t Circuit::add_pmos(std::string name, NodeId gate, NodeId drain,
                              NodeId source, const MosParams& params) {
  SRAMLP_REQUIRE(gate < nodes_.size() && drain < nodes_.size() &&
                     source < nodes_.size(),
                 "bad node id");
  branches_.push_back(
      {std::move(name), Mosfet{MosType::kPmos, gate, drain, source, params}});
  return branches_.size() - 1;
}

std::size_t Circuit::add_transmission_gate(const std::string& name,
                                           NodeId ctrl, NodeId ctrl_n,
                                           NodeId a, NodeId b,
                                           const MosParams& nmos_params,
                                           const MosParams& pmos_params) {
  const std::size_t idx = add_nmos(name + ".n", ctrl, a, b, nmos_params);
  add_pmos(name + ".p", ctrl_n, a, b, pmos_params);
  return idx;
}

NodeId Circuit::node(const std::string& name) const {
  for (NodeId i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].name == name) return i;
  throw Error("no node named '" + name + "'");
}

}  // namespace sramlp::circuit
