#include "circuit/subcircuits.h"

#include <string>

#include "util/error.h"

namespace sramlp::circuit {

namespace {

/// Node voltages for a stored value following the paper's Fig. 5 convention:
/// value '1' => S = 0 V, SB = VDD.
struct CellInit {
  double s;
  double sb;
};

CellInit cell_init(bool value, double vdd) {
  return value ? CellInit{0.0, vdd} : CellInit{vdd, 0.0};
}

/// Wire one 6T cell: cross-coupled inverters plus two access devices.
void add_cell(Circuit& c, const std::string& prefix, NodeId vdd, NodeId gnd,
              NodeId wl, NodeId bl, NodeId blb, NodeId s, NodeId sb,
              const DeviceLibrary& d) {
  // Inverter driving S (input SB).
  c.add_pmos(prefix + ".pu_s", sb, s, vdd, d.cell_pullup);
  c.add_nmos(prefix + ".pd_s", sb, s, gnd, d.cell_pulldown);
  // Inverter driving SB (input S).
  c.add_pmos(prefix + ".pu_sb", s, sb, vdd, d.cell_pullup);
  c.add_nmos(prefix + ".pd_sb", s, sb, gnd, d.cell_pulldown);
  // Access transistors.
  c.add_nmos(prefix + ".ax_bl", wl, bl, s, d.cell_access);
  c.add_nmos(prefix + ".ax_blb", wl, blb, sb, d.cell_access);
}

}  // namespace

ColumnFixture build_column_fixture(const ColumnConfig& config) {
  SRAMLP_REQUIRE(config.handover_cycle > 0.0 &&
                     config.handover_cycle < config.cycles,
                 "hand-over must fall inside the simulated window");
  ColumnFixture f;
  Circuit& c = f.circuit;
  const double vdd = config.vdd;
  const double tck = config.clock_period;
  f.t_end = config.cycles * tck;

  f.vdd_cell = c.add_rail("vdd_cell", vdd);
  f.vdd_pre = c.add_rail("vdd_pre", vdd);
  f.gnd = c.add_rail("gnd", 0.0);

  // Bit-lines start pre-charged at VDD (functional-mode hand-off state).
  f.bl = c.add_node("bl", config.c_bitline, vdd);
  f.blb = c.add_node("blb", config.c_bitline, vdd);

  const CellInit i0 = cell_init(config.cell0_value, vdd);
  const CellInit i1 = cell_init(config.cell1_value, vdd);
  f.s0 = c.add_node("s0", config.c_cellnode, i0.s);
  f.sb0 = c.add_node("sb0", config.c_cellnode, i0.sb);
  f.s1 = c.add_node("s1", config.c_cellnode, i1.s);
  f.sb1 = c.add_node("sb1", config.c_cellnode, i1.sb);

  const double t_handover = config.handover_cycle * tck;

  // Word lines: WLi high from t=0 until hand-over, WLi+1 high afterwards.
  PiecewiseLinear wl0;
  wl0.add(0.0, vdd);
  wl0.add(t_handover, vdd);
  wl0.add(t_handover + config.slew, 0.0);
  PiecewiseLinear wl1;
  wl1.add(0.0, 0.0);
  wl1.add(t_handover + config.slew, 0.0);
  wl1.add(t_handover + 2 * config.slew, vdd);
  const NodeId wl0_id = c.add_signal("wl0", std::move(wl0));
  const NodeId wl1_id = c.add_signal("wl1", std::move(wl1));

  // Pre-charge enable (active low).
  PiecewiseLinear npr;
  switch (config.scenario) {
    case PrechargeScenario::kAlwaysOn:
      npr.add(0.0, 0.0);
      break;
    case PrechargeScenario::kAlwaysOff:
      npr.add(0.0, vdd);
      break;
    case PrechargeScenario::kRestoreAtHandover:
      // Functional mode restored for the clock cycle preceding the
      // hand-over (the "last operation on the last cell of the row").
      npr.add(0.0, vdd);
      npr.add(t_handover - tck, vdd);
      npr.add(t_handover - tck + config.slew, 0.0);
      npr.add(t_handover, 0.0);
      npr.add(t_handover + config.slew, vdd);
      break;
  }
  const NodeId npr_id = c.add_signal("npr", std::move(npr));

  // Pre-charge unit: two pull-up PMOS plus an equalizer between BL and BLB.
  c.add_pmos("pre.bl", npr_id, f.bl, f.vdd_pre, config.devices.precharge_pmos);
  c.add_pmos("pre.blb", npr_id, f.blb, f.vdd_pre,
             config.devices.precharge_pmos);
  c.add_pmos("pre.eq", npr_id, f.bl, f.blb, config.devices.equalizer_pmos);

  add_cell(c, "cell0", f.vdd_cell, f.gnd, wl0_id, f.bl, f.blb, f.s0, f.sb0,
           config.devices);
  add_cell(c, "cell1", f.vdd_cell, f.gnd, wl1_id, f.bl, f.blb, f.s1, f.sb1,
           config.devices);
  return f;
}

PassFixture build_pass_fixture(PassDevice device, bool rising_edge,
                               double c_load, const DeviceLibrary& devices,
                               double vdd) {
  PassFixture f;
  Circuit& c = f.circuit;
  f.edge_time = 1e-9;
  f.t_end = 6e-9;

  const NodeId on = c.add_rail("ctrl_on", vdd);
  const NodeId off = c.add_rail("ctrl_off", 0.0);

  PiecewiseLinear in;
  const double v_from = rising_edge ? 0.0 : vdd;
  const double v_to = rising_edge ? vdd : 0.0;
  in.add(0.0, v_from);
  in.add(f.edge_time, v_from);
  in.add(f.edge_time + 50e-12, v_to);
  f.in = c.add_signal("in", std::move(in));

  f.out = c.add_node("out", c_load, v_from);

  if (device == PassDevice::kTransmissionGate) {
    c.add_transmission_gate("tg", on, off, f.in, f.out, devices.logic_nmos,
                            devices.logic_pmos);
  } else {
    c.add_nmos("pass", on, f.in, f.out, devices.logic_nmos);
  }
  return f;
}

}  // namespace sramlp::circuit
