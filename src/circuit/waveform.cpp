#include "circuit/waveform.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace sramlp::circuit {

double Waveform::at(double time_s) const {
  SRAMLP_REQUIRE(!time_.empty(), "empty waveform sampled");
  if (time_s <= time_.front()) return value_.front();
  if (time_s >= time_.back()) return value_.back();
  const auto it = std::lower_bound(time_.begin(), time_.end(), time_s);
  const std::size_t hi = static_cast<std::size_t>(it - time_.begin());
  const std::size_t lo = hi - 1;
  const double span = time_[hi] - time_[lo];
  if (span <= 0.0) return value_[hi];
  const double f = (time_s - time_[lo]) / span;
  return value_[lo] + f * (value_[hi] - value_[lo]);
}

std::optional<double> Waveform::time_of_crossing(double threshold, bool rising,
                                                 double from_time) const {
  for (std::size_t i = 1; i < time_.size(); ++i) {
    if (time_[i] < from_time) continue;
    const double a = value_[i - 1];
    const double b = value_[i];
    const bool crossed =
        rising ? (a < threshold && b >= threshold)
               : (a > threshold && b <= threshold);
    if (!crossed) continue;
    const double dv = b - a;
    if (dv == 0.0) return time_[i];
    const double f = (threshold - a) / dv;
    return time_[i - 1] + f * (time_[i] - time_[i - 1]);
  }
  return std::nullopt;
}

double Waveform::front_value() const {
  SRAMLP_REQUIRE(!value_.empty(), "empty waveform");
  return value_.front();
}

double Waveform::back_value() const {
  SRAMLP_REQUIRE(!value_.empty(), "empty waveform");
  return value_.back();
}

double Waveform::min_value() const {
  SRAMLP_REQUIRE(!value_.empty(), "empty waveform");
  return *std::min_element(value_.begin(), value_.end());
}

double Waveform::max_value() const {
  SRAMLP_REQUIRE(!value_.empty(), "empty waveform");
  return *std::max_element(value_.begin(), value_.end());
}

double Waveform::integral() const {
  double acc = 0.0;
  for (std::size_t i = 1; i < time_.size(); ++i)
    acc += 0.5 * (value_[i] + value_[i - 1]) * (time_[i] - time_[i - 1]);
  return acc;
}

std::string to_csv(const std::vector<const Waveform*>& waves) {
  SRAMLP_REQUIRE(!waves.empty() && !waves.front()->empty(),
                 "need at least one non-empty waveform");
  std::ostringstream out;
  out << "time";
  for (const Waveform* w : waves) out << ',' << w->name();
  out << '\n';
  const auto& base = waves.front()->times();
  out.precision(9);
  for (double t : base) {
    out << t;
    for (const Waveform* w : waves) out << ',' << w->at(t);
    out << '\n';
  }
  return out.str();
}

}  // namespace sramlp::circuit
