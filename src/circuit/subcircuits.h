// Prebuilt device-level fixtures reproducing the paper's Spice setups.
//
// * build_column_fixture — paper Fig. 5: two 6T cells sharing one column
//   (bit-line pair + pre-charge unit).  Drives word lines so that cell
//   C(i,j) is selected first and C(i+1,j) afterwards.  Depending on the
//   configuration the pre-charge is kept on (functional-mode RES fight),
//   kept off (low-power test mode: floating bit-line discharge, Fig. 6),
//   or pulsed on at the row hand-over (the paper's Fig. 7 restore fix).
//
// * build_pass_fixture — the §4 design-choice experiment: a control edge
//   propagating through either a full CMOS transmission gate or a single
//   NMOS pass transistor into the pre-charge control load, to show why the
//   paper picks the transmission gate (symmetric, full-swing transitions).
//
// Voltage convention follows the paper's Fig. 5 text exactly: a cell
// "storing 1" has node S at 0 V and node SB at VDD.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/netlist.h"

namespace sramlp::circuit {

/// Device parameter set shared by all fixtures (square-law k = k' W/L).
/// Values are sized for a 0.13 um / 1.6 V design point such that a floating
/// 300 fF bit-line discharges through a cell in ~9 cycles of 3 ns, matching
/// the paper's Fig. 6.
struct DeviceLibrary {
  MosParams cell_pulldown{0.35, 120e-6};
  MosParams cell_pullup{0.35, 40e-6};
  MosParams cell_access{0.35, 54e-6};
  MosParams precharge_pmos{0.35, 800e-6};
  MosParams equalizer_pmos{0.35, 400e-6};
  MosParams logic_nmos{0.35, 300e-6};
  MosParams logic_pmos{0.35, 150e-6};

  /// The default 0.13 um library used throughout the reproduction.
  static DeviceLibrary tech_0p13um() { return {}; }
};

/// Pre-charge behaviour during the two-cell column experiment.
enum class PrechargeScenario {
  kAlwaysOn,          ///< functional mode: RES fight for the whole window
  kAlwaysOff,         ///< LP test mode, no restore: Fig. 6a/6b/6c behaviour
  kRestoreAtHandover  ///< LP test mode + one-cycle restore (Fig. 7 fix)
};

/// Configuration of the Fig. 5 column fixture.
struct ColumnConfig {
  double vdd = 1.6;             ///< [V]
  double clock_period = 3e-9;   ///< [s]
  double c_bitline = 300e-15;   ///< [F] per bit-line
  double c_cellnode = 2e-15;    ///< [F] per internal cell node
  DeviceLibrary devices = DeviceLibrary::tech_0p13um();
  bool cell0_value = true;      ///< C(i,j)   stores '1' (S=0, SB=VDD), Fig. 5
  bool cell1_value = false;     ///< C(i+1,j) stores '0'
  PrechargeScenario scenario = PrechargeScenario::kAlwaysOff;
  double handover_cycle = 10.0; ///< WLi drops / WLi+1 rises at this cycle
  double cycles = 14.0;         ///< total simulated cycles
  double slew = 50e-12;         ///< control edge slew [s]
};

/// Handles into the built column circuit.
struct ColumnFixture {
  Circuit circuit;
  NodeId vdd_cell = 0;  ///< rail feeding the two cells' pull-ups
  NodeId vdd_pre = 0;   ///< rail feeding the pre-charge unit (separate so
                        ///< delivered energy can be attributed, paper P_A)
  NodeId gnd = 0;
  NodeId bl = 0;
  NodeId blb = 0;
  NodeId s0 = 0;        ///< cell C(i,j) node S
  NodeId sb0 = 0;
  NodeId s1 = 0;        ///< cell C(i+1,j) node S
  NodeId sb1 = 0;
  double t_end = 0.0;   ///< convenience: cycles * clock_period
};

/// Build the two-cell column of paper Fig. 5.
ColumnFixture build_column_fixture(const ColumnConfig& config);

/// Which switch carries the control edge in the pass fixture.
enum class PassDevice { kTransmissionGate, kNmosPassTransistor };

/// Handles into the pass-device delay experiment.
struct PassFixture {
  Circuit circuit;
  NodeId in = 0;    ///< driven input edge
  NodeId out = 0;   ///< loaded output
  double edge_time = 0.0;  ///< when the input edge starts
  double t_end = 0.0;
};

/// Build the §4 mux-device experiment: one rising and one falling edge
/// through @p device into @p c_load farads.
PassFixture build_pass_fixture(PassDevice device, bool rising_edge,
                               double c_load = 5e-15,
                               const DeviceLibrary& devices =
                                   DeviceLibrary::tech_0p13um(),
                               double vdd = 1.6);

}  // namespace sramlp::circuit
