// Switch-level MOSFET model.
//
// The paper validates its technique with 0.13 µm Spice simulations.  For the
// charge-bookkeeping questions this library answers (how fast does a floating
// bit-line discharge through a cell, how hard does a cell fight a pre-charge
// keeper, what is the propagation delay of a transmission gate), a long-
// channel square-law model integrated explicitly is sufficient and keeps the
// simulator dependency-free.  See DESIGN.md §2 for the substitution record.
#pragma once

#include <algorithm>

namespace sramlp::circuit {

/// Device polarity.
enum class MosType { kNmos, kPmos };

/// Square-law device parameters.
struct MosParams {
  double vth = 0.35;  ///< threshold voltage [V] (magnitude, both polarities)
  double k = 100e-6;  ///< transconductance k' * W/L [A/V^2]
};

/// Drain current of an NMOS-style square-law device given terminal voltages,
/// with source/drain symmetry (current flows from the higher to the lower
/// terminal).  Returns the current flowing from @p vd_terminal into
/// @p vs_terminal (positive when vd_terminal is higher).
inline double nmos_current(double vg, double vd_terminal, double vs_terminal,
                           const MosParams& p) {
  // Exploit symmetry: treat the lower terminal as the source.
  const bool swapped = vd_terminal < vs_terminal;
  const double vd = swapped ? vs_terminal : vd_terminal;
  const double vs = swapped ? vd_terminal : vs_terminal;
  const double vgs = vg - vs;
  const double vov = vgs - p.vth;
  if (vov <= 0.0) return 0.0;  // cut-off (sub-threshold leakage ignored)
  const double vds = vd - vs;
  double i = 0.0;
  if (vds < vov) {
    i = p.k * (vov * vds - 0.5 * vds * vds);  // triode
  } else {
    i = 0.5 * p.k * vov * vov;  // saturation
  }
  return swapped ? -i : i;
}

/// PMOS dual of nmos_current: current flowing from @p vs_terminal into
/// @p vd_terminal (positive when vs_terminal is higher and the gate is low).
inline double pmos_current(double vg, double vd_terminal, double vs_terminal,
                           const MosParams& p) {
  // A PMOS with terminals (g, d, s) behaves like an NMOS in the mirrored
  // voltage space v -> -v.
  return -nmos_current(-vg, -vd_terminal, -vs_terminal, p);
}

}  // namespace sramlp::circuit
