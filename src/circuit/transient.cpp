#include "circuit/transient.h"

#include <cmath>

#include "util/error.h"

namespace sramlp::circuit {

const Waveform& TransientResult::wave(const std::string& name) const {
  for (const auto& w : waves_)
    if (w.name() == name) return w;
  throw Error("no probed waveform named '" + name + "'");
}

double TransientResult::total_supplied() const {
  double total = 0.0;
  for (double e : energy_.node_delivery)
    if (e > 0.0) total += e;
  return total;
}

TransientResult simulate(const Circuit& circuit,
                         const std::vector<NodeId>& probes,
                         const TransientOptions& options) {
  SRAMLP_REQUIRE(options.dt > 0.0 && options.t_end > 0.0,
                 "bad transient options");
  const auto& nodes = circuit.nodes();
  const auto& branches = circuit.branches();
  SRAMLP_REQUIRE(!nodes.empty(), "empty circuit");
  for (NodeId p : probes) SRAMLP_REQUIRE(p < nodes.size(), "bad probe id");

  std::vector<double> v(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) v[i] = nodes[i].v0;

  std::vector<double> i_into(nodes.size(), 0.0);
  EnergyAccount account{std::vector<double>(branches.size(), 0.0),
                        std::vector<double>(nodes.size(), 0.0)};

  std::vector<Waveform> waves;
  waves.reserve(probes.size());
  for (NodeId p : probes) waves.emplace_back(nodes[p].name);

  const auto n_steps =
      static_cast<std::size_t>(std::llround(options.t_end / options.dt));
  const auto sample_stride = static_cast<std::size_t>(
      std::max(1.0, std::floor(options.sample_every / options.dt)));
  const double dt = options.dt;

  for (std::size_t step = 0; step <= n_steps; ++step) {
    const double t = static_cast<double>(step) * dt;

    // Driven nodes follow their schedules.
    for (std::size_t n = 0; n < nodes.size(); ++n)
      if (nodes[n].fixed) v[n] = nodes[n].schedule.at(t);

    // Record before advancing so the initial condition is captured.
    if (step % sample_stride == 0)
      for (std::size_t pi = 0; pi < probes.size(); ++pi)
        waves[pi].append(t, v[probes[pi]]);

    std::fill(i_into.begin(), i_into.end(), 0.0);

    for (std::size_t bi = 0; bi < branches.size(); ++bi) {
      const BranchElement& el = branches[bi].element;
      double i = 0.0;    // current from terminal "a"/drain into "b"/source
      NodeId from = 0;   // node the current leaves
      NodeId to = 0;     // node the current enters
      if (const auto* r = std::get_if<Resistor>(&el)) {
        i = (v[r->a] - v[r->b]) * r->conductance;
        from = r->a;
        to = r->b;
      } else {
        const auto& m = std::get<Mosfet>(el);
        i = (m.type == MosType::kNmos)
                ? nmos_current(v[m.gate], v[m.drain], v[m.source], m.params)
                : pmos_current(v[m.gate], v[m.drain], v[m.source], m.params);
        from = m.drain;
        to = m.source;
      }
      i_into[from] -= i;
      i_into[to] += i;
      // Dissipation is i * (v_from - v_to), non-negative for these elements.
      account.branch_dissipation[bi] += i * (v[from] - v[to]) * dt;
    }

    // Integrate free nodes; account delivered energy on fixed nodes.
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      if (nodes[n].fixed) {
        account.node_delivery[n] += v[n] * (-i_into[n]) * dt;
      } else {
        v[n] += i_into[n] * dt / nodes[n].capacitance;
      }
    }
  }

  return TransientResult(std::move(waves), std::move(account));
}

}  // namespace sramlp::circuit
