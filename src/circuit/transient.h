// Explicit transient integration of a Circuit.
//
// Forward-Euler with a fixed step.  The step must resolve the fastest
// RC constant in the netlist (cell nodes of ~2 fF against strong devices
// give tau of a few ps, so the default step is 0.2 ps).  All the circuits
// this library simulates at this level are tiny (tens of nodes), so even
// 30 ns windows integrate in well under a second.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "circuit/waveform.h"

namespace sramlp::circuit {

/// Integration and recording options.
struct TransientOptions {
  double t_end = 30e-9;        ///< simulation window [s]
  double dt = 0.2e-12;         ///< integration step [s]
  double sample_every = 10e-12;///< waveform sampling interval [s]
};

/// Per-branch dissipated energy plus per-fixed-node delivered energy.
struct EnergyAccount {
  std::vector<double> branch_dissipation;  ///< [J], indexed like branches
  std::vector<double> node_delivery;       ///< [J], >0 when a fixed node sources energy
};

/// Simulation output: one waveform per probed node plus energy bookkeeping.
class TransientResult {
 public:
  TransientResult(std::vector<Waveform> waves, EnergyAccount energy)
      : waves_(std::move(waves)), energy_(std::move(energy)) {}

  /// Waveform of the probe named @p name; throws if absent.
  const Waveform& wave(const std::string& name) const;
  const std::vector<Waveform>& waves() const { return waves_; }
  const EnergyAccount& energy() const { return energy_; }

  /// Total energy delivered by all fixed nodes with voltage > 0 (the supply
  /// rails and high control signals) — the circuit's drawn energy.
  double total_supplied() const;

 private:
  std::vector<Waveform> waves_;
  EnergyAccount energy_;
};

/// Integrates @p circuit over the options window.
/// @param probes node ids whose voltages are recorded (all fixed+free state
///        is still simulated; probing only affects recording).
TransientResult simulate(const Circuit& circuit,
                         const std::vector<NodeId>& probes,
                         const TransientOptions& options);

}  // namespace sramlp::circuit
