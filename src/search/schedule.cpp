#include "search/schedule.h"

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace sramlp::search {

StateCond element_state(const march::MarchElement& element) {
  StateCond cond;
  if (element.is_pause()) return cond;  // state-transparent
  const march::Operation first = element.ops.front();
  if (march::is_read(first)) cond.pre = march::value_of(first) ? 1 : 0;
  // The last operation fixes the departing value whether it reads (the
  // cell keeps what the read observed) or writes (the cell takes it).
  cond.post = march::value_of(element.ops.back()) ? 1 : 0;
  return cond;
}

std::string Candidate::key() const {
  std::string key;
  key.reserve(order.size() * 8);
  for (std::size_t s = 0; s < order.size(); ++s) {
    if (s != 0) key += ' ';
    key += std::to_string(order[s]);
    if (idle_after[s] != 0) {
      key += '+';
      key += std::to_string(idle_after[s]);
    }
  }
  return key;
}

Candidate identity_candidate(std::size_t elements) {
  Candidate candidate;
  candidate.order.resize(elements);
  for (std::size_t i = 0; i < elements; ++i) candidate.order[i] = i;
  candidate.idle_after.assign(elements, 0);
  return candidate;
}

bool order_is_valid(const std::vector<StateCond>& conds,
                    const std::vector<std::size_t>& order) {
  int cur = -1;  // unknown: satisfies no pre-condition
  for (const std::size_t index : order) {
    const StateCond& cond = conds[index];
    if (cond.pre >= 0 && cur != cond.pre) return false;
    if (cond.post >= 0) cur = cond.post;
  }
  return true;
}

namespace {

std::uint64_t total_quanta(const Candidate& candidate,
                           const MoveLimits& limits) {
  std::uint64_t total = 0;
  for (const std::uint64_t idle : candidate.idle_after)
    total += idle / limits.idle_quantum;
  return total;
}

/// Slots eligible for idle: every slot but the last (trailing idle only
/// lengthens the run).  Requires at least two slots.
std::size_t random_idle_slot(const Candidate& candidate, util::Rng& rng) {
  return static_cast<std::size_t>(
      rng.next_below(candidate.order.size() - 1));
}

}  // namespace

bool apply_random_move(Candidate& candidate,
                       const std::vector<StateCond>& conds,
                       const MoveLimits& limits, util::Rng& rng) {
  const std::size_t n = candidate.order.size();
  if (n < 2) return false;
  const std::uint64_t kind = rng.next_below(5);
  switch (kind) {
    case 0: {  // swap two interior elements
      if (n < 4) return false;
      const std::size_t i = 1 + static_cast<std::size_t>(rng.next_below(n - 2));
      const std::size_t j = 1 + static_cast<std::size_t>(rng.next_below(n - 2));
      if (i == j) return false;
      std::swap(candidate.order[i], candidate.order[j]);
      if (order_is_valid(conds, candidate.order)) return true;
      std::swap(candidate.order[i], candidate.order[j]);
      return false;
    }
    case 1: {  // relocate one interior element to another interior slot
      if (n < 4) return false;
      const std::size_t i = 1 + static_cast<std::size_t>(rng.next_below(n - 2));
      const std::size_t j = 1 + static_cast<std::size_t>(rng.next_below(n - 2));
      if (i == j) return false;
      std::vector<std::size_t> moved = candidate.order;
      const std::size_t element = moved[i];
      moved.erase(moved.begin() + static_cast<std::ptrdiff_t>(i));
      moved.insert(moved.begin() + static_cast<std::ptrdiff_t>(j), element);
      if (!order_is_valid(conds, moved)) return false;
      candidate.order = std::move(moved);
      // Idle windows stay attached to their slot, not the moved element:
      // they schedule time, not content.
      return true;
    }
    case 2: {  // add one idle quantum
      if (total_quanta(candidate, limits) >= limits.max_idle_quanta)
        return false;
      candidate.idle_after[random_idle_slot(candidate, rng)] +=
          limits.idle_quantum;
      return true;
    }
    case 3: {  // remove one idle quantum
      const std::size_t slot = random_idle_slot(candidate, rng);
      if (candidate.idle_after[slot] < limits.idle_quantum) return false;
      candidate.idle_after[slot] -= limits.idle_quantum;
      return true;
    }
    default: {  // shift one idle quantum between slots
      const std::size_t src = random_idle_slot(candidate, rng);
      const std::size_t dst = random_idle_slot(candidate, rng);
      if (src == dst || candidate.idle_after[src] < limits.idle_quantum)
        return false;
      candidate.idle_after[src] -= limits.idle_quantum;
      candidate.idle_after[dst] += limits.idle_quantum;
      return true;
    }
  }
}

march::MarchTest build_schedule(const march::MarchTest& base,
                                const Candidate& candidate,
                                const std::string& name) {
  const std::vector<march::MarchElement>& elements = base.elements();
  SRAMLP_REQUIRE(candidate.order.size() == elements.size() &&
                     candidate.idle_after.size() == elements.size(),
                 "candidate does not match the base test's element count");
  std::vector<march::MarchElement> scheduled;
  scheduled.reserve(elements.size() * 2);
  for (std::size_t s = 0; s < candidate.order.size(); ++s) {
    scheduled.push_back(elements.at(candidate.order[s]));
    if (candidate.idle_after[s] > 0) {
      march::MarchElement pause;
      pause.pause_cycles =
          static_cast<std::size_t>(candidate.idle_after[s]);
      scheduled.push_back(pause);
    }
  }
  return march::MarchTest(name, std::move(scheduled));
}

}  // namespace sramlp::search
