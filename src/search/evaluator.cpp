#include "search/evaluator.h"

#include "engine/analytic_backend.h"
#include "sram/simd.h"
#include "util/error.h"

namespace sramlp::search {

ScheduleEvaluator::ScheduleEvaluator(const core::SessionConfig& config,
                                     const march::MarchTest& base,
                                     std::uint64_t window_cycles) {
  SRAMLP_REQUIRE(window_cycles >= 1, "peak window must span >= 1 cycle");
  SRAMLP_REQUIRE(!base.elements().empty(), "base test has no elements");
  const power::AnalyticModel model(config.tech, config.geometry.rows,
                                   config.geometry.cols,
                                   config.geometry.word_width);
  const bool low_power = config.mode == sram::Mode::kLowPowerTest;
  const std::size_t words = config.geometry.words();
  idle_rate_ = model.idle_energy_per_cycle();
  window_cycles_ = static_cast<double>(window_cycles);
  window_seconds_ =
      static_cast<double>(window_cycles) * config.tech.clock_period;
  const std::vector<march::MarchElement>& elements = base.elements();
  rates_.reserve(elements.size());
  cycles_.reserve(elements.size());
  conds_.reserve(elements.size());
  for (std::size_t i = 0; i < elements.size(); ++i) {
    rates_.push_back(elements[i].is_pause()
                         ? idle_rate_
                         : engine::analytic_element_rate(model, elements[i],
                                                         low_power));
    cycles_.push_back(static_cast<double>(base.element_cycles(i, words)));
    conds_.push_back(element_state(elements[i]));
  }
}

void ScheduleEvaluator::score(const std::vector<Candidate>& candidates,
                              std::vector<Score>& out) {
  const std::size_t lanes = candidates.size();
  out.resize(lanes);
  if (lanes == 0) return;
  const std::size_t n = rates_.size();
  // Two slots per schedule position: the element, then its trailing idle
  // window (zero cycles when none — a zero-cycle slot is a no-op in the
  // kernel, so every candidate shares one fixed slot count).
  const std::size_t slots = 2 * n;
  soa_rates_.resize(slots * lanes);
  soa_cycles_.resize(slots * lanes);
  out_energy_.resize(lanes);
  out_cycles_.resize(lanes);
  out_peak_.resize(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const Candidate& candidate = candidates[lane];
    SRAMLP_REQUIRE(candidate.order.size() == n &&
                       candidate.idle_after.size() == n,
                   "candidate does not match the evaluator's base test");
    for (std::size_t s = 0; s < n; ++s) {
      const std::size_t element = candidate.order[s];
      soa_rates_[(2 * s) * lanes + lane] = rates_[element];
      soa_cycles_[(2 * s) * lanes + lane] = cycles_[element];
      soa_rates_[(2 * s + 1) * lanes + lane] = idle_rate_;
      soa_cycles_[(2 * s + 1) * lanes + lane] =
          static_cast<double>(candidate.idle_after[s]);
    }
  }
  sram::simd::search_score_batch(soa_rates_.data(), soa_cycles_.data(),
                                 lanes, slots, window_cycles_,
                                 out_energy_.data(), out_cycles_.data(),
                                 out_peak_.data());
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    out[lane].energy_j = out_energy_[lane];
    out[lane].cycles = out_cycles_[lane];
    out[lane].peak_window_j = out_peak_[lane];
    out[lane].peak_power_w = out_peak_[lane] / window_seconds_;
  }
}

Score ScheduleEvaluator::score_one(const Candidate& candidate) {
  const std::vector<Candidate> one{candidate};
  std::vector<Score> scored;
  score(one, scored);
  return scored.front();
}

}  // namespace sramlp::search
