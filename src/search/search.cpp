#include "search/search.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "engine/parallel.h"
#include "power/trace.h"
#include "util/error.h"
#include "util/rng.h"

namespace sramlp::search {

void SearchSpec::validate() const {
  config.geometry.validate();
  SRAMLP_REQUIRE(base.has_value(), "search spec needs a base March test");
  SRAMLP_REQUIRE(!base->elements().empty(), "base test has no elements");
  SRAMLP_REQUIRE(window_cycles >= 1, "window_cycles must be >= 1");
  SRAMLP_REQUIRE(restarts > 0, "search needs at least one restart");
  SRAMLP_REQUIRE(steps > 0, "search needs at least one step");
  SRAMLP_REQUIRE(beam_width > 0, "beam_width must be >= 1");
  SRAMLP_REQUIRE(neighbors > 0, "neighbors must be >= 1");
  SRAMLP_REQUIRE(idle_quantum > 0, "idle_quantum must be >= 1");
  SRAMLP_REQUIRE(max_front > 0, "max_front must be >= 1");
  SRAMLP_REQUIRE(peak_budget_w >= 0.0, "peak budget cannot be negative");
  SRAMLP_REQUIRE(!config.trace.has_value(),
                 "leave config.trace unset: the search traces its own "
                 "verification runs at window_cycles");
  SRAMLP_REQUIRE(config.waveform_sink == nullptr,
                 "waveform sinks cannot cross the search/job boundary");
}

double verify_tolerance(const core::SessionConfig& config) {
  // The PR 5 analytic-vs-measured trace parity bounds (test_engine.cpp):
  // the closed-form per-element attribution tracks the cycle-accurate
  // measurement within 1% in functional mode, 5% in low-power mode.
  return config.mode == sram::Mode::kLowPowerTest ? 5e-2 : 1e-2;
}

namespace {

/// Dominance on the reported front: minimise (peak power, test time).
bool dominates(double peak_a, std::uint64_t cycles_a, double peak_b,
               std::uint64_t cycles_b) {
  return peak_a <= peak_b && cycles_a <= cycles_b &&
         (peak_a < peak_b || cycles_a < cycles_b);
}

struct Entry {
  Candidate candidate;
  Score score;
  std::string key;
};

/// Insert a scored candidate into the Pareto archive over
/// (peak_power_w, cycles): dominated or duplicate entries are skipped,
/// entries the newcomer dominates are dropped.  Scores are integer-cycle
/// and bit-deterministic, so archive contents depend only on the
/// insertion sequence — which the seeded driver fixes.
void archive_insert(std::vector<Entry>& archive, const Candidate& candidate,
                    const Score& score, std::string key) {
  const auto cycles = static_cast<std::uint64_t>(score.cycles);
  for (const Entry& held : archive) {
    const auto held_cycles = static_cast<std::uint64_t>(held.score.cycles);
    if (dominates(held.score.peak_power_w, held_cycles, score.peak_power_w,
                  cycles))
      return;
    if (held.score.peak_power_w == score.peak_power_w &&
        held_cycles == cycles && held.key == key)
      return;
  }
  archive.erase(
      std::remove_if(archive.begin(), archive.end(),
                     [&](const Entry& held) {
                       return dominates(
                           score.peak_power_w, cycles,
                           held.score.peak_power_w,
                           static_cast<std::uint64_t>(held.score.cycles));
                     }),
      archive.end());
  archive.push_back(Entry{candidate, score, std::move(key)});
}

/// Scalarised beam cost: restart-dependent peak-vs-time weight so
/// different restarts chase different front regions, plus a hard penalty
/// past the budget.
struct CostModel {
  double weight = 0.5;       ///< 1 = all peak, 0 = all time
  double base_peak = 1.0;
  double base_cycles = 1.0;
  double budget_w = 0.0;     ///< 0 = unconstrained

  double operator()(const Score& score) const {
    double cost = weight * (score.peak_power_w / base_peak) +
                  (1.0 - weight) * (score.cycles / base_cycles);
    if (budget_w > 0.0 && score.peak_power_w > budget_w)
      cost += 1e3 * (score.peak_power_w / budget_w);
    return cost;
  }
};

/// Build the winner's runnable schedule, then hold it to the
/// cycle-accurate standard: re-run it traced on the parity-locked engine
/// and require zero read mismatches (the validity chain held), the exact
/// analytic cycle count, and an analytic peak within the trace-parity
/// tolerance of the measured one.
ScheduleResult verify_winner(const SearchSpec& spec,
                             const Candidate& candidate,
                             const Score& score) {
  march::MarchTest schedule = build_schedule(
      *spec.base, candidate, spec.base->name() + " [scheduled]");
  core::SessionConfig config = spec.config;
  power::TraceConfig trace;
  trace.window_cycles = spec.window_cycles;
  config.trace = trace;
  core::TestSession session(config);
  const core::SessionResult run = session.run(schedule);

  ScheduleResult result{std::move(schedule)};
  result.cycles = static_cast<std::uint64_t>(score.cycles);
  result.energy_j = score.energy_j;
  result.peak_power_w = score.peak_power_w;
  result.verified_peak_w = run.trace ? run.trace->peak_power_w : 0.0;
  const double tolerance = verify_tolerance(spec.config);
  const bool peak_ok =
      result.verified_peak_w > 0.0 &&
      std::abs(result.peak_power_w - result.verified_peak_w) <=
          tolerance * result.verified_peak_w;
  result.verified =
      run.mismatches == 0 && run.cycles == result.cycles && peak_ok;
  return result;
}

}  // namespace

RestartResult run_restart(const SearchSpec& spec, std::size_t restart) {
  spec.validate();
  SRAMLP_REQUIRE(restart < spec.restarts, "restart index out of range");
  const march::MarchTest& base = *spec.base;
  const std::size_t n = base.elements().size();

  ScheduleEvaluator evaluator(spec.config, base, spec.window_cycles);
  const MoveLimits limits{spec.idle_quantum, spec.max_idle_quanta};
  // The restart's whole trajectory is a pure function of (seed, restart).
  util::Rng rng(spec.seed ^
                (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(restart) + 1)));

  Candidate start = identity_candidate(n);
  const Score base_score = evaluator.score_one(start);
  // Diversify later restarts' starting points with a short random walk.
  for (std::size_t k = 0; k < restart; ++k)
    for (int attempt = 0; attempt < 8; ++attempt)
      if (apply_random_move(start, evaluator.conds(), limits, rng)) break;

  CostModel cost;
  cost.weight = spec.restarts > 1
                    ? static_cast<double>(restart) /
                          static_cast<double>(spec.restarts - 1)
                    : 0.5;
  cost.base_peak = base_score.peak_power_w > 0.0 ? base_score.peak_power_w
                                                 : 1.0;
  cost.base_cycles = base_score.cycles > 0.0 ? base_score.cycles : 1.0;
  cost.budget_w = spec.peak_budget_w;

  std::vector<Entry> beam;
  beam.push_back(Entry{start, evaluator.score_one(start), start.key()});
  std::vector<Entry> archive;
  archive_insert(archive, beam[0].candidate, beam[0].score, beam[0].key);
  // The base schedule always competes for the front: restart 0 starts
  // from it, and every restart's archive sees it first.
  archive_insert(archive, identity_candidate(n), base_score,
                 identity_candidate(n).key());

  std::vector<Candidate> batch;
  std::vector<Score> scores;
  for (std::size_t step = 0; step < spec.steps; ++step) {
    batch.clear();
    for (const Entry& member : beam) {
      for (std::size_t k = 0; k < spec.neighbors; ++k) {
        Candidate neighbor = member.candidate;
        bool moved = false;
        for (int attempt = 0; attempt < 8 && !moved; ++attempt)
          moved = apply_random_move(neighbor, evaluator.conds(), limits, rng);
        if (moved) batch.push_back(std::move(neighbor));
      }
    }
    if (batch.empty()) break;  // no applicable moves (e.g. 1-element test)
    evaluator.score(batch, scores);

    std::vector<Entry> pool = beam;
    pool.reserve(beam.size() + batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      std::string key = batch[i].key();
      archive_insert(archive, batch[i], scores[i], key);
      pool.push_back(Entry{std::move(batch[i]), scores[i], std::move(key)});
    }
    std::stable_sort(pool.begin(), pool.end(),
                     [&](const Entry& a, const Entry& b) {
                       const double ca = cost(a.score);
                       const double cb = cost(b.score);
                       if (ca != cb) return ca < cb;
                       return a.key < b.key;
                     });
    beam.clear();
    for (Entry& entry : pool) {
      bool duplicate = false;
      for (const Entry& kept : beam)
        if (kept.key == entry.key) {
          duplicate = true;
          break;
        }
      if (duplicate) continue;
      beam.push_back(std::move(entry));
      if (beam.size() >= spec.beam_width) break;
    }
  }

  // Reduce the archive to the reported front: sort by (peak, cycles,
  // energy, key), then keep at most max_front points spread evenly across
  // it so both front endpoints survive the cap.
  std::stable_sort(archive.begin(), archive.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.score.peak_power_w != b.score.peak_power_w)
                       return a.score.peak_power_w < b.score.peak_power_w;
                     if (a.score.cycles != b.score.cycles)
                       return a.score.cycles < b.score.cycles;
                     if (a.score.energy_j != b.score.energy_j)
                       return a.score.energy_j < b.score.energy_j;
                     return a.key < b.key;
                   });
  std::vector<const Entry*> winners;
  if (archive.size() <= spec.max_front) {
    for (const Entry& entry : archive) winners.push_back(&entry);
  } else if (spec.max_front == 1) {
    winners.push_back(&archive.front());
  } else {
    for (std::size_t i = 0; i < spec.max_front; ++i) {
      const std::size_t index =
          (i * (archive.size() - 1)) / (spec.max_front - 1);
      if (!winners.empty() && winners.back() == &archive[index]) continue;
      winners.push_back(&archive[index]);
    }
  }

  RestartResult result;
  result.restart = restart;
  result.front.reserve(winners.size());
  for (const Entry* winner : winners)
    result.front.push_back(
        verify_winner(spec, winner->candidate, winner->score));
  return result;
}

SearchOutcome run_search(const SearchSpec& spec, unsigned threads) {
  spec.validate();
  SearchOutcome outcome;
  outcome.restarts.resize(spec.restarts);
  engine::parallel_for(spec.restarts, threads, [&](std::size_t i) {
    outcome.restarts[i] = run_restart(spec, i);
  });
  outcome.front = merge_front(outcome.restarts);
  return outcome;
}

std::vector<ScheduleResult> merge_front(
    const std::vector<RestartResult>& restarts) {
  std::vector<const ScheduleResult*> all;
  for (const RestartResult& restart : restarts)
    for (const ScheduleResult& result : restart.front)
      all.push_back(&result);

  std::vector<ScheduleResult> front;
  for (const ScheduleResult* candidate : all) {
    bool dropped = false;
    for (const ScheduleResult* other : all) {
      if (other == candidate) continue;
      if (dominates(other->peak_power_w, other->cycles,
                    candidate->peak_power_w, candidate->cycles)) {
        dropped = true;
        break;
      }
    }
    if (dropped) continue;
    bool duplicate = false;
    for (const ScheduleResult& kept : front)
      if (kept.peak_power_w == candidate->peak_power_w &&
          kept.cycles == candidate->cycles &&
          kept.energy_j == candidate->energy_j) {
        duplicate = true;
        break;
      }
    if (!duplicate) front.push_back(*candidate);
  }
  std::stable_sort(front.begin(), front.end(),
                   [](const ScheduleResult& a, const ScheduleResult& b) {
                     if (a.peak_power_w != b.peak_power_w)
                       return a.peak_power_w < b.peak_power_w;
                     if (a.cycles != b.cycles) return a.cycles < b.cycles;
                     return a.energy_j < b.energy_j;
                   });
  return front;
}

PaddedBaseline naive_idle_padding(const SearchSpec& spec) {
  spec.validate();
  const march::MarchTest& base = *spec.base;
  const std::size_t n = base.elements().size();
  ScheduleEvaluator evaluator(spec.config, base, spec.window_cycles);

  PaddedBaseline best{identity_candidate(n), Score{}, false};
  best.score = evaluator.score_one(best.candidate);
  if (spec.peak_budget_w <= 0.0 ||
      best.score.peak_power_w <= spec.peak_budget_w) {
    best.meets_budget = true;
    return best;
  }
  const std::size_t slots = n > 1 ? n - 1 : 0;
  double previous_peak = best.score.peak_power_w;
  // Uniform padding is deliberately NOT bounded by max_idle_quanta: it is
  // the naive competitor, free to burn as much test time as it needs.
  for (std::uint64_t quanta = 1; slots > 0 && quanta <= 1u << 14; ++quanta) {
    Candidate padded = identity_candidate(n);
    for (std::size_t s = 0; s < slots; ++s)
      padded.idle_after[s] = quanta * spec.idle_quantum;
    const Score score = evaluator.score_one(padded);
    best.candidate = std::move(padded);
    best.score = score;
    if (score.peak_power_w <= spec.peak_budget_w) {
      best.meets_budget = true;
      break;
    }
    // Padding has a floor (a window inside one hot element); stop once it
    // stops helping.
    if (quanta > 1 && score.peak_power_w >= previous_peak) break;
    previous_peak = score.peak_power_w;
  }
  return best;
}

}  // namespace sramlp::search
