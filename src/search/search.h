// Peak-constrained March schedule search (see ROADMAP: use the PR 5
// per-element peak data as an objective).
//
// Given a peak-power budget, search over validity-preserving schedules of
// a base March test — element reorders, inserted idle windows, idle
// redistribution (search/schedule.h) — for schedules minimising test time
// and energy while staying under the cap.  The scan-test literature
// (arXiv 1106.2794, 0710.4653) does this budget-constrained scheduling
// for scan chains; the memoized analytic evaluator (search/evaluator.h)
// makes the SRAM March version nearly free per candidate.
//
// Determinism contract: run_restart(spec, r) is a pure function of
// (spec, r) — its RNG is util::Rng keyed by spec.seed and r, its scores
// come from the SIMD batch kernel (bit-identical at every dispatch
// level), and its winner verification runs the parity-locked
// cycle-accurate engine.  run_search fans restarts out over
// engine::parallel_for with one result slot per restart and reduces in
// restart order, so the same spec produces byte-identical serialized
// results whatever the thread count, shard count, or host — the dist/
// 'search' job kind rides on exactly this.
//
// Each restart walks a seeded beam search: neighbours of every beam
// member are scored as one SIMD batch, the beam keeps the best
// scalarised costs (restart-dependent peak-vs-time weight, hard budget
// penalty), and every scored candidate feeds a Pareto archive over
// (peak power, test cycles).  The restart's surviving front is verified
// cycle-accurate — zero read mismatches, exact cycle count, analytic
// peak within the PR 5 trace-parity tolerance — before it is reported.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/session.h"
#include "march/test.h"
#include "search/evaluator.h"
#include "search/schedule.h"

namespace sramlp::search {

/// One search job: base test, objective, budget and search knobs.
struct SearchSpec {
  core::SessionConfig config;  ///< geometry/tech/mode of the sweep point
  /// Base March test (optional only to keep the spec default-constructible,
  /// like dist::JobSpec::test; validate() requires it).
  std::optional<march::MarchTest> base;
  /// Peak-window power budget [W]; 0 = unconstrained (pure Pareto sweep).
  double peak_budget_w = 0.0;
  /// Peak-window width in cycles.  Pick a thermal-scale window of a few
  /// element spans (e.g. 4 * geometry.words()): schedule moves only have
  /// leverage on windows that straddle element boundaries.
  std::uint64_t window_cycles = 65536;
  std::uint64_t seed = 1;
  std::size_t restarts = 8;    ///< independent seeded restarts (fan-out unit)
  std::size_t steps = 96;      ///< beam iterations per restart
  std::size_t beam_width = 8;
  std::size_t neighbors = 16;  ///< candidates per beam member per step
  std::uint64_t idle_quantum = 1024;
  std::size_t max_idle_quanta = 16;
  std::size_t max_front = 8;   ///< verified winners kept per restart

  void validate() const;
  std::size_t size() const { return restarts; }
};

/// One verified point of a restart's Pareto front.
struct ScheduleResult {
  march::MarchTest schedule;      ///< runnable (both engines, serializable)
  std::uint64_t cycles = 0;       ///< test time in cycles
  double energy_j = 0.0;          ///< analytic total supply energy
  double peak_power_w = 0.0;      ///< analytic peak-window power
  double verified_peak_w = 0.0;   ///< cycle-accurate measured peak
  bool verified = false;          ///< mismatch-free + cycles exact + peak
                                  ///< within the trace-parity tolerance
};

/// Everything one restart reports.  Default-constructible (dist/ merge
/// slots); `front` is sorted by (peak asc, cycles asc, energy asc).
struct RestartResult {
  std::size_t restart = 0;
  std::vector<ScheduleResult> front;
};

/// The whole search: per-restart results plus the merged global front.
struct SearchOutcome {
  std::vector<RestartResult> restarts;
  std::vector<ScheduleResult> front;
};

/// Run restart @p restart of @p spec — a pure function of its arguments
/// (see the determinism contract above).
RestartResult run_restart(const SearchSpec& spec, std::size_t restart);

/// All restarts over engine::parallel_for (0 threads = hardware count),
/// merged with merge_front.  Byte-identical results at any thread count.
SearchOutcome run_search(const SearchSpec& spec, unsigned threads = 0);

/// Deterministic global Pareto front over per-restart fronts: restart-order
/// scan, (peak_power_w, cycles) dominance, exact-duplicate dedup, sorted by
/// (peak asc, cycles asc, energy asc).  This is the reduction the dist/
/// coordinator, the service and run_search all share — the merged front
/// depends only on the per-restart results, never on who merged them.
std::vector<ScheduleResult> merge_front(
    const std::vector<RestartResult>& restarts);

/// The naive baseline the search must beat: keep the base order and pad a
/// uniform idle quantum count after every element (growing until the peak
/// budget is met or the idle budget is exhausted).  Used by the
/// march_search tool and tests to report "search time vs naive-padding
/// time at the same budget".
struct PaddedBaseline {
  Candidate candidate;
  Score score;
  bool meets_budget = false;
};
PaddedBaseline naive_idle_padding(const SearchSpec& spec);

/// Relative peak-power tolerance for winner verification: the PR 5
/// analytic-vs-measured trace parity bound (test_engine.cpp).
double verify_tolerance(const core::SessionConfig& config);

}  // namespace sramlp::search
