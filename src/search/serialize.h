// JSON serialization of the search subsystem's boundary types.
//
// Lives in namespace sramlp::io next to io/serialize.h's pairs (dist/
// includes this; io/ itself must not depend on search/).  Same contract
// as every io serializer: round-trip exact — a RestartResult crossing the
// worker wire and merged by the coordinator reproduces every double to
// the bit, which is what keeps sharded search merges byte-identical to
// single-process runs.
#pragma once

#include "io/json.h"
#include "search/search.h"

namespace sramlp::io {

JsonValue to_json(const search::SearchSpec& spec);
search::SearchSpec search_spec_from_json(const JsonValue& json);

JsonValue to_json(const search::ScheduleResult& result);
search::ScheduleResult schedule_result_from_json(const JsonValue& json);

JsonValue to_json(const search::RestartResult& result);
search::RestartResult restart_result_from_json(const JsonValue& json);

}  // namespace sramlp::io
