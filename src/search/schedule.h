// Candidate schedule encoding and validity-preserving moves for the
// peak-constrained March schedule search.
//
// A candidate is a permutation of the base test's elements plus idle
// cycles inserted between them.  The move set never touches the CONTENT
// of an element — every sensitise/observe operation pair the base test
// applies is still applied at every address — so the searched schedules
// differ from the base only in when each element runs:
//
//   * element reorders, subject to the read-state chain: each element has
//     a pre-condition (the value its first read expects every cell to
//     hold) and a post-condition (the value its last operation leaves
//     behind); an order is valid when every pre-condition is established
//     by the schedule prefix, so the test still passes on a fault-free
//     array.  The first element (initialisation, the only one with no
//     pre-condition in a well-formed March test) and the last (final
//     observation) stay pinned;
//   * idle-window insertion between elements, in quanta of
//     idle_quantum cycles up to a total budget — pauses only add
//     retention stress, never reduce coverage;
//   * idle redistribution (interleaving): moving a quantum between slots
//     re-phases the downstream elements against the peak windows.
//
// Every Pareto winner is additionally re-run cycle-accurate; a schedule
// that broke the chain would be rejected there by its read mismatches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "march/test.h"
#include "util/rng.h"

namespace sramlp::search {

/// Per-element boundary state conditions (see file comment).
/// -1 means "no constraint" (pre) / "leaves cells unchanged" (post).
struct StateCond {
  int pre = -1;
  int post = -1;
};

/// Derive the boundary conditions of one element.  Pause elements are
/// state-transparent (no pre, no post).
StateCond element_state(const march::MarchElement& element);

/// One candidate schedule over a base test of N elements.
struct Candidate {
  /// Permutation of [0, N): base element index executed at each slot.
  std::vector<std::size_t> order;
  /// Idle cycles inserted after each slot (same length; the last slot's
  /// entry stays 0 — trailing idle never lowers a peak window).
  std::vector<std::uint64_t> idle_after;

  /// Canonical text key — deterministic tie-breaks and dedup.
  std::string key() const;
};

/// The identity candidate: base order, no idle.
Candidate identity_candidate(std::size_t elements);

/// True when executing the elements in @p order satisfies every
/// pre-condition (cells start in an unknown state).
bool order_is_valid(const std::vector<StateCond>& conds,
                    const std::vector<std::size_t>& order);

/// Move-set limits (from SearchSpec).
struct MoveLimits {
  std::uint64_t idle_quantum = 1024;
  std::size_t max_idle_quanta = 16;  ///< total budget over the schedule
};

/// Mutate @p candidate in place with one random validity-preserving move
/// (reorder / idle add / idle remove / idle shift).  Returns false when
/// the drawn move was inapplicable or produced an invalid order (the
/// candidate is left unchanged) — callers redraw.
bool apply_random_move(Candidate& candidate,
                       const std::vector<StateCond>& conds,
                       const MoveLimits& limits, util::Rng& rng);

/// Materialise the candidate as a runnable MarchTest: base elements in
/// candidate order with Del elements for the inserted idle.  @p name
/// becomes the test's name (keep it deterministic — it is serialized).
march::MarchTest build_schedule(const march::MarchTest& base,
                                const Candidate& candidate,
                                const std::string& name);

}  // namespace sramlp::search
