// The memoized batch-analytic schedule evaluator — the search's hot loop.
//
// Scoring a candidate from scratch would re-run the closed-form analytic
// model per candidate.  This evaluator instead precomputes, ONCE per
// (config, base test) pair, each base element's closed-form contribution:
//
//   rate   — per-cycle supply expectation (engine::analytic_element_rate,
//            the exact arithmetic of the AnalyticBackend's traced
//            per-element attribution; idle rate for pauses),
//   cycles — the element's span (MarchTest::element_cycles — the shared
//            boundary arithmetic of both engines' traces).
//
// A candidate score is then an O(elements) composition of the cached
// segments: total energy, total cycles and the fixed-window peak profile
// (power::PowerTrace window semantics, including the partial trailing
// window).  Batches of candidates are laid out candidate-per-lane in a
// slot-major SoA and scored by the SIMD search_score_batch kernel
// (sram/simd.h) — bit-identical to its scalar spec at every dispatch
// level, so scores never depend on the machine evaluating them.
#pragma once

#include <cstdint>
#include <vector>

#include "core/session.h"
#include "march/test.h"
#include "search/schedule.h"

namespace sramlp::search {

/// Analytic score of one candidate schedule.
struct Score {
  double energy_j = 0.0;
  double cycles = 0.0;        ///< integer-valued (exact below 2^53)
  double peak_window_j = 0.0; ///< max fixed-window supply energy
  double peak_power_w = 0.0;  ///< peak_window_j over one full window
};

class ScheduleEvaluator {
 public:
  /// @p window_cycles is the peak-window width (>= 1); pick a thermal-scale
  /// window (a few element spans) — windows much narrower than one element
  /// land entirely inside it, where no schedule move can help.
  ScheduleEvaluator(const core::SessionConfig& config,
                    const march::MarchTest& base,
                    std::uint64_t window_cycles);

  std::size_t elements() const { return rates_.size(); }
  const std::vector<StateCond>& conds() const { return conds_; }
  double idle_rate() const { return idle_rate_; }
  double window_seconds() const { return window_seconds_; }

  /// Score a batch; @p out is resized to match.  Not thread-safe (scratch
  /// buffers) — use one evaluator per thread; construction is cheap.
  void score(const std::vector<Candidate>& candidates,
             std::vector<Score>& out);

  Score score_one(const Candidate& candidate);

 private:
  std::vector<double> rates_;   ///< per base element [J/cycle]
  std::vector<double> cycles_;  ///< per base element span
  std::vector<StateCond> conds_;
  double idle_rate_ = 0.0;
  double window_cycles_ = 0.0;
  double window_seconds_ = 0.0;
  // Batch scratch, reused across score() calls.
  std::vector<double> soa_rates_;
  std::vector<double> soa_cycles_;
  std::vector<double> out_energy_;
  std::vector<double> out_cycles_;
  std::vector<double> out_peak_;
};

}  // namespace sramlp::search
