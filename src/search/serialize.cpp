#include "search/serialize.h"

#include <utility>

#include "io/serialize.h"

namespace sramlp::io {

JsonValue to_json(const search::SearchSpec& spec) {
  JsonValue v = JsonValue::object();
  v.set("config", to_json(spec.config));
  if (spec.base) v.set("base", to_json(*spec.base));
  v.set("peak_budget_w", JsonValue::number(spec.peak_budget_w));
  v.set("window_cycles", JsonValue::integer(spec.window_cycles));
  v.set("seed", JsonValue::integer(spec.seed));
  v.set("restarts", JsonValue::integer(spec.restarts));
  v.set("steps", JsonValue::integer(spec.steps));
  v.set("beam_width", JsonValue::integer(spec.beam_width));
  v.set("neighbors", JsonValue::integer(spec.neighbors));
  v.set("idle_quantum", JsonValue::integer(spec.idle_quantum));
  v.set("max_idle_quanta", JsonValue::integer(spec.max_idle_quanta));
  v.set("max_front", JsonValue::integer(spec.max_front));
  return v;
}

search::SearchSpec search_spec_from_json(const JsonValue& json) {
  search::SearchSpec spec;
  spec.config = session_config_from_json(json.at("config"));
  if (json.has("base")) spec.base = march_from_json(json.at("base"));
  spec.peak_budget_w = json.at("peak_budget_w").as_double();
  spec.window_cycles = json.at("window_cycles").as_uint();
  spec.seed = json.at("seed").as_uint();
  spec.restarts = json.at("restarts").as_size();
  spec.steps = json.at("steps").as_size();
  spec.beam_width = json.at("beam_width").as_size();
  spec.neighbors = json.at("neighbors").as_size();
  spec.idle_quantum = json.at("idle_quantum").as_uint();
  spec.max_idle_quanta = json.at("max_idle_quanta").as_size();
  spec.max_front = json.at("max_front").as_size();
  return spec;
}

JsonValue to_json(const search::ScheduleResult& result) {
  JsonValue v = JsonValue::object();
  v.set("schedule", to_json(result.schedule));
  v.set("cycles", JsonValue::integer(result.cycles));
  v.set("energy_j", JsonValue::number(result.energy_j));
  v.set("peak_power_w", JsonValue::number(result.peak_power_w));
  v.set("verified_peak_w", JsonValue::number(result.verified_peak_w));
  v.set("verified", JsonValue::boolean(result.verified));
  return v;
}

search::ScheduleResult schedule_result_from_json(const JsonValue& json) {
  search::ScheduleResult result{march_from_json(json.at("schedule"))};
  result.cycles = json.at("cycles").as_uint();
  result.energy_j = json.at("energy_j").as_double();
  result.peak_power_w = json.at("peak_power_w").as_double();
  result.verified_peak_w = json.at("verified_peak_w").as_double();
  result.verified = json.at("verified").as_bool();
  return result;
}

JsonValue to_json(const search::RestartResult& result) {
  JsonValue v = JsonValue::object();
  v.set("restart", JsonValue::integer(result.restart));
  JsonValue front = JsonValue::array();
  for (const search::ScheduleResult& point : result.front)
    front.push_back(to_json(point));
  v.set("front", std::move(front));
  return v;
}

search::RestartResult restart_result_from_json(const JsonValue& json) {
  search::RestartResult result;
  result.restart = json.at("restart").as_size();
  const JsonValue& front = json.at("front");
  result.front.reserve(front.size());
  for (std::size_t i = 0; i < front.size(); ++i)
    result.front.push_back(schedule_result_from_json(front.at(i)));
  return result;
}

}  // namespace sramlp::io
