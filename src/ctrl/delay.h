// Device-level timing of the mux pass device (paper §4 design choice).
//
// The paper picks a full CMOS transmission gate (two transistors) over a
// single pass transistor "to ensure the minimum delay in the transitions
// (0->1 and 1->0)" of the routed pre-charge signals.  These helpers measure
// both options with the switch-level simulator so the Fig. 8 bench can
// quantify the claim: an NMOS-only pass device degrades the rising edge
// (output saturates a threshold below VDD), while the transmission gate
// passes both edges rail to rail.
#pragma once

#include "circuit/subcircuits.h"

namespace sramlp::ctrl {

/// Result of driving one edge through a pass device into the control load.
struct EdgeTiming {
  double delay_s = 0.0;        ///< input-50% to output-50% delay; +inf if the
                               ///< output never reaches 50% of VDD
  double v_final = 0.0;        ///< settled output voltage [V]
  bool reaches_full_rail = false;  ///< settles within 5% of the target rail
};

/// Measure one edge (rising or falling) through the chosen device.
EdgeTiming measure_pass_edge(circuit::PassDevice device, bool rising_edge,
                             double c_load = 5e-15,
                             const circuit::DeviceLibrary& devices =
                                 circuit::DeviceLibrary::tech_0p13um(),
                             double vdd = 1.6);

}  // namespace sramlp::ctrl
