// Gate-level model of the paper's modified pre-charge control (Fig. 8).
//
// Per column the paper adds one element built from:
//   * one NAND gate (4 transistors) computing the mux select
//       S = NAND(LPtest, CSbar_j)
//     so that functional mode (LPtest = 0) and the selected column
//     (CSbar_j = 0) both route the normal pre-charge signal ("the NAND gate
//     forces the functional mode for the column when it is selected");
//   * one 2:1 multiplexer made of two transmission gates plus one inverter
//     (4 + 2 transistors) routing
//       NPr_j = S ? Pr_j : CSbar_{j-1}
// for a total of ten transistors per column, exactly as the paper counts.
//
// NPr_j is ACTIVE LOW: the pre-charge circuit is on when NPr_j = 0.
// In low-power test mode the selection signal of column j pre-charges
// column j+1; the CSbar of the last column is left unconnected (the
// row-transition functional cycle readies column 0 for the next row).
//
// The paper presents the ascending scan; descending March elements mirror
// the wiring (CSbar_{j+1} feeds column j).  We model that with a direction
// input; a hardware realisation needs one extra 2:1 mux per column
// (6 transistors), which the overhead report quotes separately.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace sramlp::ctrl {

/// Half-cycle phase of the two-phase clock (paper Fig. 2).
enum class Phase {
  kOperate,  ///< word line high, selected column's pre-charge off
  kRestore   ///< word line low, selected column's pre-charge on
};

/// Inputs of one per-column control element.
struct ElementInputs {
  bool lptest = false;   ///< low-power test mode select
  bool cs_j = false;     ///< this column's selection signal CS_j
  bool cs_prev = false;  ///< the scan-neighbour's selection signal CS_{j+-1}
  bool pr_j = false;     ///< former pre-charge signal (1 = pre-charge off)
};

/// Combinational function of the element: the active-low NPr_j output.
constexpr bool element_npr(const ElementInputs& in) {
  const bool cs_bar_j = !in.cs_j;
  const bool select_functional = !(in.lptest && cs_bar_j);  // NAND
  const bool cs_bar_prev = !in.cs_prev;
  return select_functional ? in.pr_j : cs_bar_prev;  // transmission-gate mux
}

/// Transistor cost of the added logic.
inline constexpr int kTransistorsPerElement = 10;        // paper Fig. 8
inline constexpr int kTransistorsPerElementBidir = 16;   // + direction mux

/// Whole-row controller: evaluates every column's element each half-cycle
/// and counts output switching activity.
class PrechargeController {
 public:
  explicit PrechargeController(std::size_t columns);

  /// State of one evaluated half-cycle.
  struct CycleInputs {
    bool lptest = false;
    /// Selected column (driving CS); nullopt when no access is in flight.
    std::optional<std::size_t> selected;
    Phase phase = Phase::kOperate;
    bool ascending = true;  ///< scan direction (which neighbour feeds whom)
    /// Row-transition restore: LPtest is dropped for this cycle, returning
    /// every column to functional pre-charge.
    bool force_functional = false;
  };

  /// Evaluate all columns; returns NPr per column (active low).
  /// Pre-charge circuit j is ON exactly when the result[j] is false.
  const std::vector<bool>& evaluate(const CycleInputs& inputs);

  /// Columns whose pre-charge is on in the last evaluated half-cycle.
  std::size_t active_precharge_count() const;

  /// Total NPr output toggles since construction (switching activity).
  std::uint64_t switching_events() const { return switching_events_; }

  std::size_t columns() const { return npr_.size(); }

  /// Transistors added by the modification for this row of columns.
  int added_transistors(bool bidirectional = false) const {
    return static_cast<int>(npr_.size()) *
           (bidirectional ? kTransistorsPerElementBidir
                          : kTransistorsPerElement);
  }

 private:
  std::vector<bool> npr_;
  bool first_eval_ = true;
  std::uint64_t switching_events_ = 0;
};

}  // namespace sramlp::ctrl
