#include "ctrl/precharge_control.h"

#include "util/error.h"

namespace sramlp::ctrl {

PrechargeController::PrechargeController(std::size_t columns)
    : npr_(columns, false) {
  SRAMLP_REQUIRE(columns >= 2, "controller needs at least two columns");
}

const std::vector<bool>& PrechargeController::evaluate(
    const CycleInputs& inputs) {
  const std::size_t n = npr_.size();
  if (inputs.selected)
    SRAMLP_REQUIRE(*inputs.selected < n, "selected column out of range");

  const bool lptest = inputs.lptest && !inputs.force_functional;
  std::uint64_t toggles = 0;

  for (std::size_t j = 0; j < n; ++j) {
    ElementInputs e;
    e.lptest = lptest;
    e.cs_j = inputs.selected && *inputs.selected == j;

    // Scan neighbour whose CS pre-charges this column.  The boundary
    // column has no feeder: its CSbar input is left high (pre-charge off),
    // as the paper specifies for column 0 in the ascending scan.
    bool cs_prev = false;
    if (inputs.ascending) {
      if (j > 0) cs_prev = inputs.selected && *inputs.selected == j - 1;
    } else {
      if (j + 1 < n) cs_prev = inputs.selected && *inputs.selected == j + 1;
    }
    e.cs_prev = cs_prev;

    // Former pre-charge signal: off (high) only for the selected column
    // during the operate phase; on (low) otherwise.
    e.pr_j = e.cs_j && inputs.phase == Phase::kOperate;

    const bool out = element_npr(e);
    if (!first_eval_ && out != npr_[j]) ++toggles;
    npr_[j] = out;
  }
  first_eval_ = false;
  switching_events_ += toggles;
  return npr_;
}

std::size_t PrechargeController::active_precharge_count() const {
  std::size_t count = 0;
  for (bool off : npr_)
    if (!off) ++count;
  return count;
}

}  // namespace sramlp::ctrl
