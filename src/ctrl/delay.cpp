#include "ctrl/delay.h"

#include <cmath>
#include <limits>

#include "circuit/transient.h"

namespace sramlp::ctrl {

EdgeTiming measure_pass_edge(circuit::PassDevice device, bool rising_edge,
                             double c_load,
                             const circuit::DeviceLibrary& devices,
                             double vdd) {
  circuit::PassFixture fixture =
      circuit::build_pass_fixture(device, rising_edge, c_load, devices, vdd);

  circuit::TransientOptions options;
  options.t_end = fixture.t_end;
  options.dt = 0.05e-12;
  options.sample_every = 1e-12;

  const auto result = circuit::simulate(
      fixture.circuit, {fixture.in, fixture.out}, options);

  const auto& in = result.wave("in");
  const auto& out = result.wave("out");

  EdgeTiming timing;
  timing.v_final = out.back_value();
  const double target = rising_edge ? vdd : 0.0;
  timing.reaches_full_rail = std::fabs(timing.v_final - target) <= 0.05 * vdd;

  const double half = 0.5 * vdd;
  const auto t_in = in.time_of_crossing(half, rising_edge, 0.0);
  const auto t_out = out.time_of_crossing(half, rising_edge, 0.0);
  if (t_in && t_out)
    timing.delay_s = *t_out - *t_in;
  else
    timing.delay_s = std::numeric_limits<double>::infinity();
  return timing;
}

}  // namespace sramlp::ctrl
