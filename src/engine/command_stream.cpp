#include "engine/command_stream.h"

#include "util/error.h"

namespace sramlp::engine {

namespace {

sram::Scan to_scan(march::Direction direction) {
  return direction == march::Direction::kDown ? sram::Scan::kDescending
                                              : sram::Scan::kAscending;
}

}  // namespace

CommandStream::CommandStream(const march::MarchTest& test,
                             const march::AddressOrder& order,
                             const StreamOptions& options)
    : test_(options.invert_background ? test.complemented() : test),
      order_(&order),
      options_(options) {
  SRAMLP_REQUIRE(order_->size() > 0, "empty address order");
  SRAMLP_REQUIRE(!options_.low_power || order_->is_word_line_after_word_line(),
                 "the low-power schedule requires the "
                 "word-line-after-word-line address order (paper §4); "
                 "resolve the fallback before building the stream");
}

void CommandStream::reset() {
  element_ = 0;
  step_ = 0;
  op_ = 0;
  done_ = false;
  materialized_ = false;
}

void CommandStream::materialize() const {
  if (materialized_ || done_) return;
  const auto& elements = test_.elements();
  const march::MarchElement& element = elements[element_];

  current_ = StreamStep{};
  current_.element = element_;
  current_.op = op_;

  if (element.is_pause()) {
    current_.kind = StreamStep::Kind::kIdle;
    current_.idle_cycles = element.pause_cycles;
    materialized_ = true;
    return;
  }

  const march::Direction dir = element.direction;
  const std::size_t n = order_->size();
  const std::size_t ops = element.ops.size();
  const march::Address& addr = order_->at(step_, dir);

  // Row of the next address in test order (for the restore decision).
  // A following delay element forces a restore: bit-lines must not sit
  // discharged through a long idle window.
  std::optional<std::size_t> next_row;
  bool restore_before_pause = false;
  if (step_ + 1 < n) {
    next_row = order_->at(step_ + 1, dir).row;
  } else if (element_ + 1 < elements.size()) {
    if (elements[element_ + 1].is_pause()) {
      restore_before_pause = true;
    } else {
      const march::Direction next_dir = elements[element_ + 1].direction;
      next_row = order_->at(0, next_dir).row;
    }
  }

  const march::Operation op = element.ops[op_];
  current_.kind = StreamStep::Kind::kCycle;
  sram::CycleCommand& cmd = current_.command;
  cmd.row = addr.row;
  cmd.col_group = addr.col;
  cmd.is_read = march::is_read(op);
  cmd.value = march::value_of(op);
  cmd.background = options_.background;
  cmd.scan = to_scan(dir);
  cmd.restore_row_transition =
      options_.low_power && options_.row_transition_restore &&
      op_ + 1 == ops &&
      (restore_before_pause ||
       (next_row.has_value() && *next_row != addr.row));
  materialized_ = true;
}

void CommandStream::advance() {
  materialized_ = false;
  const auto& elements = test_.elements();
  const march::MarchElement& element = elements[element_];
  if (!element.is_pause()) {
    if (++op_ < element.ops.size()) return;
    op_ = 0;
    if (++step_ < order_->size()) return;
    step_ = 0;
  }
  if (++element_ >= elements.size()) done_ = true;
}

const StreamStep* CommandStream::peek() const {
  materialize();
  return done_ ? nullptr : &current_;
}

std::optional<StreamStep> CommandStream::next() {
  materialize();
  if (done_) return std::nullopt;
  StreamStep out = current_;
  advance();
  return out;
}

}  // namespace sramlp::engine
