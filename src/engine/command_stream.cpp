#include "engine/command_stream.h"

#include "util/error.h"

namespace sramlp::engine {

namespace {

sram::Scan to_scan(march::Direction direction) {
  return direction == march::Direction::kDown ? sram::Scan::kDescending
                                              : sram::Scan::kAscending;
}

}  // namespace

CommandStream::CommandStream(const march::MarchTest& test,
                             const march::AddressOrder& order,
                             const StreamOptions& options)
    : test_(options.invert_background ? test.complemented() : test),
      order_(&order),
      options_(options),
      wlawl_(order.is_word_line_after_word_line()) {
  SRAMLP_REQUIRE(order_->size() > 0, "empty address order");
  SRAMLP_REQUIRE(!options_.low_power || wlawl_,
                 "the low-power schedule requires the "
                 "word-line-after-word-line address order (paper §4); "
                 "resolve the fallback before building the stream");
}

bool CommandStream::peek_run(StreamRun* run) const {
  if (done_ || op_ != 0 || !wlawl_) return false;
  const auto& elements = test_.elements();
  const march::MarchElement& element = elements[element_];
  if (element.is_pause()) return false;

  const march::Direction dir = element.direction;
  const march::Address& addr = order_->at(step_, dir);
  const bool descending = dir == march::Direction::kDown;
  // WLAWL sequences keep each row's groups contiguous, so the rest of the
  // current row is exactly this many addresses.
  const std::size_t count =
      descending ? addr.col + 1 : order_->col_groups() - addr.col;

  run->element = element_;
  run->row = addr.row;
  run->first_group = addr.col;
  run->group_count = count;
  run->descending = descending;
  run->scan = to_scan(dir);
  run->restore_last = options_.low_power && options_.row_transition_restore &&
                      restore_eligible_after(element_, step_ + count - 1,
                                             addr.row);
  return true;
}

bool CommandStream::restore_eligible_after(std::size_t element_index,
                                           std::size_t step,
                                           std::size_t row) const {
  const auto& elements = test_.elements();
  const march::Direction dir = elements[element_index].direction;
  // Row of the next address in test order.  A following delay element
  // forces a restore: bit-lines must not sit discharged through a long
  // idle window.
  if (step + 1 < order_->size())
    return order_->at(step + 1, dir).row != row;
  if (element_index + 1 >= elements.size()) return false;
  if (elements[element_index + 1].is_pause()) return true;
  const march::Direction next_dir = elements[element_index + 1].direction;
  return order_->at(0, next_dir).row != row;
}

void CommandStream::skip_run(const StreamRun& run) {
  materialized_ = false;
  op_ = 0;
  step_ += run.group_count;
  if (step_ >= order_->size()) {
    step_ = 0;
    if (++element_ >= test_.elements().size()) done_ = true;
  }
}

void CommandStream::reset() {
  element_ = 0;
  step_ = 0;
  op_ = 0;
  done_ = false;
  materialized_ = false;
  cached_element_ = static_cast<std::size_t>(-1);
  cached_step_ = static_cast<std::size_t>(-1);
}

void CommandStream::materialize() const {
  if (materialized_ || done_) return;
  const auto& elements = test_.elements();
  const march::MarchElement& element = elements[element_];

  current_.element = element_;
  current_.op = op_;

  if (element.is_pause()) {
    current_.kind = StreamStep::Kind::kIdle;
    current_.idle_cycles = element.pause_cycles;
    materialized_ = true;
    return;
  }

  const std::size_t ops = element.ops.size();
  sram::CycleCommand& cmd = current_.command;

  if (element_ != cached_element_ || step_ != cached_step_) {
    const march::Direction dir = element.direction;
    const march::Address& addr = order_->at(step_, dir);
    cmd.row = addr.row;
    cmd.col_group = addr.col;
    cmd.background = options_.background;
    cmd.scan = to_scan(dir);
    cached_restore_eligible_ =
        restore_eligible_after(element_, step_, addr.row);
    cached_element_ = element_;
    cached_step_ = step_;
  }

  const march::Operation op = element.ops[op_];
  current_.kind = StreamStep::Kind::kCycle;
  current_.idle_cycles = 0;
  cmd.is_read = march::is_read(op);
  cmd.value = march::value_of(op);
  cmd.restore_row_transition =
      options_.low_power && options_.row_transition_restore &&
      op_ + 1 == ops && cached_restore_eligible_;
  materialized_ = true;
}

void CommandStream::advance() {
  materialized_ = false;
  const auto& elements = test_.elements();
  const march::MarchElement& element = elements[element_];
  if (!element.is_pause()) {
    if (++op_ < element.ops.size()) return;
    op_ = 0;
    if (++step_ < order_->size()) return;
    step_ = 0;
  }
  if (++element_ >= elements.size()) done_ = true;
}

const StreamStep* CommandStream::peek() const {
  materialize();
  return done_ ? nullptr : &current_;
}

std::optional<StreamStep> CommandStream::next() {
  materialize();
  if (done_) return std::nullopt;
  StreamStep out = current_;
  advance();
  return out;
}

}  // namespace sramlp::engine
