#include "engine/cycle_accurate_backend.h"

namespace sramlp::engine {

ExecutionResult CycleAccurateBackend::run(CommandStream& stream) {
  array_->reset_measurements();

  ExecutionResult result;
  while (const StreamStep* step = stream.peek()) {
    if (step->kind == StreamStep::Kind::kIdle) {
      array_->idle(step->idle_cycles);
    } else {
      const sram::CycleResult r = array_->cycle(step->command);
      if (step->command.is_read && r.mismatch) {
        ++result.mismatches;
        if (result.first_detections.size() < kMaxFirstDetections)
          result.first_detections.push_back(
              Detection{step->element, step->op, step->command.row,
                        step->command.col_group});
      }
    }
    stream.pop();
  }

  result.cycles = array_->meter().cycles();
  result.supply_energy_j = array_->meter().supply_total();
  result.energy_per_cycle_j = array_->meter().supply_per_cycle();
  result.meter = array_->meter();
  result.stats = array_->stats();
  return result;
}

}  // namespace sramlp::engine
