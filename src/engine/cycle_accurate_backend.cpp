#include "engine/cycle_accurate_backend.h"

#include <optional>
#include <vector>

namespace sramlp::engine {

namespace {

/// Detaches the sink from the meter on scope exit, so an exception mid-run
/// never leaves the array's meter pointing at a destroyed trace.
struct SinkGuard {
  power::EnergyMeter* meter = nullptr;
  ~SinkGuard() {
    if (meter != nullptr) meter->attach_sink(nullptr);
  }
};

}  // namespace

ExecutionResult CycleAccurateBackend::run(CommandStream& stream) {
  array_->reset_measurements();

  static_assert(kMaxFirstDetections <= sram::RunResult::kDetectionCap,
                "RunResult cannot carry enough detections per run");

  // Opt-in probe/sink wiring: the trace subscribes to the array's meter
  // for the duration of this run.  The array routes batched runs through
  // its per-cycle path while a sink is attached (bit-identical totals),
  // and the stream's element indices mark the attribution boundaries.
  std::optional<power::PowerTrace> trace;
  SinkGuard guard;
  if (stream.options().trace) {
    trace.emplace(*stream.options().trace, array_->config().tech.clock_period);
    array_->meter().attach_sink(&*trace);
    guard.meter = &array_->meter();
  }

  ExecutionResult result;
  // Operation list of the current element, translated once per element.
  std::vector<sram::RunOp> ops;
  std::size_t ops_element = static_cast<std::size_t>(-1);

  for (;;) {
    StreamRun srun;
    if (batch_runs_ && stream.peek_run(&srun)) {
      if (trace) trace->begin_element(srun.element, array_->meter().cycles());
      if (ops_element != srun.element) {
        ops.clear();
        for (const march::Operation op :
             stream.test().elements()[srun.element].ops)
          ops.push_back({march::is_read(op), march::value_of(op)});
        ops_element = srun.element;
      }
      sram::RunCommand rc;
      rc.row = srun.row;
      rc.first_group = srun.first_group;
      rc.group_count = srun.group_count;
      rc.descending = srun.descending;
      rc.ops = ops.data();
      rc.op_count = ops.size();
      rc.background = stream.options().background;
      rc.scan = srun.scan;
      rc.restore_last = srun.restore_last;
      const sram::RunResult rr = array_->execute_run(rc);
      result.mismatches += rr.mismatches;
      for (std::size_t i = 0;
           i < rr.detection_count &&
           result.first_detections.size() < kMaxFirstDetections;
           ++i)
        result.first_detections.push_back(Detection{
            srun.element, rr.detections[i].op, srun.row,
            rr.detections[i].group, rr.detections[i].col});
      stream.skip_run(srun);
      continue;
    }

    const StreamStep* step = stream.peek();
    if (step == nullptr) break;
    if (trace) trace->begin_element(step->element, array_->meter().cycles());
    if (step->kind == StreamStep::Kind::kIdle) {
      array_->idle(step->idle_cycles);
    } else {
      const sram::CycleResult r = array_->cycle(step->command);
      if (step->command.is_read && r.mismatch) {
        ++result.mismatches;
        if (result.first_detections.size() < kMaxFirstDetections)
          result.first_detections.push_back(
              Detection{step->element, step->op, step->command.row,
                        step->command.col_group, r.first_bad_col});
      }
    }
    stream.pop();
  }

  if (trace) {
    result.trace = trace->summarize(array_->meter().cycles());
    array_->meter().attach_sink(nullptr);
    guard.meter = nullptr;
  }

  result.cycles = array_->meter().cycles();
  result.supply_energy_j = array_->meter().supply_total();
  result.energy_per_cycle_j = array_->meter().supply_per_cycle();
  result.meter = array_->meter();
  result.stats = array_->stats();
  return result;
}

}  // namespace sramlp::engine
