#include "engine/cycle_accurate_backend.h"

#include <optional>
#include <vector>

namespace sramlp::engine {

namespace {

/// Detaches the sink from the meter on scope exit, so an exception mid-run
/// never leaves the array's meter pointing at a destroyed trace.
struct SinkGuard {
  power::EnergyMeter* meter = nullptr;
  ~SinkGuard() {
    if (meter != nullptr) meter->attach_sink(nullptr);
  }
};

/// Fan-out for runs that request both a trace and a waveform export.  It
/// keeps the default bulk_fold_supported() == false: the waveform side
/// needs every event, so the array must stay on its per-cycle path even
/// though the trace alone could fold.
struct TeeSink final : power::MeterSink {
  power::MeterSink* a = nullptr;
  power::MeterSink* b = nullptr;
  void on_add(power::EnergySource source, double joules, std::uint64_t count,
              std::uint64_t cycle) override {
    a->on_add(source, joules, count, cycle);
    b->on_add(source, joules, count, cycle);
  }
  void on_spread(power::EnergySource source, double joules,
                 std::uint64_t first_cycle, std::uint64_t cycles) override {
    a->on_spread(source, joules, first_cycle, cycles);
    b->on_spread(source, joules, first_cycle, cycles);
  }
};

}  // namespace

ExecutionResult CycleAccurateBackend::run(CommandStream& stream) {
  array_->reset_measurements();

  static_assert(kMaxFirstDetections <= sram::RunResult::kDetectionCap,
                "RunResult cannot carry enough detections per run");

  // Opt-in probe/sink wiring: the trace subscribes to the array's meter
  // for the duration of this run.  The array routes batched runs through
  // its per-cycle path while a sink is attached (bit-identical totals),
  // and the stream's element indices mark the attribution boundaries.
  std::optional<power::PowerTrace> trace;
  TeeSink tee;
  SinkGuard guard;
  if (stream.options().trace) {
    trace.emplace(*stream.options().trace, array_->config().tech.clock_period);
    if (stream.options().waveform_sink != nullptr) {
      tee.a = &*trace;
      tee.b = stream.options().waveform_sink;
      array_->meter().attach_sink(&tee);
    } else {
      array_->meter().attach_sink(&*trace);
    }
    guard.meter = &array_->meter();
  } else if (stream.options().waveform_sink != nullptr) {
    array_->meter().attach_sink(stream.options().waveform_sink);
    guard.meter = &array_->meter();
  }

  ExecutionResult result;
  // Operation list of the current element, translated once per element.
  std::vector<sram::RunOp> ops;
  std::size_t ops_element = static_cast<std::size_t>(-1);

  for (;;) {
    StreamRun srun;
    if (batch_runs_ && stream.peek_run(&srun)) {
      if (trace) trace->begin_element(srun.element, array_->meter().cycles());
      if (ops_element != srun.element) {
        ops.clear();
        for (const march::Operation op :
             stream.test().elements()[srun.element].ops)
          ops.push_back({march::is_read(op), march::value_of(op)});
        ops_element = srun.element;
      }
      sram::RunCommand rc;
      rc.row = srun.row;
      rc.first_group = srun.first_group;
      rc.group_count = srun.group_count;
      rc.descending = srun.descending;
      rc.ops = ops.data();
      rc.op_count = ops.size();
      rc.background = stream.options().background;
      rc.scan = srun.scan;
      rc.restore_last = srun.restore_last;
      const sram::RunResult rr = array_->execute_run(rc);
      result.mismatches += rr.mismatches;
      for (std::size_t i = 0;
           i < rr.detection_count &&
           result.first_detections.size() < kMaxFirstDetections;
           ++i)
        result.first_detections.push_back(Detection{
            srun.element, rr.detections[i].op, srun.row,
            rr.detections[i].group, rr.detections[i].col});
      stream.skip_run(srun);
      continue;
    }

    const StreamStep* step = stream.peek();
    if (step == nullptr) break;
    if (trace) trace->begin_element(step->element, array_->meter().cycles());
    if (step->kind == StreamStep::Kind::kIdle) {
      array_->idle(step->idle_cycles);
    } else {
      const sram::CycleResult r = array_->cycle(step->command);
      if (step->command.is_read && r.mismatch) {
        ++result.mismatches;
        if (result.first_detections.size() < kMaxFirstDetections)
          result.first_detections.push_back(
              Detection{step->element, step->op, step->command.row,
                        step->command.col_group, r.first_bad_col});
      }
    }
    stream.pop();
  }

  if (trace) {
    result.trace = trace->summarize(array_->meter().cycles());
    array_->meter().attach_sink(nullptr);
    guard.meter = nullptr;
  }

  result.cycles = array_->meter().cycles();
  result.supply_energy_j = array_->meter().supply_total();
  result.energy_per_cycle_j = array_->meter().supply_per_cycle();
  result.meter = array_->meter();
  result.stats = array_->stats();
  return result;
}

}  // namespace sramlp::engine
