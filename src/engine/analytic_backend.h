// The fast analytic backend: evaluates the paper's §5 closed-form model
// (power::AnalyticModel) instead of simulating per-cell state.  One run
// costs O(1) regardless of array size or algorithm length — orders of
// magnitude faster than the cycle-accurate backend for fault-free
// geometry / background / algorithm sweeps (Table 1 scale).
//
// Fault-free only: it has no cell state to disturb, so TestSession refuses
// to route a session with an attached fault model through it.
#pragma once

#include "engine/backend.h"
#include "power/technology.h"
#include "sram/geometry.h"

namespace sramlp::engine {

class AnalyticBackend final : public ExecutionBackend {
 public:
  AnalyticBackend(const power::TechnologyParams& tech,
                  const sram::Geometry& geometry)
      : tech_(tech), geometry_(geometry) {
    geometry_.validate();
  }

  const char* name() const override { return "analytic"; }
  bool supports_faults() const override { return false; }

  /// Evaluates the whole stream in closed form (the stream must be at its
  /// start) and marks it exhausted.  The low-power schedule is taken from
  /// the stream's options; PF / PLPT come from power::AnalyticModel.
  ExecutionResult run(CommandStream& stream) override;

 private:
  power::TechnologyParams tech_;
  sram::Geometry geometry_;
};

}  // namespace sramlp::engine
