// The fast analytic backend: evaluates the paper's §5 closed-form model
// (power::AnalyticModel) instead of simulating per-cell state.  One run
// costs O(1) regardless of array size or algorithm length — orders of
// magnitude faster than the cycle-accurate backend for fault-free
// geometry / background / algorithm sweeps (Table 1 scale).
//
// Fault-free only: it has no cell state to disturb, so TestSession refuses
// to route a session with an attached fault model through it.
#pragma once

#include "engine/backend.h"
#include "march/test.h"
#include "power/analytic.h"
#include "power/technology.h"
#include "sram/geometry.h"

namespace sramlp::engine {

/// Closed-form per-cycle supply expectation of ONE March element.  Every
/// term of the model's pf()/plpt() scales with either nothing, #elm/#ops
/// or the transition rate — all of which reduce to single-element counts —
/// so evaluating the model on a one-element AlgorithmCounts IS the
/// per-element rate, and the operation-weighted mean over elements
/// recovers the whole-algorithm figure.  This is the exact arithmetic the
/// AnalyticBackend uses for its traced per-element attribution; the
/// schedule-search evaluator (src/search/) memoizes it per element.
double analytic_element_rate(const power::AnalyticModel& model,
                             const march::MarchElement& element,
                             bool low_power);

class AnalyticBackend final : public ExecutionBackend {
 public:
  AnalyticBackend(const power::TechnologyParams& tech,
                  const sram::Geometry& geometry)
      : tech_(tech), geometry_(geometry) {
    geometry_.validate();
  }

  const char* name() const override { return "analytic"; }
  bool supports_faults() const override { return false; }

  /// Evaluates the whole stream in closed form (the stream must be at its
  /// start) and marks it exhausted.  The low-power schedule is taken from
  /// the stream's options; PF / PLPT come from power::AnalyticModel.
  ExecutionResult run(CommandStream& stream) override;

 private:
  power::TechnologyParams tech_;
  sram::Geometry geometry_;
};

}  // namespace sramlp::engine
