// CommandStream — the March sequencer, extracted into a pull-based
// generator.
//
// Historically three components re-derived the paper's sequencing rules
// independently: core::TestSession's triple-nested run loop, the
// BistController FSM, and ad-hoc loops in benches.  The stream is now the
// single owner of those decisions:
//
//   * walking (march element -> address-order step -> operation), with
//     delay ("Del") elements surfaced as idle blocks;
//   * the Fig. 7 row-transition restore: issued on the LAST operation of
//     the last address of a row (or before a pause, so bit-lines never sit
//     discharged through an idle window) when the low-power schedule is
//     active;
//   * the per-cycle scan direction, so backends pre-charge the correct
//     follower column for descending March elements.
//
// Backends (cycle-accurate array, closed-form analytic model, future
// batched/SIMD implementations) consume the stream; none of them re-derive
// scheduling.  The stream owns a copy of the March test but only borrows
// the address order: the caller (TestSession, BistController, ...) must
// keep the order alive for the stream's lifetime.
#pragma once

#include <cstdint>
#include <optional>

#include "march/address_order.h"
#include "march/test.h"
#include "power/trace.h"
#include "sram/background.h"
#include "sram/command.h"

namespace sramlp::engine {

/// One unit of work pulled from the stream: either a single clock cycle or
/// an idle block (a March delay element).
struct StreamStep {
  enum class Kind { kCycle, kIdle };
  Kind kind = Kind::kCycle;
  sram::CycleCommand command;     ///< valid when kind == kCycle
  std::uint64_t idle_cycles = 0;  ///< valid when kind == kIdle
  /// Position inside the March test (for detection reporting).
  std::size_t element = 0;
  std::size_t op = 0;
};

/// A whole-row batch of upcoming cycle steps: `group_count` consecutive
/// addresses of one word line inside one March element, each executing the
/// element's full operation list, with the stream's restore decision for
/// the run's final operation pre-resolved.  Runs exist so backends can
/// execute a row in one tight loop (sram::SramArray::execute_run) without
/// re-deriving any sequencing policy — the stream remains the single owner
/// of the restore and scan rules.
struct StreamRun {
  std::size_t element = 0;
  std::size_t row = 0;
  std::size_t first_group = 0;
  std::size_t group_count = 0;
  bool descending = false;
  sram::Scan scan = sram::Scan::kAscending;
  bool restore_last = false;  ///< Fig. 7 restore on the run's last op
};

/// Scheduling knobs resolved by the caller before the stream starts.
struct StreamOptions {
  /// Apply the low-power schedule (restore cycles at row hand-overs).
  /// The caller asserts the address order is compatible (word-line-after-
  /// word-line); TestSession's §4 fallback clears this flag otherwise.
  bool low_power = false;
  /// Issue the one-cycle functional restore at row transitions (Fig. 7).
  bool row_transition_restore = true;
  /// Run the complemented test (every operation's data bit flipped).
  bool invert_background = false;
  /// Data background carried verbatim on every command.
  sram::DataBackground background;
  /// Opt-in time-resolved power accounting: when set, trace-capable
  /// backends accumulate a power::PowerTrace over the run — element
  /// boundaries come from the stream's element indices — and attach its
  /// TraceSummary to the ExecutionResult.  Run totals are unaffected.
  std::optional<power::TraceConfig> trace;
  /// Optional per-event export sink (borrowed; e.g. a
  /// power::WaveformWriter).  Trace-capable backends subscribe it to the
  /// meter for the run — alongside the trace when both are requested.  A
  /// sink that needs the raw event stream forces per-cycle execution, so
  /// expect waveform runs to be slower than traced ones.
  power::MeterSink* waveform_sink = nullptr;
};

class CommandStream {
 public:
  /// @param order borrowed; must outlive the stream and match the test's
  ///   target geometry.
  CommandStream(const march::MarchTest& test, const march::AddressOrder& order,
                const StreamOptions& options);

  const march::MarchTest& test() const { return test_; }
  const march::AddressOrder& order() const { return *order_; }
  const StreamOptions& options() const { return options_; }

  /// Clock cycles the whole stream spans (operations + idle blocks).
  std::uint64_t total_cycles() const {
    return test_.cycle_count(order_->size());
  }

  bool done() const { return done_; }

  /// The step the next call to next() will return; nullptr once done.
  const StreamStep* peek() const;

  /// Pull one step; std::nullopt once the test is exhausted.
  std::optional<StreamStep> next();

  /// Describe the whole-row run starting at the cursor, when one exists:
  /// the cursor must sit on the first operation of an address, the order
  /// must be word-line-after-word-line (runs are row-contiguous by
  /// construction there), and the current element must not be a pause.
  /// Returns false otherwise; the per-step API always remains valid.
  bool peek_run(StreamRun* run) const;

  /// Advance the cursor past a run obtained from peek_run() (equivalent
  /// to pop()-ing each of its steps).
  void skip_run(const StreamRun& run);

  /// Discard the current step without copying it (peek()/pop() is the
  /// copy-free consumption idiom for per-cycle hot loops).
  void pop() {
    if (!done_) advance();
  }

  /// Rewind to the first step (cheap; no allocation).
  void reset();

  /// Mark the stream exhausted without enumerating the remaining steps
  /// (closed-form backends account for the whole run at once).
  void skip_to_end() {
    done_ = true;
    materialized_ = false;
  }

 private:
  void materialize() const;
  void advance();
  /// The Fig. 7 restore-eligibility of the last operation at address-step
  /// @p step of @p element_index: true when the next address in test
  /// order sits on a different row than @p row, or the next element is a
  /// pause (bit-lines must not sit discharged through an idle window).
  /// Single owner of the rule, shared by materialize() and peek_run().
  bool restore_eligible_after(std::size_t element_index, std::size_t step,
                              std::size_t row) const;

  march::MarchTest test_;  ///< owned (already complemented when requested)
  const march::AddressOrder* order_;
  StreamOptions options_;
  bool wlawl_ = false;  ///< order is word-line-after-word-line (cached)

  // Cursor: element -> address step -> operation.
  std::size_t element_ = 0;
  std::size_t step_ = 0;
  std::size_t op_ = 0;
  bool done_ = false;

  // Lazily materialized view of the current cursor position (cache only;
  // logically const).  The address-dependent fields of current_ (row,
  // column, scan, background, restore eligibility) are recomputed only
  // when the cursor moves to a new (element, step) pair; per-operation
  // fields refresh every materialize.
  mutable StreamStep current_;
  mutable bool materialized_ = false;
  mutable std::size_t cached_element_ = static_cast<std::size_t>(-1);
  mutable std::size_t cached_step_ = static_cast<std::size_t>(-1);
  mutable bool cached_restore_eligible_ = false;
};

}  // namespace sramlp::engine
