// Minimal fork-join parallelism for fault campaigns and sweeps.
//
// parallel_for(count, threads, fn) runs fn(0) .. fn(count-1) across a pool
// of worker threads pulling indices from a shared atomic counter.  Callers
// get deterministic *results* by writing to a preallocated slot per index
// (scheduling order is unspecified).  The first exception thrown by any
// job is rethrown on the calling thread after the pool joins.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sramlp::engine {

/// Resolve a requested worker count: 0 means one per hardware thread;
/// never more workers than jobs, never fewer than one.
inline unsigned resolve_thread_count(unsigned requested, std::size_t jobs) {
  unsigned threads = requested != 0 ? requested
                                    : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (jobs < threads) threads = static_cast<unsigned>(jobs);
  return threads == 0 ? 1 : threads;
}

inline void parallel_for(std::size_t count, unsigned requested_threads,
                         const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const unsigned threads = resolve_thread_count(requested_threads, count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sramlp::engine
