#include "engine/analytic_backend.h"

#include "power/analytic.h"
#include "power/trace.h"
#include "util/error.h"

namespace sramlp::engine {

double analytic_element_rate(const power::AnalyticModel& model,
                             const march::MarchElement& element,
                             bool low_power) {
  power::AlgorithmCounts counts;
  counts.elements = 1;
  counts.operations = static_cast<int>(element.ops.size());
  for (const march::Operation op : element.ops) {
    if (march::is_read(op))
      ++counts.reads;
    else
      ++counts.writes;
  }
  return low_power ? model.plpt(counts) : model.pf(counts);
}

ExecutionResult AnalyticBackend::run(CommandStream& stream) {
  SRAMLP_REQUIRE(!stream.done(),
                 "analytic backend needs the stream at its start");
  SRAMLP_REQUIRE(!stream.options().low_power ||
                     stream.options().row_transition_restore,
                 "the closed-form PLPT assumes the Fig. 7 row-transition "
                 "restore; run restore-disabled experiments on the "
                 "cycle-accurate backend");
  SRAMLP_REQUIRE(stream.order().size() == geometry_.words(),
                 "address order does not match the backend geometry");

  const power::AnalyticModel model(tech_, geometry_.rows, geometry_.cols,
                                   geometry_.word_width);
  const power::AlgorithmCounts counts = stream.test().counts();
  const march::MarchStats march_stats = stream.test().stats();

  const std::uint64_t op_cycles =
      static_cast<std::uint64_t>(counts.operations) *
      static_cast<std::uint64_t>(stream.order().size());
  const std::uint64_t idle_cycles = march_stats.pause_cycles;

  const double per_cycle = stream.options().low_power ? model.plpt(counts)
                                                      : model.pf(counts);

  ExecutionResult result;
  result.cycles = op_cycles + idle_cycles;
  result.supply_energy_j =
      per_cycle * static_cast<double>(op_cycles) +
      model.idle_energy_per_cycle() * static_cast<double>(idle_cycles);
  result.energy_per_cycle_j =
      result.cycles > 0
          ? result.supply_energy_j / static_cast<double>(result.cycles)
          : 0.0;
  // The closed-form model has no per-source or per-cell state; only the
  // aggregate counters are meaningful.
  result.stats.cycles = result.cycles;
  result.stats.reads = static_cast<std::uint64_t>(counts.reads) *
                       static_cast<std::uint64_t>(stream.order().size());
  result.stats.writes = static_cast<std::uint64_t>(counts.writes) *
                        static_cast<std::uint64_t>(stream.order().size());

  // Closed-form trace: the per-element expectation, spread uniformly over
  // each element's cycle span.  Cycle boundaries are exactly the ones a
  // cycle-accurate traced run reports (MarchTest::element_cycles); the
  // energies are the model's per-element rates, parity-tested against the
  // measured per-element totals in test_engine.cpp.
  if (stream.options().trace) {
    power::PowerTrace trace(*stream.options().trace, tech_.clock_period);
    const auto& elements = stream.test().elements();
    const std::size_t words = stream.order().size();
    std::uint64_t cursor = 0;
    for (std::size_t i = 0; i < elements.size(); ++i) {
      const std::uint64_t span = stream.test().element_cycles(i, words);
      trace.begin_element(i, cursor);
      const double energy =
          elements[i].is_pause()
              ? static_cast<double>(span) * model.idle_energy_per_cycle()
              : static_cast<double>(span) *
                    analytic_element_rate(model, elements[i],
                                          stream.options().low_power);
      trace.add_supply_block(energy, cursor, span);
      cursor += span;
    }
    result.trace = trace.summarize(cursor);
  }

  stream.skip_to_end();
  return result;
}

}  // namespace sramlp::engine
