// ExecutionBackend — what executes a CommandStream.
//
// The engine decouples *what the test controller issues* (the stream) from
// *what runs it*.  Two backends ship today:
//
//   * CycleAccurateBackend — the per-cell SramArray simulator; supports
//     fault injection and full per-source energy accounting;
//   * AnalyticBackend — the paper's §5 closed-form model; fault-free only,
//     O(1) per run, for geometry/background/algorithm sweeps.
//
// Future backends (batched, SIMD, distributed) plug in here.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "engine/command_stream.h"
#include "power/meter.h"
#include "power/trace.h"
#include "sram/array.h"

namespace sramlp::engine {

/// How many mismatch locations a run records before it stops collecting
/// (enough to localise a fault without unbounded growth on gross failures).
inline constexpr std::size_t kMaxFirstDetections = 16;

/// Location of a detected mismatch (the first kMaxFirstDetections are
/// recorded).
struct Detection {
  std::size_t element = 0;
  std::size_t op = 0;
  std::size_t row = 0;
  std::size_t col_group = 0;
  /// Cell column of the first mismatched bit of the read cycle: (row, col)
  /// names the exact cell, which is what multi-fault campaign batching
  /// needs to attribute a detection to one injected fault.
  std::size_t col = 0;
};

/// Everything a backend measures over one stream execution.
struct ExecutionResult {
  std::uint64_t cycles = 0;
  double supply_energy_j = 0.0;
  double energy_per_cycle_j = 0.0;
  power::EnergyMeter meter;  ///< per-source accounting (cycle-accurate only)
  sram::ArrayStats stats;    ///< run counters (cycle-accurate only)
  std::uint64_t mismatches = 0;
  std::vector<Detection> first_detections;
  /// Time-resolved accounting; present iff the stream's options requested
  /// a trace and the backend supports tracing (both shipped backends do:
  /// the cycle-accurate one measures, the analytic one emits its
  /// closed-form per-element expectation).
  std::optional<power::TraceSummary> trace;
  bool detected() const { return mismatches > 0; }
};

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Human-readable backend identifier (reports, benches).
  virtual const char* name() const = 0;

  /// True when the backend honours an attached fault model.  Callers must
  /// not route faulty runs through backends that would silently ignore the
  /// faults (TestSession enforces this).
  virtual bool supports_faults() const = 0;

  /// Execute @p stream from its current position to exhaustion.
  virtual ExecutionResult run(CommandStream& stream) = 0;
};

}  // namespace sramlp::engine
