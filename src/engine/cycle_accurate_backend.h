// The cycle-accurate backend: drives a caller-owned sram::SramArray from a
// CommandStream.  This is the reference executor — full fault support,
// per-source energy metering, and the bit-line decay physics.
//
// Whole-row batches: when the stream can describe the rest of a word line
// as one StreamRun (word-line-after-word-line orders), the backend hands
// the whole row to SramArray::execute_run, which executes it in one tight
// loop — bit-identical results, a fraction of the per-cycle dispatch cost.
// Any position the stream cannot batch (non-WLAWL orders, pauses) falls
// back to the per-step path transparently.
#pragma once

#include "engine/backend.h"

namespace sramlp::engine {

class CycleAccurateBackend final : public ExecutionBackend {
 public:
  /// @param array borrowed; the caller keeps ownership (and can inspect
  ///   cell contents after the run).  Meters are reset when run() starts.
  /// @param batch_runs pull whole-row StreamRuns when available; disable
  ///   to force the per-step path (the batch-assembly parity tests do).
  explicit CycleAccurateBackend(sram::SramArray& array, bool batch_runs = true)
      : array_(&array), batch_runs_(batch_runs) {}

  const char* name() const override { return "cycle-accurate"; }
  bool supports_faults() const override { return true; }

  ExecutionResult run(CommandStream& stream) override;

  sram::SramArray& array() { return *array_; }

 private:
  sram::SramArray* array_;
  bool batch_runs_;
};

}  // namespace sramlp::engine
