// The cycle-accurate backend: drives a caller-owned sram::SramArray one
// CycleCommand at a time.  This is the reference executor — full fault
// support, per-source energy metering, and the bit-line decay physics.
#pragma once

#include "engine/backend.h"

namespace sramlp::engine {

class CycleAccurateBackend final : public ExecutionBackend {
 public:
  /// @param array borrowed; the caller keeps ownership (and can inspect
  ///   cell contents after the run).  Meters are reset when run() starts.
  explicit CycleAccurateBackend(sram::SramArray& array) : array_(&array) {}

  const char* name() const override { return "cycle-accurate"; }
  bool supports_faults() const override { return true; }

  ExecutionResult run(CommandStream& stream) override;

  sram::SramArray& array() { return *array_; }

 private:
  sram::SramArray* array_;
};

}  // namespace sramlp::engine
