#include "io/framing.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.h"
#include "util/error.h"

namespace sramlp::io {

namespace {

obs::Counter& bytes_sent_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "sramlp_bytes_sent_total", "Bytes framed and sent over LineChannels");
  return c;
}

obs::Counter& bytes_received_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "sramlp_bytes_received_total", "Bytes received over LineChannels");
  return c;
}

constexpr std::string_view kUnixPrefix = "unix:";
constexpr std::string_view kTcpPrefix = "tcp:";

struct ParsedAddress {
  bool is_unix = false;
  std::string path;          // unix
  std::string host = "127.0.0.1";  // tcp
  std::uint16_t port = 0;          // tcp
};

ParsedAddress parse_address(const std::string& address) {
  ParsedAddress parsed;
  if (address.rfind(kUnixPrefix, 0) == 0) {
    parsed.is_unix = true;
    parsed.path = address.substr(kUnixPrefix.size());
    SRAMLP_REQUIRE(!parsed.path.empty(), "empty unix socket path");
    // sun_path is a fixed 108-byte field; a longer path would silently
    // truncate into a different filesystem name.
    SRAMLP_REQUIRE(parsed.path.size() < sizeof(sockaddr_un{}.sun_path),
                   "unix socket path too long: " + parsed.path);
    return parsed;
  }
  SRAMLP_REQUIRE(address.rfind(kTcpPrefix, 0) == 0,
                 "address must start with unix: or tcp:, got '" + address +
                     "'");
  std::string rest = address.substr(kTcpPrefix.size());
  const std::size_t colon = rest.rfind(':');
  std::string port_text;
  if (colon == std::string::npos) {
    port_text = rest;
  } else {
    parsed.host = rest.substr(0, colon);
    port_text = rest.substr(colon + 1);
  }
  SRAMLP_REQUIRE(!port_text.empty() && port_text.find_first_not_of(
                                           "0123456789") == std::string::npos,
                 "tcp address needs a numeric port, got '" + address + "'");
  const unsigned long port = std::stoul(port_text);
  SRAMLP_REQUIRE(port <= 65535, "tcp port out of range in '" + address + "'");
  parsed.port = static_cast<std::uint16_t>(port);
  return parsed;
}

Socket make_socket(const ParsedAddress& parsed) {
  const int fd = ::socket(parsed.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  SRAMLP_REQUIRE(fd >= 0,
                 std::string("socket() failed: ") + std::strerror(errno));
  return Socket(fd);
}

sockaddr_un unix_sockaddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_sockaddr(const ParsedAddress& parsed) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(parsed.port);
  SRAMLP_REQUIRE(
      ::inet_pton(AF_INET, parsed.host.c_str(), &addr.sin_addr) == 1,
      "tcp host must be a dotted IPv4 address, got '" + parsed.host + "'");
  return addr;
}

/// The steal protocol is small request/response frames; with Nagle on,
/// every lease round-trip stalls ~40 ms against delayed ACKs and the
/// whole service becomes RTT-bound instead of compute-bound.  No-op on
/// Unix sockets (the option is TCP-only; failure is ignored).
void disable_nagle(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

// --- Socket ------------------------------------------------------------------

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --- listen / connect --------------------------------------------------------

Socket listen_socket(const std::string& address, int backlog) {
  const ParsedAddress parsed = parse_address(address);
  Socket sock = make_socket(parsed);
  int rc = 0;
  if (parsed.is_unix) {
    ::unlink(parsed.path.c_str());  // stale endpoint from a killed daemon
    const sockaddr_un addr = unix_sockaddr(parsed.path);
    rc = ::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr);
  } else {
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    const sockaddr_in addr = tcp_sockaddr(parsed);
    rc = ::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr);
  }
  SRAMLP_REQUIRE(rc == 0, "cannot bind " + address + ": " +
                              std::strerror(errno));
  SRAMLP_REQUIRE(::listen(sock.fd(), backlog) == 0,
                 "cannot listen on " + address + ": " + std::strerror(errno));
  return sock;
}

std::string local_address(const Socket& listener) {
  sockaddr_storage storage{};
  socklen_t len = sizeof storage;
  SRAMLP_REQUIRE(::getsockname(listener.fd(),
                               reinterpret_cast<sockaddr*>(&storage),
                               &len) == 0,
                 std::string("getsockname failed: ") + std::strerror(errno));
  if (storage.ss_family == AF_UNIX) {
    const auto* addr = reinterpret_cast<const sockaddr_un*>(&storage);
    return std::string(kUnixPrefix) + addr->sun_path;
  }
  const auto* addr = reinterpret_cast<const sockaddr_in*>(&storage);
  char host[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr->sin_addr, host, sizeof host);
  return std::string(kTcpPrefix) + host + ":" +
         std::to_string(ntohs(addr->sin_port));
}

Socket accept_connection(const Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      disable_nagle(fd);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    // A listener shut down (or closed) from another thread is the normal
    // stop signal, not an error.
    if (errno == EINVAL || errno == EBADF || errno == ECONNABORTED)
      return Socket();
    throw Error(std::string("accept failed: ") + std::strerror(errno));
  }
}

Socket connect_socket(const std::string& address, int timeout_ms) {
  const ParsedAddress parsed = parse_address(address);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    Socket sock = make_socket(parsed);
    int rc = 0;
    if (parsed.is_unix) {
      const sockaddr_un addr = unix_sockaddr(parsed.path);
      rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr);
    } else {
      const sockaddr_in addr = tcp_sockaddr(parsed);
      rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr);
    }
    if (rc == 0) {
      disable_nagle(sock.fd());
      return sock;
    }
    const int err = errno;
    // A signal landing mid-connect is not a dead peer: the attempt is
    // abandoned with the socket (a fresh one is made next iteration) and
    // retried immediately, without burning the backoff sleep.  The stress
    // suite's signal storm (test_steal_queue_stress) turned this from a
    // theoretical case into a reliable connect failure.
    if (err == EINTR) continue;
    // A daemon that has not bound its endpoint yet shows up as refused
    // (TCP, or a stale unix inode) or missing (unix path not created);
    // within the timeout those are "try again", everything else is fatal.
    const bool retryable =
        err == ECONNREFUSED || err == ENOENT || err == ECONNRESET;
    if (!retryable || std::chrono::steady_clock::now() >= deadline)
      throw Error("cannot connect to " + address + ": " +
                  std::strerror(err));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

// --- LineChannel -------------------------------------------------------------

bool LineChannel::send(const JsonValue& value) {
  const std::string frame = value.dump() + '\n';
  std::lock_guard<std::mutex> lock(send_mutex_);
  if (!socket_.valid()) return false;
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(socket_.fd(), frame.data() + sent,
                             frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  bytes_sent_counter().inc(sent);
  return true;
}

std::optional<JsonValue> LineChannel::receive() {
  for (;;) {
    const std::size_t newline = read_buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = read_buffer_.substr(0, newline);
      read_buffer_.erase(0, newline + 1);
      if (line.empty()) continue;
      try {
        return JsonValue::parse(line);
      } catch (const Error&) {
        return std::nullopt;  // garbled frame: treat the peer as dead
      }
    }
    if (peer_dead_ || !socket_.valid()) return std::nullopt;
    char chunk[4096];
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof chunk, 0);
    if (n > 0) {
      read_buffer_.append(chunk, static_cast<std::size_t>(n));
      bytes_received_counter().inc(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // EOF or error: whatever is buffered without a newline is a truncated
    // frame from a dying peer — drop it, report end-of-stream.
    peer_dead_ = true;
    return std::nullopt;
  }
}

}  // namespace sramlp::io
