#include "io/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace sramlp::io {

namespace {

/// Shortest format guaranteed to round-trip every finite double.
std::string format_double(double value) {
  SRAMLP_REQUIRE(std::isfinite(value),
                 "JSON cannot represent a non-finite number");
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Parse (and emit) recursion ceiling.  The parser is recursive-descent,
/// so nesting depth is stack depth: without a cap, a frame of a few
/// thousand '[' bytes overflows the stack (found by tests/fuzz/fuzz_json
/// in about a second).  64 levels is far beyond any document the
/// serializers produce (deepest real shape: ~6 levels), and parse rejects
/// deeper input with a normal Error instead of crashing.
constexpr int kMaxParseDepth = 64;

/// Recursive-descent parser over a string_view with offset-based errors.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    SRAMLP_REQUIRE(pos_ == text_.size(),
                   "JSON: trailing characters at offset " +
                       std::to_string(pos_));
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    if (depth_ >= kMaxParseDepth) fail("nesting too deep");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::null();
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    ++depth_;
    JsonValue obj = JsonValue::object();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return obj;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      obj.set(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') {
        --depth_;
        return obj;
      }
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    ++depth_;
    JsonValue arr = JsonValue::array();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') {
        --depth_;
        return arr;
      }
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // UTF-8 encode (BMP only; our own writer never emits \u beyond
          // control characters, surrogate pairs are rejected).
          SRAMLP_REQUIRE(code < 0xD800 || code > 0xDFFF,
                         "JSON: surrogate pairs are not supported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("bad number");
    if (integral && token[0] != '-') {
      // Exact unsigned lane: untruncated uint64_t plus the double view.
      errno = 0;
      char* end = nullptr;
      const unsigned long long u = std::strtoull(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size())
        return JsonValue::integer(static_cast<std::uint64_t>(u));
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number");
    SRAMLP_REQUIRE(std::isfinite(d), "JSON: number overflows a double");
    return JsonValue::number(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;  ///< current container nesting (kMaxParseDepth cap)
};

}  // namespace

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double value) {
  SRAMLP_REQUIRE(std::isfinite(value),
                 "JSON cannot represent a non-finite number");
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::integer(std::uint64_t value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = static_cast<double>(value);
  v.uint_ = value;
  v.exact_uint_ = true;
  return v;
}

JsonValue JsonValue::string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  SRAMLP_REQUIRE(kind_ == Kind::kBool, "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  SRAMLP_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

std::uint64_t JsonValue::as_uint() const {
  SRAMLP_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  SRAMLP_REQUIRE(exact_uint_,
                 "JSON number is not an exact unsigned integer");
  return uint_;
}

const std::string& JsonValue::as_string() const {
  SRAMLP_REQUIRE(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return elements_.size();
  if (kind_ == Kind::kObject) return members_.size();
  throw Error("JSON value has no size (not an array or object)");
}

const JsonValue& JsonValue::at(std::size_t index) const {
  SRAMLP_REQUIRE(kind_ == Kind::kArray, "JSON value is not an array");
  SRAMLP_REQUIRE(index < elements_.size(), "JSON array index out of range");
  return elements_[index];
}

JsonValue& JsonValue::push_back(JsonValue value) {
  SRAMLP_REQUIRE(kind_ == Kind::kArray, "JSON value is not an array");
  elements_.push_back(std::move(value));
  return elements_.back();
}

bool JsonValue::has(std::string_view key) const {
  SRAMLP_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  for (const auto& [k, v] : members_)
    if (k == key) return true;
  return false;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  SRAMLP_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  for (const auto& [k, v] : members_)
    if (k == key) return v;
  throw Error("JSON object has no member '" + std::string(key) + "'");
}

const JsonValue& JsonValue::get(std::string_view key) const {
  static const JsonValue kNull;
  SRAMLP_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  for (const auto& [k, v] : members_)
    if (k == key) return v;
  return kNull;
}

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  SRAMLP_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  SRAMLP_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  return members_;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_and_pad = [&](int levels) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * levels), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kNumber:
      out += exact_uint_ ? std::to_string(uint_) : format_double(number_);
      return;
    case Kind::kString: append_escaped(out, string_); return;
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        if (i) out += ',';
        newline_and_pad(depth + 1);
        elements_[i].dump_to(out, indent, depth + 1);
      }
      newline_and_pad(depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        newline_and_pad(depth + 1);
        append_escaped(out, members_[i].first);
        out += ':';
        if (indent > 0) out += ' ';
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_and_pad(depth);
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace sramlp::io
