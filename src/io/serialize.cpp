#include "io/serialize.h"

#include "march/algorithms.h"
#include "util/error.h"

namespace sramlp::io {

namespace {

JsonValue coord_to_json(const sram::CellCoord& cell) {
  JsonValue v = JsonValue::object();
  v.set("row", JsonValue::integer(cell.row));
  v.set("col", JsonValue::integer(cell.col));
  return v;
}

sram::CellCoord coord_from_json(const JsonValue& json) {
  return {json.at("row").as_size(), json.at("col").as_size()};
}

const char* background_slug(sram::BackgroundKind kind) {
  switch (kind) {
    case sram::BackgroundKind::kSolid0: return "solid0";
    case sram::BackgroundKind::kSolid1: return "solid1";
    case sram::BackgroundKind::kCheckerboard: return "checkerboard";
    case sram::BackgroundKind::kRowStripes: return "row_stripes";
    case sram::BackgroundKind::kColumnStripes: return "column_stripes";
  }
  throw Error("invalid BackgroundKind");
}

const char* column_model_slug(sram::ColumnModel model) {
  switch (model) {
    case sram::ColumnModel::kBitslicedCohort: return "bitsliced_cohort";
    case sram::ColumnModel::kPerColumnReference: return "per_column_reference";
  }
  throw Error("invalid ColumnModel");
}

sram::ColumnModel column_model_from_slug(const std::string& slug) {
  for (const auto model : {sram::ColumnModel::kBitslicedCohort,
                           sram::ColumnModel::kPerColumnReference})
    if (slug == column_model_slug(model)) return model;
  throw Error("unknown column model '" + slug + "'");
}

const char* direction_slug(march::Direction direction) {
  switch (direction) {
    case march::Direction::kUp: return "up";
    case march::Direction::kDown: return "down";
    case march::Direction::kEither: return "either";
  }
  throw Error("invalid Direction");
}

march::Direction direction_from_slug(const std::string& slug) {
  for (const auto d : {march::Direction::kUp, march::Direction::kDown,
                       march::Direction::kEither})
    if (slug == direction_slug(d)) return d;
  throw Error("unknown march direction '" + slug + "'");
}

march::Operation operation_from_string(const std::string& text) {
  for (const auto op : {march::Operation::kR0, march::Operation::kR1,
                        march::Operation::kW0, march::Operation::kW1})
    if (text == march::to_string(op)) return op;
  throw Error("unknown march operation '" + text + "'");
}

constexpr faults::FaultKind kAllFaultKinds[] = {
    faults::FaultKind::kStuckAt0,
    faults::FaultKind::kStuckAt1,
    faults::FaultKind::kTransitionUp,
    faults::FaultKind::kTransitionDown,
    faults::FaultKind::kWriteDisturb,
    faults::FaultKind::kReadDestructive,
    faults::FaultKind::kDeceptiveReadDestructive,
    faults::FaultKind::kIncorrectRead,
    faults::FaultKind::kCouplingInversion,
    faults::FaultKind::kCouplingIdempotent,
    faults::FaultKind::kCouplingState,
    faults::FaultKind::kDynamicReadDestructive,
    faults::FaultKind::kResSensitive,
    faults::FaultKind::kDataRetention,
};

faults::FaultKind fault_kind_from_string(const std::string& name) {
  for (const auto kind : kAllFaultKinds)
    if (name == faults::to_string(kind)) return kind;
  throw Error("unknown fault kind '" + name + "'");
}

}  // namespace

// --- sram --------------------------------------------------------------------

JsonValue to_json(const sram::Geometry& geometry) {
  JsonValue v = JsonValue::object();
  v.set("rows", JsonValue::integer(geometry.rows));
  v.set("cols", JsonValue::integer(geometry.cols));
  v.set("word_width", JsonValue::integer(geometry.word_width));
  return v;
}

sram::Geometry geometry_from_json(const JsonValue& json) {
  sram::Geometry g;
  g.rows = json.at("rows").as_size();
  g.cols = json.at("cols").as_size();
  g.word_width = json.at("word_width").as_size();
  g.validate();
  return g;
}

JsonValue to_json(const sram::DataBackground& background) {
  return JsonValue::string(background_slug(background.kind()));
}

sram::DataBackground background_from_json(const JsonValue& json) {
  const std::string& slug = json.as_string();
  for (const auto kind : sram::DataBackground::kinds())
    if (slug == background_slug(kind)) return sram::DataBackground(kind);
  throw Error("unknown data background '" + slug + "'");
}

// --- march -------------------------------------------------------------------

JsonValue to_json(const march::MarchTest& test) {
  JsonValue v = JsonValue::object();
  v.set("name", JsonValue::string(test.name()));
  JsonValue elements = JsonValue::array();
  for (const march::MarchElement& e : test.elements()) {
    JsonValue el = JsonValue::object();
    if (e.is_pause()) {
      el.set("pause_cycles", JsonValue::integer(e.pause_cycles));
    } else {
      el.set("direction", JsonValue::string(direction_slug(e.direction)));
      JsonValue ops = JsonValue::array();
      for (const march::Operation op : e.ops)
        ops.push_back(JsonValue::string(march::to_string(op)));
      el.set("ops", std::move(ops));
    }
    elements.push_back(std::move(el));
  }
  v.set("elements", std::move(elements));
  return v;
}

march::MarchTest march_from_json(const JsonValue& json) {
  const std::string& name = json.at("name").as_string();
  if (!json.has("elements")) {
    // Bare name: look the algorithm up in the built-in library.
    for (const march::MarchTest& test : march::algorithms::all())
      if (test.name() == name) return test;
    throw Error("unknown built-in March algorithm '" + name + "'");
  }
  const JsonValue& elements = json.at("elements");
  std::vector<march::MarchElement> parsed;
  parsed.reserve(elements.size());
  for (std::size_t i = 0; i < elements.size(); ++i) {
    const JsonValue& el = elements.at(i);
    march::MarchElement e;
    if (el.has("pause_cycles")) {
      e.pause_cycles = el.at("pause_cycles").as_size();
    } else {
      e.direction = direction_from_slug(el.at("direction").as_string());
      const JsonValue& ops = el.at("ops");
      for (std::size_t j = 0; j < ops.size(); ++j)
        e.ops.push_back(operation_from_string(ops.at(j).as_string()));
    }
    parsed.push_back(std::move(e));
  }
  return march::MarchTest(name, std::move(parsed));
}

// --- power -------------------------------------------------------------------

JsonValue to_json(const power::TechnologyParams& tech) {
  JsonValue v = JsonValue::object();
  v.set("vdd", JsonValue::number(tech.vdd));
  v.set("clock_period", JsonValue::number(tech.clock_period));
  v.set("c_bitline", JsonValue::number(tech.c_bitline));
  v.set("c_cellnode", JsonValue::number(tech.c_cellnode));
  v.set("c_wordline_per_column",
        JsonValue::number(tech.c_wordline_per_column));
  v.set("read_swing", JsonValue::number(tech.read_swing));
  v.set("res_fight_current", JsonValue::number(tech.res_fight_current));
  v.set("decay_tau_cycles", JsonValue::number(tech.decay_tau_cycles));
  v.set("discharged_threshold",
        JsonValue::number(tech.discharged_threshold));
  v.set("e_decoder_per_address_bit",
        JsonValue::number(tech.e_decoder_per_address_bit));
  v.set("e_addressbus_per_bit", JsonValue::number(tech.e_addressbus_per_bit));
  v.set("e_clock_tree", JsonValue::number(tech.e_clock_tree));
  v.set("e_sense_amp_per_bit", JsonValue::number(tech.e_sense_amp_per_bit));
  v.set("e_write_driver_per_bit",
        JsonValue::number(tech.e_write_driver_per_bit));
  v.set("e_data_io_per_bit", JsonValue::number(tech.e_data_io_per_bit));
  v.set("e_control_base", JsonValue::number(tech.e_control_base));
  v.set("c_control_element", JsonValue::number(tech.c_control_element));
  return v;
}

power::TechnologyParams technology_from_json(const JsonValue& json) {
  power::TechnologyParams tech;
  tech.vdd = json.at("vdd").as_double();
  tech.clock_period = json.at("clock_period").as_double();
  tech.c_bitline = json.at("c_bitline").as_double();
  tech.c_cellnode = json.at("c_cellnode").as_double();
  tech.c_wordline_per_column = json.at("c_wordline_per_column").as_double();
  tech.read_swing = json.at("read_swing").as_double();
  tech.res_fight_current = json.at("res_fight_current").as_double();
  tech.decay_tau_cycles = json.at("decay_tau_cycles").as_double();
  tech.discharged_threshold = json.at("discharged_threshold").as_double();
  tech.e_decoder_per_address_bit =
      json.at("e_decoder_per_address_bit").as_double();
  tech.e_addressbus_per_bit = json.at("e_addressbus_per_bit").as_double();
  tech.e_clock_tree = json.at("e_clock_tree").as_double();
  tech.e_sense_amp_per_bit = json.at("e_sense_amp_per_bit").as_double();
  tech.e_write_driver_per_bit = json.at("e_write_driver_per_bit").as_double();
  tech.e_data_io_per_bit = json.at("e_data_io_per_bit").as_double();
  tech.e_control_base = json.at("e_control_base").as_double();
  tech.c_control_element = json.at("c_control_element").as_double();
  tech.validate();
  return tech;
}

JsonValue to_json(const power::EnergyMeter& meter) {
  JsonValue v = JsonValue::object();
  v.set("cycles", JsonValue::integer(meter.cycles()));
  JsonValue totals = JsonValue::object();
  for (std::size_t i = 0; i < power::kEnergySourceCount; ++i) {
    const auto source = static_cast<power::EnergySource>(i);
    const double energy = meter.total(source);
    if (energy != 0.0)
      totals.set(power::to_string(source), JsonValue::number(energy));
  }
  v.set("totals", std::move(totals));
  return v;
}

power::EnergyMeter meter_from_json(const JsonValue& json) {
  power::EnergyMeter meter;
  meter.tick_cycles(json.at("cycles").as_uint());
  const JsonValue& totals = json.at("totals");
  for (const auto& [name, value] : totals.members()) {
    bool found = false;
    for (std::size_t i = 0; i < power::kEnergySourceCount && !found; ++i) {
      const auto source = static_cast<power::EnergySource>(i);
      if (name == power::to_string(source)) {
        // One add() per source reproduces the serialized total exactly.
        meter.add(source, value.as_double());
        found = true;
      }
    }
    SRAMLP_REQUIRE(found, "unknown energy source '" + name + "'");
  }
  return meter;
}

JsonValue to_json(const power::TraceSummary& trace) {
  JsonValue v = JsonValue::object();
  v.set("window_cycles", JsonValue::integer(trace.window_cycles));
  v.set("total_cycles", JsonValue::integer(trace.total_cycles));
  v.set("windows", JsonValue::integer(trace.windows));
  v.set("peak_window", JsonValue::integer(trace.peak_window));
  v.set("peak_window_energy_j", JsonValue::number(trace.peak_window_energy_j));
  v.set("peak_power_w", JsonValue::number(trace.peak_power_w));
  v.set("supply_energy_j", JsonValue::number(trace.supply_energy_j));
  v.set("average_power_w", JsonValue::number(trace.average_power_w));
  JsonValue elements = JsonValue::array();
  for (const power::ElementEnergy& e : trace.elements) {
    JsonValue el = JsonValue::object();
    el.set("element", JsonValue::integer(e.element));
    el.set("start_cycle", JsonValue::integer(e.start_cycle));
    el.set("cycles", JsonValue::integer(e.cycles));
    el.set("supply_energy_j", JsonValue::number(e.supply_energy_j));
    el.set("precharge_energy_j", JsonValue::number(e.precharge_energy_j));
    elements.push_back(std::move(el));
  }
  v.set("elements", std::move(elements));
  if (!trace.window_supply_j.empty()) {
    JsonValue windows = JsonValue::array();
    for (const double w : trace.window_supply_j)
      windows.push_back(JsonValue::number(w));
    v.set("window_supply_j", std::move(windows));
  }
  return v;
}

power::TraceSummary trace_summary_from_json(const JsonValue& json) {
  power::TraceSummary trace;
  trace.window_cycles = json.at("window_cycles").as_uint();
  trace.total_cycles = json.at("total_cycles").as_uint();
  trace.windows = json.at("windows").as_uint();
  trace.peak_window = json.at("peak_window").as_uint();
  trace.peak_window_energy_j = json.at("peak_window_energy_j").as_double();
  trace.peak_power_w = json.at("peak_power_w").as_double();
  trace.supply_energy_j = json.at("supply_energy_j").as_double();
  trace.average_power_w = json.at("average_power_w").as_double();
  const JsonValue& elements = json.at("elements");
  trace.elements.reserve(elements.size());
  for (std::size_t i = 0; i < elements.size(); ++i) {
    const JsonValue& el = elements.at(i);
    power::ElementEnergy e;
    e.element = el.at("element").as_size();
    e.start_cycle = el.at("start_cycle").as_uint();
    e.cycles = el.at("cycles").as_uint();
    e.supply_energy_j = el.at("supply_energy_j").as_double();
    e.precharge_energy_j = el.at("precharge_energy_j").as_double();
    trace.elements.push_back(e);
  }
  if (json.has("window_supply_j")) {
    const JsonValue& windows = json.at("window_supply_j");
    trace.window_supply_j.reserve(windows.size());
    for (std::size_t i = 0; i < windows.size(); ++i)
      trace.window_supply_j.push_back(windows.at(i).as_double());
  }
  return trace;
}

// --- core configuration ------------------------------------------------------

std::string to_slug(sram::Mode mode) {
  switch (mode) {
    case sram::Mode::kFunctional: return "functional";
    case sram::Mode::kLowPowerTest: return "low_power_test";
  }
  throw Error("invalid Mode");
}

sram::Mode mode_from_slug(const std::string& slug) {
  for (const auto mode : {sram::Mode::kFunctional, sram::Mode::kLowPowerTest})
    if (slug == to_slug(mode)) return mode;
  throw Error("unknown mode '" + slug + "'");
}

std::string to_slug(core::BackendChoice backend) {
  switch (backend) {
    case core::BackendChoice::kAuto: return "auto";
    case core::BackendChoice::kAnalytic: return "analytic";
    case core::BackendChoice::kCycleAccurate: return "cycle_accurate";
  }
  throw Error("invalid BackendChoice");
}

core::BackendChoice backend_from_slug(const std::string& slug) {
  for (const auto backend :
       {core::BackendChoice::kAuto, core::BackendChoice::kAnalytic,
        core::BackendChoice::kCycleAccurate})
    if (slug == to_slug(backend)) return backend;
  throw Error("unknown backend '" + slug + "'");
}

JsonValue to_json(const core::SessionConfig& config) {
  JsonValue v = JsonValue::object();
  v.set("geometry", to_json(config.geometry));
  v.set("tech", to_json(config.tech));
  v.set("mode", JsonValue::string(to_slug(config.mode)));
  if (config.order) {
    JsonValue order = JsonValue::object();
    order.set("kind",
              JsonValue::string(march::to_string(config.order->kind())));
    order.set("rows", JsonValue::integer(config.order->rows()));
    order.set("col_groups", JsonValue::integer(config.order->col_groups()));
    JsonValue sequence = JsonValue::array();
    for (const march::Address& a : config.order->sequence()) {
      JsonValue addr = JsonValue::array();
      addr.push_back(JsonValue::integer(a.row));
      addr.push_back(JsonValue::integer(a.col));
      sequence.push_back(std::move(addr));
    }
    order.set("sequence", std::move(sequence));
    v.set("order", std::move(order));
  }
  v.set("row_transition_restore",
        JsonValue::boolean(config.row_transition_restore));
  v.set("strict_lp_order", JsonValue::boolean(config.strict_lp_order));
  v.set("invert_background", JsonValue::boolean(config.invert_background));
  v.set("background", to_json(config.background));
  v.set("wordline_duty", JsonValue::number(config.wordline_duty));
  v.set("swap_threshold_frac", JsonValue::number(config.swap_threshold_frac));
  v.set("column_model",
        JsonValue::string(column_model_slug(config.column_model)));
  if (config.trace) {
    JsonValue trace = JsonValue::object();
    trace.set("window_cycles", JsonValue::integer(config.trace->window_cycles));
    trace.set("keep_windows", JsonValue::boolean(config.trace->keep_windows));
    v.set("trace", std::move(trace));
  }
  return v;
}

core::SessionConfig session_config_from_json(const JsonValue& json) {
  core::SessionConfig config;
  config.geometry = geometry_from_json(json.at("geometry"));
  config.tech = technology_from_json(json.at("tech"));
  config.mode = mode_from_slug(json.at("mode").as_string());
  if (json.has("order")) {
    const JsonValue& order = json.at("order");
    const JsonValue& sequence = order.at("sequence");
    std::vector<march::Address> addresses;
    addresses.reserve(sequence.size());
    for (std::size_t i = 0; i < sequence.size(); ++i) {
      const JsonValue& a = sequence.at(i);
      addresses.push_back({a.at(0).as_size(), a.at(1).as_size()});
    }
    // Rebuilt as a custom order: execution (and the LP-mode order check)
    // depends only on the sequence, not on the factory that built it.
    config.order = march::AddressOrder::custom(order.at("rows").as_size(),
                                               order.at("col_groups").as_size(),
                                               std::move(addresses));
  }
  config.row_transition_restore = json.at("row_transition_restore").as_bool();
  config.strict_lp_order = json.at("strict_lp_order").as_bool();
  config.invert_background = json.at("invert_background").as_bool();
  config.background = background_from_json(json.at("background"));
  config.wordline_duty = json.at("wordline_duty").as_double();
  config.swap_threshold_frac = json.at("swap_threshold_frac").as_double();
  config.column_model =
      column_model_from_slug(json.at("column_model").as_string());
  if (json.has("trace")) {
    const JsonValue& trace = json.at("trace");
    power::TraceConfig tc;
    tc.window_cycles = trace.at("window_cycles").as_uint();
    tc.keep_windows = trace.at("keep_windows").as_bool();
    config.trace = tc;
  }
  return config;
}

JsonValue to_json(const core::SweepGrid& grid) {
  JsonValue v = JsonValue::object();
  JsonValue geometries = JsonValue::array();
  for (const sram::Geometry& g : grid.geometries)
    geometries.push_back(to_json(g));
  v.set("geometries", std::move(geometries));
  JsonValue backgrounds = JsonValue::array();
  for (const sram::DataBackground& b : grid.backgrounds)
    backgrounds.push_back(to_json(b));
  v.set("backgrounds", std::move(backgrounds));
  JsonValue algorithms = JsonValue::array();
  for (const march::MarchTest& a : grid.algorithms)
    algorithms.push_back(to_json(a));
  v.set("algorithms", std::move(algorithms));
  v.set("base", to_json(grid.base));
  return v;
}

core::SweepGrid sweep_grid_from_json(const JsonValue& json) {
  core::SweepGrid grid;
  const JsonValue& geometries = json.at("geometries");
  grid.geometries.clear();
  for (std::size_t i = 0; i < geometries.size(); ++i)
    grid.geometries.push_back(geometry_from_json(geometries.at(i)));
  const JsonValue& backgrounds = json.at("backgrounds");
  grid.backgrounds.clear();
  for (std::size_t i = 0; i < backgrounds.size(); ++i)
    grid.backgrounds.push_back(background_from_json(backgrounds.at(i)));
  const JsonValue& algorithms = json.at("algorithms");
  grid.algorithms.clear();
  for (std::size_t i = 0; i < algorithms.size(); ++i)
    grid.algorithms.push_back(march_from_json(algorithms.at(i)));
  grid.base = session_config_from_json(json.at("base"));
  return grid;
}

// --- faults ------------------------------------------------------------------

JsonValue to_json(const faults::FaultSpec& spec) {
  JsonValue v = JsonValue::object();
  v.set("kind", JsonValue::string(faults::to_string(spec.kind)));
  v.set("victim", coord_to_json(spec.victim));
  if (faults::is_coupling(spec.kind)) {
    v.set("aggressor", coord_to_json(spec.aggressor));
    v.set("aggressor_up", JsonValue::boolean(spec.aggressor_up));
    v.set("aggressor_state", JsonValue::boolean(spec.aggressor_state));
  }
  v.set("forced_value", JsonValue::boolean(spec.forced_value));
  v.set("res_threshold", JsonValue::number(spec.res_threshold));
  v.set("retention_idle_cycles",
        JsonValue::integer(spec.retention_idle_cycles));
  return v;
}

faults::FaultSpec fault_spec_from_json(const JsonValue& json) {
  faults::FaultSpec spec;
  spec.kind = fault_kind_from_string(json.at("kind").as_string());
  spec.victim = coord_from_json(json.at("victim"));
  if (json.has("aggressor")) {
    spec.aggressor = coord_from_json(json.at("aggressor"));
    spec.aggressor_up = json.at("aggressor_up").as_bool();
    spec.aggressor_state = json.at("aggressor_state").as_bool();
  }
  spec.forced_value = json.at("forced_value").as_bool();
  spec.res_threshold = json.at("res_threshold").as_double();
  spec.retention_idle_cycles = json.at("retention_idle_cycles").as_uint();
  return spec;
}

// --- results -----------------------------------------------------------------

JsonValue to_json(const core::SessionResult& result) {
  JsonValue v = JsonValue::object();
  v.set("algorithm", JsonValue::string(result.algorithm));
  v.set("mode", JsonValue::string(to_slug(result.mode)));
  v.set("fell_back_to_functional",
        JsonValue::boolean(result.fell_back_to_functional));
  v.set("cycles", JsonValue::integer(result.cycles));
  v.set("supply_energy_j", JsonValue::number(result.supply_energy_j));
  v.set("energy_per_cycle_j", JsonValue::number(result.energy_per_cycle_j));
  v.set("meter", to_json(result.meter));
  JsonValue stats = JsonValue::object();
  stats.set("cycles", JsonValue::integer(result.stats.cycles));
  stats.set("reads", JsonValue::integer(result.stats.reads));
  stats.set("writes", JsonValue::integer(result.stats.writes));
  stats.set("read_mismatches",
            JsonValue::integer(result.stats.read_mismatches));
  stats.set("faulty_swaps", JsonValue::integer(result.stats.faulty_swaps));
  stats.set("row_transitions",
            JsonValue::integer(result.stats.row_transitions));
  stats.set("restore_cycles", JsonValue::integer(result.stats.restore_cycles));
  stats.set("full_res_column_cycles",
            JsonValue::integer(result.stats.full_res_column_cycles));
  stats.set("decay_stress_equiv_post_op",
            JsonValue::number(result.stats.decay_stress_equiv_post_op));
  stats.set("decay_stress_equiv_pre_op",
            JsonValue::number(result.stats.decay_stress_equiv_pre_op));
  v.set("stats", std::move(stats));
  v.set("mismatches", JsonValue::integer(result.mismatches));
  JsonValue detections = JsonValue::array();
  for (const core::Detection& d : result.first_detections) {
    JsonValue det = JsonValue::object();
    det.set("element", JsonValue::integer(d.element));
    det.set("op", JsonValue::integer(d.op));
    det.set("row", JsonValue::integer(d.row));
    det.set("col_group", JsonValue::integer(d.col_group));
    det.set("col", JsonValue::integer(d.col));
    detections.push_back(std::move(det));
  }
  v.set("first_detections", std::move(detections));
  if (result.trace) v.set("trace", to_json(*result.trace));
  return v;
}

core::SessionResult session_result_from_json(const JsonValue& json) {
  core::SessionResult result;
  result.algorithm = json.at("algorithm").as_string();
  result.mode = mode_from_slug(json.at("mode").as_string());
  result.fell_back_to_functional =
      json.at("fell_back_to_functional").as_bool();
  result.cycles = json.at("cycles").as_uint();
  result.supply_energy_j = json.at("supply_energy_j").as_double();
  result.energy_per_cycle_j = json.at("energy_per_cycle_j").as_double();
  result.meter = meter_from_json(json.at("meter"));
  const JsonValue& stats = json.at("stats");
  result.stats.cycles = stats.at("cycles").as_uint();
  result.stats.reads = stats.at("reads").as_uint();
  result.stats.writes = stats.at("writes").as_uint();
  result.stats.read_mismatches = stats.at("read_mismatches").as_uint();
  result.stats.faulty_swaps = stats.at("faulty_swaps").as_uint();
  result.stats.row_transitions = stats.at("row_transitions").as_uint();
  result.stats.restore_cycles = stats.at("restore_cycles").as_uint();
  result.stats.full_res_column_cycles =
      stats.at("full_res_column_cycles").as_uint();
  result.stats.decay_stress_equiv_post_op =
      stats.at("decay_stress_equiv_post_op").as_double();
  result.stats.decay_stress_equiv_pre_op =
      stats.at("decay_stress_equiv_pre_op").as_double();
  result.mismatches = json.at("mismatches").as_uint();
  const JsonValue& detections = json.at("first_detections");
  for (std::size_t i = 0; i < detections.size(); ++i) {
    const JsonValue& det = detections.at(i);
    core::Detection d;
    d.element = det.at("element").as_size();
    d.op = det.at("op").as_size();
    d.row = det.at("row").as_size();
    d.col_group = det.at("col_group").as_size();
    d.col = det.at("col").as_size();
    result.first_detections.push_back(d);
  }
  if (json.has("trace"))
    result.trace = trace_summary_from_json(json.at("trace"));
  return result;
}

JsonValue to_json(const core::PrrComparison& comparison) {
  JsonValue v = JsonValue::object();
  v.set("functional", to_json(comparison.functional));
  v.set("low_power", to_json(comparison.low_power));
  v.set("prr", JsonValue::number(comparison.prr));
  return v;
}

core::PrrComparison prr_comparison_from_json(const JsonValue& json) {
  core::PrrComparison comparison;
  comparison.functional = session_result_from_json(json.at("functional"));
  comparison.low_power = session_result_from_json(json.at("low_power"));
  comparison.prr = json.at("prr").as_double();
  return comparison;
}

JsonValue to_json(const core::SweepPointResult& point) {
  JsonValue v = JsonValue::object();
  v.set("index", JsonValue::integer(point.index));
  v.set("geometry", JsonValue::integer(point.geometry));
  v.set("background", JsonValue::integer(point.background));
  v.set("algorithm", JsonValue::integer(point.algorithm));
  v.set("backend", JsonValue::string(to_slug(point.backend)));
  v.set("prr", to_json(point.prr));
  return v;
}

core::SweepPointResult sweep_point_from_json(const JsonValue& json) {
  core::SweepPointResult point;
  point.index = json.at("index").as_size();
  point.geometry = json.at("geometry").as_size();
  point.background = json.at("background").as_size();
  point.algorithm = json.at("algorithm").as_size();
  point.backend = backend_from_slug(json.at("backend").as_string());
  point.prr = prr_comparison_from_json(json.at("prr"));
  return point;
}

JsonValue to_json(const core::CampaignEntry& entry) {
  JsonValue v = JsonValue::object();
  v.set("spec", to_json(entry.spec));
  v.set("detected_functional", JsonValue::boolean(entry.detected_functional));
  v.set("detected_low_power", JsonValue::boolean(entry.detected_low_power));
  v.set("mismatches_functional",
        JsonValue::integer(entry.mismatches_functional));
  v.set("mismatches_low_power",
        JsonValue::integer(entry.mismatches_low_power));
  return v;
}

core::CampaignEntry campaign_entry_from_json(const JsonValue& json) {
  core::CampaignEntry entry;
  entry.spec = fault_spec_from_json(json.at("spec"));
  entry.detected_functional = json.at("detected_functional").as_bool();
  entry.detected_low_power = json.at("detected_low_power").as_bool();
  entry.mismatches_functional = json.at("mismatches_functional").as_uint();
  entry.mismatches_low_power = json.at("mismatches_low_power").as_uint();
  return entry;
}

JsonValue to_json(const core::CampaignReport& report) {
  JsonValue v = JsonValue::object();
  v.set("algorithm", JsonValue::string(report.algorithm));
  JsonValue entries = JsonValue::array();
  for (const core::CampaignEntry& e : report.entries)
    entries.push_back(to_json(e));
  v.set("entries", std::move(entries));
  v.set("session_pairs", JsonValue::integer(report.session_pairs));
  v.set("batch_sessions", JsonValue::integer(report.batch_sessions));
  return v;
}

core::CampaignReport campaign_report_from_json(const JsonValue& json) {
  core::CampaignReport report;
  report.algorithm = json.at("algorithm").as_string();
  const JsonValue& entries = json.at("entries");
  for (std::size_t i = 0; i < entries.size(); ++i)
    report.entries.push_back(campaign_entry_from_json(entries.at(i)));
  report.session_pairs = json.at("session_pairs").as_size();
  report.batch_sessions = json.at("batch_sessions").as_size();
  return report;
}

}  // namespace sramlp::io
