// JSON serialization of the domain types that cross the process boundary.
//
// Every pair here is round-trip exact: `X_from_json(to_json(x))` rebuilds a
// value whose execution behaviour — and, for results, whose every double —
// is bit-identical to the original.  That is the contract the distributed
// subsystem (src/dist/) stands on: a coordinator merging worker-emitted
// JSONL must reproduce a single-process run to the bit.
//
// Conventions:
//   * enums travel as stable lowercase slugs (not integers), so documents
//     stay readable and robust against enum reordering;
//   * meters serialize per-source totals keyed by the EnergySource name —
//     rebuilt with one add() per source, which is exact;
//   * a MarchTest serializes structurally (name + elements) so pauses and
//     custom algorithms survive; parsing also accepts the bare
//     {"name": ...} form for the built-in library algorithms;
//   * an unset optional field is simply omitted.
#pragma once

#include "core/fault_campaign.h"
#include "core/sweep.h"
#include "io/json.h"

namespace sramlp::io {

// --- sram --------------------------------------------------------------------
JsonValue to_json(const sram::Geometry& geometry);
sram::Geometry geometry_from_json(const JsonValue& json);

JsonValue to_json(const sram::DataBackground& background);
sram::DataBackground background_from_json(const JsonValue& json);

// --- march -------------------------------------------------------------------
JsonValue to_json(const march::MarchTest& test);
/// Structural form {"name", "elements"} or bare {"name"} naming one of the
/// built-in march::algorithms (e.g. "March C-").
march::MarchTest march_from_json(const JsonValue& json);

// --- power -------------------------------------------------------------------
JsonValue to_json(const power::TechnologyParams& tech);
power::TechnologyParams technology_from_json(const JsonValue& json);

JsonValue to_json(const power::EnergyMeter& meter);
power::EnergyMeter meter_from_json(const JsonValue& json);

/// TraceSummary round-trips every double to the bit (the dist/ contract:
/// traced sharded runs must merge byte-identical to single-process runs).
JsonValue to_json(const power::TraceSummary& trace);
power::TraceSummary trace_summary_from_json(const JsonValue& json);

// --- core configuration ------------------------------------------------------
JsonValue to_json(const core::SessionConfig& config);
/// Note: a custom/non-factory address order round-trips by sequence (its
/// kind degrades to kCustom); execution depends only on the sequence.
core::SessionConfig session_config_from_json(const JsonValue& json);

JsonValue to_json(const core::SweepGrid& grid);
core::SweepGrid sweep_grid_from_json(const JsonValue& json);

// --- faults ------------------------------------------------------------------
JsonValue to_json(const faults::FaultSpec& spec);
faults::FaultSpec fault_spec_from_json(const JsonValue& json);

// --- results -----------------------------------------------------------------
JsonValue to_json(const core::SessionResult& result);
core::SessionResult session_result_from_json(const JsonValue& json);

JsonValue to_json(const core::PrrComparison& comparison);
core::PrrComparison prr_comparison_from_json(const JsonValue& json);

JsonValue to_json(const core::SweepPointResult& point);
core::SweepPointResult sweep_point_from_json(const JsonValue& json);

JsonValue to_json(const core::CampaignEntry& entry);
core::CampaignEntry campaign_entry_from_json(const JsonValue& json);

JsonValue to_json(const core::CampaignReport& report);
core::CampaignReport campaign_report_from_json(const JsonValue& json);

// --- enum slugs (shared with dist/ and the CLI) ------------------------------
std::string to_slug(sram::Mode mode);
sram::Mode mode_from_slug(const std::string& slug);
std::string to_slug(core::BackendChoice backend);
core::BackendChoice backend_from_slug(const std::string& slug);

}  // namespace sramlp::io
