// Minimal self-contained JSON document model: emit + parse, no external
// dependencies.  Built for the distributed-execution subsystem, whose
// correctness contract is bit-identical merges: a sweep result serialized
// by a worker process and parsed back by the coordinator must reproduce
// every double to the bit.  Hence the two non-negotiable number rules:
//
//   * doubles are emitted with 17 significant digits (%.17g), the shortest
//     width guaranteed to round-trip any finite IEEE-754 double through a
//     correctly-rounded strtod;
//   * unsigned integers (indices, cycle counts) travel on a separate exact
//     lane: a number token without '.', 'e' or '-' parses into an
//     untruncated uint64_t alongside its double view, so 2^53+1 survives.
//
// Non-finite doubles are rejected at emit time (JSON has no encoding for
// them and a NaN energy is a bug upstream, not a formatting problem).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sramlp::io {

/// One JSON value (null / bool / number / string / array / object).
/// Object member order is preserved (insertion order), so emitted
/// documents are deterministic — equal values produce equal bytes.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  ///< null

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue number(double value);          ///< finite doubles only
  static JsonValue integer(std::uint64_t value);  ///< exact unsigned lane
  static JsonValue string(std::string value);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  // --- typed accessors (throw sramlp::Error on kind mismatch) ------------
  bool as_bool() const;
  double as_double() const;  ///< any number
  /// Numbers parsed/built on the exact unsigned lane only; a fractional or
  /// negative number throws rather than silently truncating.
  std::uint64_t as_uint() const;
  std::size_t as_size() const { return static_cast<std::size_t>(as_uint()); }
  const std::string& as_string() const;

  // --- arrays ------------------------------------------------------------
  std::size_t size() const;  ///< element count (array) or member count (object)
  const JsonValue& at(std::size_t index) const;     ///< array element
  JsonValue& push_back(JsonValue value);            ///< returns the new element

  // --- objects -----------------------------------------------------------
  bool has(std::string_view key) const;
  /// Member lookup; throws sramlp::Error when the key is missing.
  const JsonValue& at(std::string_view key) const;
  /// Member lookup returning null for missing keys (optional fields).
  const JsonValue& get(std::string_view key) const;
  /// Insert or overwrite a member; returns *this for chaining.
  JsonValue& set(std::string key, JsonValue value);
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  // --- emit / parse ------------------------------------------------------
  /// Serialize.  @p indent 0 emits one compact line (the JSONL form);
  /// positive values pretty-print with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Parse one JSON document (trailing garbage is an error).
  /// Throws sramlp::Error with an offset-annotated message on bad input,
  /// including container nesting beyond 64 levels — the parser is
  /// recursive, and untrusted wire input must not choose our stack depth.
  static JsonValue parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::uint64_t uint_ = 0;
  bool exact_uint_ = false;  ///< number carries an exact unsigned value
  std::string string_;
  std::vector<JsonValue> elements_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace sramlp::io
