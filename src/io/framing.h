// Framed socket transport for the sweep service: newline-delimited JSON
// documents over Unix-domain or local TCP stream sockets.
//
// The dist/ wire format is already exact — io::JsonValue round-trips every
// double and uint64 to the bit — so the service protocol reuses it
// verbatim: one compact JSON document per line, the same shape the shard
// result files use.  This header supplies the missing transport: RAII
// socket ownership, address parsing ("unix:/path", "tcp:port",
// "tcp:host:port"), and LineChannel, a buffered bidirectional channel
// that sends and receives whole framed documents.
//
// Error philosophy: setup failures (bad address, bind/listen/connect)
// throw sramlp::Error — the caller misconfigured something.  Peer
// behaviour (disconnects, truncated frames, garbage) is NOT exceptional
// for a server: send() returns false and receive() returns nullopt, and
// the caller treats the connection as dead.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "io/json.h"

namespace sramlp::io {

/// RAII owner of one socket file descriptor.  Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// ::shutdown both directions — unblocks a thread parked in accept() or
  /// recv() on this descriptor (close() alone does not).
  void shutdown();
  void close();

 private:
  int fd_ = -1;
};

/// Bind and listen on @p address ("unix:/path" or "tcp:port" /
/// "tcp:host:port"; TCP binds 127.0.0.1 when no host is given, port 0
/// picks an ephemeral port).  A stale Unix socket path is unlinked first.
/// Throws sramlp::Error on failure.
Socket listen_socket(const std::string& address, int backlog = 16);

/// The resolved address of a listening socket, in the same "unix:/path" /
/// "tcp:host:port" syntax connect_socket accepts — this is how a caller
/// learns the ephemeral port of "tcp:0".
std::string local_address(const Socket& listener);

/// Accept one connection; returns an invalid Socket when the listener was
/// shut down (the accept loop's exit signal) and throws on other errors.
Socket accept_connection(const Socket& listener);

/// Connect to @p address, retrying refused/missing endpoints for up to
/// @p timeout_ms (covers the daemon-still-starting race; 0 = one try).
/// Throws sramlp::Error when the deadline passes.
Socket connect_socket(const std::string& address, int timeout_ms = 0);

/// Bidirectional line-framed JSON channel over a connected socket.
/// send() is thread-safe (the service fans worker results out to client
/// channels from several threads); receive() is single-reader.
class LineChannel {
 public:
  LineChannel() = default;
  explicit LineChannel(Socket socket) : socket_(std::move(socket)) {}

  bool valid() const { return socket_.valid(); }

  /// Frame and send one document (compact dump + '\n').  Returns false on
  /// a broken/closed peer; never raises SIGPIPE.
  bool send(const JsonValue& value);

  /// Receive the next framed document.  Returns nullopt on EOF, a dead
  /// peer, or an unparseable frame (a truncated write from a killed
  /// worker reads as end-of-stream, exactly like the shard-file rule).
  std::optional<JsonValue> receive();

  /// Unblock a reader parked in receive() from another thread.
  void shutdown() { socket_.shutdown(); }

 private:
  Socket socket_;
  std::mutex send_mutex_;
  std::string read_buffer_;
  bool peer_dead_ = false;
};

}  // namespace sramlp::io
