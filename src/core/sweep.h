// SweepRunner — the batched grid layer over the execution engine.
//
// The paper's headline artefacts (Table 1, Figs. 4-7) and the ROADMAP's
// scale targets are all grids: geometry x background x algorithm, each
// point reduced to a PrrComparison.  SweepRunner owns that shape:
//
//   * it enumerates the grid deterministically (algorithm-fastest order;
//     results[i] always describes grid point i, whatever the thread
//     count — threads = 1 IS the serial reference);
//   * it fans the points over engine::parallel_for, one independent
//     session pair per point;
//   * it routes every point to the cheapest backend that can model it:
//     the closed-form analytic backend when the point is fault-free with
//     the Fig. 7 restore enabled, the bitsliced cycle-accurate engine
//     otherwise.  Callers can force either backend (benches print both).
//
// CampaignRunner routes its per-fault runs through the same single-point
// executor (run_point), so backend selection lives in exactly one place.
#pragma once

#include <cstddef>
#include <vector>

#include "core/session.h"
#include "march/test.h"
#include "sram/background.h"
#include "sram/geometry.h"

namespace sramlp::core {

/// Which executor evaluates a sweep point.
enum class BackendChoice {
  kAuto,           ///< cheapest backend that can model the point
  kAnalytic,       ///< force the §5 closed form (fault-free only)
  kCycleAccurate,  ///< force the bitsliced cycle-accurate engine
};

/// A sweep grid: the cross product of geometries x backgrounds x
/// algorithms, all sharing one technology and schedule configuration.
/// Every point is run in both operating modes and reduced to a PRR.
struct SweepGrid {
  std::vector<sram::Geometry> geometries;
  std::vector<sram::DataBackground> backgrounds = {
      sram::DataBackground::solid0()};
  std::vector<march::MarchTest> algorithms;
  /// Session template: geometry / background / mode fields are overridden
  /// per point, everything else (tech, restore policy, duty, ...) is
  /// shared by the whole grid.
  SessionConfig base;

  /// Number of grid points.
  std::size_t size() const {
    return geometries.size() * backgrounds.size() * algorithms.size();
  }

  /// The session configuration of grid point @p index (mode unset).
  /// Index order: geometry-major, then background, algorithm fastest.
  SessionConfig config_at(std::size_t index) const;

  /// Decompose a flat index into (geometry, background, algorithm).
  void split(std::size_t index, std::size_t* geometry,
             std::size_t* background, std::size_t* algorithm) const;
};

/// One evaluated grid point.
struct SweepPointResult {
  std::size_t index = 0;        ///< flat grid index
  std::size_t geometry = 0;     ///< index into grid.geometries
  std::size_t background = 0;   ///< index into grid.backgrounds
  std::size_t algorithm = 0;    ///< index into grid.algorithms
  BackendChoice backend = BackendChoice::kAnalytic;  ///< executor used
  PrrComparison prr;
};

class SweepRunner {
 public:
  struct Options {
    /// Worker threads; 0 = one per hardware thread, 1 = serial.
    unsigned threads = 0;
    /// Backend policy for every point.
    BackendChoice backend = BackendChoice::kAuto;
  };

  SweepRunner() = default;
  explicit SweepRunner(const Options& options) : options_(options) {}

  /// Evaluate the whole grid; results[i] is grid point i.
  std::vector<SweepPointResult> run(const SweepGrid& grid) const;

  /// Evaluate an arbitrary subset of grid points by flat index; the
  /// returned vector parallels @p indices.  Every point goes through
  /// exactly the arithmetic run() applies to its slot, so a partition of
  /// the index space evaluated shard by shard (the dist/ worker's entry
  /// point) reassembles bit-identical to one run() call.
  std::vector<SweepPointResult> run_indices(
      const SweepGrid& grid, const std::vector<std::size_t>& indices) const;

  /// Evaluate one point through the routing policy.  @p faults forces the
  /// cycle-accurate engine (the analytic backend cannot model faults) and
  /// is attached to both mode runs in sequence, like
  /// TestSession::compare_modes.
  PrrComparison run_point(const SessionConfig& config,
                          const march::MarchTest& test,
                          sram::CellFaultModel* faults = nullptr) const;

  /// Evaluate one single-mode run (config.mode is honoured) through the
  /// routing policy.  Campaigns use this with a fresh fault model per
  /// mode so no fault state leaks between the functional and low-power
  /// verdicts.
  SessionResult run_mode(const SessionConfig& config,
                         const march::MarchTest& test,
                         sram::CellFaultModel* faults = nullptr) const;

  /// The routing rule: where kAuto sends a point.
  static BackendChoice route(const SessionConfig& config, bool has_faults);

 private:
  Options options_;
};

}  // namespace sramlp::core
