// The paper's published numbers, used by benches and regression tests to
// print expected-vs-measured comparisons (EXPERIMENTS.md records them).
#pragma once

#include <array>

namespace sramlp::core {

/// One row of the paper's Table 1 (DATE 2006, Dilillo et al.).
struct Table1Row {
  const char* algorithm;
  int elements;
  int operations;
  int reads;
  int writes;
  double prr;  ///< published Power Reduction Ratio
};

/// Table 1 — "PRR for different March algorithms", 512x512, 0.13 um,
/// 3 ns cycle, 1.6 V.
inline constexpr std::array<Table1Row, 5> kTable1{{
    {"March C-", 6, 10, 5, 5, 0.473},
    {"March SS", 6, 22, 13, 9, 0.500},
    {"MATS+", 3, 5, 2, 3, 0.481},
    {"March SR", 6, 14, 8, 6, 0.495},
    {"March G", 7, 23, 10, 13, 0.505},
}};

/// Other quantitative claims reproduced by the benches.
namespace paper_claims {

/// Fig. 6a: a floating bit-line discharges to logic 0 in "nearly nine
/// clock cycles".
inline constexpr double kDischargeCycles = 9.0;

/// §5 source 4: the average number of cells undergoing (possibly reduced)
/// RES in low-power test mode lies in (2, 10).
inline constexpr double kAlphaLow = 2.0;
inline constexpr double kAlphaHigh = 10.0;

/// §5 source 4: cell dissipation during a RES is ~3 orders of magnitude
/// below the pre-charge circuit's share.
inline constexpr double kCellToPrechargeRatio = 1e-3;

/// §5 source 2 examples: a row transition every 512 cycles for one-op
/// elements and every 2048 cycles for four-op elements (512 columns).
inline constexpr double kRowTransitionPeriod1op = 512.0;
inline constexpr double kRowTransitionPeriod4op = 2048.0;

/// §4: ten transistors of added control logic per column.
inline constexpr int kControlTransistors = 10;

/// §5 conclusion: overall test power reduction of roughly 50 %.
inline constexpr double kHeadlinePrr = 0.50;

/// Ref [8] as cited: pre-charge activity is 70-80 % of SRAM power; used as
/// an upper bound on the pre-charge share in our functional-mode runs.
inline constexpr double kPrechargeShareUpper = 0.80;

}  // namespace paper_claims

}  // namespace sramlp::core
