// Single-fault campaigns: inject each fault on a fresh array, run a March
// test, record whether it was detected — in functional mode, in low-power
// test mode, and optionally across address orders (DOF-1 verification).
//
// Campaigns are embarrassingly parallel (one independent session pair per
// fault), so CampaignRunner fans the library out over a thread pool via
// engine::parallel_for.  Entry i always describes faults[i] and every
// per-fault computation is independent and deterministic, so the report is
// bit-identical whatever the worker count — threads = 1 IS the serial
// reference path.
#pragma once

#include <string>
#include <vector>

#include "core/session.h"
#include "faults/models.h"

namespace sramlp::core {

/// Per-fault campaign outcome.
struct CampaignEntry {
  faults::FaultSpec spec;
  bool detected_functional = false;
  bool detected_low_power = false;
  std::uint64_t mismatches_functional = 0;
  std::uint64_t mismatches_low_power = 0;
};

/// Aggregate campaign outcome.
struct CampaignReport {
  std::string algorithm;
  std::vector<CampaignEntry> entries;

  std::size_t detected_functional() const;
  std::size_t detected_low_power() const;
  double coverage_functional() const;
  double coverage_low_power() const;
  /// True when every fault's detection verdict agrees across the modes —
  /// the paper's correctness requirement for the low-power test mode.
  bool modes_agree() const;
};

/// Thread-pool executor for Table-1-scale fault campaigns.
class CampaignRunner {
 public:
  struct Options {
    /// Worker threads; 0 = one per hardware thread, 1 = serial.
    unsigned threads = 0;
  };

  CampaignRunner() = default;
  explicit CampaignRunner(const Options& options) : options_(options) {}

  /// Run @p test against each fault of @p faults, one at a time, on fresh
  /// arrays built from @p config (mode field ignored; both modes are run).
  CampaignReport run(const SessionConfig& config, const march::MarchTest& test,
                     const std::vector<faults::FaultSpec>& faults) const;

 private:
  Options options_;
};

/// Convenience wrapper: run the campaign on all hardware threads.
CampaignReport run_fault_campaign(const SessionConfig& config,
                                  const march::MarchTest& test,
                                  const std::vector<faults::FaultSpec>& faults);

/// Detection verdict for a single fault under a single configuration.
bool detects_fault(const SessionConfig& config, const march::MarchTest& test,
                   const faults::FaultSpec& fault);

}  // namespace sramlp::core
