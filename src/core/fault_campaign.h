// Fault campaigns: inject faults on fresh arrays, run a March test, record
// whether each was detected — in functional mode, in low-power test mode,
// and optionally across address orders (DOF-1 verification).
//
// Two execution shapes produce the same report:
//
//   * per-fault (default) — one independent session pair per fault,
//     embarrassingly parallel over engine::parallel_for;
//   * batched (Options::batched) — faults::plan_batches partitions the
//     library into victim-disjoint batches, each wrapped in a
//     faults::BatchFaultSet and run as ONE session pair; detections are
//     attributed back per fault through the array's on_read_mismatch
//     channel.  Faults the partitioner cannot prove independent (dynamic
//     dRDF, aggressor-row collisions) run per-fault, as does everything
//     when the Fig. 7 restore is disabled (faulty swaps break
//     independence).  Verdicts and per-entry mismatch counts are
//     regression-tested bit-identical to the per-fault path; only the
//     session count (and wall time) changes.
//
// Entry i always describes faults[i] and every work item is independent
// and deterministic, so the report is identical whatever the worker
// count — threads = 1 IS the serial reference path.
#pragma once

#include <string>
#include <vector>

#include "core/session.h"
#include "faults/models.h"

namespace sramlp::core {

/// Per-fault campaign outcome.
struct CampaignEntry {
  faults::FaultSpec spec;
  bool detected_functional = false;
  bool detected_low_power = false;
  std::uint64_t mismatches_functional = 0;
  std::uint64_t mismatches_low_power = 0;
};

/// Aggregate campaign outcome.
struct CampaignReport {
  std::string algorithm;
  std::vector<CampaignEntry> entries;
  /// Execution-shape accounting: functional+low-power session pairs run
  /// (per-fault: one per entry) and how many of them were multi-fault
  /// batches.
  std::size_t session_pairs = 0;
  std::size_t batch_sessions = 0;

  std::size_t detected_functional() const;
  std::size_t detected_low_power() const;
  double coverage_functional() const;
  double coverage_low_power() const;
  /// True when every fault's detection verdict agrees across the modes —
  /// the paper's correctness requirement for the low-power test mode.
  bool modes_agree() const;
};

/// Thread-pool executor for Table-1-scale fault campaigns.
class CampaignRunner {
 public:
  struct Options {
    /// Worker threads; 0 = one per hardware thread, 1 = serial.
    unsigned threads = 0;
    /// Run victim-disjoint faults many-per-session (see file comment).
    /// Verdicts are identical to the per-fault path; sessions drop by the
    /// batching factor.
    bool batched = false;
    /// Cap on faults per batch (0 = unlimited); forwarded to plan_batches.
    std::size_t max_batch = 0;
  };

  CampaignRunner() = default;
  explicit CampaignRunner(const Options& options) : options_(options) {}

  /// Run @p test against each fault of @p faults on fresh arrays built
  /// from @p config (mode field ignored; both modes are run).  entries[i]
  /// describes faults[i] whichever execution shape ran it.
  CampaignReport run(const SessionConfig& config, const march::MarchTest& test,
                     const std::vector<faults::FaultSpec>& faults) const;

  /// Run an arbitrary subset of @p faults by index; the returned entries
  /// parallel @p indices.  Each fault runs on its own fresh session pair
  /// (or batch), so entry verdicts and mismatch counts are identical to
  /// the slots a whole-library run() produces — a partition of the index
  /// space evaluated shard by shard (the dist/ worker's entry point)
  /// reassembles bit-identical to one run() call.
  std::vector<CampaignEntry> run_subset(
      const SessionConfig& config, const march::MarchTest& test,
      const std::vector<faults::FaultSpec>& faults,
      const std::vector<std::size_t>& indices) const;

 private:
  Options options_;
};

/// Convenience wrapper: run the campaign on all hardware threads.
CampaignReport run_fault_campaign(const SessionConfig& config,
                                  const march::MarchTest& test,
                                  const std::vector<faults::FaultSpec>& faults);

/// Detection verdict for a single fault under a single configuration.
bool detects_fault(const SessionConfig& config, const march::MarchTest& test,
                   const faults::FaultSpec& fault);

}  // namespace sramlp::core
