#include "core/sweep.h"

#include "engine/analytic_backend.h"
#include "engine/parallel.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace sramlp::core {

void SweepGrid::split(std::size_t index, std::size_t* geometry,
                      std::size_t* background, std::size_t* algorithm) const {
  SRAMLP_REQUIRE(index < size(), "sweep index out of range");
  const std::size_t per_background = algorithms.size();
  const std::size_t per_geometry = backgrounds.size() * per_background;
  *geometry = index / per_geometry;
  *background = (index % per_geometry) / per_background;
  *algorithm = index % per_background;
}

SessionConfig SweepGrid::config_at(std::size_t index) const {
  std::size_t geometry = 0, background = 0, algorithm = 0;
  split(index, &geometry, &background, &algorithm);
  SessionConfig config = base;
  config.geometry = geometries[geometry];
  config.background = backgrounds[background];
  return config;
}

BackendChoice SweepRunner::route(const SessionConfig& config,
                                 bool has_faults) {
  // The closed form models fault-free runs under the paper's schedule
  // only: faults need per-cell behaviour, and a disabled Fig. 7 restore
  // changes the energy (and triggers swaps) in ways §5 does not cover.
  if (has_faults || !config.row_transition_restore)
    return BackendChoice::kCycleAccurate;
  return BackendChoice::kAnalytic;
}

PrrComparison SweepRunner::run_point(const SessionConfig& config,
                                     const march::MarchTest& test,
                                     sram::CellFaultModel* faults) const {
  BackendChoice backend = options_.backend;
  if (backend == BackendChoice::kAuto)
    backend = route(config, faults != nullptr);
  SRAMLP_REQUIRE(backend != BackendChoice::kAnalytic || faults == nullptr,
                 "the analytic backend cannot model fault injection");
  if (backend == BackendChoice::kAnalytic)
    return TestSession::compare_modes_analytic(config, test);
  return TestSession::compare_modes(config, test, faults);
}

SessionResult SweepRunner::run_mode(const SessionConfig& config,
                                    const march::MarchTest& test,
                                    sram::CellFaultModel* faults) const {
  BackendChoice backend = options_.backend;
  if (backend == BackendChoice::kAuto)
    backend = route(config, faults != nullptr);
  SRAMLP_REQUIRE(backend != BackendChoice::kAnalytic || faults == nullptr,
                 "the analytic backend cannot model fault injection");
  TestSession session(config);
  session.attach_fault_model(faults);
  if (backend == BackendChoice::kAnalytic) {
    engine::AnalyticBackend analytic(config.tech, config.geometry);
    return session.run(test, analytic);
  }
  return session.run(test);
}

namespace {

/// The single-point arithmetic shared by run() and run_indices(): whoever
/// computes grid point @p index — whatever thread, whatever process —
/// performs exactly these operations.
/// Per-point wall-time histogram: the input to shard-size and backend-
/// routing decisions.  Purely observational — the duration is measured
/// around the arithmetic and never enters the result.
obs::Histogram& point_seconds_histogram() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "sramlp_sweep_point_seconds", "Wall time evaluating one grid point",
      obs::Histogram::exponential_bounds(1e-5, 4.0, 10));
  return h;
}

SweepPointResult evaluate_grid_point(const SweepGrid& grid, std::size_t index,
                                     BackendChoice requested) {
  const std::uint64_t start_us = obs::monotonic_micros();
  SweepPointResult point;
  point.index = index;
  grid.split(index, &point.geometry, &point.background, &point.algorithm);
  const SessionConfig config = grid.config_at(index);
  // Resolve the backend once; the recorded choice IS the executed one.
  point.backend = requested == BackendChoice::kAuto
                      ? SweepRunner::route(config, /*has_faults=*/false)
                      : requested;
  point.prr = point.backend == BackendChoice::kAnalytic
                  ? TestSession::compare_modes_analytic(
                        config, grid.algorithms[point.algorithm])
                  : TestSession::compare_modes(
                        config, grid.algorithms[point.algorithm]);
  point_seconds_histogram().observe_micros(obs::monotonic_micros() -
                                           start_us);
  return point;
}

}  // namespace

std::vector<SweepPointResult> SweepRunner::run(const SweepGrid& grid) const {
  SRAMLP_REQUIRE(!grid.geometries.empty() && !grid.backgrounds.empty() &&
                     !grid.algorithms.empty(),
                 "sweep grid has an empty axis");
  std::vector<SweepPointResult> results(grid.size());
  engine::parallel_for(grid.size(), options_.threads, [&](std::size_t i) {
    results[i] = evaluate_grid_point(grid, i, options_.backend);
  });
  return results;
}

std::vector<SweepPointResult> SweepRunner::run_indices(
    const SweepGrid& grid, const std::vector<std::size_t>& indices) const {
  SRAMLP_REQUIRE(!grid.geometries.empty() && !grid.backgrounds.empty() &&
                     !grid.algorithms.empty(),
                 "sweep grid has an empty axis");
  std::vector<SweepPointResult> results(indices.size());
  engine::parallel_for(indices.size(), options_.threads, [&](std::size_t i) {
    results[i] = evaluate_grid_point(grid, indices[i], options_.backend);
  });
  return results;
}

}  // namespace sramlp::core
