// TestSession — the paper's low-power March testing flow, assembled.
//
// A session owns one simulated SRAM and runs March tests on it in either
// operating mode.  It implements the sequencing responsibilities the paper
// assigns to the test controller:
//
//  * fixing the address sequence to word-line-after-word-line when the
//    low-power test mode is selected (March DOF-1 makes this legal); any
//    other order triggers the paper's §4 fallback to functional mode
//    (or an error, when strict_lp_order is set);
//  * issuing the one-cycle functional restore during the last operation on
//    the last cell of each row (Fig. 7), unless the experiment disables it;
//  * feeding the per-cycle scan direction so the controller pre-charges the
//    correct follower column for descending March elements.
//
// compare_modes() packages the paper's headline measurement: the same
// algorithm run in both modes on identical arrays, reduced to the Power
// Reduction Ratio PRR = 1 - PLPT / PF.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "march/address_order.h"
#include "march/test.h"
#include "power/meter.h"
#include "sram/array.h"

namespace sramlp::core {

/// Session configuration (one array, one mode).
struct SessionConfig {
  sram::Geometry geometry;
  power::TechnologyParams tech = power::TechnologyParams::tech_0p13um();
  sram::Mode mode = sram::Mode::kFunctional;
  /// Address sequence; defaults to word-line-after-word-line.
  std::optional<march::AddressOrder> order;
  /// Apply the one-cycle functional restore at row transitions (Fig. 7).
  bool row_transition_restore = true;
  /// Throw instead of falling back to functional mode when the low-power
  /// mode is requested with an incompatible address order.
  bool strict_lp_order = false;
  /// Run the complemented test (every operation's data bit flipped).
  bool invert_background = false;
  /// Data background pattern: March data bits are logical relative to it
  /// (physical cell value = bit XOR background(row, col)).
  sram::DataBackground background;
  double wordline_duty = 0.5;
  double swap_threshold_frac = 0.5;
};

/// Location of a detected mismatch (first few are recorded).
struct Detection {
  std::size_t element = 0;
  std::size_t op = 0;
  std::size_t row = 0;
  std::size_t col_group = 0;
};

/// Everything measured over one March run.
struct SessionResult {
  std::string algorithm;
  sram::Mode mode = sram::Mode::kFunctional;
  bool fell_back_to_functional = false;
  std::uint64_t cycles = 0;
  double supply_energy_j = 0.0;
  double energy_per_cycle_j = 0.0;
  power::EnergyMeter meter;   ///< full per-source accounting
  sram::ArrayStats stats;
  std::uint64_t mismatches = 0;
  bool detected() const { return mismatches > 0; }
  std::vector<Detection> first_detections;  ///< capped at 16 entries
};

/// Functional vs low-power runs of the same algorithm plus the PRR.
struct PrrComparison {
  SessionResult functional;
  SessionResult low_power;
  /// Power Reduction Ratio: 1 - PLPT / PF (the paper's Table 1 metric).
  double prr = 0.0;
};

class TestSession {
 public:
  explicit TestSession(const SessionConfig& config);

  const SessionConfig& config() const { return config_; }
  sram::SramArray& array() { return array_; }
  const sram::SramArray& array() const { return array_; }

  /// Attach a fault model for subsequent runs (non-owning; nullptr clears).
  void attach_fault_model(sram::CellFaultModel* model);

  /// Run one March test; meters are reset at the start of the run.
  SessionResult run(const march::MarchTest& test);

  /// Run @p test in functional and low-power mode on two identical arrays
  /// built from @p config (mode field ignored) and compute the PRR.
  static PrrComparison compare_modes(const SessionConfig& config,
                                     const march::MarchTest& test,
                                     sram::CellFaultModel* faults = nullptr);

 private:
  const march::AddressOrder& order() const { return *order_; }

  SessionConfig config_;
  std::optional<march::AddressOrder> order_;
  sram::SramArray array_;
  bool fell_back_ = false;
};

}  // namespace sramlp::core
