// TestSession — the paper's low-power March testing flow, assembled.
//
// A session owns one simulated SRAM and runs March tests on it in either
// operating mode.  It implements the policy responsibilities the paper
// assigns to the test controller:
//
//  * fixing the address sequence to word-line-after-word-line when the
//    low-power test mode is selected (March DOF-1 makes this legal); any
//    other order triggers the paper's §4 fallback to functional mode
//    (or an error, when strict_lp_order is set);
//  * building the engine::CommandStream that resolves the per-cycle
//    decisions (Fig. 7 restore scheduling, scan direction, background);
//  * routing the stream through an engine::ExecutionBackend — the
//    cycle-accurate array by default, or any caller-supplied backend
//    (e.g. the closed-form analytic one for fault-free sweeps).
//
// compare_modes() packages the paper's headline measurement: the same
// algorithm run in both modes on identical arrays, reduced to the Power
// Reduction Ratio PRR = 1 - PLPT / PF.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/backend.h"
#include "engine/command_stream.h"
#include "march/address_order.h"
#include "march/test.h"
#include "power/meter.h"
#include "power/trace.h"
#include "sram/array.h"

namespace sramlp::core {

/// Session configuration (one array, one mode).
struct SessionConfig {
  sram::Geometry geometry;
  power::TechnologyParams tech = power::TechnologyParams::tech_0p13um();
  sram::Mode mode = sram::Mode::kFunctional;
  /// Address sequence; defaults to word-line-after-word-line.
  std::optional<march::AddressOrder> order;
  /// Apply the one-cycle functional restore at row transitions (Fig. 7).
  bool row_transition_restore = true;
  /// Throw instead of falling back to functional mode when the low-power
  /// mode is requested with an incompatible address order.
  bool strict_lp_order = false;
  /// Run the complemented test (every operation's data bit flipped).
  bool invert_background = false;
  /// Data background pattern: March data bits are logical relative to it
  /// (physical cell value = bit XOR background(row, col)).
  sram::DataBackground background;
  double wordline_duty = 0.5;
  double swap_threshold_frac = 0.5;
  /// Column-state engine of the simulated array.  The default bitsliced
  /// cohort engine is bit-identical to the per-column reference
  /// (regression-tested); the reference exists for parity verification.
  sram::ColumnModel column_model = sram::ColumnModel::kBitslicedCohort;
  /// Opt-in time-resolved power accounting: when set, every run carries a
  /// power::TraceSummary (peak-window power, per-March-element breakdown)
  /// in SessionResult::trace.  Energy totals are bit-identical to an
  /// untraced run; cycle-accurate execution takes the per-cycle metering
  /// path, so traced runs trade some speed for time resolution.
  std::optional<power::TraceConfig> trace;
  /// Opt-in per-cycle waveform export (borrowed, may be nullptr): a
  /// power::WaveformWriter (or any raw-event MeterSink) subscribed to
  /// every cycle-accurate run of this session — including both runs of a
  /// compare_modes pair.  Needs the raw event stream, so it forces the
  /// per-cycle execution path; totals stay bit-identical.
  power::MeterSink* waveform_sink = nullptr;
};

/// Location of a detected mismatch (the engine records the first
/// engine::kMaxFirstDetections of them).
using Detection = engine::Detection;

/// Cap on SessionResult::first_detections, re-exported from the engine.
inline constexpr std::size_t kMaxFirstDetections = engine::kMaxFirstDetections;

/// Everything measured over one March run.
struct SessionResult {
  std::string algorithm;
  sram::Mode mode = sram::Mode::kFunctional;
  bool fell_back_to_functional = false;
  std::uint64_t cycles = 0;
  double supply_energy_j = 0.0;
  double energy_per_cycle_j = 0.0;
  power::EnergyMeter meter;   ///< full per-source accounting
  sram::ArrayStats stats;
  std::uint64_t mismatches = 0;
  bool detected() const { return mismatches > 0; }
  std::vector<Detection> first_detections;  ///< capped at kMaxFirstDetections
  /// Time-resolved accounting; present iff SessionConfig::trace was set.
  std::optional<power::TraceSummary> trace;
};

/// Functional vs low-power runs of the same algorithm plus the PRR.
struct PrrComparison {
  SessionResult functional;
  SessionResult low_power;
  /// Power Reduction Ratio: 1 - PLPT / PF (the paper's Table 1 metric).
  double prr = 0.0;
};

class TestSession {
 public:
  explicit TestSession(const SessionConfig& config);

  const SessionConfig& config() const { return config_; }
  sram::SramArray& array() { return array_; }
  const sram::SramArray& array() const { return array_; }

  /// Attach a fault model for subsequent runs (non-owning; nullptr clears).
  void attach_fault_model(sram::CellFaultModel* model);

  /// Build the command stream for @p test under this session's resolved
  /// schedule (mode after fallback, restore policy, background).  The
  /// session must outlive the stream (it owns the address order).
  engine::CommandStream make_stream(const march::MarchTest& test) const;

  /// Run one March test on the cycle-accurate backend (the session's own
  /// array); meters are reset at the start of the run.
  SessionResult run(const march::MarchTest& test);

  /// Run one March test through @p backend.  Backends that ignore fault
  /// models are rejected while one is attached.
  SessionResult run(const march::MarchTest& test,
                    engine::ExecutionBackend& backend);

  /// Run @p test in functional and low-power mode on two identical arrays
  /// built from @p config (mode field ignored) and compute the PRR.
  static PrrComparison compare_modes(const SessionConfig& config,
                                     const march::MarchTest& test,
                                     sram::CellFaultModel* faults = nullptr);

  /// compare_modes through the closed-form analytic backend: no per-cell
  /// simulation, fault-free only — for geometry/algorithm sweeps.
  static PrrComparison compare_modes_analytic(const SessionConfig& config,
                                              const march::MarchTest& test);

 private:
  const march::AddressOrder& order() const { return *order_; }

  SessionConfig config_;
  std::optional<march::AddressOrder> order_;
  sram::SramArray array_;
  sram::CellFaultModel* faults_ = nullptr;
  bool fell_back_ = false;
};

}  // namespace sramlp::core
