#include "core/fault_campaign.h"

#include "core/sweep.h"
#include "engine/parallel.h"
#include "faults/batch.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace sramlp::core {

std::size_t CampaignReport::detected_functional() const {
  std::size_t n = 0;
  for (const auto& e : entries)
    if (e.detected_functional) ++n;
  return n;
}

std::size_t CampaignReport::detected_low_power() const {
  std::size_t n = 0;
  for (const auto& e : entries)
    if (e.detected_low_power) ++n;
  return n;
}

double CampaignReport::coverage_functional() const {
  return entries.empty() ? 0.0
                         : static_cast<double>(detected_functional()) /
                               static_cast<double>(entries.size());
}

double CampaignReport::coverage_low_power() const {
  return entries.empty() ? 0.0
                         : static_cast<double>(detected_low_power()) /
                               static_cast<double>(entries.size());
}

bool CampaignReport::modes_agree() const {
  for (const auto& e : entries)
    if (e.detected_functional != e.detected_low_power) return false;
  return true;
}

bool detects_fault(const SessionConfig& config, const march::MarchTest& test,
                   const faults::FaultSpec& fault) {
  faults::FaultSet set({fault});
  TestSession session(config);
  session.attach_fault_model(&set);
  const SessionResult result = session.run(test);
  return result.detected();
}

CampaignReport CampaignRunner::run(
    const SessionConfig& config, const march::MarchTest& test,
    const std::vector<faults::FaultSpec>& faults) const {
  CampaignReport report;
  report.algorithm = test.name();
  report.entries.resize(faults.size());

  // Every session pair goes through SweepRunner's single-point executor,
  // so backend routing (always the bitsliced cycle-accurate engine here —
  // the analytic backend cannot model faults) lives in one place.
  const SweepRunner point_runner;

  // One fresh session pair per fault; entry i == faults[i] regardless of
  // which worker executes it.  A fresh fault model per mode run:
  // accumulated fault state (RES stress, dynamic-fault history) must not
  // leak between verdicts.
  // Per-entry wall time feeds batch-size tuning; observational only.
  static obs::Histogram& entry_seconds = obs::Registry::global().histogram(
      "sramlp_campaign_entry_seconds",
      "Wall time evaluating one fault-campaign entry (both modes)",
      obs::Histogram::exponential_bounds(1e-5, 4.0, 10));

  const auto run_single = [&](std::size_t i) {
    const std::uint64_t start_us = obs::monotonic_micros();
    CampaignEntry entry;
    entry.spec = faults[i];
    for (const sram::Mode mode :
         {sram::Mode::kFunctional, sram::Mode::kLowPowerTest}) {
      SessionConfig cfg = config;
      cfg.mode = mode;
      faults::FaultSet set({faults[i]});
      const SessionResult result = point_runner.run_mode(cfg, test, &set);
      if (mode == sram::Mode::kFunctional) {
        entry.detected_functional = result.detected();
        entry.mismatches_functional = result.mismatches;
      } else {
        entry.detected_low_power = result.detected();
        entry.mismatches_low_power = result.mismatches;
      }
    }
    report.entries[i] = entry;
    entry_seconds.observe_micros(obs::monotonic_micros() - start_us);
  };

  // Batching requires the Fig. 7 restore: with it disabled, faulty swaps
  // copy whole rows of per-fault-dependent data around and member
  // independence is gone.
  faults::BatchPlan plan;
  if (options_.batched && config.row_transition_restore) {
    plan = faults::plan_batches(faults, options_.max_batch);
  } else {
    plan.fallback.resize(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) plan.fallback[i] = i;
  }

  // One multi-fault session pair per batch.  Detections are attributed per
  // member through the on_read_mismatch channel, so entry verdicts and
  // mismatch counts come out exactly as the per-fault path computes them.
  const auto run_batch = [&](const std::vector<std::size_t>& members) {
    const std::uint64_t start_us = obs::monotonic_micros();
    std::vector<faults::FaultSpec> specs;
    specs.reserve(members.size());
    for (const std::size_t m : members) specs.push_back(faults[m]);
    for (const sram::Mode mode :
         {sram::Mode::kFunctional, sram::Mode::kLowPowerTest}) {
      SessionConfig cfg = config;
      cfg.mode = mode;
      faults::BatchFaultSet set(specs);  // fresh model per mode run
      point_runner.run_mode(cfg, test, &set);
      // A mismatch no member owns means the batch-independence invariant
      // broke (a partitioning bug): fail loudly instead of silently
      // reporting wrong verdicts.
      SRAMLP_REQUIRE(set.unattributed() == 0,
                     "batched campaign saw mismatches at cells no batch "
                     "member owns");
      for (std::size_t j = 0; j < members.size(); ++j) {
        CampaignEntry& entry = report.entries[members[j]];
        entry.spec = faults[members[j]];
        const std::uint64_t mismatches = set.mismatches_of(j);
        if (mode == sram::Mode::kFunctional) {
          entry.detected_functional = mismatches > 0;
          entry.mismatches_functional = mismatches;
        } else {
          entry.detected_low_power = mismatches > 0;
          entry.mismatches_low_power = mismatches;
        }
      }
    }
    // A batch amortizes one session pair over its members; the per-member
    // average keeps the histogram unit "seconds per entry" either path.
    if (!members.empty())
      entry_seconds.observe_micros((obs::monotonic_micros() - start_us) /
                                   members.size());
  };

  // Work items: batches first, then the per-fault fallbacks.  Every fault
  // index belongs to exactly one item, so entries never race.
  const std::size_t items = plan.batches.size() + plan.fallback.size();
  engine::parallel_for(items, options_.threads, [&](std::size_t i) {
    if (i < plan.batches.size())
      run_batch(plan.batches[i]);
    else
      run_single(plan.fallback[i - plan.batches.size()]);
  });
  report.session_pairs = items;
  report.batch_sessions = plan.batches.size();
  return report;
}

std::vector<CampaignEntry> CampaignRunner::run_subset(
    const SessionConfig& config, const march::MarchTest& test,
    const std::vector<faults::FaultSpec>& faults,
    const std::vector<std::size_t>& indices) const {
  std::vector<faults::FaultSpec> subset;
  subset.reserve(indices.size());
  for (const std::size_t i : indices) {
    SRAMLP_REQUIRE(i < faults.size(), "campaign subset index out of range");
    subset.push_back(faults[i]);
  }
  // Per-entry results are execution-shape independent (the batcher's
  // regression-tested contract), so running the subset as its own
  // campaign yields exactly the entries run() computes for these slots.
  CampaignReport report = run(config, test, subset);
  return std::move(report.entries);
}

CampaignReport run_fault_campaign(
    const SessionConfig& config, const march::MarchTest& test,
    const std::vector<faults::FaultSpec>& faults) {
  return CampaignRunner().run(config, test, faults);
}

}  // namespace sramlp::core
