#include "core/fault_campaign.h"

#include "core/sweep.h"
#include "engine/parallel.h"

namespace sramlp::core {

std::size_t CampaignReport::detected_functional() const {
  std::size_t n = 0;
  for (const auto& e : entries)
    if (e.detected_functional) ++n;
  return n;
}

std::size_t CampaignReport::detected_low_power() const {
  std::size_t n = 0;
  for (const auto& e : entries)
    if (e.detected_low_power) ++n;
  return n;
}

double CampaignReport::coverage_functional() const {
  return entries.empty() ? 0.0
                         : static_cast<double>(detected_functional()) /
                               static_cast<double>(entries.size());
}

double CampaignReport::coverage_low_power() const {
  return entries.empty() ? 0.0
                         : static_cast<double>(detected_low_power()) /
                               static_cast<double>(entries.size());
}

bool CampaignReport::modes_agree() const {
  for (const auto& e : entries)
    if (e.detected_functional != e.detected_low_power) return false;
  return true;
}

bool detects_fault(const SessionConfig& config, const march::MarchTest& test,
                   const faults::FaultSpec& fault) {
  faults::FaultSet set({fault});
  TestSession session(config);
  session.attach_fault_model(&set);
  const SessionResult result = session.run(test);
  return result.detected();
}

CampaignReport CampaignRunner::run(
    const SessionConfig& config, const march::MarchTest& test,
    const std::vector<faults::FaultSpec>& faults) const {
  CampaignReport report;
  report.algorithm = test.name();
  report.entries.resize(faults.size());

  // One fresh session pair per fault; entry i == faults[i] regardless of
  // which worker executes it.  Each pair goes through SweepRunner's
  // single-point executor, so backend routing (always the bitsliced
  // cycle-accurate engine here — the analytic backend cannot model
  // faults) lives in one place.
  const SweepRunner point_runner;
  engine::parallel_for(
      faults.size(), options_.threads, [&](std::size_t i) {
        CampaignEntry entry;
        entry.spec = faults[i];

        // A fresh fault model per mode run: accumulated fault state (RES
        // stress, dynamic-fault history) must not leak between verdicts.
        for (const sram::Mode mode :
             {sram::Mode::kFunctional, sram::Mode::kLowPowerTest}) {
          SessionConfig cfg = config;
          cfg.mode = mode;
          faults::FaultSet set({faults[i]});
          const SessionResult result = point_runner.run_mode(cfg, test, &set);
          if (mode == sram::Mode::kFunctional) {
            entry.detected_functional = result.detected();
            entry.mismatches_functional = result.mismatches;
          } else {
            entry.detected_low_power = result.detected();
            entry.mismatches_low_power = result.mismatches;
          }
        }
        report.entries[i] = entry;
      });
  return report;
}

CampaignReport run_fault_campaign(
    const SessionConfig& config, const march::MarchTest& test,
    const std::vector<faults::FaultSpec>& faults) {
  return CampaignRunner().run(config, test, faults);
}

}  // namespace sramlp::core
