// Memory BIST controller — the hardware-shaped counterpart of TestSession.
//
// The paper assumes an on- or off-chip test controller that (a) sources
// the March algorithm, (b) fixes the address order to word-line-after-
// word-line, (c) drives the LPtest mode select and (d) de-asserts it for
// the one restore cycle at each row hand-over.  This module models that
// controller the way BIST hardware is actually built:
//
//   * BistProgram  — a March test compiled into a flat micro-instruction
//     ROM (one entry per March operation, loop bounds implicit in the
//     element records);
//   * BistController — a step-per-clock-cycle controller exposing the
//     comparator with its fail latch and the LPtest line.  Sequencing
//     (address counters, the restore decision) is NOT re-derived here:
//     the controller reassembles its ROM into a March test and pulls
//     cycles from the same engine::CommandStream that drives TestSession,
//     so the two can never disagree on scheduling.
//
// The controller produces exactly the same cycle stream as
// core::TestSession (asserted by tests/test_bist.cpp), and can optionally
// drive the gate-level ctrl::PrechargeController in lock-step to
// cross-check the behavioural array's pre-charge activity against the
// Fig. 8 netlist.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "engine/command_stream.h"
#include "march/test.h"
#include "sram/array.h"
#include "sram/background.h"

namespace sramlp::core {

/// One compiled March operation.
struct BistMicroOp {
  bool is_read = false;
  bool value = false;  ///< logical data bit
};

/// One compiled March element: a direction plus an operation window in the
/// micro-op ROM.
struct BistElementRecord {
  bool descending = false;
  std::uint32_t first_op = 0;  ///< index into the ROM
  std::uint32_t op_count = 0;
};

/// A March test compiled for the controller.
class BistProgram {
 public:
  /// Compile @p test; kEither elements run ascending (their coverage is
  /// direction-independent by definition).
  static BistProgram compile(const march::MarchTest& test);

  const std::vector<BistMicroOp>& rom() const { return rom_; }
  const std::vector<BistElementRecord>& elements() const { return elements_; }
  const std::string& name() const { return name_; }

  /// Reassemble the ROM into a March test (the ROM is the single source of
  /// truth; the controller sequences the reassembled test through the
  /// engine's CommandStream).
  march::MarchTest reassemble() const;

  /// Total cycles needed on a rows x col_groups array.
  std::uint64_t cycle_count(std::size_t rows, std::size_t col_groups) const;

 private:
  std::string name_;
  std::vector<BistMicroOp> rom_;
  std::vector<BistElementRecord> elements_;
};

/// Per-run outcome collected by the controller's comparator.
struct BistOutcome {
  std::uint64_t cycles = 0;
  std::uint64_t fails = 0;      ///< comparator mismatches
  bool fail_latch = false;      ///< sticky pass/fail flag
  std::uint64_t restore_pulses = 0;
};

/// The controller.  Owns its program and command stream; drives a
/// caller-owned SramArray one cycle per step().
class BistController {
 public:
  struct Options {
    sram::Mode mode = sram::Mode::kFunctional;
    sram::DataBackground background;
    bool row_transition_restore = true;
  };

  /// The program is copied in: the controller's "ROM" is its own.
  BistController(BistProgram program, const sram::Geometry& geometry,
                 const Options& options);

  /// True once the program has run to completion.
  bool done() const { return stream_.done(); }

  /// The command the controller will issue this cycle (visible for
  /// lock-step checking against the gate-level controller); empty when
  /// done.
  std::optional<sram::CycleCommand> peek() const;

  /// Execute one clock cycle against @p array; returns the cycle result.
  sram::CycleResult step(sram::SramArray& array);

  /// Run to completion (convenience).
  BistOutcome run(sram::SramArray& array);

  const BistOutcome& outcome() const { return outcome_; }

  /// Level of the LPtest mode-select line this cycle (de-asserted during
  /// the restore pulse, matching the paper's §4 one-cycle switch).
  bool lptest_level() const;

 private:
  BistProgram program_;
  sram::Geometry geometry_;
  Options options_;
  march::AddressOrder order_;  ///< word-line-after-word-line over geometry_
  engine::CommandStream stream_;
  BistOutcome outcome_;
};

}  // namespace sramlp::core
