#include "core/session.h"

#include "util/error.h"

namespace sramlp::core {

namespace {

sram::SramConfig make_array_config(const SessionConfig& config, bool lp_ok) {
  sram::SramConfig ac;
  ac.geometry = config.geometry;
  ac.tech = config.tech;
  ac.mode = (config.mode == sram::Mode::kLowPowerTest && lp_ok)
                ? sram::Mode::kLowPowerTest
                : sram::Mode::kFunctional;
  ac.row_transition_restore = config.row_transition_restore;
  ac.wordline_duty = config.wordline_duty;
  ac.swap_threshold_frac = config.swap_threshold_frac;
  return ac;
}

sram::Scan to_scan(march::Direction direction) {
  return direction == march::Direction::kDown ? sram::Scan::kDescending
                                              : sram::Scan::kAscending;
}

}  // namespace

TestSession::TestSession(const SessionConfig& config)
    : config_(config),
      order_(config.order ? *config.order
                          : march::AddressOrder::word_line_after_word_line(
                                config.geometry.rows,
                                config.geometry.col_groups())),
      array_(make_array_config(config, /*lp_ok=*/true)) {
  SRAMLP_REQUIRE(order_->rows() == config_.geometry.rows &&
                     order_->col_groups() == config_.geometry.col_groups(),
                 "address order does not match the array geometry");

  // Paper §4: the low-power test mode assumes the word-line-after-word-line
  // sequence; algorithms needing another order must use functional mode.
  if (config_.mode == sram::Mode::kLowPowerTest &&
      !order_->is_word_line_after_word_line()) {
    SRAMLP_REQUIRE(!config_.strict_lp_order,
                   "low-power test mode requires the "
                   "word-line-after-word-line address order (March DOF-1)");
    fell_back_ = true;
    array_.set_mode(sram::Mode::kFunctional);
  }
}

void TestSession::attach_fault_model(sram::CellFaultModel* model) {
  array_.attach_fault_model(model);
}

SessionResult TestSession::run(const march::MarchTest& input_test) {
  const march::MarchTest test =
      config_.invert_background ? input_test.complemented() : input_test;

  array_.reset_measurements();

  SessionResult result;
  result.algorithm = input_test.name();
  result.mode = array_.mode();
  result.fell_back_to_functional = fell_back_;

  const bool lp = array_.mode() == sram::Mode::kLowPowerTest;
  const std::size_t n = order_->size();
  const auto& elements = test.elements();

  for (std::size_t e = 0; e < elements.size(); ++e) {
    const march::MarchElement& element = elements[e];
    if (element.is_pause()) {
      // Delay element: the memory idles with word lines low.
      array_.idle(element.pause_cycles);
      continue;
    }
    const march::Direction dir = element.direction;
    const std::size_t ops = element.ops.size();

    for (std::size_t step = 0; step < n; ++step) {
      const march::Address& addr = order_->at(step, dir);

      // Row of the next address in test order (for the restore decision).
      // A following delay element forces a restore: bit-lines must not sit
      // discharged through a long idle window.
      std::optional<std::size_t> next_row;
      bool restore_before_pause = false;
      if (step + 1 < n) {
        next_row = order_->at(step + 1, dir).row;
      } else if (e + 1 < elements.size()) {
        if (elements[e + 1].is_pause()) {
          restore_before_pause = true;
        } else {
          const march::Direction next_dir = elements[e + 1].direction;
          next_row = order_->at(0, next_dir).row;
        }
      }

      for (std::size_t o = 0; o < ops; ++o) {
        const march::Operation op = element.ops[o];
        sram::CycleCommand cmd;
        cmd.row = addr.row;
        cmd.col_group = addr.col;
        cmd.is_read = march::is_read(op);
        cmd.value = march::value_of(op);
        cmd.background = config_.background;
        cmd.scan = to_scan(dir);
        cmd.restore_row_transition =
            lp && config_.row_transition_restore && o + 1 == ops &&
            (restore_before_pause ||
             (next_row.has_value() && *next_row != addr.row));

        const sram::CycleResult r = array_.cycle(cmd);
        if (cmd.is_read && r.mismatch) {
          ++result.mismatches;
          if (result.first_detections.size() < 16)
            result.first_detections.push_back(
                Detection{e, o, addr.row, addr.col});
        }
      }
    }
  }

  result.cycles = array_.meter().cycles();
  result.supply_energy_j = array_.meter().supply_total();
  result.energy_per_cycle_j = array_.meter().supply_per_cycle();
  result.meter = array_.meter();
  result.stats = array_.stats();
  return result;
}

PrrComparison TestSession::compare_modes(const SessionConfig& config,
                                         const march::MarchTest& test,
                                         sram::CellFaultModel* faults) {
  PrrComparison cmp;

  SessionConfig functional = config;
  functional.mode = sram::Mode::kFunctional;
  TestSession fs(functional);
  fs.attach_fault_model(faults);
  cmp.functional = fs.run(test);

  SessionConfig low_power = config;
  low_power.mode = sram::Mode::kLowPowerTest;
  TestSession ls(low_power);
  ls.attach_fault_model(faults);
  cmp.low_power = ls.run(test);

  const double pf = cmp.functional.energy_per_cycle_j;
  cmp.prr = pf > 0.0 ? 1.0 - cmp.low_power.energy_per_cycle_j / pf : 0.0;
  return cmp;
}

}  // namespace sramlp::core
