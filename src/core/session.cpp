#include "core/session.h"

#include <string>

#include "engine/analytic_backend.h"
#include "engine/cycle_accurate_backend.h"
#include "util/error.h"

namespace sramlp::core {

namespace {

sram::SramConfig make_array_config(const SessionConfig& config, bool lp_ok) {
  sram::SramConfig ac;
  ac.geometry = config.geometry;
  ac.tech = config.tech;
  ac.mode = (config.mode == sram::Mode::kLowPowerTest && lp_ok)
                ? sram::Mode::kLowPowerTest
                : sram::Mode::kFunctional;
  ac.row_transition_restore = config.row_transition_restore;
  ac.wordline_duty = config.wordline_duty;
  ac.swap_threshold_frac = config.swap_threshold_frac;
  ac.column_model = config.column_model;
  return ac;
}

/// Power Reduction Ratio from a pair of per-cycle energies (Table 1).
double prr_of(const SessionResult& functional, const SessionResult& low_power) {
  const double pf = functional.energy_per_cycle_j;
  return pf > 0.0 ? 1.0 - low_power.energy_per_cycle_j / pf : 0.0;
}

}  // namespace

TestSession::TestSession(const SessionConfig& config)
    : config_(config),
      order_(config.order ? *config.order
                          : march::AddressOrder::word_line_after_word_line(
                                config.geometry.rows,
                                config.geometry.col_groups())),
      array_(make_array_config(config, /*lp_ok=*/true)) {
  SRAMLP_REQUIRE(order_->rows() == config_.geometry.rows &&
                     order_->col_groups() == config_.geometry.col_groups(),
                 "address order does not match the array geometry");

  // Paper §4: the low-power test mode assumes the word-line-after-word-line
  // sequence; algorithms needing another order must use functional mode.
  if (config_.mode == sram::Mode::kLowPowerTest &&
      !order_->is_word_line_after_word_line()) {
    SRAMLP_REQUIRE(!config_.strict_lp_order,
                   "low-power test mode requires the "
                   "word-line-after-word-line address order (March DOF-1)");
    fell_back_ = true;
    array_.set_mode(sram::Mode::kFunctional);
  }
}

void TestSession::attach_fault_model(sram::CellFaultModel* model) {
  faults_ = model;
  array_.attach_fault_model(model);
}

engine::CommandStream TestSession::make_stream(
    const march::MarchTest& test) const {
  engine::StreamOptions options;
  options.low_power = array_.mode() == sram::Mode::kLowPowerTest;
  options.row_transition_restore = config_.row_transition_restore;
  options.invert_background = config_.invert_background;
  options.background = config_.background;
  options.trace = config_.trace;
  options.waveform_sink = config_.waveform_sink;
  return engine::CommandStream(test, *order_, options);
}

SessionResult TestSession::run(const march::MarchTest& test) {
  engine::CycleAccurateBackend backend(array_);
  return run(test, backend);
}

SessionResult TestSession::run(const march::MarchTest& test,
                               engine::ExecutionBackend& backend) {
  SRAMLP_REQUIRE(faults_ == nullptr || backend.supports_faults(),
                 std::string("backend '") + backend.name() +
                     "' ignores fault models; detach the model or use a "
                     "fault-capable backend");

  engine::CommandStream stream = make_stream(test);
  engine::ExecutionResult exec = backend.run(stream);

  SessionResult result;
  result.algorithm = test.name();
  result.mode = array_.mode();
  result.fell_back_to_functional = fell_back_;
  result.cycles = exec.cycles;
  result.supply_energy_j = exec.supply_energy_j;
  result.energy_per_cycle_j = exec.energy_per_cycle_j;
  result.meter = std::move(exec.meter);
  result.stats = exec.stats;
  result.mismatches = exec.mismatches;
  result.first_detections = std::move(exec.first_detections);
  result.trace = std::move(exec.trace);
  return result;
}

PrrComparison TestSession::compare_modes(const SessionConfig& config,
                                         const march::MarchTest& test,
                                         sram::CellFaultModel* faults) {
  PrrComparison cmp;

  SessionConfig functional = config;
  functional.mode = sram::Mode::kFunctional;
  TestSession fs(functional);
  fs.attach_fault_model(faults);
  cmp.functional = fs.run(test);

  SessionConfig low_power = config;
  low_power.mode = sram::Mode::kLowPowerTest;
  TestSession ls(low_power);
  ls.attach_fault_model(faults);
  cmp.low_power = ls.run(test);

  cmp.prr = prr_of(cmp.functional, cmp.low_power);
  return cmp;
}

PrrComparison TestSession::compare_modes_analytic(const SessionConfig& config,
                                                  const march::MarchTest& test) {
  // Session-free fast path: no per-cell array is ever built, and the two
  // mode runs share one address order, so a sweep point costs O(words)
  // for the order plus O(1) for the closed form.
  const march::AddressOrder order =
      config.order ? *config.order
                   : march::AddressOrder::word_line_after_word_line(
                         config.geometry.rows, config.geometry.col_groups());
  SRAMLP_REQUIRE(order.rows() == config.geometry.rows &&
                     order.col_groups() == config.geometry.col_groups(),
                 "address order does not match the array geometry");
  // Paper §4 fallback, as TestSession would resolve it for the LP leg.
  const bool lp_ok = order.is_word_line_after_word_line();
  SRAMLP_REQUIRE(lp_ok || !config.strict_lp_order,
                 "low-power test mode requires the "
                 "word-line-after-word-line address order (March DOF-1)");

  engine::AnalyticBackend backend(config.tech, config.geometry);
  const auto run_schedule = [&](bool low_power) {
    engine::StreamOptions options;
    options.low_power = low_power;
    options.row_transition_restore = config.row_transition_restore;
    options.invert_background = config.invert_background;
    options.background = config.background;
    options.trace = config.trace;
    engine::CommandStream stream(test, order, options);
    engine::ExecutionResult exec = backend.run(stream);

    SessionResult result;
    result.algorithm = test.name();
    result.mode = low_power ? sram::Mode::kLowPowerTest
                            : sram::Mode::kFunctional;
    result.cycles = exec.cycles;
    result.supply_energy_j = exec.supply_energy_j;
    result.energy_per_cycle_j = exec.energy_per_cycle_j;
    result.stats = exec.stats;
    result.trace = std::move(exec.trace);
    return result;
  };

  PrrComparison cmp;
  cmp.functional = run_schedule(false);
  cmp.low_power = run_schedule(lp_ok);
  cmp.low_power.fell_back_to_functional = !lp_ok;
  cmp.prr = prr_of(cmp.functional, cmp.low_power);
  return cmp;
}

}  // namespace sramlp::core
