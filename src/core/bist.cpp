#include "core/bist.h"

#include <utility>

#include "util/error.h"

namespace sramlp::core {

BistProgram BistProgram::compile(const march::MarchTest& test) {
  BistProgram p;
  p.name_ = test.name();
  for (const auto& element : test.elements()) {
    SRAMLP_REQUIRE(!element.is_pause(),
                   "BIST programs do not support delay elements; run "
                   "retention tests through core::TestSession");
    BistElementRecord record;
    record.descending = element.direction == march::Direction::kDown;
    record.first_op = static_cast<std::uint32_t>(p.rom_.size());
    record.op_count = static_cast<std::uint32_t>(element.ops.size());
    for (const march::Operation op : element.ops)
      p.rom_.push_back(BistMicroOp{march::is_read(op), march::value_of(op)});
    p.elements_.push_back(record);
  }
  return p;
}

std::uint64_t BistProgram::cycle_count(std::size_t rows,
                                       std::size_t col_groups) const {
  return static_cast<std::uint64_t>(rom_.size()) *
         static_cast<std::uint64_t>(rows) *
         static_cast<std::uint64_t>(col_groups);
}

BistController::BistController(BistProgram program,
                               const sram::Geometry& geometry,
                               const Options& options)
    : program_(std::move(program)), geometry_(geometry), options_(options) {
  geometry_.validate();
  SRAMLP_REQUIRE(!program_.elements().empty(), "empty BIST program");
  done_ = false;
}

std::uint64_t BistController::current_index() const {
  const auto& record = program_.elements()[element_];
  const std::uint64_t words = geometry_.words();
  return record.descending ? words - 1 - address_ : address_;
}

std::size_t BistController::row_of(std::size_t index) const {
  // Word-line-after-word-line: the linear counter's high part is the row.
  return index / geometry_.col_groups();
}

std::size_t BistController::col_of(std::size_t index) const {
  return index % geometry_.col_groups();
}

std::optional<std::size_t> BistController::next_row() const {
  const auto& record = program_.elements()[element_];
  const std::uint64_t words = geometry_.words();
  if (op_ + 1 < record.op_count) return row_of(current_index());
  if (address_ + 1 < words) {
    const std::uint64_t next = address_ + 1;
    const std::uint64_t idx = record.descending ? words - 1 - next : next;
    return row_of(idx);
  }
  if (element_ + 1 < program_.elements().size()) {
    const auto& next_record = program_.elements()[element_ + 1];
    return next_record.descending ? geometry_.rows - 1 : std::size_t{0};
  }
  return std::nullopt;
}

std::optional<sram::CycleCommand> BistController::peek() const {
  if (done_) return std::nullopt;
  const auto& record = program_.elements()[element_];
  const std::uint64_t idx = current_index();
  const BistMicroOp& micro = program_.rom()[record.first_op + op_];

  sram::CycleCommand cmd;
  cmd.row = row_of(idx);
  cmd.col_group = col_of(idx);
  cmd.is_read = micro.is_read;
  cmd.value = micro.value;
  cmd.background = options_.background;
  cmd.scan = record.descending ? sram::Scan::kDescending
                               : sram::Scan::kAscending;
  const auto next = next_row();
  cmd.restore_row_transition =
      options_.mode == sram::Mode::kLowPowerTest &&
      options_.row_transition_restore && op_ + 1 == record.op_count &&
      next.has_value() && *next != cmd.row;
  return cmd;
}

bool BistController::lptest_level() const {
  if (options_.mode != sram::Mode::kLowPowerTest) return false;
  const auto cmd = peek();
  // The mode line drops for the single restore cycle (paper §4).
  return cmd.has_value() && !cmd->restore_row_transition;
}

sram::CycleResult BistController::step(sram::SramArray& array) {
  SRAMLP_REQUIRE(!done_, "stepping a finished BIST run");
  SRAMLP_REQUIRE(array.geometry() == geometry_,
                 "array geometry does not match the program");
  const auto cmd = peek();
  const sram::CycleResult result = array.cycle(*cmd);
  ++outcome_.cycles;
  if (cmd->restore_row_transition) ++outcome_.restore_pulses;
  if (cmd->is_read && result.mismatch) {
    ++outcome_.fails;
    outcome_.fail_latch = true;
  }
  advance();
  return result;
}

void BistController::advance() {
  const auto& record = program_.elements()[element_];
  if (++op_ < record.op_count) return;
  op_ = 0;
  if (++address_ < geometry_.words()) return;
  address_ = 0;
  if (++element_ < program_.elements().size()) return;
  done_ = true;
}

BistOutcome BistController::run(sram::SramArray& array) {
  while (!done_) step(array);
  return outcome_;
}

}  // namespace sramlp::core
