#include "core/bist.h"

#include <utility>

#include "util/error.h"

namespace sramlp::core {

namespace {

march::Operation to_operation(const BistMicroOp& micro) {
  if (micro.is_read)
    return micro.value ? march::Operation::kR1 : march::Operation::kR0;
  return micro.value ? march::Operation::kW1 : march::Operation::kW0;
}

march::AddressOrder make_order(const sram::Geometry& geometry) {
  geometry.validate();
  return march::AddressOrder::word_line_after_word_line(
      geometry.rows, geometry.col_groups());
}

engine::StreamOptions stream_options(const BistController::Options& options) {
  engine::StreamOptions so;
  so.low_power = options.mode == sram::Mode::kLowPowerTest;
  so.row_transition_restore = options.row_transition_restore;
  so.background = options.background;
  return so;
}

}  // namespace

BistProgram BistProgram::compile(const march::MarchTest& test) {
  BistProgram p;
  p.name_ = test.name();
  for (const auto& element : test.elements()) {
    SRAMLP_REQUIRE(!element.is_pause(),
                   "BIST programs do not support delay elements; run "
                   "retention tests through core::TestSession");
    BistElementRecord record;
    record.descending = element.direction == march::Direction::kDown;
    record.first_op = static_cast<std::uint32_t>(p.rom_.size());
    record.op_count = static_cast<std::uint32_t>(element.ops.size());
    for (const march::Operation op : element.ops)
      p.rom_.push_back(BistMicroOp{march::is_read(op), march::value_of(op)});
    p.elements_.push_back(record);
  }
  return p;
}

march::MarchTest BistProgram::reassemble() const {
  SRAMLP_REQUIRE(!elements_.empty(), "empty BIST program");
  std::vector<march::MarchElement> elements;
  elements.reserve(elements_.size());
  for (const BistElementRecord& record : elements_) {
    march::MarchElement element;
    element.direction = record.descending ? march::Direction::kDown
                                          : march::Direction::kUp;
    element.ops.reserve(record.op_count);
    for (std::uint32_t i = 0; i < record.op_count; ++i)
      element.ops.push_back(to_operation(rom_[record.first_op + i]));
    elements.push_back(std::move(element));
  }
  return march::MarchTest(name_, std::move(elements));
}

std::uint64_t BistProgram::cycle_count(std::size_t rows,
                                       std::size_t col_groups) const {
  return static_cast<std::uint64_t>(rom_.size()) *
         static_cast<std::uint64_t>(rows) *
         static_cast<std::uint64_t>(col_groups);
}

BistController::BistController(BistProgram program,
                               const sram::Geometry& geometry,
                               const Options& options)
    : program_(std::move(program)),
      geometry_(geometry),
      options_(options),
      order_(make_order(geometry_)),
      stream_(program_.reassemble(), order_, stream_options(options_)) {}

std::optional<sram::CycleCommand> BistController::peek() const {
  const engine::StreamStep* step = stream_.peek();
  if (step == nullptr) return std::nullopt;
  return step->command;
}

bool BistController::lptest_level() const {
  if (options_.mode != sram::Mode::kLowPowerTest) return false;
  const auto cmd = peek();
  // The mode line drops for the single restore cycle (paper §4).
  return cmd.has_value() && !cmd->restore_row_transition;
}

sram::CycleResult BistController::step(sram::SramArray& array) {
  SRAMLP_REQUIRE(!done(), "stepping a finished BIST run");
  SRAMLP_REQUIRE(array.geometry() == geometry_,
                 "array geometry does not match the program");
  const sram::CycleCommand cmd = stream_.peek()->command;
  const sram::CycleResult result = array.cycle(cmd);
  ++outcome_.cycles;
  if (cmd.restore_row_transition) ++outcome_.restore_pulses;
  if (cmd.is_read && result.mismatch) {
    ++outcome_.fails;
    outcome_.fail_latch = true;
  }
  stream_.pop();
  return result;
}

BistOutcome BistController::run(sram::SramArray& array) {
  while (!done()) step(array);
  return outcome_;
}

}  // namespace sramlp::core
