// The sweep service: a long-running coordinator daemon with dynamic shard
// stealing and a fingerprint-keyed result cache.
//
// The fork/exec Coordinator answers "run this job once, survive crashes";
// the service answers "keep answering jobs" — the ROADMAP's
// millions-of-users shape, where analytic points cost ~0.2 ms and the
// dominant costs are process spawn, static shard imbalance and
// recomputing grid points already solved.  Three moves:
//
//   * keep-alive socket protocol — jobs arrive as JSON over a Unix/TCP
//     socket (io::LineChannel frames the existing exact wire format) and
//     the shard result stream goes back to the submitter LIVE, line by
//     line, as workers finish points;
//   * dynamic shard stealing — instead of a static ShardPlan, each job is
//     chopped into many small StealQueue shards that idle workers pull;
//     a deliberately slow worker just steals fewer shards (see
//     tests/test_service_soak.cpp for the static-vs-steal wall-clock
//     comparison).  A worker that dies mid-shard has its leases requeued;
//     partially streamed points are idempotent because results are
//     deterministic and carry their flat indices;
//   * result cache — completed jobs are cached as their exact merged
//     document bytes keyed by JobSpec::fingerprint() (memory LRU +
//     on-disk JSONL spill, ResultCache), so a resubmitted job is a
//     lookup, not a run, and byte-identical to the fresh run.  Individual
//     grid points / campaign entries are cached under their own canonical
//     fingerprints too, so a NEW job overlapping an old one only computes
//     the indices never seen before.
//
// Topology: one Service process; any number of ServiceWorker processes or
// threads connect and steal (the `sramlp_dist serve` CLI spawns N worker
// subprocesses of its own binary; extra workers on other hosts can
// `sramlp_dist work --connect tcp:host:port` to join).  Submitters
// connect, send one job, and read the stream.  Identical jobs submitted
// while one is in flight attach to it (deduplicated, replayed from the
// start) rather than recomputing.
//
// The fork/exec Coordinator (`sramlp_dist run`) remains the degraded-path
// fallback: batch runs, file transports, checkpoint/resume.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dist/job.h"
#include "dist/result_cache.h"
#include "dist/steal_queue.h"
#include "io/framing.h"

namespace sramlp::dist {

/// Canonical cache key of one work item: grid point @p index of a sweep
/// job, or fault @p index of a campaign job.  Two jobs that contain the
/// same point (same session config + algorithm (+ fault)) produce the same
/// key whatever the rest of their grids look like.
std::uint64_t point_fingerprint(const JobSpec& job, std::size_t index);

struct ServiceStats {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_deduplicated = 0;  ///< attached to an in-flight twin
  std::uint64_t job_cache_hits = 0;     ///< whole job answered from cache
  std::uint64_t point_cache_hits = 0;   ///< individual points answered
  std::uint64_t points_executed = 0;    ///< results received from workers
  std::uint64_t shards_executed = 0;
  std::uint64_t shard_requeues = 0;     ///< abandoned/failed shards requeued
  std::uint64_t workers_connected = 0;
  std::uint64_t workers_lost = 0;       ///< connections dropped with leases
  ResultCache::Stats cache;
};

class Service {
 public:
  struct Options {
    /// Listen address: "unix:/path" or "tcp:port" / "tcp:host:port"
    /// ("tcp:0" picks an ephemeral port — read it back from address()).
    std::string listen = "tcp:0";
    /// Steal-queue granularity: flat indices per shard.  Small shards are
    /// the point — they are what lets idle workers steal around a slow
    /// one.
    std::size_t points_per_shard = 4;
    /// Cap on shards per job (shard size grows instead).  0 = uncapped.
    std::size_t max_shards_per_job = 512;
    /// Re-runs granted to a failed shard before the job is failed.
    unsigned shard_retries = 1;
    /// Result cache tiers (capacity + optional spill file).
    ResultCache::Options cache;
    /// Also cache individual grid points / campaign entries, so new jobs
    /// that overlap old ones skip the overlap.
    bool point_cache = true;
  };

  explicit Service(const Options& options);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Bind, listen and start accepting.  Throws on a bad address.
  void start();

  /// The resolved listen address (ephemeral TCP ports resolved).
  std::string address() const;

  /// Block until the service is asked to stop (shutdown message or
  /// request_stop()), then tear everything down.  Call from the thread
  /// that owns the service (the daemon's main thread).
  void wait();

  /// Ask the service to stop: wakes wait(), unblocks every connection.
  /// Safe from any thread, including connection handlers.
  void request_stop();

  ServiceStats stats() const;

 private:
  struct ActiveJob;
  struct Connection;

  void accept_loop();
  void handle_connection(std::shared_ptr<Connection> conn);
  void handle_submit(const std::shared_ptr<Connection>& conn,
                     const io::JsonValue& message);
  void handle_worker(const std::shared_ptr<Connection>& conn);
  bool deliver_result(const io::JsonValue& message);
  /// Refresh the pending-shard gauge from the live queues (mutex_ held).
  void update_queue_depth_locked();
  void finalize_job_locked(std::unique_lock<std::mutex>& lock,
                           const std::shared_ptr<ActiveJob>& job);
  void fail_job_locked(const std::shared_ptr<ActiveJob>& job,
                       const std::string& error);

  Options options_;
  ResultCache cache_;

  io::Socket listener_;
  std::string address_;
  std::thread accept_thread_;

  /// Lock order (TSan-verified by tests/test_steal_queue_stress.cpp):
  /// Service::mutex_ may be held while calling into cache_ (ResultCache::
  /// mutex_) or a job's StealQueue (StealQueue::mutex_); neither of those
  /// classes ever calls back into the Service, so the hierarchy is
  /// acyclic — never take mutex_ from code reachable under theirs.
  /// io::LineChannel::send_mutex_ (per-socket write framing) is a leaf
  /// below all three.
  mutable std::mutex mutex_;
  std::condition_variable state_cv_;  ///< work arrived / job done / stopping
  bool started_ = false;
  bool stopping_ = false;
  std::uint64_t next_worker_id_ = 1;
  std::uint64_t next_conn_id_ = 1;  ///< correlation id for log lines
  std::vector<std::shared_ptr<Connection>> connections_;
  std::map<std::uint64_t, std::shared_ptr<ActiveJob>> active_jobs_;
  std::vector<std::uint64_t> job_order_;  ///< submission order (FIFO leases)
  ServiceStats stats_;
};

/// Worker half of the steal protocol: connect, steal shards, compute them
/// through the exact single-process entry points, stream results.  Run it
/// on a thread (tests, benches) or in a process (`sramlp_dist work`).
class ServiceWorker {
 public:
  struct Options {
    /// Threads for one shard's own points; service scale comes from
    /// worker count, so the default is serial.
    unsigned threads = 1;
    bool batched_campaigns = true;
    /// Artificial per-point delay — models a slow host (benches, the
    /// steal-vs-static soak comparison).
    std::uint64_t slow_point_us = 0;
    /// Soak-test kill switch: after streaming this many points the worker
    /// drops its connection mid-shard (no shard_done), as if killed.
    std::size_t die_after_points = static_cast<std::size_t>(-1);
  };

  ServiceWorker() = default;
  explicit ServiceWorker(const Options& options) : options_(options) {}

  /// Serve until the service says stop, the connection drops, or the kill
  /// switch fires.  Returns the number of points computed.
  std::size_t run(const std::string& address, int connect_timeout_ms = 5000);

 private:
  Options options_;
};

/// One submitted job's outcome, client side.
struct SubmitResult {
  bool cache_hit = false;        ///< whole job answered from the cache
  std::size_t total_points = 0;
  std::size_t cached_points = 0; ///< answered by the per-point cache
  std::size_t streamed_lines = 0;
  double cache_hit_rate = 0.0;   ///< service-wide, as of this job
  /// The merged document — byte-identical to `sramlp_dist single` on the
  /// same job, whether computed, point-cached or replayed whole.
  std::string document;
};

/// Submit @p job and stream until completion.  @p on_line (optional) sees
/// every live result line.  @p submitter (optional) labels the service's
/// per-submitter fairness counters; empty reads as "anonymous".  Throws
/// sramlp::Error on connection failure or a job_failed reply.
SubmitResult submit_job(
    const std::string& address, const JobSpec& job,
    int connect_timeout_ms = 5000,
    const std::function<void(const io::JsonValue&)>& on_line = {},
    const std::string& submitter = {});

/// Fetch a running service's statistics.
ServiceStats query_stats(const std::string& address,
                         int connect_timeout_ms = 5000);

/// One scrape of a running service's obs::Registry, both renderings.
struct MetricsSnapshot {
  std::string prometheus;  ///< Prometheus text exposition
  io::JsonValue json;      ///< the same content as one JSON document
};

/// Fetch a running service's metrics (the `metrics` protocol request).
MetricsSnapshot query_metrics(const std::string& address,
                              int connect_timeout_ms = 5000);

/// Ask a running service to shut down (waits for the acknowledgement).
void request_shutdown(const std::string& address,
                      int connect_timeout_ms = 5000);

}  // namespace sramlp::dist
