// ResultCache — fingerprint-keyed result memoization for the sweep service.
//
// Analytic sweep points cost ~0.2 ms; at service scale the dominant cost
// of a popular grid point is re-running it.  The cache closes that loop:
// results are keyed by the FNV-1a fingerprint of their canonical JSON
// request form (JobSpec::fingerprint for whole jobs, a per-point canonical
// document for individual grid points / campaign entries) and stored as
// the exact BYTES they were first rendered to — a hit replays those bytes,
// so a cached response is byte-identical to a fresh run by construction.
//
// Two tiers:
//   * in-memory LRU — `capacity` most-recently-used payloads, O(1) get/put;
//   * on-disk JSONL spill — every insertion appends
//     {"key": K, "payload": "..."} to the spill file.  The file is the
//     authoritative store: at construction it is scanned into a key ->
//     offset index (payloads stay on disk), a memory miss re-reads the
//     line, and a daemon restart warm-starts from it.  Payloads are JSON
//     text, which a JSON string member round-trips exactly.
//
// Thread-safe (one mutex; the service calls it from every connection
// thread).
#pragma once

#include <cstdint>
#include <fstream>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace sramlp::dist {

class ResultCache {
 public:
  struct Options {
    /// Payloads kept in memory (LRU).  0 disables the memory tier (every
    /// hit re-reads the spill file — only sensible with a spill path).
    std::size_t capacity = 128;
    /// JSONL spill file; empty = memory-only cache.
    std::string spill_path;
  };

  struct Stats {
    std::uint64_t hits = 0;          ///< memory + spill hits
    std::uint64_t spill_hits = 0;    ///< hits served by re-reading the spill
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t loaded = 0;        ///< entries indexed from the spill file
    std::size_t entries = 0;         ///< distinct keys known (memory + spill)

    double hit_rate() const {
      const std::uint64_t lookups = hits + misses;
      return lookups == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups);
    }
  };

  ResultCache() : ResultCache(Options{}) {}
  explicit ResultCache(const Options& options);

  /// Look @p key up; bumps LRU recency and the hit/miss counters.
  std::optional<std::string> get(std::uint64_t key);

  /// Insert (or refresh) @p key.  Appends to the spill file when one is
  /// configured; re-inserting an existing key is a no-op for the spill
  /// (the payload for a key never changes — results are deterministic).
  void put(std::uint64_t key, std::string payload);

  /// True without disturbing recency or counters (the service uses this
  /// to decide whether a submission is a hit before replaying it).
  bool contains(std::uint64_t key) const;

  Stats stats() const;

 private:
  void remember(std::uint64_t key, std::string payload);  // locked by caller

  Options options_;
  mutable std::mutex mutex_;
  /// LRU list, most recent first; map points into it.
  std::list<std::pair<std::uint64_t, std::string>> lru_;
  std::unordered_map<std::uint64_t, decltype(lru_)::iterator> memory_;
  /// Spill index: key -> byte offset of its record line.
  std::unordered_map<std::uint64_t, std::uint64_t> spill_index_;
  std::ofstream spill_out_;
  Stats stats_;
};

}  // namespace sramlp::dist
