#include "dist/steal_queue.h"

#include "obs/metrics.h"
#include "util/error.h"

namespace sramlp::dist {

namespace {

obs::Counter& leases_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "sramlp_shards_leased_total", "Shards stolen (leased) by workers");
  return c;
}

obs::Counter& abandons_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "sramlp_shards_abandoned_total",
      "Leased shards requeued because their worker vanished");
  return c;
}

}  // namespace

StealQueue::StealQueue(std::vector<std::size_t> indices,
                       std::size_t points_per_shard, std::size_t max_shards) {
  std::size_t per_shard = points_per_shard == 0 ? 1 : points_per_shard;
  if (max_shards != 0 && !indices.empty()) {
    // Grow the shard size until the count fits the cap (ceiling division).
    const std::size_t min_size = (indices.size() + max_shards - 1) / max_shards;
    if (per_shard < min_size) per_shard = min_size;
  }
  for (std::size_t start = 0; start < indices.size(); start += per_shard) {
    const std::size_t end = std::min(start + per_shard, indices.size());
    shards_.emplace_back(indices.begin() + static_cast<std::ptrdiff_t>(start),
                         indices.begin() + static_cast<std::ptrdiff_t>(end));
  }
  attempts_.assign(shards_.size(), 0);
  completed_flags_.assign(shards_.size(), false);
  for (std::size_t s = 0; s < shards_.size(); ++s) pending_.push_back(s);
}

std::optional<StealShard> StealQueue::lease(std::uint64_t worker_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pending_.empty()) return std::nullopt;
  const std::size_t id = pending_.front();
  pending_.pop_front();
  leased_[id] = worker_id;
  ++attempts_[id];
  leases_counter().inc();
  return StealShard{id, shards_[id]};
}

void StealQueue::complete(std::size_t shard_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shard_id >= shards_.size() || completed_flags_[shard_id]) return;
  completed_flags_[shard_id] = true;
  ++completed_;
  leased_.erase(shard_id);
  // If the shard was requeued (its original worker presumed dead) and then
  // completed by that worker after all, drop the stale pending copy.
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (*it == shard_id) {
      pending_.erase(it);
      break;
    }
  }
}

std::size_t StealQueue::abandon(std::uint64_t worker_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t requeued = 0;
  for (auto it = leased_.begin(); it != leased_.end();) {
    if (it->second == worker_id) {
      pending_.push_back(it->first);
      it = leased_.erase(it);
      ++requeued;
    } else {
      ++it;
    }
  }
  requeues_ += requeued;
  abandons_counter().inc(requeued);
  return requeued;
}

bool StealQueue::fail(std::size_t shard_id, unsigned retries) {
  std::lock_guard<std::mutex> lock(mutex_);
  SRAMLP_REQUIRE(shard_id < shards_.size(), "unknown steal shard id");
  if (completed_flags_[shard_id]) return true;  // raced a duplicate run
  leased_.erase(shard_id);
  if (attempts_[shard_id] > retries) return false;
  pending_.push_back(shard_id);
  ++requeues_;
  return true;
}

bool StealQueue::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_ == shards_.size();
}

StealQueue::Stats StealQueue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.shard_count = shards_.size();
  stats.pending = pending_.size();
  stats.leased = leased_.size();
  stats.completed = completed_;
  stats.requeues = requeues_;
  return stats;
}

}  // namespace sramlp::dist
