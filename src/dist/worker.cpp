#include "dist/worker.h"

#include <unistd.h>

#include <istream>
#include <ostream>
#include <string>

#include "engine/parallel.h"
#include "search/serialize.h"
#include "util/error.h"

namespace sramlp::dist {

namespace {

void emit_line(std::ostream& out, const io::JsonValue& value) {
  out << value.dump() << '\n';
}

void slow_down(std::uint64_t slow_point_us) {
  if (slow_point_us > 0) ::usleep(static_cast<useconds_t>(slow_point_us));
}

}  // namespace

void Worker::run(const ShardSpec& spec, std::ostream& out) const {
  spec.validate();
  const std::vector<std::size_t> owned = spec.plan.indices_of(spec.shard);

  io::JsonValue header = io::JsonValue::object();
  header.set("type", io::JsonValue::string("shard_header"));
  header.set("fingerprint", io::JsonValue::integer(spec.job.fingerprint()));
  header.set("shard", io::JsonValue::integer(spec.shard));
  header.set("shard_count", io::JsonValue::integer(spec.plan.shard_count));
  header.set("total", io::JsonValue::integer(spec.plan.total));
  header.set("points", io::JsonValue::integer(owned.size()));
  emit_line(out, header);

  std::size_t points = 0;
  if (spec.job.kind == JobSpec::Kind::kSweep) {
    // SweepRunner::run_indices IS run()'s arithmetic applied to the owned
    // subset, so these points are bit-identical to the single-process
    // grid slots they merge into.
    const core::SweepRunner runner(
        core::SweepRunner::Options{options_.threads,
                                   core::BackendChoice::kAuto});
    const std::vector<core::SweepPointResult> results =
        runner.run_indices(spec.job.grid, owned);
    for (const core::SweepPointResult& point : results) {
      slow_down(options_.slow_point_us);
      io::JsonValue line = io::JsonValue::object();
      line.set("type", io::JsonValue::string("sweep_point"));
      line.set("data", io::to_json(point));
      emit_line(out, line);
      ++points;
    }
  } else if (spec.job.kind == JobSpec::Kind::kSearch) {
    // Search shard: run_restart(spec, r) is a pure function of its
    // arguments, so each owned restart reproduces the exact bytes the
    // single-process run_search computes for that slot.
    std::vector<search::RestartResult> results(owned.size());
    engine::parallel_for(owned.size(), options_.threads,
                         [&](std::size_t j) {
                           results[j] = search::run_restart(
                               *spec.job.search, owned[j]);
                         });
    for (std::size_t j = 0; j < owned.size(); ++j) {
      slow_down(options_.slow_point_us);
      io::JsonValue line = io::JsonValue::object();
      line.set("type", io::JsonValue::string("search_restart"));
      line.set("index", io::JsonValue::integer(owned[j]));
      line.set("data", io::to_json(results[j]));
      emit_line(out, line);
      ++points;
    }
  } else {
    // Campaign shard: CampaignRunner::run_subset computes exactly the
    // entries a whole-library run() fills into these slots (entry results
    // are execution-shape independent, so batching within the shard is
    // purely a wall-time choice).
    core::CampaignRunner::Options options;
    options.threads = options_.threads;
    options.batched = options_.batched_campaigns;
    const std::vector<core::CampaignEntry> entries =
        core::CampaignRunner(options).run_subset(
            spec.job.config, *spec.job.test, spec.job.faults, owned);
    SRAMLP_REQUIRE(entries.size() == owned.size(),
                   "campaign shard produced a short report");
    for (std::size_t j = 0; j < owned.size(); ++j) {
      slow_down(options_.slow_point_us);
      io::JsonValue line = io::JsonValue::object();
      line.set("type", io::JsonValue::string("campaign_entry"));
      line.set("index", io::JsonValue::integer(owned[j]));
      line.set("data", io::to_json(entries[j]));
      emit_line(out, line);
      ++points;
    }
  }

  io::JsonValue trailer = io::JsonValue::object();
  trailer.set("type", io::JsonValue::string("shard_complete"));
  trailer.set("shard", io::JsonValue::integer(spec.shard));
  trailer.set("points", io::JsonValue::integer(points));
  emit_line(out, trailer);
  out.flush();
}

ShardResult parse_shard_results(std::istream& in, const JobSpec& job,
                                const ShardPlan& plan, std::size_t shard) {
  ShardResult result;
  result.shard = shard;
  const std::size_t expected = plan.size_of(shard);
  bool header_ok = false;
  bool trailer_ok = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    io::JsonValue value;
    try {
      value = io::JsonValue::parse(line);
    } catch (const Error&) {
      break;  // truncated / garbled line: stop, report incomplete
    }
    try {
      const std::string& type = value.at("type").as_string();
      if (type == "shard_header") {
        header_ok = value.at("fingerprint").as_uint() == job.fingerprint() &&
                    value.at("shard").as_size() == shard &&
                    value.at("shard_count").as_size() == plan.shard_count &&
                    value.at("total").as_size() == plan.total;
        if (!header_ok) break;  // a different job's file: do not trust it
      } else if (type == "sweep_point") {
        result.sweep.push_back(io::sweep_point_from_json(value.at("data")));
      } else if (type == "campaign_entry") {
        result.entries.emplace_back(
            value.at("index").as_size(),
            io::campaign_entry_from_json(value.at("data")));
      } else if (type == "search_restart") {
        result.search.emplace_back(
            value.at("index").as_size(),
            io::restart_result_from_json(value.at("data")));
      } else if (type == "shard_complete") {
        trailer_ok = value.at("shard").as_size() == shard &&
                     value.at("points").as_size() == expected;
        break;
      }
    } catch (const Error&) {
      break;  // structurally wrong record: report incomplete
    }
  }
  std::size_t points = 0;
  switch (job.kind) {
    case JobSpec::Kind::kSweep: points = result.sweep.size(); break;
    case JobSpec::Kind::kCampaign: points = result.entries.size(); break;
    case JobSpec::Kind::kSearch: points = result.search.size(); break;
  }
  result.complete = header_ok && trailer_ok && points == expected;
  return result;
}

}  // namespace sramlp::dist
