// Worker side of the distributed protocol: execute ONE shard of a job and
// stream results as JSONL.
//
// A worker is a pure function of its ShardSpec: it derives the owned flat
// indices from the plan, computes each through the exact same executors a
// single-process run uses (core::SweepRunner::run_point for grids,
// core::CampaignRunner for fault subsets), and writes one JSON document per
// line:
//
//   {"type":"shard_header", "fingerprint":F, "shard":k, "shard_count":K,
//    "total":N, "points":M}
//   {"type":"sweep_point", "data":{...}}            (sweep jobs, M lines)
//   {"type":"campaign_entry", "index":i, "data":{...}} (campaign jobs)
//   {"type":"search_restart", "index":i, "data":{...}} (search jobs)
//   {"type":"shard_complete", "shard":k, "points":M}
//
// The header fingerprint ties the file to the job that produced it; the
// trailer is the completeness marker — a killed worker leaves a file
// without one, which parse_shard_results reports as incomplete and the
// coordinator's resume logic recomputes.
#pragma once

#include <iosfwd>
#include <utility>
#include <vector>

#include "dist/job.h"

namespace sramlp::dist {

/// One parsed shard result file.
struct ShardResult {
  std::size_t shard = 0;
  bool complete = false;  ///< header + all points + matching trailer seen
  /// Sweep jobs: the shard's points (flat index inside each result).
  std::vector<core::SweepPointResult> sweep;
  /// Campaign jobs: (flat index, entry) pairs.
  std::vector<std::pair<std::size_t, core::CampaignEntry>> entries;
  /// Search jobs: (restart index, restart result) pairs.
  std::vector<std::pair<std::size_t, search::RestartResult>> search;
};

class Worker {
 public:
  struct Options {
    /// Worker threads for the shard's own points; distributed runs default
    /// to 1 and scale by process count instead.
    unsigned threads = 1;
    /// Batch victim-disjoint campaign faults within the shard.  Entry
    /// verdicts are execution-shape independent, so this only changes the
    /// shard's wall time.
    bool batched_campaigns = true;
    /// Artificial per-point delay (microseconds) — models a slow host in
    /// the static-vs-steal scheduling comparisons.  Applied after each
    /// point is computed, so results are unaffected.
    std::uint64_t slow_point_us = 0;
  };

  Worker() = default;
  explicit Worker(const Options& options) : options_(options) {}

  /// Execute @p spec's shard and stream the JSONL protocol to @p out.
  /// Throws sramlp::Error on an invalid spec; the trailer is only written
  /// after every point succeeded.
  void run(const ShardSpec& spec, std::ostream& out) const;

 private:
  Options options_;
};

/// Parse one shard result stream against the job/plan/shard it should
/// describe.  Returns complete = false (with whatever points parsed) when
/// the file is truncated, the trailer is missing, the fingerprint belongs
/// to a different job, or the point count disagrees with the plan — the
/// caller treats any of those as "recompute this shard".
ShardResult parse_shard_results(std::istream& in, const JobSpec& job,
                                const ShardPlan& plan, std::size_t shard);

}  // namespace sramlp::dist
