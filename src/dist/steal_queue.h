// StealQueue — dynamic shard ownership for the sweep service.
//
// The static ShardPlan fixes which worker computes which indices before
// anything runs; one slow host then stretches the whole job to its own
// pace.  The steal queue inverts ownership: the job is chopped into MANY
// small shards (each just a list of flat indices), and idle workers pull
// ("steal") the next one the moment they finish their last — a slow
// worker simply ends up holding fewer shards, and heterogeneous workers
// stay saturated without anyone planning for them.
//
// Determinism is preserved because ownership never touches arithmetic:
// every index is computed by the same SweepRunner::run_indices /
// CampaignRunner::run_subset entry points whichever worker steals it, and
// results carry their flat indices, so the merged document is
// bit-identical to a single-process run whatever the interleaving.
//
// Fault tolerance is requeue-based: a shard leased to a worker that dies
// (socket drop, crash) is abandoned back onto the queue; a shard a worker
// reports as failed is retried a bounded number of times before the
// whole job is declared failed.
//
// All methods are thread-safe (internal mutex); lease() never blocks —
// the service layer owns the waiting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace sramlp::dist {

/// One stealable unit: a small batch of flat work-item indices.
struct StealShard {
  std::size_t id = 0;                 ///< dense shard ordinal within the job
  std::vector<std::size_t> indices;   ///< flat indices, ascending
};

class StealQueue {
 public:
  struct Stats {
    std::size_t shard_count = 0;
    std::size_t pending = 0;
    std::size_t leased = 0;
    std::size_t completed = 0;
    std::size_t requeues = 0;  ///< abandoned + failed shards put back
  };

  StealQueue() = default;

  /// Chop @p indices into shards of @p points_per_shard (the last shard
  /// takes the remainder; 0 is clamped to 1).  @p max_shards caps the
  /// shard count for huge jobs by growing the shard size (0 = no cap).
  StealQueue(std::vector<std::size_t> indices, std::size_t points_per_shard,
             std::size_t max_shards = 0);

  /// Steal the next pending shard for @p worker_id; nullopt when nothing
  /// is pending (the job may still be running on other workers).
  std::optional<StealShard> lease(std::uint64_t worker_id);

  /// Mark a leased shard finished.  Unknown / double completions are
  /// ignored (a requeued shard can race its original worker's late
  /// completion — results are idempotent, so first-wins either way).
  void complete(std::size_t shard_id);

  /// Requeue every shard currently leased to @p worker_id (the worker's
  /// connection died).  Returns how many shards went back.
  std::size_t abandon(std::uint64_t worker_id);

  /// A worker reported the shard as failed.  Requeues it and returns true
  /// while it has attempts left (each shard gets 1 + @p retries runs);
  /// returns false when the shard is out of attempts — job is lost.
  bool fail(std::size_t shard_id, unsigned retries);

  /// True when every shard has completed.
  bool done() const;

  Stats stats() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<std::size_t>> shards_;  ///< by shard id
  std::deque<std::size_t> pending_;
  std::unordered_map<std::size_t, std::uint64_t> leased_;  ///< shard -> worker
  std::vector<unsigned> attempts_;                ///< by shard id
  std::size_t completed_ = 0;
  std::size_t requeues_ = 0;
  std::vector<bool> completed_flags_;
};

}  // namespace sramlp::dist
