// Deterministic partitioning of a flat work index space into K shards.
//
// Sweep grids and fault libraries are embarrassingly partitionable: every
// flat index is an independent work item whose result slot is the index
// itself.  A ShardPlan fixes the ownership function — which shard computes
// which indices — once, deterministically, on both sides of the process
// boundary: the coordinator and every worker derive identical plans from
// the same (total, shard_count, strategy) triple, so no index list ever
// needs to travel.
//
// Two strategies:
//   * contiguous — shard s owns one balanced run of consecutive indices
//     (the first total % K shards own one extra item).  Best cache/locality
//     shape for grids whose neighbouring points share a geometry.
//   * strided — shard s owns {s, s+K, s+2K, ...}.  Best load-balance shape
//     when cost grows along the index axis (e.g. geometry-major grids whose
//     late geometries are the big ones).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "io/json.h"

namespace sramlp::dist {

/// How a ShardPlan assigns flat indices to shards.
enum class ShardStrategy {
  kContiguous,  ///< balanced runs of consecutive indices
  kStrided,     ///< round-robin: shard s owns s, s+K, s+2K, ...
};

std::string to_slug(ShardStrategy strategy);
ShardStrategy shard_strategy_from_slug(const std::string& slug);

/// A deterministic partition of [0, total) into shard_count shards.
/// Value-semantic and trivially serializable; equal fields = equal
/// ownership on every host.
struct ShardPlan {
  std::size_t total = 0;        ///< number of flat work items
  std::size_t shard_count = 1;  ///< K
  ShardStrategy strategy = ShardStrategy::kContiguous;

  static ShardPlan contiguous(std::size_t total, std::size_t shards);
  static ShardPlan strided(std::size_t total, std::size_t shards);
  static ShardPlan make(std::size_t total, std::size_t shards,
                        ShardStrategy strategy);

  /// The shard owning @p flat_index.
  std::size_t owner_of(std::size_t flat_index) const;

  /// Flat indices shard @p shard owns, in ascending order.
  std::vector<std::size_t> indices_of(std::size_t shard) const;

  /// Number of indices shard @p shard owns (without materializing them).
  std::size_t size_of(std::size_t shard) const;

  void validate() const;

  friend bool operator==(const ShardPlan&, const ShardPlan&) = default;
};

io::JsonValue to_json(const ShardPlan& plan);
ShardPlan shard_plan_from_json(const io::JsonValue& json);

}  // namespace sramlp::dist
