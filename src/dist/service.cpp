#include "dist/service.h"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "core/fault_campaign.h"
#include "core/sweep.h"
#include "dist/coordinator.h"
#include "io/serialize.h"
#include "util/error.h"

namespace sramlp::dist {

namespace {

io::JsonValue make_message(const char* type) {
  io::JsonValue v = io::JsonValue::object();
  v.set("type", io::JsonValue::string(type));
  return v;
}

io::JsonValue error_message(const char* type, const std::string& error) {
  io::JsonValue v = make_message(type);
  v.set("error", io::JsonValue::string(error));
  return v;
}

io::JsonValue to_json(const ResultCache::Stats& stats) {
  io::JsonValue v = io::JsonValue::object();
  v.set("hits", io::JsonValue::integer(stats.hits));
  v.set("spill_hits", io::JsonValue::integer(stats.spill_hits));
  v.set("misses", io::JsonValue::integer(stats.misses));
  v.set("insertions", io::JsonValue::integer(stats.insertions));
  v.set("loaded", io::JsonValue::integer(stats.loaded));
  v.set("entries", io::JsonValue::integer(stats.entries));
  v.set("hit_rate", io::JsonValue::number(stats.hit_rate()));
  return v;
}

ResultCache::Stats cache_stats_from_json(const io::JsonValue& json) {
  ResultCache::Stats stats;
  stats.hits = json.at("hits").as_uint();
  stats.spill_hits = json.at("spill_hits").as_uint();
  stats.misses = json.at("misses").as_uint();
  stats.insertions = json.at("insertions").as_uint();
  stats.loaded = json.at("loaded").as_uint();
  stats.entries = json.at("entries").as_size();
  return stats;
}

io::JsonValue to_json(const ServiceStats& stats) {
  io::JsonValue v = io::JsonValue::object();
  v.set("jobs_submitted", io::JsonValue::integer(stats.jobs_submitted));
  v.set("jobs_completed", io::JsonValue::integer(stats.jobs_completed));
  v.set("jobs_failed", io::JsonValue::integer(stats.jobs_failed));
  v.set("jobs_deduplicated", io::JsonValue::integer(stats.jobs_deduplicated));
  v.set("job_cache_hits", io::JsonValue::integer(stats.job_cache_hits));
  v.set("point_cache_hits", io::JsonValue::integer(stats.point_cache_hits));
  v.set("points_executed", io::JsonValue::integer(stats.points_executed));
  v.set("shards_executed", io::JsonValue::integer(stats.shards_executed));
  v.set("shard_requeues", io::JsonValue::integer(stats.shard_requeues));
  v.set("workers_connected", io::JsonValue::integer(stats.workers_connected));
  v.set("workers_lost", io::JsonValue::integer(stats.workers_lost));
  v.set("cache", to_json(stats.cache));
  return v;
}

ServiceStats service_stats_from_json(const io::JsonValue& json) {
  ServiceStats stats;
  stats.jobs_submitted = json.at("jobs_submitted").as_uint();
  stats.jobs_completed = json.at("jobs_completed").as_uint();
  stats.jobs_failed = json.at("jobs_failed").as_uint();
  stats.jobs_deduplicated = json.at("jobs_deduplicated").as_uint();
  stats.job_cache_hits = json.at("job_cache_hits").as_uint();
  stats.point_cache_hits = json.at("point_cache_hits").as_uint();
  stats.points_executed = json.at("points_executed").as_uint();
  stats.shards_executed = json.at("shards_executed").as_uint();
  stats.shard_requeues = json.at("shard_requeues").as_uint();
  stats.workers_connected = json.at("workers_connected").as_uint();
  stats.workers_lost = json.at("workers_lost").as_uint();
  stats.cache = cache_stats_from_json(json.at("cache"));
  return stats;
}

}  // namespace

std::uint64_t point_fingerprint(const JobSpec& job, std::size_t index) {
  io::JsonValue key = io::JsonValue::object();
  if (job.kind == JobSpec::Kind::kSweep) {
    std::size_t geometry = 0, background = 0, algorithm = 0;
    job.grid.split(index, &geometry, &background, &algorithm);
    key.set("kind", io::JsonValue::string("sweep_point"));
    key.set("config", io::to_json(job.grid.config_at(index)));
    key.set("test", io::to_json(job.grid.algorithms[algorithm]));
  } else {
    key.set("kind", io::JsonValue::string("campaign_entry"));
    key.set("config", io::to_json(job.config));
    key.set("test", io::to_json(*job.test));
    key.set("fault", io::to_json(job.faults[index]));
  }
  return fnv1a64(key.dump());
}

// --- Service internals -------------------------------------------------------

/// One job mid-execution: its steal queue, the result slots filling in,
/// and the client channels listening to the live stream.
struct Service::ActiveJob {
  std::uint64_t fingerprint = 0;
  JobSpec job;
  io::JsonValue job_json;  ///< serialized once, attached to first leases
  std::unique_ptr<StealQueue> queue;  ///< indirect: StealQueue owns a mutex
  std::size_t total = 0;
  std::size_t cached_points = 0;
  std::vector<core::SweepPointResult> sweep;
  std::vector<core::CampaignEntry> entries;
  std::vector<bool> filled;
  std::size_t filled_count = 0;
  std::vector<std::shared_ptr<io::LineChannel>> listeners;
  /// Result lines already streamed, replayed to a duplicate submitter
  /// that attaches mid-flight.
  std::vector<io::JsonValue> replay;
  bool finished = false;
  bool failed = false;
};

struct Service::Connection {
  std::shared_ptr<io::LineChannel> channel;
  std::thread thread;
  bool done = false;
};

Service::Service(const Options& options)
    : options_(options), cache_(options.cache) {}

Service::~Service() {
  request_stop();
  if (started_) wait();
}

void Service::start() {
  SRAMLP_REQUIRE(!started_, "service already started");
  listener_ = io::listen_socket(options_.listen);
  address_ = io::local_address(listener_);
  started_ = true;
  accept_thread_ = std::thread(&Service::accept_loop, this);
}

std::string Service::address() const {
  SRAMLP_REQUIRE(started_, "service not started");
  return address_;
}

void Service::request_stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return;
  stopping_ = true;
  listener_.shutdown();
  for (const auto& conn : connections_)
    if (conn->channel) conn->channel->shutdown();
  state_cv_.notify_all();
}

void Service::wait() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    state_cv_.wait(lock, [&] { return stopping_; });
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop has ended, so the connection set is final.
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections.swap(connections_);
  }
  for (const auto& conn : connections)
    if (conn->thread.joinable()) conn->thread.join();
}

ServiceStats Service::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats stats = stats_;
  stats.cache = cache_.stats();
  return stats;
}

void Service::accept_loop() {
  for (;;) {
    io::Socket sock = io::accept_connection(listener_);
    std::lock_guard<std::mutex> lock(mutex_);
    // Reap connections whose handler has already returned, so a
    // long-lived daemon does not accumulate dead threads.
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    if (!sock.valid() || stopping_) break;
    auto conn = std::make_shared<Connection>();
    conn->channel = std::make_shared<io::LineChannel>(std::move(sock));
    connections_.push_back(conn);
    conn->thread = std::thread(&Service::handle_connection, this, conn);
  }
}

void Service::handle_connection(std::shared_ptr<Connection> conn) {
  for (;;) {
    const std::optional<io::JsonValue> message = conn->channel->receive();
    if (!message) break;
    std::string type;
    try {
      type = message->at("type").as_string();
    } catch (const Error&) {
      conn->channel->send(error_message("error", "message without a type"));
      continue;
    }
    if (type == "hello") {
      // Only workers announce themselves; clients just send requests.
      std::string role;
      try {
        role = message->at("role").as_string();
      } catch (const Error&) {
      }
      if (role == "worker") {
        handle_worker(conn);
        break;
      }
      conn->channel->send(error_message("error", "unknown hello role"));
    } else if (type == "submit") {
      handle_submit(conn, *message);
    } else if (type == "stats") {
      io::JsonValue reply = make_message("stats");
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ServiceStats stats = stats_;
        stats.cache = cache_.stats();
        reply.set("stats", to_json(stats));
      }
      conn->channel->send(reply);
    } else if (type == "shutdown") {
      conn->channel->send(make_message("bye"));
      request_stop();
      break;
    } else {
      conn->channel->send(
          error_message("error", "unknown message type '" + type + "'"));
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  conn->done = true;
}

void Service::handle_submit(const std::shared_ptr<Connection>& conn,
                            const io::JsonValue& message) {
  JobSpec job;
  try {
    job = job_from_json(message.at("job"));
  } catch (const std::exception& e) {
    conn->channel->send(error_message("job_failed", e.what()));
    return;
  }
  const std::uint64_t fingerprint = job.fingerprint();
  const std::size_t total = job.size();

  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.jobs_submitted;

  // --- whole-job cache hit: replay the exact bytes, execute nothing ------
  if (const std::optional<std::string> document = cache_.get(fingerprint)) {
    ++stats_.job_cache_hits;
    ++stats_.jobs_completed;
    io::JsonValue accepted = make_message("job_accepted");
    accepted.set("fingerprint", io::JsonValue::integer(fingerprint));
    accepted.set("points", io::JsonValue::integer(total));
    accepted.set("cached_points", io::JsonValue::integer(total));
    accepted.set("cache_hit", io::JsonValue::boolean(true));
    io::JsonValue complete = make_message("job_complete");
    complete.set("fingerprint", io::JsonValue::integer(fingerprint));
    complete.set("cache_hit", io::JsonValue::boolean(true));
    complete.set("cached_points", io::JsonValue::integer(total));
    complete.set("document", io::JsonValue::string(*document));
    complete.set("cache_hit_rate",
                 io::JsonValue::number(cache_.stats().hit_rate()));
    lock.unlock();
    conn->channel->send(accepted);
    conn->channel->send(complete);
    return;
  }

  // --- in-flight twin: attach to it instead of recomputing ---------------
  if (const auto it = active_jobs_.find(fingerprint);
      it != active_jobs_.end()) {
    const std::shared_ptr<ActiveJob> active = it->second;
    ++stats_.jobs_deduplicated;
    io::JsonValue accepted = make_message("job_accepted");
    accepted.set("fingerprint", io::JsonValue::integer(fingerprint));
    accepted.set("points", io::JsonValue::integer(active->total));
    accepted.set("cached_points",
                 io::JsonValue::integer(active->cached_points));
    accepted.set("cache_hit", io::JsonValue::boolean(false));
    // Register, then replay, under ONE lock hold: no live line can slip
    // between the replayed prefix and the forwarded suffix.
    active->listeners.push_back(conn->channel);
    conn->channel->send(accepted);
    for (const io::JsonValue& line : active->replay)
      conn->channel->send(line);
    state_cv_.wait(lock, [&] { return active->finished || stopping_; });
    return;
  }

  // --- new job ------------------------------------------------------------
  auto active = std::make_shared<ActiveJob>();
  active->fingerprint = fingerprint;
  active->job = std::move(job);
  active->job_json = dist::to_json(active->job);
  active->total = total;
  active->filled.assign(total, false);
  if (active->job.kind == JobSpec::Kind::kSweep)
    active->sweep.resize(total);
  else
    active->entries.resize(total);

  // Per-point cache: indices the service has answered before (under any
  // job) are filled from the cache; only the rest go onto the steal queue.
  std::vector<std::size_t> uncached;
  uncached.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    std::optional<std::string> payload;
    if (options_.point_cache)
      payload = cache_.get(point_fingerprint(active->job, i));
    if (!payload) {
      uncached.push_back(i);
      continue;
    }
    io::JsonValue line;
    try {
      const io::JsonValue data = io::JsonValue::parse(*payload);
      if (active->job.kind == JobSpec::Kind::kSweep) {
        core::SweepPointResult point = io::sweep_point_from_json(data);
        // Cached payloads are grid-neutral (coordinates zeroed); rebind
        // them to this job's grid.
        point.index = i;
        active->job.grid.split(i, &point.geometry, &point.background,
                               &point.algorithm);
        active->sweep[i] = point;
        line = make_message("sweep_point");
        line.set("data", io::to_json(point));
      } else {
        active->entries[i] = io::campaign_entry_from_json(data);
        line = make_message("campaign_entry");
        line.set("index", io::JsonValue::integer(i));
        line.set("data", io::to_json(active->entries[i]));
      }
    } catch (const Error&) {
      uncached.push_back(i);  // unreadable cache entry: recompute
      continue;
    }
    active->filled[i] = true;
    ++active->filled_count;
    ++active->cached_points;
    ++stats_.point_cache_hits;
    active->replay.push_back(std::move(line));
  }

  active->queue = std::make_unique<StealQueue>(
      std::move(uncached), options_.points_per_shard,
      options_.max_shards_per_job);
  active->listeners.push_back(conn->channel);
  active_jobs_[fingerprint] = active;
  job_order_.push_back(fingerprint);

  io::JsonValue accepted = make_message("job_accepted");
  accepted.set("fingerprint", io::JsonValue::integer(fingerprint));
  accepted.set("points", io::JsonValue::integer(total));
  accepted.set("cached_points", io::JsonValue::integer(active->cached_points));
  accepted.set("cache_hit", io::JsonValue::boolean(false));
  conn->channel->send(accepted);
  for (const io::JsonValue& line : active->replay)
    conn->channel->send(line);

  if (active->filled_count == active->total) {
    finalize_job_locked(lock, active);
    return;
  }
  state_cv_.notify_all();  // wake workers parked on empty lease queues
  state_cv_.wait(lock, [&] { return active->finished || stopping_; });
}

void Service::handle_worker(const std::shared_ptr<Connection>& conn) {
  std::uint64_t worker_id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    worker_id = next_worker_id_++;
    ++stats_.workers_connected;
  }
  for (;;) {
    const std::optional<io::JsonValue> message = conn->channel->receive();
    if (!message) break;
    std::string type;
    try {
      type = message->at("type").as_string();
    } catch (const Error&) {
      break;
    }
    if (type == "lease") {
      // Fingerprints of jobs this worker already holds by value, so the
      // job document travels at most once per (worker, job).
      std::vector<std::uint64_t> known;
      if (message->has("known")) {
        const io::JsonValue& list = message->at("known");
        for (std::size_t i = 0; i < list.size(); ++i)
          known.push_back(list.at(i).as_uint());
      }
      io::JsonValue response;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
          if (stopping_) {
            response = make_message("stop");
            break;
          }
          bool leased = false;
          for (const std::uint64_t fp : job_order_) {
            const std::shared_ptr<ActiveJob>& job = active_jobs_.at(fp);
            const std::optional<StealShard> shard =
                job->queue->lease(worker_id);
            if (!shard) continue;
            response = make_message("shard");
            response.set("fingerprint", io::JsonValue::integer(fp));
            response.set("shard", io::JsonValue::integer(shard->id));
            io::JsonValue indices = io::JsonValue::array();
            for (const std::size_t index : shard->indices)
              indices.push_back(io::JsonValue::integer(index));
            response.set("indices", std::move(indices));
            if (std::find(known.begin(), known.end(), fp) == known.end())
              response.set("job", job->job_json);
            leased = true;
            break;
          }
          if (leased) break;
          state_cv_.wait(lock);  // idle: block until work or shutdown
        }
      }
      if (!conn->channel->send(response)) break;
      if (response.at("type").as_string() == "stop") break;
    } else if (type == "sweep_point" || type == "campaign_entry") {
      deliver_result(*message);
    } else if (type == "shard_done") {
      std::unique_lock<std::mutex> lock(mutex_);
      const auto it = active_jobs_.find(message->at("fingerprint").as_uint());
      if (it != active_jobs_.end()) {
        const std::shared_ptr<ActiveJob> job = it->second;
        job->queue->complete(message->at("shard").as_size());
        ++stats_.shards_executed;
        if (job->queue->done() && job->filled_count == job->total)
          finalize_job_locked(lock, job);
      }
    } else if (type == "shard_failed") {
      std::string error = "shard failed";
      if (message->has("error")) error = message->at("error").as_string();
      std::unique_lock<std::mutex> lock(mutex_);
      const auto it = active_jobs_.find(message->at("fingerprint").as_uint());
      if (it != active_jobs_.end()) {
        const std::shared_ptr<ActiveJob> job = it->second;
        if (job->queue->fail(message->at("shard").as_size(),
                             options_.shard_retries)) {
          ++stats_.shard_requeues;
          state_cv_.notify_all();
        } else {
          fail_job_locked(job, error);
        }
      }
    }
  }
  // Connection gone: whatever this worker still leased goes back on the
  // queues for someone else to steal.
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t requeued = 0;
  for (const auto& [fp, job] : active_jobs_)
    requeued += job->queue->abandon(worker_id);
  if (requeued > 0) {
    ++stats_.workers_lost;
    stats_.shard_requeues += requeued;
    state_cv_.notify_all();
  }
}

bool Service::deliver_result(const io::JsonValue& message) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = active_jobs_.find(message.at("fingerprint").as_uint());
  if (it == active_jobs_.end()) return false;  // stale: job already closed
  const std::shared_ptr<ActiveJob> job = it->second;
  std::size_t index = 0;
  io::JsonValue line;
  try {
    if (job->job.kind == JobSpec::Kind::kSweep) {
      core::SweepPointResult point =
          io::sweep_point_from_json(message.at("data"));
      index = point.index;
      SRAMLP_REQUIRE(index < job->total, "worker result index out of range");
      if (job->filled[index]) return true;  // requeue-race duplicate
      job->sweep[index] = std::move(point);
      line = make_message("sweep_point");
      line.set("data", message.at("data"));
    } else {
      index = message.at("index").as_size();
      SRAMLP_REQUIRE(index < job->total, "worker result index out of range");
      if (job->filled[index]) return true;
      job->entries[index] = io::campaign_entry_from_json(message.at("data"));
      line = make_message("campaign_entry");
      line.set("index", io::JsonValue::integer(index));
      line.set("data", message.at("data"));
    }
  } catch (const Error&) {
    return false;  // malformed worker line: drop it, the requeue covers us
  }
  job->filled[index] = true;
  ++job->filled_count;
  ++stats_.points_executed;
  for (const auto& listener : job->listeners) listener->send(line);
  job->replay.push_back(std::move(line));
  return true;
}

void Service::finalize_job_locked(std::unique_lock<std::mutex>& lock,
                                  const std::shared_ptr<ActiveJob>& job) {
  (void)lock;  // held by the caller; sends go out under it by design
  MergedResult merged;
  merged.kind = job->job.kind;
  if (job->job.kind == JobSpec::Kind::kSweep) {
    merged.sweep = job->sweep;
  } else {
    merged.campaign.algorithm = job->job.test->name();
    merged.campaign.entries = job->entries;
  }
  const std::string document = merged_document(merged);

  cache_.put(job->fingerprint, document);
  if (options_.point_cache) {
    for (std::size_t i = 0; i < job->total; ++i) {
      std::string payload;
      if (job->job.kind == JobSpec::Kind::kSweep) {
        // Store grid-neutral: zero the grid coordinates so the same
        // physical point hits from any future grid shape.
        core::SweepPointResult neutral = job->sweep[i];
        neutral.index = 0;
        neutral.geometry = 0;
        neutral.background = 0;
        neutral.algorithm = 0;
        payload = io::to_json(neutral).dump();
      } else {
        payload = io::to_json(job->entries[i]).dump();
      }
      cache_.put(point_fingerprint(job->job, i), std::move(payload));
    }
  }

  const StealQueue::Stats queue_stats = job->queue->stats();
  io::JsonValue complete = make_message("job_complete");
  complete.set("fingerprint", io::JsonValue::integer(job->fingerprint));
  complete.set("cache_hit", io::JsonValue::boolean(false));
  complete.set("cached_points", io::JsonValue::integer(job->cached_points));
  complete.set("shards_executed",
               io::JsonValue::integer(queue_stats.completed));
  complete.set("shard_requeues", io::JsonValue::integer(queue_stats.requeues));
  complete.set("document", io::JsonValue::string(document));
  complete.set("cache_hit_rate",
               io::JsonValue::number(cache_.stats().hit_rate()));
  for (const auto& listener : job->listeners) listener->send(complete);

  job->finished = true;
  ++stats_.jobs_completed;
  active_jobs_.erase(job->fingerprint);
  job_order_.erase(
      std::find(job_order_.begin(), job_order_.end(), job->fingerprint));
  state_cv_.notify_all();
}

void Service::fail_job_locked(const std::shared_ptr<ActiveJob>& job,
                              const std::string& error) {
  io::JsonValue failed = error_message("job_failed", error);
  failed.set("fingerprint", io::JsonValue::integer(job->fingerprint));
  for (const auto& listener : job->listeners) listener->send(failed);
  job->finished = true;
  job->failed = true;
  ++stats_.jobs_failed;
  active_jobs_.erase(job->fingerprint);
  job_order_.erase(
      std::find(job_order_.begin(), job_order_.end(), job->fingerprint));
  state_cv_.notify_all();
}

// --- ServiceWorker -----------------------------------------------------------

std::size_t ServiceWorker::run(const std::string& address,
                               int connect_timeout_ms) {
  io::LineChannel channel(io::connect_socket(address, connect_timeout_ms));
  io::JsonValue hello = make_message("hello");
  hello.set("role", io::JsonValue::string("worker"));
  if (!channel.send(hello)) return 0;

  std::map<std::uint64_t, JobSpec> jobs;  ///< jobs held by value, by print
  std::size_t computed = 0;
  for (;;) {
    io::JsonValue lease = make_message("lease");
    io::JsonValue known = io::JsonValue::array();
    for (const auto& [fp, unused] : jobs)
      known.push_back(io::JsonValue::integer(fp));
    lease.set("known", std::move(known));
    if (!channel.send(lease)) return computed;
    const std::optional<io::JsonValue> response = channel.receive();
    if (!response) return computed;
    std::string type;
    try {
      type = response->at("type").as_string();
    } catch (const Error&) {
      return computed;
    }
    if (type != "shard") return computed;  // "stop" or anything unexpected

    const std::uint64_t fingerprint = response->at("fingerprint").as_uint();
    const std::size_t shard_id = response->at("shard").as_size();
    std::vector<std::size_t> indices;
    const io::JsonValue& index_list = response->at("indices");
    indices.reserve(index_list.size());
    for (std::size_t i = 0; i < index_list.size(); ++i)
      indices.push_back(index_list.at(i).as_size());
    if (response->has("job")) {
      if (jobs.size() > 32) jobs.clear();  // bound the by-value cache
      jobs.insert_or_assign(fingerprint,
                            job_from_json(response->at("job")));
    }
    const auto job_it = jobs.find(fingerprint);
    if (job_it == jobs.end()) {
      io::JsonValue failed = error_message("shard_failed",
                                           "worker does not hold this job");
      failed.set("fingerprint", io::JsonValue::integer(fingerprint));
      failed.set("shard", io::JsonValue::integer(shard_id));
      if (!channel.send(failed)) return computed;
      continue;
    }
    const JobSpec& job = job_it->second;

    try {
      const auto emit_point = [&](io::JsonValue line) -> bool {
        if (options_.slow_point_us > 0)
          ::usleep(static_cast<useconds_t>(options_.slow_point_us));
        if (computed >= options_.die_after_points)
          return false;  // simulated kill: vanish mid-shard
        if (!channel.send(line)) return false;
        ++computed;
        return true;
      };
      if (job.kind == JobSpec::Kind::kSweep) {
        // The exact single-process arithmetic on the stolen subset —
        // identical bits whichever worker steals which indices.
        const core::SweepRunner runner(core::SweepRunner::Options{
            options_.threads, core::BackendChoice::kAuto});
        const std::vector<core::SweepPointResult> points =
            runner.run_indices(job.grid, indices);
        for (const core::SweepPointResult& point : points) {
          io::JsonValue line = make_message("sweep_point");
          line.set("fingerprint", io::JsonValue::integer(fingerprint));
          line.set("data", io::to_json(point));
          if (!emit_point(std::move(line))) return computed;
        }
      } else {
        core::CampaignRunner::Options campaign_options;
        campaign_options.threads = options_.threads;
        campaign_options.batched = options_.batched_campaigns;
        const std::vector<core::CampaignEntry> entries =
            core::CampaignRunner(campaign_options)
                .run_subset(job.config, *job.test, job.faults, indices);
        for (std::size_t j = 0; j < indices.size(); ++j) {
          io::JsonValue line = make_message("campaign_entry");
          line.set("fingerprint", io::JsonValue::integer(fingerprint));
          line.set("index", io::JsonValue::integer(indices[j]));
          line.set("data", io::to_json(entries[j]));
          if (!emit_point(std::move(line))) return computed;
        }
      }
    } catch (const std::exception& e) {
      io::JsonValue failed = error_message("shard_failed", e.what());
      failed.set("fingerprint", io::JsonValue::integer(fingerprint));
      failed.set("shard", io::JsonValue::integer(shard_id));
      if (!channel.send(failed)) return computed;
      continue;
    }
    io::JsonValue done = make_message("shard_done");
    done.set("fingerprint", io::JsonValue::integer(fingerprint));
    done.set("shard", io::JsonValue::integer(shard_id));
    if (!channel.send(done)) return computed;
  }
}

// --- clients -----------------------------------------------------------------

SubmitResult submit_job(
    const std::string& address, const JobSpec& job, int connect_timeout_ms,
    const std::function<void(const io::JsonValue&)>& on_line) {
  job.validate();
  io::LineChannel channel(io::connect_socket(address, connect_timeout_ms));
  io::JsonValue submit = make_message("submit");
  submit.set("job", dist::to_json(job));
  SRAMLP_REQUIRE(channel.send(submit), "service connection lost on submit");

  SubmitResult result;
  for (;;) {
    const std::optional<io::JsonValue> message = channel.receive();
    SRAMLP_REQUIRE(message.has_value(),
                   "service connection lost while streaming results");
    const std::string type = message->at("type").as_string();
    if (type == "job_accepted") {
      result.total_points = message->at("points").as_size();
      result.cached_points = message->at("cached_points").as_size();
    } else if (type == "sweep_point" || type == "campaign_entry") {
      ++result.streamed_lines;
      if (on_line) on_line(*message);
    } else if (type == "job_complete") {
      result.cache_hit = message->at("cache_hit").as_bool();
      if (message->has("cached_points"))
        result.cached_points = message->at("cached_points").as_size();
      result.cache_hit_rate = message->at("cache_hit_rate").as_double();
      result.document = message->at("document").as_string();
      return result;
    } else if (type == "job_failed") {
      throw Error("service rejected the job: " +
                  message->at("error").as_string());
    }
  }
}

ServiceStats query_stats(const std::string& address, int connect_timeout_ms) {
  io::LineChannel channel(io::connect_socket(address, connect_timeout_ms));
  SRAMLP_REQUIRE(channel.send(make_message("stats")),
                 "service connection lost on stats request");
  const std::optional<io::JsonValue> reply = channel.receive();
  SRAMLP_REQUIRE(reply.has_value() &&
                     reply->at("type").as_string() == "stats",
                 "service returned no stats");
  return service_stats_from_json(reply->at("stats"));
}

void request_shutdown(const std::string& address, int connect_timeout_ms) {
  io::LineChannel channel(io::connect_socket(address, connect_timeout_ms));
  SRAMLP_REQUIRE(channel.send(make_message("shutdown")),
                 "service connection lost on shutdown request");
  channel.receive();  // the "bye" acknowledgement (or EOF — both fine)
}

}  // namespace sramlp::dist
