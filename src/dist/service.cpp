#include "dist/service.h"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "core/fault_campaign.h"
#include "core/sweep.h"
#include "dist/coordinator.h"
#include "io/serialize.h"
#include "search/serialize.h"
#include "obs/clock.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace sramlp::dist {

namespace {

/// The latency ladder shared by every duration histogram here: 100 us
/// (an analytic point is ~200 us) through ~26 s in 4x steps.
const std::vector<double>& latency_bounds() {
  static const std::vector<double> bounds =
      obs::Histogram::exponential_bounds(1e-4, 4.0, 10);
  return bounds;
}

/// Service-side instruments, registered once and cached by reference —
/// increments after that are single relaxed atomics.
struct ServiceMetrics {
  obs::Counter& jobs_submitted;
  obs::Counter& jobs_completed;
  obs::Counter& jobs_failed;
  obs::Counter& jobs_deduplicated;
  obs::Counter& job_cache_hits;
  obs::Counter& point_cache_hits;
  obs::Counter& points_executed;
  obs::Counter& shards_executed;
  obs::Counter& shard_requeues;
  obs::Counter& workers_connected;
  obs::Counter& workers_lost;
  obs::Gauge& jobs_in_flight;
  obs::Gauge& connections_active;
  obs::Gauge& queue_depth;

  static ServiceMetrics& get() {
    obs::Registry& r = obs::Registry::global();
    static ServiceMetrics m{
        r.counter("sramlp_jobs_submitted_total",
                  "Jobs received by the sweep service"),
        r.counter("sramlp_jobs_completed_total",
                  "Jobs finished with a merged document"),
        r.counter("sramlp_jobs_failed_total",
                  "Jobs failed after exhausting shard retries"),
        r.counter("sramlp_jobs_deduplicated_total",
                  "Submissions attached to an identical in-flight job"),
        r.counter("sramlp_job_cache_hits_total",
                  "Submissions answered whole from the result cache"),
        r.counter("sramlp_point_cache_hits_total",
                  "Work items answered from the per-point cache"),
        r.counter("sramlp_points_executed_total",
                  "Work-item results received from workers"),
        r.counter("sramlp_shards_executed_total",
                  "Shards completed by workers"),
        r.counter("sramlp_shard_requeues_total",
                  "Shards requeued after a failure or lost worker"),
        r.counter("sramlp_workers_connected_total",
                  "Worker connections accepted"),
        r.counter("sramlp_workers_lost_total",
                  "Worker connections dropped while holding leases"),
        r.gauge("sramlp_jobs_in_flight", "Jobs currently executing"),
        r.gauge("sramlp_connections_active", "Open service connections"),
        r.gauge("sramlp_queue_depth",
                "Pending (unleased) shards across all active jobs"),
    };
    return m;
  }
};

/// Worker-side instruments (lease round-trips, shard compute time).
struct WorkerMetrics {
  obs::Histogram& lease_latency;
  obs::Histogram& shard_execution;
  obs::Counter& points_computed;
  obs::Counter& shards_failed;

  static WorkerMetrics& get() {
    obs::Registry& r = obs::Registry::global();
    static WorkerMetrics m{
        r.histogram("sramlp_lease_latency_seconds",
                    "Lease request to shard grant (includes idle waits)",
                    latency_bounds()),
        r.histogram("sramlp_shard_execution_seconds",
                    "Wall time computing one leased shard", latency_bounds()),
        r.counter("sramlp_worker_points_computed_total",
                  "Work items this worker computed and streamed"),
        r.counter("sramlp_worker_shards_failed_total",
                  "Shards this worker reported as failed"),
    };
    return m;
  }
};

/// Per-submitter fairness instruments (satellite of the search PR): one
/// labelled counter family per lifecycle stage, so `metrics` / Prometheus
/// scrapes show who is queueing, leasing and completing work.  Labelled
/// instances are register-or-fetch, so these helpers are cheap after the
/// first call per submitter.
obs::Counter& submitter_queued(const std::string& submitter) {
  return obs::Registry::global().counter(
      "sramlp_submitter_jobs_queued_total",
      "Jobs submitted to the service, by submitter",
      {{"submitter", submitter}});
}

obs::Counter& submitter_leased(const std::string& submitter) {
  return obs::Registry::global().counter(
      "sramlp_submitter_shards_leased_total",
      "Shards leased to workers, by the owning job's submitter",
      {{"submitter", submitter}});
}

obs::Counter& submitter_completed(const std::string& submitter) {
  return obs::Registry::global().counter(
      "sramlp_submitter_jobs_completed_total",
      "Jobs finished with a merged document, by submitter",
      {{"submitter", submitter}});
}

io::JsonValue make_message(const char* type) {
  io::JsonValue v = io::JsonValue::object();
  v.set("type", io::JsonValue::string(type));
  return v;
}

io::JsonValue error_message(const char* type, const std::string& error) {
  io::JsonValue v = make_message(type);
  v.set("error", io::JsonValue::string(error));
  return v;
}

io::JsonValue to_json(const ResultCache::Stats& stats) {
  io::JsonValue v = io::JsonValue::object();
  v.set("hits", io::JsonValue::integer(stats.hits));
  v.set("spill_hits", io::JsonValue::integer(stats.spill_hits));
  v.set("misses", io::JsonValue::integer(stats.misses));
  v.set("insertions", io::JsonValue::integer(stats.insertions));
  v.set("loaded", io::JsonValue::integer(stats.loaded));
  v.set("entries", io::JsonValue::integer(stats.entries));
  v.set("hit_rate", io::JsonValue::number(stats.hit_rate()));
  return v;
}

ResultCache::Stats cache_stats_from_json(const io::JsonValue& json) {
  ResultCache::Stats stats;
  stats.hits = json.at("hits").as_uint();
  stats.spill_hits = json.at("spill_hits").as_uint();
  stats.misses = json.at("misses").as_uint();
  stats.insertions = json.at("insertions").as_uint();
  stats.loaded = json.at("loaded").as_uint();
  stats.entries = json.at("entries").as_size();
  return stats;
}

io::JsonValue to_json(const ServiceStats& stats) {
  io::JsonValue v = io::JsonValue::object();
  v.set("jobs_submitted", io::JsonValue::integer(stats.jobs_submitted));
  v.set("jobs_completed", io::JsonValue::integer(stats.jobs_completed));
  v.set("jobs_failed", io::JsonValue::integer(stats.jobs_failed));
  v.set("jobs_deduplicated", io::JsonValue::integer(stats.jobs_deduplicated));
  v.set("job_cache_hits", io::JsonValue::integer(stats.job_cache_hits));
  v.set("point_cache_hits", io::JsonValue::integer(stats.point_cache_hits));
  v.set("points_executed", io::JsonValue::integer(stats.points_executed));
  v.set("shards_executed", io::JsonValue::integer(stats.shards_executed));
  v.set("shard_requeues", io::JsonValue::integer(stats.shard_requeues));
  v.set("workers_connected", io::JsonValue::integer(stats.workers_connected));
  v.set("workers_lost", io::JsonValue::integer(stats.workers_lost));
  v.set("cache", to_json(stats.cache));
  return v;
}

ServiceStats service_stats_from_json(const io::JsonValue& json) {
  ServiceStats stats;
  stats.jobs_submitted = json.at("jobs_submitted").as_uint();
  stats.jobs_completed = json.at("jobs_completed").as_uint();
  stats.jobs_failed = json.at("jobs_failed").as_uint();
  stats.jobs_deduplicated = json.at("jobs_deduplicated").as_uint();
  stats.job_cache_hits = json.at("job_cache_hits").as_uint();
  stats.point_cache_hits = json.at("point_cache_hits").as_uint();
  stats.points_executed = json.at("points_executed").as_uint();
  stats.shards_executed = json.at("shards_executed").as_uint();
  stats.shard_requeues = json.at("shard_requeues").as_uint();
  stats.workers_connected = json.at("workers_connected").as_uint();
  stats.workers_lost = json.at("workers_lost").as_uint();
  stats.cache = cache_stats_from_json(json.at("cache"));
  return stats;
}

}  // namespace

std::uint64_t point_fingerprint(const JobSpec& job, std::size_t index) {
  io::JsonValue key = io::JsonValue::object();
  if (job.kind == JobSpec::Kind::kSweep) {
    std::size_t geometry = 0, background = 0, algorithm = 0;
    job.grid.split(index, &geometry, &background, &algorithm);
    key.set("kind", io::JsonValue::string("sweep_point"));
    key.set("config", io::to_json(job.grid.config_at(index)));
    key.set("test", io::to_json(job.grid.algorithms[algorithm]));
  } else if (job.kind == JobSpec::Kind::kCampaign) {
    key.set("kind", io::JsonValue::string("campaign_entry"));
    key.set("config", io::to_json(job.config));
    key.set("test", io::to_json(*job.test));
    key.set("fault", io::to_json(job.faults[index]));
  } else {
    // A restart result is a pure function of (whole spec, restart index),
    // so the key must cover the entire SearchSpec — two jobs share a
    // cached restart only when every search knob matches.
    key.set("kind", io::JsonValue::string("search_restart"));
    key.set("search", io::to_json(*job.search));
    key.set("restart", io::JsonValue::integer(index));
  }
  return fnv1a64(key.dump());
}

// --- Service internals -------------------------------------------------------

/// One job mid-execution: its steal queue, the result slots filling in,
/// and the client channels listening to the live stream.
struct Service::ActiveJob {
  std::uint64_t fingerprint = 0;
  JobSpec job;
  io::JsonValue job_json;  ///< serialized once, attached to first leases
  std::unique_ptr<StealQueue> queue;  ///< indirect: StealQueue owns a mutex
  std::size_t total = 0;
  std::size_t cached_points = 0;
  std::vector<core::SweepPointResult> sweep;
  std::vector<core::CampaignEntry> entries;
  std::vector<search::RestartResult> search;
  std::vector<bool> filled;
  std::size_t filled_count = 0;
  std::vector<std::shared_ptr<io::LineChannel>> listeners;
  /// Result lines already streamed, replayed to a duplicate submitter
  /// that attaches mid-flight.
  std::vector<io::JsonValue> replay;
  /// Who submitted this job ("anonymous" when the submit message carried
  /// no submitter) — the label on the per-submitter fairness counters.
  std::string submitter;
  bool finished = false;
  bool failed = false;
  /// Tracing bookkeeping (set only while the tracer is enabled; never read
  /// by the result path).
  std::uint64_t trace_start_us = 0;
  std::map<std::size_t, std::uint64_t> shard_trace_start;  ///< shard -> ts
};

struct Service::Connection {
  std::uint64_t id = 0;  ///< correlation id attached to log lines
  std::shared_ptr<io::LineChannel> channel;
  std::thread thread;
  bool done = false;
};

Service::Service(const Options& options)
    : options_(options), cache_(options.cache) {}

Service::~Service() {
  request_stop();
  if (started_) wait();
}

void Service::start() {
  SRAMLP_REQUIRE(!started_, "service already started");
  listener_ = io::listen_socket(options_.listen);
  address_ = io::local_address(listener_);
  started_ = true;
  accept_thread_ = std::thread(&Service::accept_loop, this);
}

std::string Service::address() const {
  SRAMLP_REQUIRE(started_, "service not started");
  return address_;
}

void Service::request_stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return;
  stopping_ = true;
  listener_.shutdown();
  for (const auto& conn : connections_)
    if (conn->channel) conn->channel->shutdown();
  state_cv_.notify_all();
}

void Service::wait() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    state_cv_.wait(lock, [&] { return stopping_; });
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop has ended, so the connection set is final.
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections.swap(connections_);
  }
  for (const auto& conn : connections)
    if (conn->thread.joinable()) conn->thread.join();
}

ServiceStats Service::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats stats = stats_;
  stats.cache = cache_.stats();
  return stats;
}

void Service::accept_loop() {
  for (;;) {
    io::Socket sock;
    try {
      sock = io::accept_connection(listener_);
    } catch (const std::exception& e) {
      // Without the catch this exception would terminate() the process
      // from a detached-looking thread with no word of why.
      obs::log_error("service", "accept failed; accept loop exiting",
                     {obs::kv("error", e.what())});
      request_stop();
      return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    // Reap connections whose handler has already returned, so a
    // long-lived daemon does not accumulate dead threads.
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    if (!sock.valid() || stopping_) break;
    auto conn = std::make_shared<Connection>();
    conn->id = next_conn_id_++;
    conn->channel = std::make_shared<io::LineChannel>(std::move(sock));
    connections_.push_back(conn);
    obs::log_debug("service", "connection accepted",
                   {obs::kv("conn", conn->id)});
    conn->thread = std::thread(&Service::handle_connection, this, conn);
  }
}

void Service::handle_connection(std::shared_ptr<Connection> conn) {
  ServiceMetrics::get().connections_active.add(1);
  for (;;) {
    const std::optional<io::JsonValue> message = conn->channel->receive();
    if (!message) break;
    std::string type;
    try {
      type = message->at("type").as_string();
    } catch (const Error& e) {
      obs::log_warn("service", "message without a type",
                    {obs::kv("conn", conn->id), obs::kv("error", e.what())});
      conn->channel->send(error_message("error", "message without a type"));
      continue;
    }
    if (type == "hello") {
      // Only workers announce themselves; clients just send requests.
      std::string role;
      try {
        role = message->at("role").as_string();
      } catch (const Error&) {
        // No role member at all — fall through to the unknown-role reply.
        obs::log_debug("service", "hello without a role",
                       {obs::kv("conn", conn->id)});
      }
      if (role == "worker") {
        handle_worker(conn);
        break;
      }
      obs::log_warn("service", "unknown hello role",
                    {obs::kv("conn", conn->id), obs::kv("role", role)});
      conn->channel->send(error_message("error", "unknown hello role"));
    } else if (type == "submit") {
      handle_submit(conn, *message);
    } else if (type == "stats") {
      io::JsonValue reply = make_message("stats");
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ServiceStats stats = stats_;
        stats.cache = cache_.stats();
        reply.set("stats", to_json(stats));
      }
      conn->channel->send(reply);
    } else if (type == "metrics") {
      io::JsonValue reply = make_message("metrics");
      reply.set("prometheus", io::JsonValue::string(
                                  obs::Registry::global().prometheus_text()));
      reply.set("metrics", obs::Registry::global().to_json());
      conn->channel->send(reply);
    } else if (type == "shutdown") {
      obs::log_info("service", "shutdown requested",
                    {obs::kv("conn", conn->id)});
      conn->channel->send(make_message("bye"));
      request_stop();
      break;
    } else {
      obs::log_warn("service", "unknown message type",
                    {obs::kv("conn", conn->id), obs::kv("msg_type", type)});
      conn->channel->send(
          error_message("error", "unknown message type '" + type + "'"));
    }
  }
  obs::log_debug("service", "connection closed", {obs::kv("conn", conn->id)});
  ServiceMetrics::get().connections_active.sub(1);
  std::lock_guard<std::mutex> lock(mutex_);
  conn->done = true;
}

void Service::handle_submit(const std::shared_ptr<Connection>& conn,
                            const io::JsonValue& message) {
  ServiceMetrics& metrics = ServiceMetrics::get();
  JobSpec job;
  try {
    job = job_from_json(message.at("job"));
  } catch (const std::exception& e) {
    obs::log_warn("service", "submit rejected: bad job document",
                  {obs::kv("conn", conn->id), obs::kv("error", e.what())});
    conn->channel->send(error_message("job_failed", e.what()));
    return;
  }
  const std::uint64_t fingerprint = job.fingerprint();
  const std::size_t total = job.size();
  std::string submitter = "anonymous";
  if (message.has("submitter") &&
      !message.at("submitter").as_string().empty())
    submitter = message.at("submitter").as_string();
  obs::log_info("service", "job submitted",
                {obs::kv("conn", conn->id), obs::kv_hex("job", fingerprint),
                 obs::kv("points", total),
                 obs::kv("submitter", submitter)});

  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.jobs_submitted;
  metrics.jobs_submitted.inc();
  submitter_queued(submitter).inc();

  // --- whole-job cache hit: replay the exact bytes, execute nothing ------
  if (const std::optional<std::string> document = cache_.get(fingerprint)) {
    ++stats_.job_cache_hits;
    ++stats_.jobs_completed;
    metrics.job_cache_hits.inc();
    metrics.jobs_completed.inc();
    submitter_completed(submitter).inc();
    obs::log_debug("service", "job answered from cache",
                   {obs::kv("conn", conn->id),
                    obs::kv_hex("job", fingerprint)});
    io::JsonValue accepted = make_message("job_accepted");
    accepted.set("fingerprint", io::JsonValue::integer(fingerprint));
    accepted.set("points", io::JsonValue::integer(total));
    accepted.set("cached_points", io::JsonValue::integer(total));
    accepted.set("cache_hit", io::JsonValue::boolean(true));
    io::JsonValue complete = make_message("job_complete");
    complete.set("fingerprint", io::JsonValue::integer(fingerprint));
    complete.set("cache_hit", io::JsonValue::boolean(true));
    complete.set("cached_points", io::JsonValue::integer(total));
    complete.set("document", io::JsonValue::string(*document));
    complete.set("cache_hit_rate",
                 io::JsonValue::number(cache_.stats().hit_rate()));
    lock.unlock();
    conn->channel->send(accepted);
    conn->channel->send(complete);
    return;
  }

  // --- in-flight twin: attach to it instead of recomputing ---------------
  if (const auto it = active_jobs_.find(fingerprint);
      it != active_jobs_.end()) {
    const std::shared_ptr<ActiveJob> active = it->second;
    ++stats_.jobs_deduplicated;
    metrics.jobs_deduplicated.inc();
    obs::log_debug("service", "submit attached to in-flight twin",
                   {obs::kv("conn", conn->id),
                    obs::kv_hex("job", fingerprint)});
    io::JsonValue accepted = make_message("job_accepted");
    accepted.set("fingerprint", io::JsonValue::integer(fingerprint));
    accepted.set("points", io::JsonValue::integer(active->total));
    accepted.set("cached_points",
                 io::JsonValue::integer(active->cached_points));
    accepted.set("cache_hit", io::JsonValue::boolean(false));
    // Register, then replay, under ONE lock hold: no live line can slip
    // between the replayed prefix and the forwarded suffix.
    active->listeners.push_back(conn->channel);
    conn->channel->send(accepted);
    for (const io::JsonValue& line : active->replay)
      conn->channel->send(line);
    state_cv_.wait(lock, [&] { return active->finished || stopping_; });
    return;
  }

  // --- new job ------------------------------------------------------------
  auto active = std::make_shared<ActiveJob>();
  if (obs::Tracer::global().enabled())
    active->trace_start_us = obs::monotonic_micros();
  active->fingerprint = fingerprint;
  active->job = std::move(job);
  active->job_json = dist::to_json(active->job);
  active->total = total;
  active->submitter = submitter;
  active->filled.assign(total, false);
  if (active->job.kind == JobSpec::Kind::kSweep)
    active->sweep.resize(total);
  else if (active->job.kind == JobSpec::Kind::kCampaign)
    active->entries.resize(total);
  else
    active->search.resize(total);

  // Per-point cache: indices the service has answered before (under any
  // job) are filled from the cache; only the rest go onto the steal queue.
  std::vector<std::size_t> uncached;
  uncached.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    std::optional<std::string> payload;
    if (options_.point_cache)
      payload = cache_.get(point_fingerprint(active->job, i));
    if (!payload) {
      uncached.push_back(i);
      continue;
    }
    io::JsonValue line;
    try {
      const io::JsonValue data = io::JsonValue::parse(*payload);
      if (active->job.kind == JobSpec::Kind::kSweep) {
        core::SweepPointResult point = io::sweep_point_from_json(data);
        // Cached payloads are grid-neutral (coordinates zeroed); rebind
        // them to this job's grid.
        point.index = i;
        active->job.grid.split(i, &point.geometry, &point.background,
                               &point.algorithm);
        active->sweep[i] = point;
        line = make_message("sweep_point");
        line.set("data", io::to_json(point));
      } else if (active->job.kind == JobSpec::Kind::kCampaign) {
        active->entries[i] = io::campaign_entry_from_json(data);
        line = make_message("campaign_entry");
        line.set("index", io::JsonValue::integer(i));
        line.set("data", io::to_json(active->entries[i]));
      } else {
        active->search[i] = io::restart_result_from_json(data);
        line = make_message("search_restart");
        line.set("index", io::JsonValue::integer(i));
        line.set("data", io::to_json(active->search[i]));
      }
    } catch (const Error& e) {
      obs::log_warn("service", "unreadable point-cache entry; recomputing",
                    {obs::kv_hex("job", fingerprint), obs::kv("index", i),
                     obs::kv("error", e.what())});
      uncached.push_back(i);  // unreadable cache entry: recompute
      continue;
    }
    active->filled[i] = true;
    ++active->filled_count;
    ++active->cached_points;
    ++stats_.point_cache_hits;
    metrics.point_cache_hits.inc();
    active->replay.push_back(std::move(line));
  }

  active->queue = std::make_unique<StealQueue>(
      std::move(uncached), options_.points_per_shard,
      options_.max_shards_per_job);
  active->listeners.push_back(conn->channel);
  active_jobs_[fingerprint] = active;
  job_order_.push_back(fingerprint);
  metrics.jobs_in_flight.add(1);
  update_queue_depth_locked();
  obs::log_info("service", "job enqueued",
                {obs::kv("conn", conn->id), obs::kv_hex("job", fingerprint),
                 obs::kv("points", total),
                 obs::kv("cached_points", active->cached_points),
                 obs::kv("shards", active->queue->stats().shard_count)});

  io::JsonValue accepted = make_message("job_accepted");
  accepted.set("fingerprint", io::JsonValue::integer(fingerprint));
  accepted.set("points", io::JsonValue::integer(total));
  accepted.set("cached_points", io::JsonValue::integer(active->cached_points));
  accepted.set("cache_hit", io::JsonValue::boolean(false));
  conn->channel->send(accepted);
  for (const io::JsonValue& line : active->replay)
    conn->channel->send(line);

  if (active->filled_count == active->total) {
    finalize_job_locked(lock, active);
    return;
  }
  state_cv_.notify_all();  // wake workers parked on empty lease queues
  state_cv_.wait(lock, [&] { return active->finished || stopping_; });
}

void Service::handle_worker(const std::shared_ptr<Connection>& conn) {
  ServiceMetrics& metrics = ServiceMetrics::get();
  std::uint64_t worker_id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    worker_id = next_worker_id_++;
    ++stats_.workers_connected;
  }
  metrics.workers_connected.inc();
  obs::log_info("service", "worker connected",
                {obs::kv("conn", conn->id), obs::kv("worker", worker_id)});
  for (;;) {
    const std::optional<io::JsonValue> message = conn->channel->receive();
    if (!message) break;
    std::string type;
    try {
      type = message->at("type").as_string();
    } catch (const Error& e) {
      obs::log_warn("service", "worker sent message without a type",
                    {obs::kv("conn", conn->id), obs::kv("worker", worker_id),
                     obs::kv("error", e.what())});
      break;
    }
    if (type == "lease") {
      // Fingerprints of jobs this worker already holds by value, so the
      // job document travels at most once per (worker, job).
      std::vector<std::uint64_t> known;
      if (message->has("known")) {
        const io::JsonValue& list = message->at("known");
        for (std::size_t i = 0; i < list.size(); ++i)
          known.push_back(list.at(i).as_uint());
      }
      io::JsonValue response;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
          if (stopping_) {
            response = make_message("stop");
            break;
          }
          bool leased = false;
          for (const std::uint64_t fp : job_order_) {
            const std::shared_ptr<ActiveJob>& job = active_jobs_.at(fp);
            const std::optional<StealShard> shard =
                job->queue->lease(worker_id);
            if (!shard) continue;
            response = make_message("shard");
            response.set("fingerprint", io::JsonValue::integer(fp));
            response.set("shard", io::JsonValue::integer(shard->id));
            io::JsonValue indices = io::JsonValue::array();
            for (const std::size_t index : shard->indices)
              indices.push_back(io::JsonValue::integer(index));
            response.set("indices", std::move(indices));
            if (std::find(known.begin(), known.end(), fp) == known.end())
              response.set("job", job->job_json);
            if (obs::Tracer::global().enabled())
              job->shard_trace_start[shard->id] = obs::monotonic_micros();
            submitter_leased(job->submitter).inc();
            leased = true;
            break;
          }
          if (leased) {
            update_queue_depth_locked();
            break;
          }
          state_cv_.wait(lock);  // idle: block until work or shutdown
        }
      }
      if (!conn->channel->send(response)) break;
      if (response.at("type").as_string() == "stop") break;
    } else if (type == "sweep_point" || type == "campaign_entry" ||
               type == "search_restart") {
      deliver_result(*message);
    } else if (type == "shard_done") {
      std::unique_lock<std::mutex> lock(mutex_);
      const auto it = active_jobs_.find(message->at("fingerprint").as_uint());
      if (it != active_jobs_.end()) {
        const std::shared_ptr<ActiveJob> job = it->second;
        const std::size_t shard_id = message->at("shard").as_size();
        job->queue->complete(shard_id);
        ++stats_.shards_executed;
        metrics.shards_executed.inc();
        if (const auto ts = job->shard_trace_start.find(shard_id);
            ts != job->shard_trace_start.end()) {
          const std::uint64_t end = obs::monotonic_micros();
          obs::Tracer::Span span;
          span.name = "shard";
          span.category = "service";
          span.ts_us = ts->second;
          span.dur_us = end > ts->second ? end - ts->second : 0;
          span.tid = obs::trace_thread_id();
          span.args = {{"job", job->fingerprint},
                       {"shard", shard_id},
                       {"worker", worker_id}};
          job->shard_trace_start.erase(ts);
          obs::Tracer::global().record(std::move(span));
        }
        if (job->queue->done() && job->filled_count == job->total)
          finalize_job_locked(lock, job);
      }
    } else if (type == "shard_failed") {
      std::string error = "shard failed";
      if (message->has("error")) error = message->at("error").as_string();
      std::unique_lock<std::mutex> lock(mutex_);
      const auto it = active_jobs_.find(message->at("fingerprint").as_uint());
      if (it != active_jobs_.end()) {
        const std::shared_ptr<ActiveJob> job = it->second;
        const std::size_t shard_id = message->at("shard").as_size();
        const bool requeued =
            job->queue->fail(shard_id, options_.shard_retries);
        obs::log_warn("service", "worker reported shard failure",
                      {obs::kv("conn", conn->id),
                       obs::kv("worker", worker_id),
                       obs::kv_hex("job", job->fingerprint),
                       obs::kv("shard", shard_id), obs::kv("error", error),
                       obs::kv("requeued", requeued)});
        if (requeued) {
          ++stats_.shard_requeues;
          metrics.shard_requeues.inc();
          update_queue_depth_locked();
          state_cv_.notify_all();
        } else {
          fail_job_locked(job, error);
        }
      }
    }
  }
  // Connection gone: whatever this worker still leased goes back on the
  // queues for someone else to steal.
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t requeued = 0;
  for (const auto& [fp, job] : active_jobs_)
    requeued += job->queue->abandon(worker_id);
  if (requeued > 0) {
    ++stats_.workers_lost;
    stats_.shard_requeues += requeued;
    metrics.workers_lost.inc();
    metrics.shard_requeues.inc(requeued);
    update_queue_depth_locked();
    obs::log_warn("service", "worker lost with leased shards; requeued",
                  {obs::kv("conn", conn->id), obs::kv("worker", worker_id),
                   obs::kv("requeued", requeued)});
    state_cv_.notify_all();
  } else {
    obs::log_debug("service", "worker disconnected",
                   {obs::kv("conn", conn->id), obs::kv("worker", worker_id)});
  }
}

bool Service::deliver_result(const io::JsonValue& message) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = active_jobs_.find(message.at("fingerprint").as_uint());
  if (it == active_jobs_.end()) return false;  // stale: job already closed
  const std::shared_ptr<ActiveJob> job = it->second;
  std::size_t index = 0;
  io::JsonValue line;
  try {
    if (job->job.kind == JobSpec::Kind::kSweep) {
      core::SweepPointResult point =
          io::sweep_point_from_json(message.at("data"));
      index = point.index;
      SRAMLP_REQUIRE(index < job->total, "worker result index out of range");
      if (job->filled[index]) return true;  // requeue-race duplicate
      job->sweep[index] = std::move(point);
      line = make_message("sweep_point");
      line.set("data", message.at("data"));
    } else if (job->job.kind == JobSpec::Kind::kCampaign) {
      index = message.at("index").as_size();
      SRAMLP_REQUIRE(index < job->total, "worker result index out of range");
      if (job->filled[index]) return true;
      job->entries[index] = io::campaign_entry_from_json(message.at("data"));
      line = make_message("campaign_entry");
      line.set("index", io::JsonValue::integer(index));
      line.set("data", message.at("data"));
    } else {
      index = message.at("index").as_size();
      SRAMLP_REQUIRE(index < job->total, "worker result index out of range");
      if (job->filled[index]) return true;
      job->search[index] = io::restart_result_from_json(message.at("data"));
      line = make_message("search_restart");
      line.set("index", io::JsonValue::integer(index));
      line.set("data", message.at("data"));
    }
  } catch (const Error& e) {
    obs::log_warn("service", "malformed worker result line; dropped",
                  {obs::kv_hex("job", job->fingerprint),
                   obs::kv("error", e.what())});
    return false;  // malformed worker line: drop it, the requeue covers us
  }
  job->filled[index] = true;
  ++job->filled_count;
  ++stats_.points_executed;
  ServiceMetrics::get().points_executed.inc();
  for (const auto& listener : job->listeners) listener->send(line);
  job->replay.push_back(std::move(line));
  return true;
}

void Service::update_queue_depth_locked() {
  std::int64_t pending = 0;
  for (const auto& [fp, job] : active_jobs_)
    pending += static_cast<std::int64_t>(job->queue->stats().pending);
  ServiceMetrics::get().queue_depth.set(pending);
}

void Service::finalize_job_locked(std::unique_lock<std::mutex>& lock,
                                  const std::shared_ptr<ActiveJob>& job) {
  (void)lock;  // held by the caller; sends go out under it by design
  obs::SpanGuard finalize_span("finalize", "service");
  finalize_span.arg("job", job->fingerprint);
  MergedResult merged;
  merged.kind = job->job.kind;
  if (job->job.kind == JobSpec::Kind::kSweep) {
    merged.sweep = job->sweep;
  } else if (job->job.kind == JobSpec::Kind::kCampaign) {
    merged.campaign.algorithm = job->job.test->name();
    merged.campaign.entries = job->entries;
  } else {
    merged.search = job->search;
  }
  const std::string document = merged_document(merged);

  cache_.put(job->fingerprint, document);
  if (options_.point_cache) {
    for (std::size_t i = 0; i < job->total; ++i) {
      std::string payload;
      if (job->job.kind == JobSpec::Kind::kSweep) {
        // Store grid-neutral: zero the grid coordinates so the same
        // physical point hits from any future grid shape.
        core::SweepPointResult neutral = job->sweep[i];
        neutral.index = 0;
        neutral.geometry = 0;
        neutral.background = 0;
        neutral.algorithm = 0;
        payload = io::to_json(neutral).dump();
      } else if (job->job.kind == JobSpec::Kind::kCampaign) {
        payload = io::to_json(job->entries[i]).dump();
      } else {
        payload = io::to_json(job->search[i]).dump();
      }
      cache_.put(point_fingerprint(job->job, i), std::move(payload));
    }
  }

  const StealQueue::Stats queue_stats = job->queue->stats();
  io::JsonValue complete = make_message("job_complete");
  complete.set("fingerprint", io::JsonValue::integer(job->fingerprint));
  complete.set("cache_hit", io::JsonValue::boolean(false));
  complete.set("cached_points", io::JsonValue::integer(job->cached_points));
  complete.set("shards_executed",
               io::JsonValue::integer(queue_stats.completed));
  complete.set("shard_requeues", io::JsonValue::integer(queue_stats.requeues));
  complete.set("document", io::JsonValue::string(document));
  complete.set("cache_hit_rate",
               io::JsonValue::number(cache_.stats().hit_rate()));
  for (const auto& listener : job->listeners) listener->send(complete);

  job->finished = true;
  ++stats_.jobs_completed;
  ServiceMetrics& metrics = ServiceMetrics::get();
  metrics.jobs_completed.inc();
  submitter_completed(job->submitter).inc();
  metrics.jobs_in_flight.sub(1);
  active_jobs_.erase(job->fingerprint);
  job_order_.erase(
      std::find(job_order_.begin(), job_order_.end(), job->fingerprint));
  update_queue_depth_locked();
  obs::log_info("service", "job complete",
                {obs::kv_hex("job", job->fingerprint),
                 obs::kv("points", job->total),
                 obs::kv("cached_points", job->cached_points),
                 obs::kv("shards", queue_stats.completed),
                 obs::kv("requeues", queue_stats.requeues)});
  if (job->trace_start_us != 0) {
    const std::uint64_t end = obs::monotonic_micros();
    obs::Tracer::Span span;
    span.name = "job";
    span.category = "service";
    span.ts_us = job->trace_start_us;
    span.dur_us = end > job->trace_start_us ? end - job->trace_start_us : 0;
    span.tid = obs::trace_thread_id();
    span.args = {{"job", job->fingerprint},
                 {"points", job->total},
                 {"cached_points", job->cached_points}};
    obs::Tracer::global().record(std::move(span));
  }
  state_cv_.notify_all();
}

void Service::fail_job_locked(const std::shared_ptr<ActiveJob>& job,
                              const std::string& error) {
  io::JsonValue failed = error_message("job_failed", error);
  failed.set("fingerprint", io::JsonValue::integer(job->fingerprint));
  for (const auto& listener : job->listeners) listener->send(failed);
  job->finished = true;
  job->failed = true;
  ++stats_.jobs_failed;
  ServiceMetrics& metrics = ServiceMetrics::get();
  metrics.jobs_failed.inc();
  metrics.jobs_in_flight.sub(1);
  active_jobs_.erase(job->fingerprint);
  job_order_.erase(
      std::find(job_order_.begin(), job_order_.end(), job->fingerprint));
  update_queue_depth_locked();
  obs::log_error("service", "job failed",
                 {obs::kv_hex("job", job->fingerprint),
                  obs::kv("error", error)});
  state_cv_.notify_all();
}

// --- ServiceWorker -----------------------------------------------------------

std::size_t ServiceWorker::run(const std::string& address,
                               int connect_timeout_ms) {
  WorkerMetrics& metrics = WorkerMetrics::get();
  io::LineChannel channel(io::connect_socket(address, connect_timeout_ms));
  io::JsonValue hello = make_message("hello");
  hello.set("role", io::JsonValue::string("worker"));
  if (!channel.send(hello)) return 0;
  obs::log_debug("worker", "connected to service",
                 {obs::kv("address", address)});

  std::map<std::uint64_t, JobSpec> jobs;  ///< jobs held by value, by print
  std::size_t computed = 0;
  for (;;) {
    io::JsonValue lease = make_message("lease");
    io::JsonValue known = io::JsonValue::array();
    for (const auto& [fp, unused] : jobs)
      known.push_back(io::JsonValue::integer(fp));
    lease.set("known", std::move(known));
    // The lease round-trip (request to grant) includes any idle wait on
    // the service's queues — the "time to obtain work" a worker sees.
    std::optional<io::JsonValue> response;
    {
      obs::SpanGuard lease_span("lease", "worker");
      const std::uint64_t lease_sent_us = obs::monotonic_micros();
      if (!channel.send(lease)) return computed;
      response = channel.receive();
      metrics.lease_latency.observe_micros(obs::monotonic_micros() -
                                           lease_sent_us);
    }
    if (!response) return computed;
    std::string type;
    try {
      type = response->at("type").as_string();
    } catch (const Error& e) {
      obs::log_warn("worker", "malformed service response; leaving",
                    {obs::kv("error", e.what())});
      return computed;
    }
    if (type != "shard") return computed;  // "stop" or anything unexpected

    const std::uint64_t fingerprint = response->at("fingerprint").as_uint();
    const std::size_t shard_id = response->at("shard").as_size();
    std::vector<std::size_t> indices;
    const io::JsonValue& index_list = response->at("indices");
    indices.reserve(index_list.size());
    for (std::size_t i = 0; i < index_list.size(); ++i)
      indices.push_back(index_list.at(i).as_size());
    if (response->has("job")) {
      if (jobs.size() > 32) jobs.clear();  // bound the by-value cache
      jobs.insert_or_assign(fingerprint,
                            job_from_json(response->at("job")));
    }
    const auto job_it = jobs.find(fingerprint);
    if (job_it == jobs.end()) {
      metrics.shards_failed.inc();
      obs::log_warn("worker", "leased a job this worker does not hold",
                    {obs::kv_hex("job", fingerprint),
                     obs::kv("shard", shard_id)});
      io::JsonValue failed = error_message("shard_failed",
                                           "worker does not hold this job");
      failed.set("fingerprint", io::JsonValue::integer(fingerprint));
      failed.set("shard", io::JsonValue::integer(shard_id));
      if (!channel.send(failed)) return computed;
      continue;
    }
    const JobSpec& job = job_it->second;

    obs::SpanGuard execute_span("execute", "worker");
    execute_span.arg("job", fingerprint);
    execute_span.arg("shard", shard_id);
    execute_span.arg("points", indices.size());
    const std::uint64_t execute_start_us = obs::monotonic_micros();
    try {
      const auto emit_point = [&](io::JsonValue line) -> bool {
        if (options_.slow_point_us > 0)
          ::usleep(static_cast<useconds_t>(options_.slow_point_us));
        if (computed >= options_.die_after_points)
          return false;  // simulated kill: vanish mid-shard
        if (!channel.send(line)) return false;
        ++computed;
        return true;
      };
      if (job.kind == JobSpec::Kind::kSweep) {
        // The exact single-process arithmetic on the stolen subset —
        // identical bits whichever worker steals which indices.
        const core::SweepRunner runner(core::SweepRunner::Options{
            options_.threads, core::BackendChoice::kAuto});
        const std::vector<core::SweepPointResult> points =
            runner.run_indices(job.grid, indices);
        for (const core::SweepPointResult& point : points) {
          io::JsonValue line = make_message("sweep_point");
          line.set("fingerprint", io::JsonValue::integer(fingerprint));
          line.set("data", io::to_json(point));
          if (!emit_point(std::move(line))) return computed;
        }
      } else if (job.kind == JobSpec::Kind::kCampaign) {
        core::CampaignRunner::Options campaign_options;
        campaign_options.threads = options_.threads;
        campaign_options.batched = options_.batched_campaigns;
        const std::vector<core::CampaignEntry> entries =
            core::CampaignRunner(campaign_options)
                .run_subset(job.config, *job.test, job.faults, indices);
        for (std::size_t j = 0; j < indices.size(); ++j) {
          io::JsonValue line = make_message("campaign_entry");
          line.set("fingerprint", io::JsonValue::integer(fingerprint));
          line.set("index", io::JsonValue::integer(indices[j]));
          line.set("data", io::to_json(entries[j]));
          if (!emit_point(std::move(line))) return computed;
        }
      } else {
        // run_restart(spec, r) is pure, so the stolen restarts are
        // bit-identical to the single-process slots they fill.
        for (const std::size_t index : indices) {
          const search::RestartResult restart =
              search::run_restart(*job.search, index);
          io::JsonValue line = make_message("search_restart");
          line.set("fingerprint", io::JsonValue::integer(fingerprint));
          line.set("index", io::JsonValue::integer(index));
          line.set("data", io::to_json(restart));
          if (!emit_point(std::move(line))) return computed;
        }
      }
    } catch (const std::exception& e) {
      metrics.shards_failed.inc();
      obs::log_warn("worker", "shard computation failed",
                    {obs::kv_hex("job", fingerprint),
                     obs::kv("shard", shard_id), obs::kv("error", e.what())});
      io::JsonValue failed = error_message("shard_failed", e.what());
      failed.set("fingerprint", io::JsonValue::integer(fingerprint));
      failed.set("shard", io::JsonValue::integer(shard_id));
      if (!channel.send(failed)) return computed;
      continue;
    }
    metrics.shard_execution.observe_micros(obs::monotonic_micros() -
                                           execute_start_us);
    metrics.points_computed.inc(indices.size());
    io::JsonValue done = make_message("shard_done");
    done.set("fingerprint", io::JsonValue::integer(fingerprint));
    done.set("shard", io::JsonValue::integer(shard_id));
    if (!channel.send(done)) return computed;
  }
}

// --- clients -----------------------------------------------------------------

SubmitResult submit_job(
    const std::string& address, const JobSpec& job, int connect_timeout_ms,
    const std::function<void(const io::JsonValue&)>& on_line,
    const std::string& submitter) {
  job.validate();
  io::LineChannel channel(io::connect_socket(address, connect_timeout_ms));
  io::JsonValue submit = make_message("submit");
  submit.set("job", dist::to_json(job));
  if (!submitter.empty())
    submit.set("submitter", io::JsonValue::string(submitter));
  SRAMLP_REQUIRE(channel.send(submit), "service connection lost on submit");

  SubmitResult result;
  for (;;) {
    const std::optional<io::JsonValue> message = channel.receive();
    SRAMLP_REQUIRE(message.has_value(),
                   "service connection lost while streaming results");
    const std::string type = message->at("type").as_string();
    if (type == "job_accepted") {
      result.total_points = message->at("points").as_size();
      result.cached_points = message->at("cached_points").as_size();
    } else if (type == "sweep_point" || type == "campaign_entry" ||
               type == "search_restart") {
      ++result.streamed_lines;
      if (on_line) on_line(*message);
    } else if (type == "job_complete") {
      result.cache_hit = message->at("cache_hit").as_bool();
      if (message->has("cached_points"))
        result.cached_points = message->at("cached_points").as_size();
      result.cache_hit_rate = message->at("cache_hit_rate").as_double();
      result.document = message->at("document").as_string();
      return result;
    } else if (type == "job_failed") {
      throw Error("service rejected the job: " +
                  message->at("error").as_string());
    }
  }
}

ServiceStats query_stats(const std::string& address, int connect_timeout_ms) {
  io::LineChannel channel(io::connect_socket(address, connect_timeout_ms));
  SRAMLP_REQUIRE(channel.send(make_message("stats")),
                 "service connection lost on stats request");
  const std::optional<io::JsonValue> reply = channel.receive();
  SRAMLP_REQUIRE(reply.has_value() &&
                     reply->at("type").as_string() == "stats",
                 "service returned no stats");
  return service_stats_from_json(reply->at("stats"));
}

MetricsSnapshot query_metrics(const std::string& address,
                              int connect_timeout_ms) {
  io::LineChannel channel(io::connect_socket(address, connect_timeout_ms));
  SRAMLP_REQUIRE(channel.send(make_message("metrics")),
                 "service connection lost on metrics request");
  const std::optional<io::JsonValue> reply = channel.receive();
  SRAMLP_REQUIRE(reply.has_value() &&
                     reply->at("type").as_string() == "metrics",
                 "service returned no metrics");
  MetricsSnapshot snapshot;
  snapshot.prometheus = reply->at("prometheus").as_string();
  snapshot.json = reply->at("metrics");
  return snapshot;
}

void request_shutdown(const std::string& address, int connect_timeout_ms) {
  io::LineChannel channel(io::connect_socket(address, connect_timeout_ms));
  SRAMLP_REQUIRE(channel.send(make_message("shutdown")),
                 "service connection lost on shutdown request");
  channel.receive();  // the "bye" acknowledgement (or EOF — both fine)
}

}  // namespace sramlp::dist
