#include "dist/result_cache.h"

#include <filesystem>

#include "io/json.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace sramlp::dist {

namespace {

/// Registry-side mirror of Stats — the per-instance Stats struct keeps the
/// exact protocol numbers; these feed the process-wide scrape.
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& spill_hits;
  obs::Counter& misses;
  obs::Counter& insertions;

  static CacheMetrics& get() {
    obs::Registry& r = obs::Registry::global();
    static CacheMetrics m{
        r.counter("sramlp_cache_hits_total",
                  "Result-cache lookups served (memory + spill)"),
        r.counter("sramlp_cache_spill_hits_total",
                  "Result-cache hits re-read from the spill file"),
        r.counter("sramlp_cache_misses_total",
                  "Result-cache lookups that found nothing"),
        r.counter("sramlp_cache_insertions_total",
                  "Result-cache payloads inserted"),
    };
    return m;
  }
};

io::JsonValue spill_record(std::uint64_t key, const std::string& payload) {
  io::JsonValue record = io::JsonValue::object();
  record.set("key", io::JsonValue::integer(key));
  record.set("payload", io::JsonValue::string(payload));
  return record;
}

}  // namespace

ResultCache::ResultCache(const Options& options) : options_(options) {
  if (options_.spill_path.empty()) return;
  const std::filesystem::path path(options_.spill_path);
  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  // Index the existing spill: one {"key","payload"} record per line.  A
  // truncated tail line (daemon killed mid-append) is skipped, and the
  // next append starts cleanly past the last intact record.
  std::uint64_t clean_end = 0;
  {
    std::ifstream in(options_.spill_path);
    std::string line;
    std::uint64_t offset = 0;
    while (in.good() && std::getline(in, line)) {
      const bool had_newline = !in.eof();
      const std::uint64_t next =
          offset + line.size() + (had_newline ? 1 : 0);
      if (!had_newline) break;  // no trailing newline: torn final record
      if (!line.empty()) {
        try {
          const io::JsonValue record = io::JsonValue::parse(line);
          spill_index_[record.at("key").as_uint()] = offset;
          ++stats_.loaded;
        } catch (const Error&) {
          break;  // torn record: ignore it and everything after
        }
      }
      clean_end = next;
      offset = next;
    }
  }
  spill_out_.open(options_.spill_path,
                  std::ios::in | std::ios::out |
                      (std::filesystem::exists(path) ? std::ios::ate
                                                     : std::ios::trunc));
  if (!spill_out_.is_open())
    spill_out_.open(options_.spill_path, std::ios::out | std::ios::trunc);
  SRAMLP_REQUIRE(spill_out_.good(),
                 "cannot open result-cache spill file " + options_.spill_path);
  spill_out_.seekp(static_cast<std::streamoff>(clean_end));
}

void ResultCache::remember(std::uint64_t key, std::string payload) {
  const auto it = memory_.find(key);
  if (it != memory_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = std::move(payload);
    return;
  }
  if (options_.capacity == 0) return;
  lru_.emplace_front(key, std::move(payload));
  memory_[key] = lru_.begin();
  while (lru_.size() > options_.capacity) {
    memory_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

std::optional<std::string> ResultCache::get(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = memory_.find(key);
  if (it != memory_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    CacheMetrics::get().hits.inc();
    return it->second->second;
  }
  const auto spill_it = spill_index_.find(key);
  if (spill_it != spill_index_.end()) {
    std::ifstream in(options_.spill_path);
    in.seekg(static_cast<std::streamoff>(spill_it->second));
    std::string line;
    if (in.good() && std::getline(in, line)) {
      try {
        const io::JsonValue record = io::JsonValue::parse(line);
        if (record.at("key").as_uint() == key) {
          std::string payload = record.at("payload").as_string();
          remember(key, payload);
          ++stats_.hits;
          ++stats_.spill_hits;
          CacheMetrics::get().hits.inc();
          CacheMetrics::get().spill_hits.inc();
          return payload;
        }
      } catch (const Error&) {
        // fall through to a miss: the spill record is unreadable
      }
    }
  }
  ++stats_.misses;
  CacheMetrics::get().misses.inc();
  return std::nullopt;
}

void ResultCache::put(std::uint64_t key, std::string payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.insertions;
  CacheMetrics::get().insertions.inc();
  const bool new_for_spill =
      !options_.spill_path.empty() &&
      spill_index_.find(key) == spill_index_.end();
  if (new_for_spill) {
    const std::uint64_t offset =
        static_cast<std::uint64_t>(spill_out_.tellp());
    spill_out_ << spill_record(key, payload).dump() << '\n';
    spill_out_.flush();
    if (spill_out_.good()) spill_index_[key] = offset;
  }
  remember(key, std::move(payload));
}

bool ResultCache::contains(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return memory_.find(key) != memory_.end() ||
         spill_index_.find(key) != spill_index_.end();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats = stats_;
  std::size_t distinct = spill_index_.size();
  if (options_.spill_path.empty()) {
    distinct = memory_.size();
  } else {
    for (const auto& [key, unused] : memory_)
      if (spill_index_.find(key) == spill_index_.end()) ++distinct;
  }
  stats.entries = distinct;
  return stats;
}

}  // namespace sramlp::dist
