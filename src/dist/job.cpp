#include "dist/job.h"

#include "search/serialize.h"
#include "util/error.h"

namespace sramlp::dist {

namespace {

const char* kind_slug(JobSpec::Kind kind) {
  switch (kind) {
    case JobSpec::Kind::kSweep: return "sweep";
    case JobSpec::Kind::kCampaign: return "campaign";
    case JobSpec::Kind::kSearch: return "search";
  }
  throw Error("invalid JobSpec::Kind");
}

JobSpec::Kind kind_from_slug(const std::string& slug) {
  for (const auto kind : {JobSpec::Kind::kSweep, JobSpec::Kind::kCampaign,
                          JobSpec::Kind::kSearch})
    if (slug == kind_slug(kind)) return kind;
  throw Error("unknown job kind '" + slug + "'");
}

}  // namespace

std::size_t JobSpec::size() const {
  switch (kind) {
    case Kind::kSweep: return grid.size();
    case Kind::kCampaign: return faults.size();
    case Kind::kSearch: return search ? search->size() : 0;
  }
  throw Error("invalid JobSpec::Kind");
}

void JobSpec::validate() const {
  if (kind == Kind::kSweep) {
    SRAMLP_REQUIRE(!grid.geometries.empty() && !grid.backgrounds.empty() &&
                       !grid.algorithms.empty(),
                   "sweep job has an empty grid axis");
  } else if (kind == Kind::kCampaign) {
    SRAMLP_REQUIRE(test.has_value(), "campaign job needs a March test");
    SRAMLP_REQUIRE(!faults.empty(), "campaign job has no faults");
  } else {
    SRAMLP_REQUIRE(search.has_value(), "search job needs a SearchSpec");
    search->validate();
  }
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::uint64_t JobSpec::fingerprint() const {
  // FNV-1a over the canonical (compact, insertion-ordered) JSON form.
  return fnv1a64(to_json(*this).dump());
}

io::JsonValue to_json(const JobSpec& job) {
  io::JsonValue v = io::JsonValue::object();
  v.set("kind", io::JsonValue::string(kind_slug(job.kind)));
  if (job.kind == JobSpec::Kind::kSweep) {
    v.set("grid", io::to_json(job.grid));
  } else if (job.kind == JobSpec::Kind::kCampaign) {
    v.set("config", io::to_json(job.config));
    SRAMLP_REQUIRE(job.test.has_value(), "campaign job needs a March test");
    v.set("test", io::to_json(*job.test));
    io::JsonValue faults = io::JsonValue::array();
    for (const faults::FaultSpec& f : job.faults)
      faults.push_back(io::to_json(f));
    v.set("faults", std::move(faults));
  } else {
    SRAMLP_REQUIRE(job.search.has_value(), "search job needs a SearchSpec");
    v.set("search", io::to_json(*job.search));
  }
  return v;
}

JobSpec job_from_json(const io::JsonValue& json) {
  JobSpec job;
  job.kind = kind_from_slug(json.at("kind").as_string());
  if (job.kind == JobSpec::Kind::kSweep) {
    job.grid = io::sweep_grid_from_json(json.at("grid"));
  } else if (job.kind == JobSpec::Kind::kCampaign) {
    job.config = io::session_config_from_json(json.at("config"));
    job.test = io::march_from_json(json.at("test"));
    const io::JsonValue& faults = json.at("faults");
    for (std::size_t i = 0; i < faults.size(); ++i)
      job.faults.push_back(io::fault_spec_from_json(faults.at(i)));
  } else {
    job.search = io::search_spec_from_json(json.at("search"));
  }
  job.validate();
  return job;
}

void ShardSpec::validate() const {
  job.validate();
  plan.validate();
  SRAMLP_REQUIRE(shard < plan.shard_count, "shard index out of range");
  SRAMLP_REQUIRE(plan.total == job.size(),
                 "shard plan total does not match the job size");
}

io::JsonValue to_json(const ShardSpec& spec) {
  io::JsonValue v = io::JsonValue::object();
  v.set("job", to_json(spec.job));
  v.set("plan", to_json(spec.plan));
  v.set("shard", io::JsonValue::integer(spec.shard));
  return v;
}

ShardSpec shard_spec_from_json(const io::JsonValue& json) {
  ShardSpec spec;
  spec.job = job_from_json(json.at("job"));
  spec.plan = shard_plan_from_json(json.at("plan"));
  spec.shard = json.at("shard").as_size();
  spec.validate();
  return spec;
}

}  // namespace sramlp::dist
