#include "dist/coordinator.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>

#include "obs/log.h"
#include "obs/metrics.h"
#include "search/serialize.h"
#include "util/error.h"

namespace sramlp::dist {

namespace {

namespace fs = std::filesystem;

std::string shard_tag(std::size_t shard) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04zu", shard);
  return buf;
}

/// Expand the "{spec}" / "{out}" placeholders of one argv template element.
std::string expand_placeholders(std::string arg, const std::string& spec_path,
                                const std::string& out_path) {
  const auto replace_all = [&arg](const std::string& from,
                                  const std::string& to) {
    for (std::size_t pos = arg.find(from); pos != std::string::npos;
         pos = arg.find(from, pos + to.size()))
      arg.replace(pos, from.size(), to);
  };
  replace_all("{spec}", spec_path);
  replace_all("{out}", out_path);
  return arg;
}

/// Parse one shard result file; a missing file reads as incomplete.
ShardResult parse_shard_file(const std::string& path, const JobSpec& job,
                             const ShardPlan& plan, std::size_t shard) {
  std::ifstream in(path);
  if (!in) {
    ShardResult missing;
    missing.shard = shard;
    return missing;
  }
  return parse_shard_results(in, job, plan, shard);
}

}  // namespace

std::string shard_spec_path(const std::string& dir, std::size_t shard) {
  return (fs::path(dir) / ("shard_" + shard_tag(shard) + ".spec.json"))
      .string();
}

std::string shard_result_path(const std::string& dir, std::size_t shard) {
  return (fs::path(dir) / ("shard_" + shard_tag(shard) + ".jsonl")).string();
}

void write_shard_spec(const std::string& dir, const ShardSpec& spec) {
  fs::create_directories(dir);
  std::ofstream out(shard_spec_path(dir, spec.shard),
                    std::ios::out | std::ios::trunc);
  SRAMLP_REQUIRE(out.good(), "cannot write shard spec file in " + dir);
  out << to_json(spec).dump(2) << '\n';
  SRAMLP_REQUIRE(out.good(), "short write on shard spec file in " + dir);
}

MergedResult merge_shard_files(const JobSpec& job, const ShardPlan& plan,
                               const std::string& dir) {
  std::vector<std::string> paths;
  paths.reserve(plan.shard_count);
  for (std::size_t s = 0; s < plan.shard_count; ++s)
    paths.push_back(shard_result_path(dir, s));
  return merge_shard_files(job, plan, paths);
}

MergedResult merge_shard_files(const JobSpec& job, const ShardPlan& plan,
                               const std::vector<std::string>& paths) {
  SRAMLP_REQUIRE(paths.size() == plan.shard_count,
                 "need exactly one result file per shard");
  std::vector<ShardResult> results;
  results.reserve(paths.size());
  for (std::size_t s = 0; s < plan.shard_count; ++s) {
    std::ifstream in(paths[s]);
    SRAMLP_REQUIRE(in.good(), "cannot open shard result file " + paths[s]);
    results.push_back(parse_shard_results(in, job, plan, s));
    SRAMLP_REQUIRE(results.back().complete,
                   "shard result file " + paths[s] +
                       " is incomplete or belongs to a different job");
  }
  return merge_shard_results(job, plan, results);
}

MergedResult merge_shard_results(const JobSpec& job, const ShardPlan& plan,
                                 const std::vector<ShardResult>& results) {
  job.validate();
  SRAMLP_REQUIRE(plan.total == job.size(),
                 "shard plan total does not match the job size");
  SRAMLP_REQUIRE(results.size() == plan.shard_count,
                 "need exactly one result per shard");

  MergedResult merged;
  merged.kind = job.kind;
  std::vector<bool> filled(plan.total, false);
  if (job.kind == JobSpec::Kind::kSweep) {
    merged.sweep.resize(plan.total);
  } else if (job.kind == JobSpec::Kind::kCampaign) {
    merged.campaign.algorithm = job.test->name();
    merged.campaign.entries.resize(plan.total);
  } else {
    merged.search.resize(plan.total);
  }

  for (std::size_t s = 0; s < plan.shard_count; ++s) {
    const ShardResult& result = results[s];
    SRAMLP_REQUIRE(result.complete && result.shard == s,
                   "shard " + std::to_string(s) +
                       "'s result is incomplete or mislabelled");
    const auto claim = [&](std::size_t index) {
      SRAMLP_REQUIRE(index < plan.total, "shard result index out of range");
      SRAMLP_REQUIRE(plan.owner_of(index) == s,
                     "shard " + std::to_string(s) +
                         " reported a result it does not own");
      SRAMLP_REQUIRE(!filled[index], "duplicate result for flat index " +
                                         std::to_string(index));
      filled[index] = true;
    };
    if (job.kind == JobSpec::Kind::kSweep) {
      for (const core::SweepPointResult& point : result.sweep) {
        claim(point.index);
        merged.sweep[point.index] = point;
      }
    } else if (job.kind == JobSpec::Kind::kCampaign) {
      for (const auto& [index, entry] : result.entries) {
        claim(index);
        merged.campaign.entries[index] = entry;
      }
    } else {
      for (const auto& [index, restart] : result.search) {
        claim(index);
        merged.search[index] = restart;
      }
    }
  }
  for (std::size_t i = 0; i < plan.total; ++i)
    SRAMLP_REQUIRE(filled[i],
                   "no shard reported flat index " + std::to_string(i));
  return merged;
}

std::string merged_document(const MergedResult& merged) {
  io::JsonValue doc = io::JsonValue::object();
  if (merged.kind == JobSpec::Kind::kSweep) {
    doc.set("kind", io::JsonValue::string("sweep"));
    io::JsonValue points = io::JsonValue::array();
    for (const core::SweepPointResult& p : merged.sweep)
      points.push_back(io::to_json(p));
    doc.set("points", std::move(points));
  } else if (merged.kind == JobSpec::Kind::kCampaign) {
    doc.set("kind", io::JsonValue::string("campaign"));
    doc.set("algorithm", io::JsonValue::string(merged.campaign.algorithm));
    io::JsonValue entries = io::JsonValue::array();
    for (const core::CampaignEntry& e : merged.campaign.entries)
      entries.push_back(io::to_json(e));
    doc.set("entries", std::move(entries));
  } else {
    // The global Pareto front depends only on the per-restart results
    // (search::merge_front), so this document is byte-identical whether the
    // restarts came from one process, N shards, or the service.
    doc.set("kind", io::JsonValue::string("search"));
    io::JsonValue restarts = io::JsonValue::array();
    for (const search::RestartResult& r : merged.search)
      restarts.push_back(io::to_json(r));
    doc.set("restarts", std::move(restarts));
    io::JsonValue front = io::JsonValue::array();
    for (const search::ScheduleResult& point :
         search::merge_front(merged.search))
      front.push_back(io::to_json(point));
    doc.set("front", std::move(front));
  }
  return doc.dump(2) + "\n";
}

ShardPlan Coordinator::plan_for(const JobSpec& job) const {
  return ShardPlan::make(job.size(), options_.shards, options_.strategy);
}

MergedResult Coordinator::run(const JobSpec& job) const {
  job.validate();
  SRAMLP_REQUIRE(!options_.work_dir.empty(),
                 "the coordinator needs a work directory");
  SRAMLP_REQUIRE(options_.max_workers >= 1,
                 "the coordinator needs at least one worker");
  fs::create_directories(options_.work_dir);
  const ShardPlan plan = plan_for(job);

  // Each shard's file is parsed exactly once — at the resume check or
  // after its worker exits — and the parsed results feed the merge
  // directly, so nothing is deserialized twice.
  std::vector<ShardResult> results(plan.shard_count);

  // Checkpoint/resume: shards whose result files already parse complete
  // for THIS job need no subprocess at all.
  std::deque<std::size_t> queue;
  for (std::size_t s = 0; s < plan.shard_count; ++s) {
    if (options_.resume) {
      results[s] = parse_shard_file(shard_result_path(options_.work_dir, s),
                                    job, plan, s);
      if (results[s].complete) continue;
    }
    queue.push_back(s);
  }

  const bool exec_mode = !options_.worker_command.empty();
  if (exec_mode) {
    for (const std::size_t s : queue)
      write_shard_spec(options_.work_dir, ShardSpec{job, plan, s});
  }

  const auto spawn = [&](std::size_t shard, bool crash_for_test) -> pid_t {
    const std::string spec_path = shard_spec_path(options_.work_dir, shard);
    const std::string out_path = shard_result_path(options_.work_dir, shard);
    const pid_t pid = fork();
    SRAMLP_REQUIRE(pid >= 0, "fork failed");
    if (pid > 0) return pid;
    // --- child -----------------------------------------------------------
    if (crash_for_test) _exit(86);  // simulated kill, before any output
    if (exec_mode) {
      std::vector<std::string> args;
      args.reserve(options_.worker_command.size());
      for (const std::string& arg : options_.worker_command)
        args.push_back(expand_placeholders(arg, spec_path, out_path));
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      _exit(127);  // exec failed
    }
    // Fork-run mode: execute the worker right here in the child.
    try {
      std::ofstream out(out_path, std::ios::out | std::ios::trunc);
      if (!out.good()) _exit(1);
      Worker::Options worker_options = options_.worker;
      if (shard == options_.slow_shard)
        worker_options.slow_point_us = options_.slow_point_us;
      Worker(worker_options).run(ShardSpec{job, plan, shard}, out);
      out.close();
      _exit(out.good() ? 0 : 1);
    } catch (...) {
      _exit(1);
    }
  };

  std::map<pid_t, std::size_t> running;
  std::vector<unsigned> attempts(plan.shard_count, 0);
  while (!queue.empty() || !running.empty()) {
    while (!queue.empty() && running.size() < options_.max_workers) {
      const std::size_t shard = queue.front();
      queue.pop_front();
      ++attempts[shard];
      const bool crash_for_test =
          shard == options_.crash_first_attempt_of_shard &&
          attempts[shard] == 1;
      running.emplace(spawn(shard, crash_for_test), shard);
    }
    int status = 0;
    pid_t pid = -1;
    do {
      pid = waitpid(-1, &status, 0);
    } while (pid < 0 && errno == EINTR);
    SRAMLP_REQUIRE(pid > 0, "waitpid failed");
    const auto it = running.find(pid);
    if (it == running.end()) continue;  // not one of ours
    const std::size_t shard = it->second;
    running.erase(it);
    // A clean exit still has to produce a complete, parseable result file;
    // anything else is a crashed shard.
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      results[shard] = parse_shard_file(
          shard_result_path(options_.work_dir, shard), job, plan, shard);
      if (results[shard].complete) continue;
    }
    if (attempts[shard] > options_.retries)
      throw Error("shard " + std::to_string(shard) + " failed " +
                  std::to_string(attempts[shard]) +
                  " times; giving up (see " +
                  shard_result_path(options_.work_dir, shard) + ")");
    obs::log_warn("coordinator", "shard worker crashed; retrying",
                  {obs::kv("shard", shard),
                   obs::kv("attempt",
                           static_cast<std::uint64_t>(attempts[shard])),
                   obs::kv("retries",
                           static_cast<std::uint64_t>(options_.retries))});
    obs::Registry::global()
        .counter("sramlp_coordinator_shard_retries_total",
                 "Fork/exec coordinator shards re-run after a crash")
        .inc();
    queue.push_back(shard);
  }

  return merge_shard_results(job, plan, results);
}

}  // namespace sramlp::dist
