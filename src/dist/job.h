// The unit of distributed work: one whole sweep grid or fault campaign.
//
// A JobSpec is everything a worker process needs to recompute any flat
// index of the job from scratch — the grid (or campaign config + test +
// fault library) travels by value in JSON, never by reference to in-process
// state.  Shard spec files pair a JobSpec with a ShardPlan and a shard
// index; the fingerprint ties result files back to the exact job that
// produced them so checkpoint/resume can never merge stale results from a
// different job.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/fault_campaign.h"
#include "core/sweep.h"
#include "dist/shard.h"
#include "io/serialize.h"
#include "search/search.h"

namespace sramlp::dist {

/// FNV-1a over @p text — the digest shared by JobSpec::fingerprint and the
/// sweep service's per-point cache keys (dist/service.h).
std::uint64_t fnv1a64(std::string_view text);

/// One distributed job: a sweep grid, a fault campaign, or a schedule
/// search (one work item per seeded restart).
struct JobSpec {
  enum class Kind { kSweep, kCampaign, kSearch };

  Kind kind = Kind::kSweep;

  // --- kind == kSweep ----------------------------------------------------
  core::SweepGrid grid;

  // --- kind == kCampaign -------------------------------------------------
  core::SessionConfig config;               ///< campaign session template
  std::optional<march::MarchTest> test;     ///< campaign algorithm
  std::vector<faults::FaultSpec> faults;    ///< campaign fault library

  // --- kind == kSearch ---------------------------------------------------
  std::optional<search::SearchSpec> search; ///< schedule-search spec

  /// Flat work items: grid points, faults, or search restarts.
  std::size_t size() const;

  void validate() const;

  /// Stable digest (FNV-1a over the canonical JSON form); result files
  /// carry it so resume never merges results of a different job.
  std::uint64_t fingerprint() const;
};

io::JsonValue to_json(const JobSpec& job);
JobSpec job_from_json(const io::JsonValue& json);

/// One shard assignment, as written to a shard spec file: the whole job
/// plus the plan and the owned shard index.
struct ShardSpec {
  JobSpec job;
  ShardPlan plan;
  std::size_t shard = 0;

  void validate() const;
};

io::JsonValue to_json(const ShardSpec& spec);
ShardSpec shard_spec_from_json(const io::JsonValue& json);

}  // namespace sramlp::dist
