#include "dist/shard.h"

#include "util/error.h"

namespace sramlp::dist {

std::string to_slug(ShardStrategy strategy) {
  switch (strategy) {
    case ShardStrategy::kContiguous: return "contiguous";
    case ShardStrategy::kStrided: return "strided";
  }
  throw Error("invalid ShardStrategy");
}

ShardStrategy shard_strategy_from_slug(const std::string& slug) {
  for (const auto strategy :
       {ShardStrategy::kContiguous, ShardStrategy::kStrided})
    if (slug == to_slug(strategy)) return strategy;
  throw Error("unknown shard strategy '" + slug + "'");
}

ShardPlan ShardPlan::make(std::size_t total, std::size_t shards,
                          ShardStrategy strategy) {
  ShardPlan plan{total, shards, strategy};
  plan.validate();
  return plan;
}

ShardPlan ShardPlan::contiguous(std::size_t total, std::size_t shards) {
  return make(total, shards, ShardStrategy::kContiguous);
}

ShardPlan ShardPlan::strided(std::size_t total, std::size_t shards) {
  return make(total, shards, ShardStrategy::kStrided);
}

void ShardPlan::validate() const {
  SRAMLP_REQUIRE(shard_count >= 1, "a shard plan needs at least one shard");
}

std::size_t ShardPlan::owner_of(std::size_t flat_index) const {
  SRAMLP_REQUIRE(flat_index < total, "flat index out of range");
  if (strategy == ShardStrategy::kStrided) return flat_index % shard_count;
  // Contiguous: the first `longer` shards own quota+1 items each.
  const std::size_t quota = total / shard_count;
  const std::size_t longer = total % shard_count;
  const std::size_t boundary = longer * (quota + 1);
  if (flat_index < boundary) return flat_index / (quota + 1);
  SRAMLP_REQUIRE(quota > 0, "flat index out of range");
  return longer + (flat_index - boundary) / quota;
}

std::size_t ShardPlan::size_of(std::size_t shard) const {
  SRAMLP_REQUIRE(shard < shard_count, "shard index out of range");
  if (strategy == ShardStrategy::kStrided)
    return total / shard_count + (shard < total % shard_count ? 1 : 0);
  const std::size_t quota = total / shard_count;
  const std::size_t longer = total % shard_count;
  return quota + (shard < longer ? 1 : 0);
}

std::vector<std::size_t> ShardPlan::indices_of(std::size_t shard) const {
  SRAMLP_REQUIRE(shard < shard_count, "shard index out of range");
  std::vector<std::size_t> indices;
  indices.reserve(size_of(shard));
  if (strategy == ShardStrategy::kStrided) {
    for (std::size_t i = shard; i < total; i += shard_count)
      indices.push_back(i);
    return indices;
  }
  const std::size_t quota = total / shard_count;
  const std::size_t longer = total % shard_count;
  const std::size_t begin = shard < longer
                                ? shard * (quota + 1)
                                : longer * (quota + 1) + (shard - longer) * quota;
  const std::size_t count = quota + (shard < longer ? 1 : 0);
  for (std::size_t i = begin; i < begin + count; ++i) indices.push_back(i);
  return indices;
}

io::JsonValue to_json(const ShardPlan& plan) {
  io::JsonValue v = io::JsonValue::object();
  v.set("total", io::JsonValue::integer(plan.total));
  v.set("shard_count", io::JsonValue::integer(plan.shard_count));
  v.set("strategy", io::JsonValue::string(to_slug(plan.strategy)));
  return v;
}

ShardPlan shard_plan_from_json(const io::JsonValue& json) {
  ShardPlan plan;
  plan.total = json.at("total").as_size();
  plan.shard_count = json.at("shard_count").as_size();
  plan.strategy = shard_strategy_from_slug(json.at("strategy").as_string());
  plan.validate();
  return plan;
}

}  // namespace sramlp::dist
