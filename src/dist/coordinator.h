// Coordinator side of the distributed protocol: fan a job's shards over N
// worker subprocesses, survive crashes, and merge the result files back
// into flat-index order bit-identical to a single-process run.
//
// Execution model (fork/exec, no sockets — the transport is the
// filesystem, which is what lets the same protocol span hosts: run
// `sramlp_dist worker` remotely on a shard spec file and `merge` the
// copied-back JSONL):
//
//   * each shard runs in its own subprocess — either fork-and-run (the
//     worker executes in a forked child of this process; the default, and
//     what embedded/test callers use) or fork+exec of a caller-supplied
//     argv template (what the CLI uses to spawn `sramlp_dist worker`
//     subprocesses of its own binary);
//   * up to max_workers children run concurrently; completion order is
//     irrelevant because results carry their flat indices;
//   * a shard whose child exits non-zero, dies on a signal, or leaves an
//     incomplete result file is retried (fresh subprocess), `retries`
//     times; persistent failure throws;
//   * checkpoint/resume: a shard whose result file already parses complete
//     for THIS job (fingerprint-checked) is skipped entirely — so a rerun
//     after a killed coordinator (or a killed worker) only recomputes what
//     is actually missing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dist/job.h"
#include "dist/worker.h"

namespace sramlp::dist {

/// A whole job's results, merged back into flat-index order.
struct MergedResult {
  JobSpec::Kind kind = JobSpec::Kind::kSweep;
  /// Sweep jobs: results[i] is grid point i — the same vector
  /// SweepRunner::run produces, to the bit.
  std::vector<core::SweepPointResult> sweep;
  /// Campaign jobs: entries[i] describes faults[i], bit-identical to
  /// CampaignRunner::run.  Cross-process session accounting is not
  /// aggregated: session_pairs / batch_sessions are zero.
  core::CampaignReport campaign;
  /// Search jobs: search[i] is restart i — the same vector
  /// search::run_search produces, to the bit.
  std::vector<search::RestartResult> search;
};

/// Well-known file layout inside a work directory.
std::string shard_spec_path(const std::string& dir, std::size_t shard);
std::string shard_result_path(const std::string& dir, std::size_t shard);

/// Write @p spec to shard_spec_path(dir, spec.shard) (pretty-printed).
void write_shard_spec(const std::string& dir, const ShardSpec& spec);

/// Merge already-parsed shard results into flat order.  results[s] must be
/// shard s's complete result; throws sramlp::Error on an incomplete shard,
/// foreign/duplicate indices, or uncovered slots.
MergedResult merge_shard_results(const JobSpec& job, const ShardPlan& plan,
                                 const std::vector<ShardResult>& results);

/// The canonical merged document — what `sramlp_dist run`, `merge` and
/// `single` write and the sweep service streams back on job completion:
/// every distributed path's byte-level diff target.
std::string merged_document(const MergedResult& merged);

/// Merge per-shard result files into flat order.  Every shard's file must
/// parse complete for @p job; throws sramlp::Error naming the first shard
/// that does not.  @p paths defaults to shard_result_path(dir, k).
MergedResult merge_shard_files(const JobSpec& job, const ShardPlan& plan,
                               const std::string& dir);
MergedResult merge_shard_files(const JobSpec& job, const ShardPlan& plan,
                               const std::vector<std::string>& paths);

class Coordinator {
 public:
  struct Options {
    std::size_t shards = 4;        ///< how many shards to split the job into
    unsigned max_workers = 2;      ///< concurrent worker subprocesses
    ShardStrategy strategy = ShardStrategy::kContiguous;
    Worker::Options worker;        ///< per-shard execution options
    /// Directory for shard spec / result files (created if missing).
    std::string work_dir;
    /// Skip shards whose result files already parse complete for this job.
    bool resume = true;
    /// Re-runs granted to a crashed / incomplete shard before giving up.
    unsigned retries = 1;
    /// Exec-mode argv template; "{spec}" / "{out}" expand to the shard's
    /// spec and result paths.  Empty = run the worker in a forked child of
    /// this process.
    std::vector<std::string> worker_command;
    /// Test-only fault injection: the first subprocess launched for this
    /// shard exits immediately with a failure (as if the worker was
    /// killed), exercising the retry path.  SIZE_MAX = disabled.
    std::size_t crash_first_attempt_of_shard = static_cast<std::size_t>(-1);
    /// Scheduling-comparison hook: this one shard (fork-run mode only)
    /// runs with `slow_point_us` extra delay per point — a slow host under
    /// a static plan, the counterpart of ServiceWorker's slow_point_us on
    /// the steal queue.  SIZE_MAX = disabled.
    std::size_t slow_shard = static_cast<std::size_t>(-1);
    std::uint64_t slow_point_us = 0;
  };

  explicit Coordinator(const Options& options) : options_(options) {}

  /// Execute @p job: plan shards, (re)run the incomplete ones, merge.
  MergedResult run(const JobSpec& job) const;

  /// The plan this coordinator derives for @p job (also derived,
  /// identically, by every worker).
  ShardPlan plan_for(const JobSpec& job) const;

 private:
  Options options_;
};

}  // namespace sramlp::dist
