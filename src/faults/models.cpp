#include "faults/models.h"

#include "march/test.h"
#include "sram/array.h"
#include "util/error.h"
#include "util/rng.h"

namespace sramlp::faults {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStuckAt0: return "SA0";
    case FaultKind::kStuckAt1: return "SA1";
    case FaultKind::kTransitionUp: return "TF<0->1>";
    case FaultKind::kTransitionDown: return "TF<1->0>";
    case FaultKind::kWriteDisturb: return "WDF";
    case FaultKind::kReadDestructive: return "RDF";
    case FaultKind::kDeceptiveReadDestructive: return "DRDF";
    case FaultKind::kIncorrectRead: return "IRF";
    case FaultKind::kCouplingInversion: return "CFin";
    case FaultKind::kCouplingIdempotent: return "CFid";
    case FaultKind::kCouplingState: return "CFst";
    case FaultKind::kDynamicReadDestructive: return "dRDF<w;r>";
    case FaultKind::kResSensitive: return "RES-sensitive";
    case FaultKind::kDataRetention: return "DRF (data retention)";
  }
  throw Error("invalid FaultKind");
}

std::string FaultSpec::describe() const {
  std::string out = to_string(kind) + " @(" + std::to_string(victim.row) +
                    "," + std::to_string(victim.col) + ")";
  if (is_coupling(kind)) {
    out += " aggr(" + std::to_string(aggressor.row) + "," +
           std::to_string(aggressor.col) + ")";
    if (kind == FaultKind::kCouplingState)
      out += std::string(" state=") + (aggressor_state ? "1" : "0");
    else
      out += std::string(" on ") + (aggressor_up ? "0->1" : "1->0");
    if (kind != FaultKind::kCouplingInversion)
      out += std::string(" forces ") + (forced_value ? "1" : "0");
  }
  if (kind == FaultKind::kResSensitive)
    out += " threshold=" + std::to_string(res_threshold);
  if (kind == FaultKind::kDataRetention)
    out += " leaks to " + std::string(forced_value ? "1" : "0") + " after " +
           std::to_string(retention_idle_cycles) + " idle cycles";
  return out;
}

FaultSet::FaultSet(std::vector<FaultSpec> specs) {
  for (const auto& s : specs) add(s);
}

void FaultSet::add(const FaultSpec& spec) {
  if (is_coupling(spec.kind))
    SRAMLP_REQUIRE(!(spec.aggressor == spec.victim),
                   "coupling fault needs distinct aggressor and victim");
  if (spec.kind == FaultKind::kResSensitive)
    SRAMLP_REQUIRE(spec.res_threshold > 0.0,
                   "RES threshold must be positive");
  specs_.push_back(spec);
  res_accumulated_.push_back(0.0);
  res_fired_.push_back(false);
}

void FaultSet::reset_state() {
  for (auto& v : res_accumulated_) v = 0.0;
  res_fired_.assign(res_fired_.size(), false);
  have_last_write_ = false;
}

double FaultSet::res_stress_accumulated() const {
  double total = 0.0;
  for (double v : res_accumulated_) total += v;
  return total;
}

bool FaultSet::res_fault_fired() const {
  for (bool fired : res_fired_)
    if (fired) return true;
  return false;
}

bool FaultSet::write_result(sram::CellCoord cell, bool stored, bool intended) {
  bool value = intended;
  // Track the write for dynamic write-then-read faults.
  have_last_write_ = true;
  last_write_cell_ = cell;
  for (const FaultSpec& f : specs_) {
    if (!(f.victim == cell)) continue;
    switch (f.kind) {
      case FaultKind::kStuckAt0: value = false; break;
      case FaultKind::kStuckAt1: value = true; break;
      case FaultKind::kTransitionUp:
        if (!stored && value) value = false;
        break;
      case FaultKind::kTransitionDown:
        if (stored && !value) value = true;
        break;
      case FaultKind::kWriteDisturb:
        if (value == stored) value = !stored;
        break;
      case FaultKind::kCouplingState:
        SRAMLP_REQUIRE(array_ != nullptr, "FaultSet not bound to an array");
        if (array_->peek(f.aggressor.row, f.aggressor.col) ==
            f.aggressor_state)
          value = f.forced_value;
        break;
      default:
        break;  // read-path and aggressor-path faults don't act here
    }
  }
  return value;
}

bool FaultSet::read_result(sram::CellCoord cell, bool stored,
                           bool* stored_after) {
  bool sensed = stored;
  *stored_after = stored;
  const bool read_follows_write =
      have_last_write_ && last_write_cell_ == cell;
  have_last_write_ = false;  // any operation ends the "immediately after"
  for (const FaultSpec& f : specs_) {
    if (!(f.victim == cell)) continue;
    switch (f.kind) {
      case FaultKind::kDynamicReadDestructive:
        if (read_follows_write) {
          *stored_after = !stored;
          sensed = !stored;
        }
        break;
      case FaultKind::kStuckAt0:
        sensed = false;
        *stored_after = false;
        break;
      case FaultKind::kStuckAt1:
        sensed = true;
        *stored_after = true;
        break;
      case FaultKind::kReadDestructive:
        *stored_after = !stored;
        sensed = !stored;
        break;
      case FaultKind::kDeceptiveReadDestructive:
        *stored_after = !stored;
        sensed = stored;
        break;
      case FaultKind::kIncorrectRead:
        sensed = !stored;
        break;
      case FaultKind::kCouplingState:
        SRAMLP_REQUIRE(array_ != nullptr, "FaultSet not bound to an array");
        if (array_->peek(f.aggressor.row, f.aggressor.col) ==
            f.aggressor_state) {
          sensed = f.forced_value;
          *stored_after = f.forced_value;
        }
        break;
      default:
        break;
    }
  }
  return sensed;
}

void FaultSet::after_write(sram::SramArray& array, sram::CellCoord cell,
                           bool old_value, bool new_value) {
  if (old_value == new_value) return;  // coupling needs a transition
  const bool rising = !old_value && new_value;
  for (const FaultSpec& f : specs_) {
    if (!is_coupling(f.kind) || !(f.aggressor == cell)) continue;
    if (f.kind == FaultKind::kCouplingState) continue;  // state, not edge
    if (f.aggressor_up != rising) continue;
    if (f.kind == FaultKind::kCouplingInversion) {
      const bool v = array.peek(f.victim.row, f.victim.col);
      array.force(f.victim, !v);
    } else {  // kCouplingIdempotent
      array.force(f.victim, f.forced_value);
    }
  }
}

std::vector<sram::CellCoord> FaultSet::res_sensitive_cells() const {
  std::vector<sram::CellCoord> cells;
  for (const FaultSpec& f : specs_)
    if (f.kind == FaultKind::kResSensitive) cells.push_back(f.victim);
  return cells;
}

std::vector<sram::CellCoord> FaultSet::declared_cells() const {
  std::vector<sram::CellCoord> cells;
  for (const FaultSpec& f : specs_) {
    cells.push_back(f.victim);
    if (is_coupling(f.kind)) cells.push_back(f.aggressor);
  }
  return cells;
}

std::optional<std::vector<std::size_t>> FaultSet::relevant_rows() const {
  std::vector<std::size_t> rows;
  for (const FaultSpec& f : specs_) {
    // Dynamic faults consume the global write history: write_result's
    // last-write tracking on EVERY cell matters, so no row may skip it.
    if (f.kind == FaultKind::kDynamicReadDestructive) return std::nullopt;
    rows.push_back(f.victim.row);
    // Edge-coupling faults strike from after_write on the aggressor.
    if (is_coupling(f.kind)) rows.push_back(f.aggressor.row);
  }
  return rows;
}

void FaultSet::on_res(sram::SramArray& array, sram::CellCoord cell,
                      double stress) {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& f = specs_[i];
    if (f.kind != FaultKind::kResSensitive || !(f.victim == cell)) continue;
    res_accumulated_[i] += stress;
    if (!res_fired_[i] && res_accumulated_[i] >= f.res_threshold) {
      res_fired_[i] = true;
      const bool v = array.peek(cell.row, cell.col);
      array.force(cell, !v);
    }
  }
}

void FaultSet::on_idle(sram::SramArray& array, std::uint64_t cycles) {
  // Idle time also breaks any pending write-then-read dynamic pair.
  have_last_write_ = false;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& f = specs_[i];
    if (f.kind != FaultKind::kDataRetention) continue;
    res_accumulated_[i] += static_cast<double>(cycles);
    if (res_accumulated_[i] >= static_cast<double>(f.retention_idle_cycles)) {
      // Once the CUMULATIVE idle total crosses the threshold (the
      // documented model — see FaultSpec::retention_idle_cycles) the weak
      // cell can no longer hold the non-preferred value across any pause:
      // writes between pauses may refresh it, but each later pause leaks
      // it again.  March G needs its second delay precisely to catch the
      // polarity the first pause could not expose.
      res_fired_[i] = true;
      array.force(f.victim, f.forced_value);
    }
  }
}

std::vector<FaultSpec> standard_fault_library(const sram::Geometry& geometry,
                                              std::uint64_t seed,
                                              int instances_per_kind) {
  // The library itself only needs in-bounds cells; it deliberately skips
  // the full Geometry::validate() (which also enforces the LP-mode
  // two-word-group minimum) so single-column organisations can draw a
  // library too.
  SRAMLP_REQUIRE(geometry.rows >= 1 && geometry.cols >= 1, "empty array");
  SRAMLP_REQUIRE(instances_per_kind >= 1,
                 "need at least one instance per fault kind");
  util::Rng rng(seed);
  const auto random_cell = [&rng, &geometry]() {
    return sram::CellCoord{rng.next_below(geometry.rows),
                           rng.next_below(geometry.cols)};
  };
  const auto neighbour_of = [&geometry](sram::CellCoord c) {
    // Pick an adjacent cell (coupling faults are typically neighbours).
    // Single-column geometries have no column neighbour; use a row
    // neighbour instead of letting c.col - 1 wrap to SIZE_MAX.
    if (geometry.cols > 1) {
      if (c.col + 1 < geometry.cols) return sram::CellCoord{c.row, c.col + 1};
      return sram::CellCoord{c.row, c.col - 1};
    }
    if (c.row + 1 < geometry.rows) return sram::CellCoord{c.row + 1, c.col};
    return sram::CellCoord{c.row - 1, c.col};
  };
  // A 1x1 array has no neighbour at all: skip the two-cell kinds.
  const bool can_couple = geometry.rows > 1 || geometry.cols > 1;

  std::vector<FaultSpec> library;
  for (int i = 0; i < instances_per_kind; ++i) {
    for (FaultKind kind :
         {FaultKind::kStuckAt0, FaultKind::kStuckAt1,
          FaultKind::kTransitionUp, FaultKind::kTransitionDown,
          FaultKind::kWriteDisturb, FaultKind::kReadDestructive,
          FaultKind::kDeceptiveReadDestructive, FaultKind::kIncorrectRead,
          FaultKind::kDynamicReadDestructive}) {
      FaultSpec f;
      f.kind = kind;
      f.victim = random_cell();
      library.push_back(f);
    }
    if (can_couple) {
      for (FaultKind kind :
           {FaultKind::kCouplingInversion, FaultKind::kCouplingIdempotent,
            FaultKind::kCouplingState}) {
        FaultSpec f;
        f.kind = kind;
        f.victim = random_cell();
        f.aggressor = neighbour_of(f.victim);
        f.aggressor_up = rng.next_bool();
        f.aggressor_state = rng.next_bool();
        f.forced_value = rng.next_bool();
        library.push_back(f);
      }
    }
    {
      // Paper §4 headline class: fires under functional-mode RES exposure
      // ((cols - 1) column-cycles per operation) but not under the
      // low-power schedule's bounded exposure (follower + decay tail,
      // ~100 equivalents per run regardless of width) once rows are wide.
      FaultSpec f;
      f.kind = FaultKind::kResSensitive;
      f.victim = random_cell();
      f.res_threshold = 3.0 * static_cast<double>(geometry.cols);
      library.push_back(f);
    }
    {
      // One "Del" element (march::kDefaultPauseCycles idle cycles) must be
      // enough to sensitise the leak.
      FaultSpec f;
      f.kind = FaultKind::kDataRetention;
      f.victim = random_cell();
      f.forced_value = rng.next_bool();
      f.retention_idle_cycles = march::kDefaultPauseCycles * 3 / 4;
      library.push_back(f);
    }
  }
  return library;
}

}  // namespace sramlp::faults
