#include "faults/batch.h"

#include <algorithm>

#include "util/error.h"

namespace sramlp::faults {

namespace {

/// True when the model's dynamic sensitisation consumes the global
/// write-then-read operation history (FaultSet::relevant_rows returns
/// nullopt, hooking every row).  That history is keyed purely on operation
/// COORDINATES — write_result records the cell, read_result/on_idle clear
/// the pair — and other batch members only ever change operation VALUES on
/// their own (disjoint) victim cells, never the operation sequence, so
/// such faults batch safely.  They get batches of their own only so the
/// every-row hooking cost stays off the word-parallel batches.
bool needs_global_history(FaultKind kind) {
  return kind == FaultKind::kDynamicReadDestructive;
}

}  // namespace

BatchPlan plan_batches(const std::vector<FaultSpec>& specs,
                       std::size_t max_batch) {
  BatchPlan plan;

  // Per-batch victim-cell bookkeeping for the greedy first-fit pass, plus
  // each batch's history class (see needs_global_history).
  std::vector<std::vector<sram::CellCoord>> batch_victims;
  std::vector<bool> batch_global;

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const FaultSpec& f = specs[i];
    if (is_coupling(f.kind)) {
      // Cell-level aggressor analysis: the only way another fault can
      // perturb this coupling fault is by disturbing its aggressor CELL —
      // corrupting the value CFst samples, or creating/suppressing the
      // write transitions CFin/CFid trigger on (including through a forced
      // strike, which lands on the other fault's victim cell).  A fault
      // whose victim merely shares the aggressor's ROW touches a different
      // cell and stays independent, so it no longer forces a fallback —
      // the rule that used to send most coupling faults per-fault, since
      // column-neighbour aggressors share their victim's row by
      // construction.  (Hook delivery is unaffected: the batch's
      // relevant_rows is the union over members, so widening a batch never
      // hides a row.)
      bool collides = false;
      for (std::size_t j = 0; j < specs.size(); ++j) {
        if (j != i && specs[j].victim == f.aggressor) {
          collides = true;
          break;
        }
      }
      if (collides) {
        plan.fallback.push_back(i);
        continue;
      }
    }
    // First batch of the fault's history class whose victims miss this
    // fault's victim cell.
    const bool global = needs_global_history(f.kind);
    bool placed = false;
    for (std::size_t b = 0; b < plan.batches.size() && !placed; ++b) {
      if (batch_global[b] != global) continue;
      if (max_batch != 0 && plan.batches[b].size() >= max_batch) continue;
      const auto& victims = batch_victims[b];
      if (std::find(victims.begin(), victims.end(), f.victim) ==
          victims.end()) {
        plan.batches[b].push_back(i);
        batch_victims[b].push_back(f.victim);
        placed = true;
      }
    }
    if (!placed) {
      plan.batches.push_back({i});
      batch_victims.push_back({f.victim});
      batch_global.push_back(global);
    }
  }
  return plan;
}

BatchFaultSet::BatchFaultSet(std::vector<FaultSpec> specs) {
  victims_.reserve(specs.size());
  for (const FaultSpec& f : specs) {
    for (const sram::CellCoord& v : victims_)
      SRAMLP_REQUIRE(!(v == f.victim),
                     "batched faults must have pairwise distinct victims");
    victims_.push_back(f.victim);
    set_.add(f);
  }
  counts_.assign(victims_.size(), 0);
}

void BatchFaultSet::reset_state() {
  set_.reset_state();
  counts_.assign(counts_.size(), 0);
  unattributed_ = 0;
}

void BatchFaultSet::on_attach(const sram::SramArray& array) {
  set_.on_attach(array);
}

std::vector<sram::CellCoord> BatchFaultSet::declared_cells() const {
  return set_.declared_cells();
}

bool BatchFaultSet::write_result(sram::CellCoord cell, bool stored,
                                 bool intended) {
  return set_.write_result(cell, stored, intended);
}

bool BatchFaultSet::read_result(sram::CellCoord cell, bool stored,
                                bool* stored_after) {
  return set_.read_result(cell, stored, stored_after);
}

void BatchFaultSet::after_write(sram::SramArray& array, sram::CellCoord cell,
                                bool old_value, bool new_value) {
  set_.after_write(array, cell, old_value, new_value);
}

std::vector<sram::CellCoord> BatchFaultSet::res_sensitive_cells() const {
  return set_.res_sensitive_cells();
}

std::optional<std::vector<std::size_t>> BatchFaultSet::relevant_rows() const {
  return set_.relevant_rows();
}

void BatchFaultSet::on_res(sram::SramArray& array, sram::CellCoord cell,
                           double stress) {
  set_.on_res(array, cell, stress);
}

void BatchFaultSet::on_idle(sram::SramArray& array, std::uint64_t cycles) {
  set_.on_idle(array, cycles);
}

void BatchFaultSet::on_read_mismatch(sram::CellCoord cell) {
  for (std::size_t i = 0; i < victims_.size(); ++i) {
    if (victims_[i] == cell) {
      ++counts_[i];
      return;
    }
  }
  ++unattributed_;
}

}  // namespace sramlp::faults
