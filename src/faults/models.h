// Behavioural memory fault models.
//
// The classic static fault space March tests target (van de Goor, the
// paper's ref [11]) plus one dynamic model specific to this paper:
//
//   SA0/SA1   stuck-at              cell permanently 0 / 1
//   TF        transition            one direction of writes fails
//   WDF       write disturb         a non-transition write flips the cell
//   RDF       read destructive      read flips the cell AND returns the flip
//   DRDF      deceptive RDF         read returns the old value, flips the cell
//   IRF       incorrect read        read returns the complement, cell intact
//   CFin      inversion coupling    an aggressor transition inverts the victim
//   CFid      idempotent coupling   an aggressor transition forces the victim
//   CFst      state coupling        victim coerced while aggressor holds a state
//   RES-sensitive                   the cell flips after accumulating enough
//                                   Read-Equivalent-Stress (paper §4: tests
//                                   that rely on functional-mode stress must
//                                   not run in the low-power test mode)
//   dRDF<w;r>  dynamic RDF          a read right after a write flips the cell
//   DRF        data retention       the cell leaks after enough idle time
//
// All models plug into sram::CellFaultModel through FaultSet.
#pragma once

#include <string>
#include <vector>

#include "sram/fault_hooks.h"
#include "sram/geometry.h"

namespace sramlp::faults {

enum class FaultKind {
  kStuckAt0,
  kStuckAt1,
  kTransitionUp,    ///< 0 -> 1 writes fail
  kTransitionDown,  ///< 1 -> 0 writes fail
  kWriteDisturb,
  kReadDestructive,
  kDeceptiveReadDestructive,
  kIncorrectRead,
  kCouplingInversion,
  kCouplingIdempotent,
  kCouplingState,
  /// Dynamic two-operation fault dRDF<w;r>: a read performed immediately
  /// after a write to the same cell flips it and returns the flip.  Only
  /// March tests with a write-then-read pair inside an element (March SS,
  /// March SR, March G...) sensitise it; MATS+ and March C- miss it.
  kDynamicReadDestructive,
  kResSensitive,
  /// Data-retention fault: after enough cumulative idle time (March "Del"
  /// pauses) the weak cell leaks to its preferred value.  Only delay-
  /// bearing algorithms (March G with delays) sensitise it.
  kDataRetention,
};

std::string to_string(FaultKind kind);

/// True for two-cell (aggressor/victim) models.
constexpr bool is_coupling(FaultKind kind) {
  return kind == FaultKind::kCouplingInversion ||
         kind == FaultKind::kCouplingIdempotent ||
         kind == FaultKind::kCouplingState;
}

/// One injected fault instance.
struct FaultSpec {
  FaultKind kind = FaultKind::kStuckAt0;
  sram::CellCoord victim;
  // --- coupling parameters ---
  sram::CellCoord aggressor;   ///< coupling faults only
  bool aggressor_up = true;    ///< CFin/CFid: sensitising transition 0->1?
  bool aggressor_state = true; ///< CFst: coercing aggressor state
  bool forced_value = false;   ///< CFid/CFst: value forced onto the victim
  // --- RES-sensitive parameters ---
  /// Full-RES cycle equivalents after which the cell flips (once).
  double res_threshold = 64.0;
  // --- data-retention parameters ---
  /// Cumulative idle cycles after which the cell leaks to forced_value.
  /// The default sits below march::kDefaultPauseCycles so one "Del"
  /// element suffices to sensitise the fault.
  std::uint64_t retention_idle_cycles = 1000;

  std::string describe() const;
};

/// A set of injected faults implementing the array hook interface.
///
/// bind() must point at the array the set is attached to before any cycle
/// runs (state-coupling faults sample the aggressor's live value).
class FaultSet final : public sram::CellFaultModel {
 public:
  FaultSet() = default;
  explicit FaultSet(std::vector<FaultSpec> specs);

  void add(const FaultSpec& spec);
  const std::vector<FaultSpec>& specs() const { return specs_; }
  bool empty() const { return specs_.empty(); }

  /// Attach the array whose cells this set disturbs (non-owning).  Called
  /// automatically via on_attach when the set is attached to an array.
  void bind(const sram::SramArray* array) { array_ = array; }
  void on_attach(const sram::SramArray& array) override { array_ = &array; }

  /// Clear accumulated dynamic state (RES stress) between runs.
  void reset_state();

  /// Total RES stress accumulated by RES-sensitive victims (diagnostics).
  double res_stress_accumulated() const;
  /// Whether any RES-sensitive fault has fired.
  bool res_fault_fired() const;

  // --- sram::CellFaultModel ----------------------------------------------
  bool write_result(sram::CellCoord cell, bool stored, bool intended) override;
  bool read_result(sram::CellCoord cell, bool stored,
                   bool* stored_after) override;
  void after_write(sram::SramArray& array, sram::CellCoord cell,
                   bool old_value, bool new_value) override;
  std::vector<sram::CellCoord> res_sensitive_cells() const override;
  std::vector<sram::CellCoord> declared_cells() const override;
  std::optional<std::vector<std::size_t>> relevant_rows() const override;
  void on_res(sram::SramArray& array, sram::CellCoord cell,
              double stress) override;
  void on_idle(sram::SramArray& array, std::uint64_t cycles) override;

 private:
  std::vector<FaultSpec> specs_;
  std::vector<double> res_accumulated_;  ///< parallel to specs_
  std::vector<bool> res_fired_;          ///< parallel to specs_
  const sram::SramArray* array_ = nullptr;
  /// Cell written by the immediately preceding operation (dynamic faults).
  bool have_last_write_ = false;
  sram::CellCoord last_write_cell_;
};

/// A representative single-fault library spread pseudo-randomly over the
/// array: several instances of every kind (and both polarities where it
/// applies), including the dynamic dRDF<w;r> fault and the paper's §4
/// classes (RES-sensitive, data retention).  RES thresholds scale with the
/// row width (3x the column count: below one functional-mode element sweep
/// for every Table 1 algorithm, above the low-power-mode exposure on wide
/// rows); retention thresholds sit below march::kDefaultPauseCycles so one
/// "Del" element sensitises them.  Deterministic for a given seed.
/// Coupling aggressors are column neighbours; single-column geometries get
/// row neighbours instead, and a 1x1 array has no coupling instances.
std::vector<FaultSpec> standard_fault_library(const sram::Geometry& geometry,
                                              std::uint64_t seed = 7,
                                              int instances_per_kind = 3);

}  // namespace sramlp::faults
