// Word-parallel multi-fault campaign batching.
//
// A single-fault campaign pays one functional + one low-power March session
// per fault.  Most library faults never interact: their behaviour is
// confined to their own victim cell, so many of them can ride in ONE
// session pair as long as nothing couples them.  This header owns the two
// pieces that make that safe:
//
//   * plan_batches — partitions a fault list into batches whose members are
//     provably independent, plus a per-fault fallback list for everything
//     that is not.  The rules (conservative by design):
//       - victim cells within a batch are pairwise disjoint: every fault's
//         observable misbehaviour stays on its own cell;
//       - dynamic dRDF<w;r> faults batch too, but only with each other:
//         their sensitisation consumes the global write-then-read history,
//         which is keyed purely on operation coordinates (write_result
//         records the cell; read_result and on_idle clear the pair), and
//         victim-disjoint co-members only ever alter operation values on
//         their own cells — including coupling strikes, which land through
//         force() and never touch write_result — so the history sequence
//         every member sees is exactly the per-fault one.  Segregating
//         them keeps the every-row hook cost (relevant_rows == nullopt)
//         off the word-parallel batches;
//       - a coupling fault whose aggressor CELL is any other fault's victim
//         cell falls back: that other fault could corrupt the value CFst
//         samples or create/suppress the transitions CFin/CFid trigger on.
//         Cell granularity is exact — a victim that merely shares the
//         aggressor's row touches a different cell and stays independent
//         (hook delivery is row-granular via relevant_rows, but the rows a
//         batch claims are the union over members, so widening a batch
//         never hides a row);
//     Batching additionally requires the Fig. 7 row-transition restore:
//     with it disabled, faulty swaps copy whole rows of (per-fault
//     different) data around and independence is gone — callers must run
//     per-fault instead (CampaignRunner enforces this).
//
//   * BatchFaultSet — a FaultSet-compatible adapter over one batch that
//     keeps per-fault identity: it forwards every sram::CellFaultModel
//     hook to an inner FaultSet and listens on the on_read_mismatch
//     attribution channel, mapping each mismatched cell back to the batch
//     member owning it.  After a run, mismatches_of(i) is exactly the
//     mismatch count the per-fault path would have measured for member i
//     (regression-tested bit-identical).
#pragma once

#include <cstdint>
#include <vector>

#include "faults/models.h"

namespace sramlp::faults {

/// Outcome of partitioning a fault list for batched execution.  Indices
/// refer to the input list; every input index appears exactly once, either
/// in one batch or in the fallback list.
struct BatchPlan {
  /// Victim-disjoint batches; each runs as one multi-fault session pair.
  std::vector<std::vector<std::size_t>> batches;
  /// Faults that must run through the single-fault path.
  std::vector<std::size_t> fallback;

  /// Session pairs a campaign will run under this plan.
  std::size_t session_pairs() const { return batches.size() + fallback.size(); }
};

/// Partition @p specs under the independence rules above (greedy,
/// first-fit, deterministic).  @p max_batch caps the members per batch;
/// 0 means unlimited.
BatchPlan plan_batches(const std::vector<FaultSpec>& specs,
                       std::size_t max_batch = 0);

/// Multi-fault adapter: one victim-disjoint batch behind the single
/// sram::CellFaultModel interface, with per-fault detection attribution.
class BatchFaultSet final : public sram::CellFaultModel {
 public:
  /// @p specs must have pairwise distinct victim cells (plan_batches
  /// guarantees this; enforced here).
  explicit BatchFaultSet(std::vector<FaultSpec> specs);

  std::size_t size() const { return victims_.size(); }
  const std::vector<FaultSpec>& specs() const { return set_.specs(); }

  /// Read-cycle mismatches attributed to batch member @p i so far — the
  /// number the per-fault path's SessionResult::mismatches would show.
  std::uint64_t mismatches_of(std::size_t i) const { return counts_.at(i); }

  /// Mismatches at cells no member owns.  Always zero when the batch
  /// invariants hold; a nonzero value means members interacted (a
  /// partitioning bug), which the parity tests assert against.
  std::uint64_t unattributed() const { return unattributed_; }

  /// Clear attribution counters and the inner set's dynamic state.
  void reset_state();

  // --- sram::CellFaultModel (forwarded to the inner FaultSet) ------------
  void on_attach(const sram::SramArray& array) override;
  std::vector<sram::CellCoord> declared_cells() const override;
  bool write_result(sram::CellCoord cell, bool stored, bool intended) override;
  bool read_result(sram::CellCoord cell, bool stored,
                   bool* stored_after) override;
  void after_write(sram::SramArray& array, sram::CellCoord cell,
                   bool old_value, bool new_value) override;
  std::vector<sram::CellCoord> res_sensitive_cells() const override;
  std::optional<std::vector<std::size_t>> relevant_rows() const override;
  void on_res(sram::SramArray& array, sram::CellCoord cell,
              double stress) override;
  void on_idle(sram::SramArray& array, std::uint64_t cycles) override;
  void on_read_mismatch(sram::CellCoord cell) override;

 private:
  FaultSet set_;
  std::vector<sram::CellCoord> victims_;   ///< victims_[i] = member i's cell
  std::vector<std::uint64_t> counts_;      ///< parallel to victims_
  std::uint64_t unattributed_ = 0;
};

}  // namespace sramlp::faults
