#include "march/test.h"

namespace sramlp::march {

std::string MarchElement::str() const {
  if (is_pause()) return "Del";
  std::string out = to_string(direction) + "(";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i) out += ',';
    out += to_string(ops[i]);
  }
  out += ')';
  return out;
}

MarchTest::MarchTest(std::string name, std::vector<MarchElement> elements)
    : name_(std::move(name)), elements_(std::move(elements)) {
  SRAMLP_REQUIRE(!elements_.empty(), "March test needs at least one element");
  for (const auto& e : elements_) e.validate();
}

MarchStats MarchTest::stats() const {
  // Delay elements are not operations and are not counted (the paper's
  // Table 1 counts March G without its pauses: 7 elements, 23 ops).
  MarchStats s;
  for (const auto& e : elements_) {
    if (e.is_pause()) {
      s.pause_cycles += e.pause_cycles;
      continue;
    }
    ++s.elements;
    for (Operation op : e.ops) {
      ++s.operations;
      if (is_read(op)) ++s.reads;
      else ++s.writes;
    }
  }
  return s;
}

power::AlgorithmCounts MarchTest::counts() const {
  const MarchStats s = stats();
  return power::AlgorithmCounts{name_, s.elements, s.operations, s.reads,
                                s.writes};
}

std::uint64_t MarchTest::cycle_count(std::size_t addresses) const {
  const MarchStats s = stats();
  return static_cast<std::uint64_t>(s.operations) *
             static_cast<std::uint64_t>(addresses) +
         s.pause_cycles;
}

std::string MarchTest::str() const {
  std::string out = "{ ";
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    if (i) out += "; ";
    out += elements_[i].str();
  }
  out += " }";
  return out;
}

MarchTest MarchTest::complemented() const {
  std::vector<MarchElement> flipped = elements_;
  for (auto& e : flipped)
    for (auto& op : e.ops) op = complement(op);
  return MarchTest(name_ + " (inverted background)", std::move(flipped));
}

}  // namespace sramlp::march
