#include "march/address_order.h"

#include <algorithm>

#include "util/error.h"
#include "util/rng.h"

namespace sramlp::march {

std::string to_string(AddressOrderKind kind) {
  switch (kind) {
    case AddressOrderKind::kWordLineAfterWordLine:
      return "word-line-after-word-line";
    case AddressOrderKind::kFastRow: return "fast-row";
    case AddressOrderKind::kPseudoRandom: return "pseudo-random";
    case AddressOrderKind::kAddressComplement: return "address-complement";
    case AddressOrderKind::kGrayCode: return "gray-code";
    case AddressOrderKind::kCustom: return "custom";
  }
  throw Error("invalid AddressOrderKind");
}

AddressOrder::AddressOrder(AddressOrderKind kind, std::size_t rows,
                           std::size_t col_groups,
                           std::vector<Address> sequence)
    : kind_(kind), rows_(rows), col_groups_(col_groups),
      sequence_(std::move(sequence)) {
  SRAMLP_REQUIRE(rows_ >= 1 && col_groups_ >= 1, "empty address space");
  // The word-line-after-word-line factory is trivially a permutation and
  // sits on the batched hot path (sweep sessions build one per point);
  // every other kind — including the cold pseudo-random / Gray-code /
  // complement generators — keeps the O(n) DOF-1 scan as a safety net.
  if (kind_ != AddressOrderKind::kWordLineAfterWordLine)
    validate_permutation();
}

void AddressOrder::validate_permutation() const {
  const std::size_t n = rows_ * col_groups_;
  SRAMLP_REQUIRE(sequence_.size() == n,
                 "sequence length must equal rows * column groups");
  std::vector<bool> seen(n, false);
  for (const Address& a : sequence_) {
    SRAMLP_REQUIRE(a.row < rows_ && a.col < col_groups_,
                   "address outside the array");
    const std::size_t flat = a.row * col_groups_ + a.col;
    SRAMLP_REQUIRE(!seen[flat], "address visited twice (violates DOF-1)");
    seen[flat] = true;
  }
}

const Address& AddressOrder::at(std::size_t step, Direction direction) const {
  SRAMLP_REQUIRE(step < sequence_.size(), "step beyond sequence end");
  if (direction == Direction::kDown)
    return sequence_[sequence_.size() - 1 - step];
  return sequence_[step];
}

bool AddressOrder::is_word_line_after_word_line() const {
  // Factory-built WLAWL orders are tagged; only custom permutations need
  // the O(n) scan.
  if (kind_ == AddressOrderKind::kWordLineAfterWordLine) return true;
  for (std::size_t i = 0; i < sequence_.size(); ++i) {
    if (sequence_[i].row != i / col_groups_ ||
        sequence_[i].col != i % col_groups_)
      return false;
  }
  return true;
}

AddressOrder AddressOrder::word_line_after_word_line(std::size_t rows,
                                                     std::size_t col_groups) {
  std::vector<Address> seq;
  seq.reserve(rows * col_groups);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < col_groups; ++c) seq.push_back({r, c});
  return AddressOrder(AddressOrderKind::kWordLineAfterWordLine, rows,
                      col_groups, std::move(seq));
}

AddressOrder AddressOrder::fast_row(std::size_t rows, std::size_t col_groups) {
  std::vector<Address> seq;
  seq.reserve(rows * col_groups);
  for (std::size_t c = 0; c < col_groups; ++c)
    for (std::size_t r = 0; r < rows; ++r) seq.push_back({r, c});
  return AddressOrder(AddressOrderKind::kFastRow, rows, col_groups,
                      std::move(seq));
}

AddressOrder AddressOrder::pseudo_random(std::size_t rows,
                                         std::size_t col_groups,
                                         std::uint64_t seed) {
  std::vector<Address> seq =
      word_line_after_word_line(rows, col_groups).sequence();
  util::Rng rng(seed);
  util::shuffle(seq, rng);
  return AddressOrder(AddressOrderKind::kPseudoRandom, rows, col_groups,
                      std::move(seq));
}

AddressOrder AddressOrder::address_complement(std::size_t rows,
                                              std::size_t col_groups) {
  const std::size_t n = rows * col_groups;
  std::vector<Address> seq;
  seq.reserve(n);
  const auto to_address = [col_groups](std::size_t flat) {
    return Address{flat / col_groups, flat % col_groups};
  };
  for (std::size_t i = 0; i < n / 2; ++i) {
    seq.push_back(to_address(i));
    seq.push_back(to_address(n - 1 - i));
  }
  if (n % 2 == 1) seq.push_back(to_address(n / 2));
  return AddressOrder(AddressOrderKind::kAddressComplement, rows, col_groups,
                      std::move(seq));
}

AddressOrder AddressOrder::gray_code(std::size_t rows,
                                     std::size_t col_groups) {
  const std::size_t n = rows * col_groups;
  // Walk the reflected-Gray sequence of the next power of two and keep the
  // codes inside [0, n); a bijection filtered this way stays a permutation.
  std::size_t span = 1;
  while (span < n) span <<= 1;
  std::vector<Address> seq;
  seq.reserve(n);
  for (std::size_t i = 0; i < span; ++i) {
    const std::size_t gray = i ^ (i >> 1);
    if (gray < n) seq.push_back({gray / col_groups, gray % col_groups});
  }
  return AddressOrder(AddressOrderKind::kGrayCode, rows, col_groups,
                      std::move(seq));
}

AddressOrder AddressOrder::custom(std::size_t rows, std::size_t col_groups,
                                  std::vector<Address> sequence) {
  return AddressOrder(AddressOrderKind::kCustom, rows, col_groups,
                      std::move(sequence));
}

}  // namespace sramlp::march
