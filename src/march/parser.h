// Parser for March test notation.
//
// Grammar (whitespace-insensitive, case-insensitive operations):
//
//   test     := '{' element (';' element)* '}'
//   element  := dir '(' op (',' op)* ')'
//   dir      := 'U' | '^'          (ascending)
//             | 'D' | 'v'          (descending)
//             | 'B' | '~'          (either)
//   op       := 'r0' | 'r1' | 'w0' | 'w1'
//
// Example: parse_march("my", "{ B(w0); U(r0,w1); D(r1,w0); B(r0) }")
#pragma once

#include <string>
#include <string_view>

#include "march/test.h"

namespace sramlp::march {

/// Parse @p notation into a MarchTest named @p name.
/// Throws sramlp::Error with a position-annotated message on bad syntax.
MarchTest parse_march(std::string name, std::string_view notation);

}  // namespace sramlp::march
