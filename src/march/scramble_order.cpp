#include "march/scramble_order.h"

namespace sramlp::march {

AddressOrder wlawl_logical_order(const sram::AddressScramble& scramble) {
  const std::size_t rows = scramble.rows();
  const std::size_t cols = scramble.col_groups();
  std::vector<Address> sequence;
  sequence.reserve(rows * cols);
  // Walk the PHYSICAL array row-major and record which logical address
  // reaches each physical location.
  for (std::size_t pr = 0; pr < rows; ++pr) {
    for (std::size_t pc = 0; pc < cols; ++pc) {
      const sram::PhysicalAddress logical = scramble.to_logical(pr, pc);
      sequence.push_back({logical.row, logical.col});
    }
  }
  if (scramble.is_identity())
    return AddressOrder::word_line_after_word_line(rows, cols);
  return AddressOrder::custom(rows, cols, std::move(sequence));
}

}  // namespace sramlp::march
