#include "march/algorithms.h"

#include "march/parser.h"

namespace sramlp::march::algorithms {

MarchTest mats() { return parse_march("MATS", "{ B(w0); B(r0,w1); B(r1) }"); }

MarchTest mats_plus() {
  return parse_march("MATS+", "{ B(w0); U(r0,w1); D(r1,w0) }");
}

MarchTest mats_pp() {
  return parse_march("MATS++", "{ B(w0); U(r0,w1); D(r1,w0,r0) }");
}

MarchTest march_x() {
  return parse_march("March X", "{ B(w0); U(r0,w1); D(r1,w0); B(r0) }");
}

MarchTest march_y() {
  return parse_march("March Y", "{ B(w0); U(r0,w1,r1); D(r1,w0,r0); B(r0) }");
}

MarchTest march_c_minus() {
  return parse_march(
      "March C-",
      "{ B(w0); U(r0,w1); U(r1,w0); D(r0,w1); D(r1,w0); B(r0) }");
}

MarchTest march_a() {
  return parse_march(
      "March A",
      "{ B(w0); U(r0,w1,w0,w1); U(r1,w0,w1); D(r1,w0,w1,w0); D(r0,w1,w0) }");
}

MarchTest march_b() {
  return parse_march("March B",
                     "{ B(w0); U(r0,w1,r1,w0,r0,w1); U(r1,w0,w1); "
                     "D(r1,w0,w1,w0); D(r0,w1,w0) }");
}

MarchTest march_ss() {
  return parse_march("March SS",
                     "{ B(w0); U(r0,r0,w0,r0,w1); U(r1,r1,w1,r1,w0); "
                     "D(r0,r0,w0,r0,w1); D(r1,r1,w1,r1,w0); B(r0) }");
}

MarchTest march_sr() {
  return parse_march("March SR",
                     "{ D(w0); U(r0,w1,r1,w0); U(r0,r0); U(w1); "
                     "D(r1,w0,r0,w1); D(r1,r1) }");
}

MarchTest march_g() {
  // Delay pauses between the last three elements are omitted (they are not
  // operations); counts then match Table 1: 7 elements, 23 ops, 10 r, 13 w.
  return parse_march("March G",
                     "{ B(w0); U(r0,w1,r1,w0,r0,w1); U(r1,w0,w1); "
                     "D(r1,w0,w1,w0); D(r0,w1,w0); B(r0,w1,r1); "
                     "B(r1,w0,r0) }");
}

MarchTest march_g_with_delays() {
  // The published March G pauses before its final verification passes to
  // let weak cells leak (data-retention faults).  Op counts are unchanged:
  // delay elements are not operations.
  return parse_march("March G (with delays)",
                     "{ B(w0); U(r0,w1,r1,w0,r0,w1); U(r1,w0,w1); "
                     "D(r1,w0,w1,w0); D(r0,w1,w0); Del; B(r0,w1,r1); "
                     "Del; B(r1,w0,r0) }");
}

MarchTest march_lr() {
  return parse_march("March LR",
                     "{ B(w0); D(r0,w1); U(r1,w0,r0,w1); U(r1,w0); "
                     "U(r0,w1,r1,w0); U(r0) }");
}

MarchTest march_ic_minus() {
  return parse_march(
      "March iC-",
      "{ B(w0); U(r0,w1); U(r1,w0); D(r0,w1); D(r1,w0); B(r0) }");
}

std::vector<MarchTest> all() {
  return {mats(),          mats_plus(), mats_pp(),  march_x(),
          march_y(),       march_c_minus(), march_a(), march_b(),
          march_ss(),      march_sr(),  march_g(),
          march_g_with_delays(), march_lr(), march_ic_minus()};
}

std::vector<MarchTest> table1() {
  return {march_c_minus(), march_ss(), mats_plus(), march_sr(), march_g()};
}

}  // namespace sramlp::march::algorithms
