#include "march/parser.h"

#include <cctype>

#include "util/error.h"

namespace sramlp::march {

namespace {

/// Minimal recursive-descent scanner over the notation string.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool done() {
    skip_ws();
    return pos_ >= text_.size();
  }

  char peek() {
    skip_ws();
    SRAMLP_REQUIRE(pos_ < text_.size(), context("unexpected end of input"));
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    const char got = take();
    if (got != c)
      throw Error(context(std::string("expected '") + c + "', got '" + got +
                          "'"));
  }

  std::string context(const std::string& msg) const {
    return "March notation error at offset " + std::to_string(pos_) + ": " +
           msg;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

Direction parse_direction(Scanner& s) {
  const char c = s.take();
  switch (c) {
    case 'U': case 'u': case '^': return Direction::kUp;
    case 'D': case 'd': case 'v': return Direction::kDown;
    case 'B': case 'b': case '~': return Direction::kEither;
    default:
      throw Error(s.context(std::string("expected direction U/D/B, got '") +
                            c + "'"));
  }
}

/// "Del" already had its 'D' consumed when we reach here; check for "el".
bool looks_like_delay(Scanner& s) {
  return s.peek() == 'e';
}

Operation parse_operation(Scanner& s) {
  const char kind = s.take();
  const char digit = s.take();
  const bool one = digit == '1';
  if (digit != '0' && digit != '1')
    throw Error(s.context(std::string("expected data value 0/1, got '") +
                          digit + "'"));
  switch (kind) {
    case 'r': case 'R': return one ? Operation::kR1 : Operation::kR0;
    case 'w': case 'W': return one ? Operation::kW1 : Operation::kW0;
    default:
      throw Error(s.context(std::string("expected operation r/w, got '") +
                            kind + "'"));
  }
}

MarchElement parse_element(Scanner& s) {
  MarchElement e;
  // "Del" (delay element) shares its first letter with the D direction.
  const char first = s.peek();
  if (first == 'D' || first == 'd') {
    s.take();
    if (!s.done() && looks_like_delay(s)) {
      s.expect('e');
      s.expect('l');
      e.pause_cycles = kDefaultPauseCycles;
      return e;
    }
    e.direction = Direction::kDown;
  } else {
    e.direction = parse_direction(s);
  }
  s.expect('(');
  while (true) {
    e.ops.push_back(parse_operation(s));
    const char c = s.take();
    if (c == ')') break;
    if (c != ',')
      throw Error(s.context(std::string("expected ',' or ')', got '") + c +
                            "'"));
  }
  return e;
}

}  // namespace

MarchTest parse_march(std::string name, std::string_view notation) {
  Scanner s(notation);
  s.expect('{');
  std::vector<MarchElement> elements;
  while (true) {
    elements.push_back(parse_element(s));
    const char c = s.take();
    if (c == '}') break;
    if (c != ';')
      throw Error(s.context(std::string("expected ';' or '}', got '") + c +
                            "'"));
  }
  SRAMLP_REQUIRE(s.done(), "trailing characters after closing '}'");
  return MarchTest(std::move(name), std::move(elements));
}

}  // namespace sramlp::march
