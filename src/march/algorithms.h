// Library of standard March algorithms.
//
// The five algorithms of the paper's Table 1 (March C-, March SS, MATS+,
// March SR, March G) plus the other classic tests referenced by the memory
// testing literature the paper builds on (van de Goor).  All are
// bit-oriented.  March G's delay pauses (for data-retention faults) are not
// operations and are omitted; its element/operation counts then match the
// paper's Table 1 exactly (7 elements, 23 operations).
#pragma once

#include <vector>

#include "march/test.h"

namespace sramlp::march::algorithms {

MarchTest mats();      ///< { B(w0); B(r0,w1); B(r1) }
MarchTest mats_plus(); ///< { B(w0); U(r0,w1); D(r1,w0) }                 Table 1
MarchTest mats_pp();   ///< { B(w0); U(r0,w1); D(r1,w0,r0) }
MarchTest march_x();   ///< { B(w0); U(r0,w1); D(r1,w0); B(r0) }
MarchTest march_y();   ///< { B(w0); U(r0,w1,r1); D(r1,w0,r0); B(r0) }
MarchTest march_c_minus();  ///< 6 elements / 10 ops                      Table 1
MarchTest march_a();   ///< { B(w0); U(r0,w1,w0,w1); U(r1,w0,w1); D(r1,w0,w1,w0); D(r0,w1,w0) }
MarchTest march_b();   ///< { B(w0); U(r0,w1,r1,w0,r0,w1); U(r1,w0,w1); D(r1,w0,w1,w0); D(r0,w1,w0) }
MarchTest march_ss();  ///< 6 elements / 22 ops                           Table 1
MarchTest march_sr();  ///< 6 elements / 14 ops                           Table 1
MarchTest march_g();   ///< 7 elements / 23 ops (delays omitted)          Table 1
MarchTest march_g_with_delays();  ///< March G including its two "Del"
                                  ///< pauses (sensitises retention faults)
MarchTest march_lr();  ///< { B(w0); D(r0,w1); U(r1,w0,r0,w1); U(r1,w0); U(r0,w1,r1,w0); U(r0) }
MarchTest march_ic_minus();  ///< March iC-: March C- operations; relies on
                             ///< fast-column addressing to sensitise ADOFs

/// Every algorithm above.
std::vector<MarchTest> all();

/// The five algorithms of the paper's Table 1, in the paper's row order.
std::vector<MarchTest> table1();

}  // namespace sramlp::march::algorithms
