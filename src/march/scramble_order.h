// The logical address sequence a BIST must issue so that a scrambled
// memory is physically walked word-line-after-word-line.
//
// The paper's low-power test mode constrains the PHYSICAL access order;
// March DOF-1 permits any LOGICAL permutation.  Given the memory's
// scramble map, wlawl_logical_order() returns the logical "up" sequence
// whose physical image is row-major — what the test engineer programs
// into the pattern generator.
#pragma once

#include "march/address_order.h"
#include "sram/scramble.h"

namespace sramlp::march {

/// Logical sequence visiting physical cells word-line-after-word-line.
/// With the identity scramble this is the canonical order itself.
AddressOrder wlawl_logical_order(const sram::AddressScramble& scramble);

}  // namespace sramlp::march
