// Address sequences — Degree Of Freedom 1 of March tests.
//
// "Any arbitrary address sequence can be defined as an up sequence, as long
//  as all addresses occur exactly once" (paper §3).  The low-power test mode
// requires the specific word-line-after-word-line order (all columns of row
// 0, then all columns of row 1, ...); any other order must fall back to
// functional mode.  The other generators exist to demonstrate that fault
// coverage is order-independent while the power saving is not.
//
// Addresses are (row, column-group) pairs; for bit-oriented memories the
// column group is simply the column.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "march/test.h"

namespace sramlp::march {

/// One word address inside the array.
struct Address {
  std::size_t row = 0;
  std::size_t col = 0;  ///< column group index (column when word width = 1)

  friend bool operator==(const Address&, const Address&) = default;
};

/// Built-in sequence families.
enum class AddressOrderKind {
  kWordLineAfterWordLine,  ///< row-major, column fastest (LP-mode order)
  kFastRow,                ///< column-major, row fastest
  kPseudoRandom,           ///< seeded shuffle (functional-mode-like)
  kAddressComplement,      ///< i, N-1-i, i+1, N-2-i, ...
  kGrayCode,               ///< reflected-Gray sequence over the flat index
  kCustom,                 ///< user-supplied permutation
};

std::string to_string(AddressOrderKind kind);

/// A concrete "up" sequence over all rows x column-groups.  The "down"
/// sequence of the same order is its exact reverse (paper §3).
class AddressOrder {
 public:
  static AddressOrder word_line_after_word_line(std::size_t rows,
                                                std::size_t col_groups);
  static AddressOrder fast_row(std::size_t rows, std::size_t col_groups);
  static AddressOrder pseudo_random(std::size_t rows, std::size_t col_groups,
                                    std::uint64_t seed);
  static AddressOrder address_complement(std::size_t rows,
                                         std::size_t col_groups);
  static AddressOrder gray_code(std::size_t rows, std::size_t col_groups);
  /// @param sequence must visit every address exactly once (validated).
  static AddressOrder custom(std::size_t rows, std::size_t col_groups,
                             std::vector<Address> sequence);

  AddressOrderKind kind() const { return kind_; }
  std::size_t rows() const { return rows_; }
  std::size_t col_groups() const { return col_groups_; }
  std::size_t size() const { return sequence_.size(); }

  /// Up-sequence view.
  const std::vector<Address>& sequence() const { return sequence_; }

  /// Address at @p step walking the sequence in @p direction
  /// (kEither walks ascending).
  const Address& at(std::size_t step, Direction direction) const;

  /// True when the sequence equals the word-line-after-word-line order —
  /// the precondition of the low-power test mode.
  bool is_word_line_after_word_line() const;

 private:
  AddressOrder(AddressOrderKind kind, std::size_t rows,
               std::size_t col_groups, std::vector<Address> sequence);

  /// DOF-1 requirement: every address occurs exactly once.
  void validate_permutation() const;

  AddressOrderKind kind_;
  std::size_t rows_;
  std::size_t col_groups_;
  std::vector<Address> sequence_;
};

}  // namespace sramlp::march
