// March test primitive operations (bit-oriented).
#pragma once

#include <string>

#include "util/error.h"

namespace sramlp::march {

/// One March operation applied to the cell under the address pointer.
enum class Operation {
  kR0,  ///< read, expect 0
  kR1,  ///< read, expect 1
  kW0,  ///< write 0
  kW1,  ///< write 1
};

constexpr bool is_read(Operation op) {
  return op == Operation::kR0 || op == Operation::kR1;
}

constexpr bool is_write(Operation op) { return !is_read(op); }

/// The data value written, or the value a read expects.
constexpr bool value_of(Operation op) {
  return op == Operation::kR1 || op == Operation::kW1;
}

inline std::string to_string(Operation op) {
  switch (op) {
    case Operation::kR0: return "r0";
    case Operation::kR1: return "r1";
    case Operation::kW0: return "w0";
    case Operation::kW1: return "w1";
  }
  throw Error("invalid Operation");
}

/// Complement the data value of an operation (r0 <-> r1, w0 <-> w1).
/// Used to apply alternative data backgrounds (DOF of March tests).
constexpr Operation complement(Operation op) {
  switch (op) {
    case Operation::kR0: return Operation::kR1;
    case Operation::kR1: return Operation::kR0;
    case Operation::kW0: return Operation::kW1;
    case Operation::kW1: return Operation::kW0;
  }
  return op;
}

}  // namespace sramlp::march
