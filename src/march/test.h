// March elements and March tests.
//
// A March test is a sequence of March elements; each element pairs an
// address direction with a list of operations applied at every address
// before the pointer advances (van de Goor's notation):
//
//   March C-: { B(w0); U(r0,w1); U(r1,w0); D(r0,w1); D(r1,w0); B(r0) }
//
// where U = ascending, D = descending, B = either direction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "march/operation.h"
#include "power/analytic.h"

namespace sramlp::march {

/// Address direction of one March element.
enum class Direction {
  kUp,      ///< ascending address sequence
  kDown,    ///< descending address sequence
  kEither,  ///< direction irrelevant for coverage; runs ascending
};

inline std::string to_string(Direction d) {
  switch (d) {
    case Direction::kUp: return "U";
    case Direction::kDown: return "D";
    case Direction::kEither: return "B";
  }
  throw Error("invalid Direction");
}

/// Idle cycles a "Del" (delay) element waits for, when none is specified.
/// Delay elements sensitise data-retention faults (March G's pauses).
inline constexpr std::size_t kDefaultPauseCycles = 1024;

/// One March element: either a direction plus at least one operation, or a
/// delay ("Del") element that idles the memory for pause_cycles.
struct MarchElement {
  Direction direction = Direction::kEither;
  std::vector<Operation> ops;
  /// Non-zero for delay elements (which carry no operations).
  std::size_t pause_cycles = 0;

  bool is_pause() const { return pause_cycles > 0; }

  void validate() const {
    if (is_pause())
      SRAMLP_REQUIRE(ops.empty(), "delay elements carry no operations");
    else
      SRAMLP_REQUIRE(!ops.empty(),
                     "March element needs at least one operation");
  }

  /// Notation, e.g. "U(r0,w1)" or "Del".
  std::string str() const;
};

/// Aggregate operation counts (the columns of the paper's Table 1).
/// Delay elements are not operations: they contribute only pause_cycles.
struct MarchStats {
  int elements = 0;
  int operations = 0;
  int reads = 0;
  int writes = 0;
  std::uint64_t pause_cycles = 0;  ///< total idle cycles of "Del" elements
};

/// A complete March algorithm.
class MarchTest {
 public:
  MarchTest(std::string name, std::vector<MarchElement> elements);

  const std::string& name() const { return name_; }
  const std::vector<MarchElement>& elements() const { return elements_; }

  MarchStats stats() const;

  /// Stats packaged for the power model.
  power::AlgorithmCounts counts() const;

  /// Clock cycles one run takes over @p addresses words: one cycle per
  /// operation per address plus the idle cycles of any delay elements.
  std::uint64_t cycle_count(std::size_t addresses) const;

  /// Clock cycles element @p index alone spans over @p addresses words:
  /// one per operation per address, or the element's pause length.
  /// cycle_count() is the sum of these over all elements — the element
  /// boundary arithmetic traced runs and the analytic per-element
  /// expectation share.
  std::uint64_t element_cycles(std::size_t index,
                               std::size_t addresses) const {
    const MarchElement& e = elements_.at(index);
    return e.is_pause()
               ? e.pause_cycles
               : static_cast<std::uint64_t>(e.ops.size()) * addresses;
  }

  /// Full notation, e.g. "{ B(w0); U(r0,w1); ... }".
  std::string str() const;

  /// The same test with every operation's data value complemented —
  /// March DOF: the data background may be inverted without affecting
  /// coverage of data-independent faults.
  MarchTest complemented() const;

 private:
  std::string name_;
  std::vector<MarchElement> elements_;
};

}  // namespace sramlp::march
