// The cycle-level command vocabulary shared by every execution path.
//
// One CycleCommand is everything the array (or a gate-level controller, or
// an analytic estimator) needs to know about one clock cycle: the address,
// the operation, the scan direction (which neighbour to pre-charge in the
// low-power test mode) and whether this cycle is the one-cycle functional
// restore at a row hand-over (Fig. 7).  The engine::CommandStream resolves
// all of those decisions; backends only consume them.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sram/background.h"

namespace sramlp::sram {

/// Operating mode (paper §4).
enum class Mode {
  kFunctional,    ///< all pre-charge circuits always on
  kLowPowerTest,  ///< pre-charge restricted to selected + following column
};

/// Scan direction within a row (which neighbour the controller pre-charges).
enum class Scan { kAscending, kDescending };

/// One clock cycle of work, as issued by the test controller.
struct CycleCommand {
  std::size_t row = 0;
  std::size_t col_group = 0;
  bool is_read = true;
  bool value = false;  ///< logical data bit (write data / read expectation)
  /// Data background mapping logical bits to physical cell values
  /// (physical = value XOR background(row, col)); defaults to solid 0,
  /// under which logical and physical coincide.
  DataBackground background;
  Scan scan = Scan::kAscending;
  /// Force functional pre-charge for this cycle (row-transition restore).
  bool restore_row_transition = false;
};

/// Outcome of one cycle.
struct CycleResult {
  bool read_value = false;   ///< sensed value (reads; last bit for words)
  bool mismatch = false;     ///< any read bit differed from the expectation
  /// Cell column of the first mismatched bit (valid when mismatch is set);
  /// with the row it identifies the mismatching cell for fault attribution.
  std::size_t first_bad_col = 0;
  std::uint32_t faulty_swaps = 0;  ///< cells flipped by bit-line overpowering
};

/// One operation of a run (a March operation reduced to array terms).
struct RunOp {
  bool is_read = true;
  bool value = false;  ///< logical data bit
};

/// A whole-row batch of cycles: every column group of one word line, in
/// scan order, executing the same operation list per address — exactly the
/// cycles a March element spends on one row.  The issuing layer (the
/// engine's CommandStream) still owns all scheduling decisions; a run just
/// hands the array enough structure to execute the row in one tight loop
/// (meter accumulators held in registers, cells touched word-at-a-time)
/// instead of one CycleCommand at a time.  Results are bit-identical to
/// issuing the equivalent CycleCommands.
struct RunCommand {
  std::size_t row = 0;
  std::size_t first_group = 0;   ///< column group of the first address
  std::size_t group_count = 0;   ///< addresses covered (same row)
  bool descending = false;       ///< walk groups downward from first_group
  const RunOp* ops = nullptr;    ///< operations applied at every address
  std::size_t op_count = 0;
  DataBackground background;
  Scan scan = Scan::kAscending;
  /// Issue the one-cycle functional restore (Fig. 7) on the last
  /// operation of the last address of the run.
  bool restore_last = false;
};

/// Everything a run reports back (detections are capped; the engine's
/// backend translates them into its Detection records).
struct RunResult {
  static constexpr std::size_t kDetectionCap = 16;
  std::uint64_t mismatches = 0;        ///< read cycles with any bad bit
  std::uint32_t faulty_swaps = 0;
  std::size_t detection_count = 0;     ///< entries valid in detections[]
  struct RunDetection {
    std::size_t op = 0;
    std::size_t group = 0;
    /// Cell column of the first mismatched bit of the read cycle; with the
    /// run's row it names the exact cell, so campaign layers can attribute
    /// a detection to the fault owning that cell.
    std::size_t col = 0;
  } detections[kDetectionCap] = {};
};

}  // namespace sramlp::sram
