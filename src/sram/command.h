// The cycle-level command vocabulary shared by every execution path.
//
// One CycleCommand is everything the array (or a gate-level controller, or
// an analytic estimator) needs to know about one clock cycle: the address,
// the operation, the scan direction (which neighbour to pre-charge in the
// low-power test mode) and whether this cycle is the one-cycle functional
// restore at a row hand-over (Fig. 7).  The engine::CommandStream resolves
// all of those decisions; backends only consume them.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sram/background.h"

namespace sramlp::sram {

/// Operating mode (paper §4).
enum class Mode {
  kFunctional,    ///< all pre-charge circuits always on
  kLowPowerTest,  ///< pre-charge restricted to selected + following column
};

/// Scan direction within a row (which neighbour the controller pre-charges).
enum class Scan { kAscending, kDescending };

/// One clock cycle of work, as issued by the test controller.
struct CycleCommand {
  std::size_t row = 0;
  std::size_t col_group = 0;
  bool is_read = true;
  bool value = false;  ///< logical data bit (write data / read expectation)
  /// Data background mapping logical bits to physical cell values
  /// (physical = value XOR background(row, col)); defaults to solid 0,
  /// under which logical and physical coincide.
  DataBackground background;
  Scan scan = Scan::kAscending;
  /// Force functional pre-charge for this cycle (row-transition restore).
  bool restore_row_transition = false;
};

/// Outcome of one cycle.
struct CycleResult {
  bool read_value = false;   ///< sensed value (reads; last bit for words)
  bool mismatch = false;     ///< any read bit differed from the expectation
  std::uint32_t faulty_swaps = 0;  ///< cells flipped by bit-line overpowering
};

}  // namespace sramlp::sram
