// Data backgrounds — the March degree of freedom over cell data patterns.
//
// A March operation's data bit is *logical*: "w0" writes the background
// value of the cell, "w1" its complement (equivalently, the physical value
// is the logical bit XOR the background).  The solid-0 background makes
// logical and physical values coincide (the classic reading of March
// notation).  Checkerboard and stripe backgrounds are what word-oriented
// and coupling-sensitive test flows actually ship.
//
// The paper's Fig. 7 restore "preserves the data background independency,
// which means that any value can be stored in the cells" — the property
// the background sweep bench (E14) verifies.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "sram/bits.h"
#include "util/error.h"

namespace sramlp::sram {

/// Built-in background patterns.
enum class BackgroundKind {
  kSolid0,        ///< all cells 0 (the default; classic March semantics)
  kSolid1,        ///< all cells 1
  kCheckerboard,  ///< (row + col) parity
  kRowStripes,    ///< row parity
  kColumnStripes, ///< column parity
};

/// Value-semantic background pattern.
class DataBackground {
 public:
  /// Default: solid 0 (March notation reads literally).
  constexpr DataBackground() = default;
  constexpr explicit DataBackground(BackgroundKind kind) : kind_(kind) {}

  static constexpr DataBackground solid0() {
    return DataBackground(BackgroundKind::kSolid0);
  }
  static constexpr DataBackground solid1() {
    return DataBackground(BackgroundKind::kSolid1);
  }
  static constexpr DataBackground checkerboard() {
    return DataBackground(BackgroundKind::kCheckerboard);
  }
  static constexpr DataBackground row_stripes() {
    return DataBackground(BackgroundKind::kRowStripes);
  }
  static constexpr DataBackground column_stripes() {
    return DataBackground(BackgroundKind::kColumnStripes);
  }

  BackgroundKind kind() const { return kind_; }

  /// Background bit of cell (row, col).
  constexpr bool at(std::size_t row, std::size_t col) const {
    switch (kind_) {
      case BackgroundKind::kSolid0: return false;
      case BackgroundKind::kSolid1: return true;
      case BackgroundKind::kCheckerboard: return ((row + col) & 1) != 0;
      case BackgroundKind::kRowStripes: return (row & 1) != 0;
      case BackgroundKind::kColumnStripes: return (col & 1) != 0;
    }
    return false;
  }

  /// Physical cell value for a logical March data bit at (row, col).
  constexpr bool physical(bool logical, std::size_t row,
                          std::size_t col) const {
    return logical != at(row, col);
  }

  /// Background bits of @p count cells (1..64) of one row starting at
  /// @p col, packed with bit b = at(row, col + b).  Every built-in pattern
  /// has a closed word form, so the bitsliced array path can compare or
  /// scatter a whole word group against the background in O(1).
  constexpr std::uint64_t bits(std::size_t row, std::size_t col,
                               std::size_t count) const {
    constexpr std::uint64_t kEvenBits = 0x5555555555555555ull;  // bits 0,2,..
    const std::uint64_t mask = low_bit_mask(count);
    switch (kind_) {
      case BackgroundKind::kSolid0: return 0;
      case BackgroundKind::kSolid1: return mask;
      case BackgroundKind::kCheckerboard:
        return (((row + col) & 1) != 0 ? kEvenBits : ~kEvenBits) & mask;
      case BackgroundKind::kRowStripes:
        return (row & 1) != 0 ? mask : 0;
      case BackgroundKind::kColumnStripes:
        return ((col & 1) != 0 ? kEvenBits : ~kEvenBits) & mask;
    }
    return 0;
  }

  std::string name() const {
    switch (kind_) {
      case BackgroundKind::kSolid0: return "solid 0";
      case BackgroundKind::kSolid1: return "solid 1";
      case BackgroundKind::kCheckerboard: return "checkerboard";
      case BackgroundKind::kRowStripes: return "row stripes";
      case BackgroundKind::kColumnStripes: return "column stripes";
    }
    throw Error("invalid BackgroundKind");
  }

  /// All built-in backgrounds (for sweeps and parameterised tests).
  static constexpr std::array<BackgroundKind, 5> kinds() {
    return {BackgroundKind::kSolid0, BackgroundKind::kSolid1,
            BackgroundKind::kCheckerboard, BackgroundKind::kRowStripes,
            BackgroundKind::kColumnStripes};
  }

  friend constexpr bool operator==(const DataBackground&,
                                   const DataBackground&) = default;

 private:
  BackgroundKind kind_ = BackgroundKind::kSolid0;
};

}  // namespace sramlp::sram
