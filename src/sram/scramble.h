// Address scrambling — the logical-to-physical address mapping of real
// memories.
//
// Production SRAMs scramble addresses (row-decoder folding, column
// twisting, redundancy remapping), so the *logical* address order a tester
// issues is not the *physical* order cells are touched in.  The paper's
// low-power test mode constrains the PHYSICAL order (word-line-after-
// word-line); a BIST on a scrambled memory must therefore issue the
// descrambled logical sequence.  March DOF-1 makes that legal: any logical
// permutation is a valid "up" sequence.
//
// This module models row/column scrambling as independent permutations;
// march::wlawl_logical_order() (march/scramble_order.h) builds the logical
// sequence whose physical image is word-line-after-word-line.
#pragma once

#include <cstddef>
#include <vector>

#include "sram/geometry.h"

namespace sramlp::sram {

/// A physical (row, column-group) location.
struct PhysicalAddress {
  std::size_t row = 0;
  std::size_t col = 0;

  friend bool operator==(const PhysicalAddress&,
                         const PhysicalAddress&) = default;
};

/// Bijective logical<->physical mapping, separable into a row permutation
/// and a column-group permutation (the form decoder scrambling takes).
class AddressScramble {
 public:
  /// No scrambling: physical == logical.
  static AddressScramble identity(std::size_t rows, std::size_t col_groups);

  /// XOR-fold: physical index = logical index XOR mask (masks must keep
  /// the result in range; a mask below the next power of two of a
  /// power-of-two dimension always does).
  static AddressScramble xor_fold(std::size_t rows, std::size_t col_groups,
                                  std::size_t row_mask,
                                  std::size_t col_mask);

  /// Bit-reversal of the row index (classic decoder folding); dimensions
  /// must be powers of two.
  static AddressScramble row_bit_reversal(std::size_t rows,
                                          std::size_t col_groups);

  /// Arbitrary permutations (validated).
  static AddressScramble custom(std::vector<std::size_t> row_map,
                                std::vector<std::size_t> col_map);

  std::size_t rows() const { return row_map_.size(); }
  std::size_t col_groups() const { return col_map_.size(); }

  /// Physical location of a logical (row, column-group) address.
  PhysicalAddress to_physical(std::size_t logical_row,
                              std::size_t logical_col) const;

  /// Logical address mapping to a physical location (inverse).
  PhysicalAddress to_logical(std::size_t physical_row,
                             std::size_t physical_col) const;

  bool is_identity() const;

 private:
  AddressScramble(std::vector<std::size_t> row_map,
                  std::vector<std::size_t> col_map);

  static void validate_permutation(const std::vector<std::size_t>& map);
  static std::vector<std::size_t> invert(const std::vector<std::size_t>& map);

  std::vector<std::size_t> row_map_;      ///< logical -> physical row
  std::vector<std::size_t> col_map_;      ///< logical -> physical column
  std::vector<std::size_t> row_inverse_;  ///< physical -> logical row
  std::vector<std::size_t> col_inverse_;
};

}  // namespace sramlp::sram
