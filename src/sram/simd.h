// Runtime-dispatched SIMD kernels for the bitsliced engine's hot loops.
//
// The dispatch seam keeps three implementations of every kernel alive:
//
//   * scalar   — always compiled, the executable specification.  Every
//                vector variant must produce BIT-IDENTICAL output: the
//                engines' parity contract (test_bitsliced_parity.cpp) rides
//                on it, so the floating-point kernels only use lane-wise
//                IEEE-754 operations (vmulpd/vsubpd/vdivpd on x86,
//                vmulq/vsubq/vdivq on ARM) that match the scalar expression
//                tree exactly — no FMA contraction, no reassociation, no
//                approximate reciprocals;
//   * NEON     — 2-lane doubles / 128-bit integer words (aarch64 baseline
//                ASIMD, so no runtime probing is needed on ARM builds);
//   * AVX2     — 4-lane doubles / 256-bit integer words;
//   * AVX-512  — 8-lane doubles, VPOPCNTDQ word popcounts.
//
// The active level is resolved once per process from (a) the compile-time
// gate (-DSRAMLP_DISABLE_SIMD, unsupported targets), (b) feature probing
// (CPUID on x86; aarch64 implies NEON) and (c) the SRAMLP_SIMD environment
// variable ("scalar"/"neon"/"avx2"/"avx512", capped at what the CPU
// supports).  Tests additionally force levels through
// set_level_for_testing() to pin scalar-vs-vector bit-identity.  A level
// the build carries no code for (kNeon on x86, kAvx2+ on ARM) dispatches
// to scalar — forcing it is a harmless no-op, the same collapse the
// clamping contract applies on weaker hardware.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sramlp::sram::simd {

/// Dispatch level, ordered by capability.
enum class Level { kScalar = 0, kNeon = 1, kAvx2 = 2, kAvx512 = 3 };

/// The level kernels dispatch on: the detected level unless a test forced
/// a lower one.  Cheap (one atomic load past first use).
Level active_level();

/// The capability detected for this process (compile gate + CPUID + env).
Level detected_level();

const char* level_name(Level level);

/// Force dispatch to min(level, detected_level()) — parity tests pin the
/// scalar and vector kernels against each other.  Clears on reset.
void set_level_for_testing(Level level);
void reset_level_for_testing();

/// Loop-invariant constants of the cohort closed form (see
/// SramArray::eval_cohort): each is the exact product/quotient the scalar
/// expression computes from the configuration, hoisted once.
struct CohortEvalConstants {
  double vdd = 0.0;
  double half_c = 0.0;        ///< 0.5 * c_bitline
  double c_vdd = 0.0;         ///< c_bitline * vdd
  double tau_over_duty = 0.0; ///< decay_tau_cycles / wordline_duty
};

/// Batched cohort evaluation: for each decay factor f = exp(-t/tau) in
/// @p factors, compute the CohortEval terms
///   v_low     = vdd * f
///   stress_j  = half_c * (vdd * vdd - v_low * v_low)
///   dv        = vdd - v_low
///   equiv     = tau_over_duty * dv / vdd
///   recharge  = c_vdd * dv
/// into the five output arrays.  Lane-exact: every output element is
/// bit-identical to evaluating the scalar expressions one factor at a time.
void cohort_eval_batch(const double* factors, std::size_t n,
                       const CohortEvalConstants& k, double* v_low,
                       double* stress_j, double* dv, double* equiv,
                       double* recharge_e);

/// Batched candidate-schedule scoring for the search subsystem
/// (src/search/): each LANE is one candidate schedule of @p slots segments;
/// @p rates / @p cycles are slot-major SoA, the entry for slot s of lane l
/// at index `s * lanes + l` (so a vector load at fixed s spans consecutive
/// candidates).  Per lane the kernel walks the slots once, accumulating
///
///   energy_j[l]      = sum_s rates[s][l] * cycles[s][l]
///   total_cycles[l]  = sum_s cycles[s][l]
///   peak_window_j[l] = max energy of any fixed window of
///                      @p window_cycles cycles, windows aligned at cycle 0
///                      — exactly power::PowerTrace's fixed-window peak
///                      semantics (a trailing partial window counts).
///
/// The window walk is branchless (compare-select, floor, max only) so the
/// vector variants are bit-identical to the scalar spec; all inputs are
/// integer-valued doubles < 2^53 (cycle counts) or non-negative rates, for
/// which floor(rem / window) is exact-enough: the correctly-rounded
/// quotient of integers below 2^53 can never round across the next
/// integer, so the per-window decomposition matches exact arithmetic.
void search_score_batch(const double* rates, const double* cycles,
                        std::size_t lanes, std::size_t slots,
                        double window_cycles, double* energy_j,
                        double* total_cycles, double* peak_window_j);

/// Total set bits over @p n words.
std::uint64_t popcount_words(const std::uint64_t* words, std::size_t n);

/// Total differing bits between two @p n-word runs (compare paths, swap
/// counting).
std::uint64_t xor_popcount_words(const std::uint64_t* a,
                                 const std::uint64_t* b, std::size_t n);

/// True when every one of the @p n words equals @p pattern (word-parallel
/// read-compare against a repeating background word).
bool all_words_equal(const std::uint64_t* words, std::size_t n,
                     std::uint64_t pattern);

}  // namespace sramlp::sram::simd
