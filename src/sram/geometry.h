// Array organisation.
#pragma once

#include <cstddef>

#include "util/error.h"

namespace sramlp::sram {

/// Physical organisation of the cell array.
///
/// Bit-oriented memories (the paper's scope) have word_width = 1: one
/// address selects one cell.  Word-oriented memories (paper §6 future work)
/// activate word_width adjacent columns per access; addresses then select
/// (row, column-group) pairs.
struct Geometry {
  std::size_t rows = 512;
  std::size_t cols = 512;
  std::size_t word_width = 1;

  std::size_t col_groups() const { return cols / word_width; }
  std::size_t cells() const { return rows * cols; }
  std::size_t words() const { return rows * col_groups(); }

  /// Address bits needed to select one word.
  std::size_t address_bits() const {
    std::size_t bits = 0;
    while ((std::size_t{1} << bits) < words()) ++bits;
    return bits == 0 ? 1 : bits;
  }

  void validate() const {
    SRAMLP_REQUIRE(rows >= 1 && cols >= 1, "empty array");
    SRAMLP_REQUIRE(word_width >= 1, "word width must be at least 1");
    SRAMLP_REQUIRE(cols % word_width == 0,
                   "columns must divide evenly into words");
    SRAMLP_REQUIRE(col_groups() >= 2,
                   "need at least two word groups per row (LP test mode "
                   "pre-charges the selected and the following group)");
  }

  /// The paper's experimental organisation: 8k x 32 SRAM arranged as a
  /// 512 x 512 bit-oriented array.
  static Geometry paper_512x512() { return {512, 512, 1}; }

  friend bool operator==(const Geometry&, const Geometry&) = default;
};

}  // namespace sramlp::sram
