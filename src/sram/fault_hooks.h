// Hook interface through which behavioural fault models disturb the array.
//
// The simulator calls these hooks on every architectural event touching a
// cell.  The default implementation is fault-free.  faults/ builds the
// concrete models (stuck-at, transition, coupling, read-destructive,
// RES-sensitive) on top of this interface; sram/ stays independent of them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace sramlp::sram {

class SramArray;

/// Cell coordinate (always in cell columns, not column groups).
struct CellCoord {
  std::size_t row = 0;
  std::size_t col = 0;

  friend bool operator==(const CellCoord&, const CellCoord&) = default;
};

/// Behavioural fault interface; one instance serves the whole array.
class CellFaultModel {
 public:
  virtual ~CellFaultModel() = default;

  /// Called when the model is attached to an array; lets stateful models
  /// (e.g. state-coupling faults sampling a live aggressor) keep a handle.
  virtual void on_attach(const SramArray& array) { (void)array; }

  /// Every cell the model's hooks may touch (victims and aggressors).
  /// Queried once at attach time: SramArray bounds-checks the list so a
  /// mis-specified fault fails fast there instead of silently never firing
  /// (a coordinate compare never matches) or throwing mid-run from
  /// force().  The default (empty) declares nothing and skips the check.
  virtual std::vector<CellCoord> declared_cells() const { return {}; }

  /// Value actually latched when writing @p intended into a cell currently
  /// holding @p stored (stuck-at / transition faults hook here).
  virtual bool write_result(CellCoord cell, bool stored, bool intended) {
    (void)cell;
    (void)stored;
    return intended;
  }

  /// Value sensed when reading a cell holding @p stored.  @p stored_after
  /// allows read-destructive behaviour; it arrives preloaded with @p stored.
  virtual bool read_result(CellCoord cell, bool stored, bool* stored_after) {
    (void)cell;
    (void)stored_after;
    return stored;
  }

  /// Called after a write event committed @p new_value; coupling faults use
  /// this to strike victim cells through SramArray::force().
  virtual void after_write(SramArray& array, CellCoord cell, bool old_value,
                           bool new_value) {
    (void)array;
    (void)cell;
    (void)old_value;
    (void)new_value;
  }

  /// Cells that want Read-Equivalent-Stress event notifications
  /// (RES-sensitive faults).  Queried once when the model is attached.
  virtual std::vector<CellCoord> res_sensitive_cells() const { return {}; }

  /// Rows on which this model's read/write/after-write hooks can do
  /// anything at all.  Returning a list is a promise that on every other
  /// row the hooks are pure no-ops (identity results, no state the model
  /// later acts on), which lets the bitsliced engine run those rows
  /// word-parallel without per-cell hook calls.  The default (nullopt)
  /// makes no promise: every row gets hooks.  on_res and on_idle are
  /// unaffected — they are delivered through their own channels.
  virtual std::optional<std::vector<std::size_t>> relevant_rows() const {
    return std::nullopt;
  }

  /// One cycle of (full or decaying) RES hit @p cell.  Only delivered to
  /// cells returned by res_sensitive_cells().  @p stress is 1.0 for a full
  /// RES and the remaining bit-line voltage fraction while decaying.
  virtual void on_res(SramArray& array, CellCoord cell, double stress) {
    (void)array;
    (void)cell;
    (void)stress;
  }

  /// The memory sat idle (no access, word lines low) for @p cycles clock
  /// cycles — March "Del" elements.  Data-retention faults hook here.
  virtual void on_idle(SramArray& array, std::uint64_t cycles) {
    (void)array;
    (void)cycles;
  }

  /// A read cycle sensed a wrong value at @p cell (one call per mismatched
  /// bit; a cell mismatches at most once per read cycle).  Multi-fault
  /// campaign adapters use this to attribute each detection back to the
  /// individual fault owning the cell; delivered by every engine and both
  /// the per-cell and the word-parallel compare paths.
  virtual void on_read_mismatch(CellCoord cell) { (void)cell; }
};

}  // namespace sramlp::sram
