#include "sram/array.h"

#include <cmath>

#include "util/error.h"

namespace sramlp::sram {

using power::EnergySource;

double ArrayStats::alpha_post_op() const {
  if (cycles == 0) return 0.0;
  return (static_cast<double>(full_res_column_cycles) +
          decay_stress_equiv_post_op) /
         static_cast<double>(cycles);
}

double ArrayStats::alpha_total() const {
  if (cycles == 0) return 0.0;
  return alpha_post_op() +
         decay_stress_equiv_pre_op / static_cast<double>(cycles);
}

SramArray::SramArray(const SramConfig& config)
    : config_(config), cells_(config.geometry) {
  config_.geometry.validate();
  config_.tech.validate();
  SRAMLP_REQUIRE(config_.wordline_duty > 0.0 && config_.wordline_duty <= 1.0,
                 "word-line duty must be in (0, 1]");
  SRAMLP_REQUIRE(config_.swap_threshold_frac > 0.0 &&
                     config_.swap_threshold_frac < 1.0,
                 "swap threshold must be a fraction of VDD");
  const double vdd = config_.tech.vdd;
  columns_.assign(config_.geometry.cols, ColumnState{vdd, vdd, 0, false,
                                                     false});
  precharge_active_.assign(config_.geometry.cols,
                           config_.mode == Mode::kFunctional);
  sensitive_by_row_.assign(config_.geometry.rows, {});
}

void SramArray::set_mode(Mode mode) {
  config_.mode = mode;
  const double vdd = config_.tech.vdd;
  for (auto& s : columns_) s = ColumnState{vdd, vdd, cycle_, false, false};
  precharge_active_.assign(config_.geometry.cols, mode == Mode::kFunctional);
  active_row_.reset();
  last_col_group_.reset();
  restored_last_cycle_ = false;
}

void SramArray::attach_fault_model(CellFaultModel* model) {
  faults_ = model;
  sensitive_by_row_.assign(config_.geometry.rows, {});
  if (faults_ == nullptr) return;
  faults_->on_attach(*this);
  for (const CellCoord& cell : faults_->res_sensitive_cells()) {
    SRAMLP_REQUIRE(cell.row < config_.geometry.rows &&
                       cell.col < config_.geometry.cols,
                   "RES-sensitive cell outside the array");
    sensitive_by_row_[cell.row].push_back(cell.col);
  }
}

void SramArray::reset_measurements() {
  meter_.reset();
  stats_ = ArrayStats{};
}

double SramArray::decayed(double v, std::uint64_t from_cycle) const {
  if (from_cycle >= cycle_) return v;  // decay starts at `from_cycle`
  const double elapsed =
      static_cast<double>(cycle_ - from_cycle) * config_.wordline_duty;
  return v * std::exp(-elapsed / config_.tech.decay_tau_cycles);
}

void SramArray::evaluate(const ColumnState& s, std::size_t col, double* v_bl,
                         double* v_blb) const {
  *v_bl = s.v_bl;
  *v_blb = s.v_blb;
  if (!s.connected || !active_row_) return;
  // The cell of the active row drives its '0'-side node's bit-line low.
  // Paper Fig. 5 convention: storing '1' means node S (on BL) is at 0 V,
  // so a '1' cell discharges BL and a '0' cell discharges BLB.
  const bool value = cells_.get(*active_row_, col);
  if (value)
    *v_bl = decayed(s.v_bl, s.since);
  else
    *v_blb = decayed(s.v_blb, s.since);
}

void SramArray::settle(std::size_t col) {
  ColumnState& s = columns_[col];
  double v_bl = s.v_bl;
  double v_blb = s.v_blb;
  evaluate(s, col, &v_bl, &v_blb);
  if (s.connected) {
    // Energy the cell dissipated draining the bit-line: comes from the
    // charge stored on C_BL, not from the supply.
    const double c = config_.tech.c_bitline;
    const double stress_j = 0.5 * c *
                            ((s.v_bl * s.v_bl - v_bl * v_bl) +
                             (s.v_blb * s.v_blb - v_blb * v_blb));
    if (stress_j > 0.0) meter_.add(EnergySource::kBitlineDecayStress, stress_j);
    // Stress expressed in full-RES column-cycle equivalents:
    // integral of v/VDD over connected cycles = (tau/duty) * dv / VDD.
    const double dv = (s.v_bl - v_bl) + (s.v_blb - v_blb);
    const double equiv = (config_.tech.decay_tau_cycles /
                          config_.wordline_duty) *
                         dv / config_.tech.vdd;
    if (s.pre_op_phase)
      stats_.decay_stress_equiv_pre_op += equiv;
    else
      stats_.decay_stress_equiv_post_op += equiv;
    // Deliver decaying-stress notifications to sensitive cells of the
    // active row in this column.
    if (faults_ != nullptr && active_row_) {
      for (std::size_t sensitive_col : sensitive_by_row_[*active_row_]) {
        if (sensitive_col != col) continue;
        const double low0 = std::min(s.v_bl, s.v_blb);
        const std::uint64_t elapsed =
            cycle_ > s.since ? cycle_ - s.since : 0;
        for (std::uint64_t step = 0; step < elapsed; ++step) {
          // Stress at `step` connected cycles after the capture point;
          // decays monotonically, so stop once it drops below 1 %.
          const double frac = decayed(low0, cycle_ - step) / config_.tech.vdd;
          if (frac <= 0.01) break;
          faults_->on_res(*this, {*active_row_, col}, frac);
        }
      }
    }
  }
  s.v_bl = v_bl;
  s.v_blb = v_blb;
  // A decay scheduled to start in the future keeps its start stamp.
  if (s.since < cycle_) s.since = cycle_;
}

void SramArray::recharge(std::size_t col, EnergySource source) {
  settle(col);
  ColumnState& s = columns_[col];
  const double vdd = config_.tech.vdd;
  const double dv = (vdd - s.v_bl) + (vdd - s.v_blb);
  if (dv > 0.0) meter_.add(source, config_.tech.c_bitline * vdd * dv);
  s.v_bl = vdd;
  s.v_blb = vdd;
  s.connected = false;
  s.pre_op_phase = false;
  s.since = cycle_;
}

void SramArray::begin_decay(std::size_t col, bool pre_op) {
  ColumnState& s = columns_[col];
  const double vdd = config_.tech.vdd;
  s.v_bl = vdd;
  s.v_blb = vdd;
  s.connected = true;
  s.pre_op_phase = pre_op;
  // Post-operation decay only starts once the restore phase has returned
  // the bit-lines to VDD, i.e. from the next cycle onward.
  s.since = pre_op ? cycle_ : cycle_ + 1;
}

std::uint32_t SramArray::enter_row(std::size_t row) {
  std::uint32_t swaps = 0;
  const bool had_row = active_row_.has_value();
  const bool lp = config_.mode == Mode::kLowPowerTest;
  if (lp) {
    const double vdd = config_.tech.vdd;
    const double threshold = config_.swap_threshold_frac * vdd;
    for (std::size_t col = 0; col < config_.geometry.cols; ++col) {
      // Settle under the OLD row first: the decay so far was driven by the
      // previous row's cell.
      settle(col);
      ColumnState& s = columns_[col];
      if (s.connected && !restored_last_cycle_) {
        // The bit-line pair may overpower the newly connected cell
        // (C_BL >> C_cellnode): a discharged line forces its side to 0.
        const bool bl_low = s.v_bl <= threshold;
        const bool blb_low = s.v_blb <= threshold;
        if (bl_low != blb_low) {
          // BL low  => implied stored value '1' (Fig. 5 convention);
          // BLB low => implied stored value '0'.
          const bool implied = bl_low;
          const bool stored = cells_.get(row, col);
          if (stored != implied) {
            cells_.set(row, col, implied);
            ++swaps;
          }
        }
      }
    }
  }
  active_row_ = row;
  if (lp) {
    // Every column of the new row is connected (common word line) with its
    // pre-charge off until selected: fresh pre-operation decay phase.
    for (std::size_t col = 0; col < config_.geometry.cols; ++col) {
      ColumnState& s = columns_[col];
      if (!s.connected) {
        // Pre-charged columns start a fresh decay from VDD.
        begin_decay(col, /*pre_op=*/true);
      } else {
        // Already-decayed columns keep their voltages, now driven by the
        // new row's cell (settled above); re-stamp the phase.
        s.pre_op_phase = true;
        s.since = cycle_;
      }
    }
  }
  if (had_row) ++stats_.row_transitions;
  return swaps;
}

void SramArray::apply_full_res(std::size_t row, std::size_t col) {
  meter_.add(EnergySource::kPrechargeResFight,
             config_.tech.e_res_fight_per_cycle());
  meter_.add(EnergySource::kCellRes, config_.tech.e_cell_res_dynamic());
  ++stats_.full_res_column_cycles;
  if (faults_ != nullptr) {
    for (std::size_t sensitive_col : sensitive_by_row_[row]) {
      if (sensitive_col == col) faults_->on_res(*this, {row, col}, 1.0);
    }
  }
}

void SramArray::charge_peripheral(const CycleCommand& command) {
  (void)command;
  const auto& t = config_.tech;
  const auto bits = static_cast<double>(config_.geometry.address_bits());
  meter_.add(EnergySource::kWordline, t.e_wordline(config_.geometry.cols));
  meter_.add(EnergySource::kDecoder, bits * t.e_decoder_per_address_bit);
  meter_.add(EnergySource::kAddressBus, bits * t.e_addressbus_per_bit);
  meter_.add(EnergySource::kClockTree, t.e_clock_tree);
  meter_.add(EnergySource::kMemoryControl, t.e_control_base);
}

CycleResult SramArray::execute_op(const CycleCommand& command) {
  CycleResult result;
  const auto& t = config_.tech;
  const std::size_t w = config_.geometry.word_width;
  const std::size_t first_col = command.col_group * w;

  for (std::size_t b = 0; b < w; ++b) {
    const std::size_t col = first_col + b;
    // The selected column was pre-charged by the follower mechanism (or is
    // permanently pre-charged in functional mode); fold in any residual
    // decay before the operation drives the bit-lines.  Back-to-back
    // operations on the same column (multi-op March elements) are exempt:
    // the intervening bit-line movement is the operation's own swing,
    // already paid for by the read/write restore energy.
    ColumnState& s = columns_[col];
    if (s.connected && cycle_ - s.since <= 1 &&
        s.v_bl >= t.vdd - 1e-3 && s.v_blb >= t.vdd - 1e-3) {
      s.v_bl = t.vdd;
      s.v_blb = t.vdd;
      s.connected = false;
      s.pre_op_phase = false;
      s.since = cycle_;
    } else {
      recharge(col, EnergySource::kPrechargeNextColumn);
    }

    const CellCoord cell{command.row, col};
    const bool stored = cells_.get(cell.row, cell.col);
    // The command carries the *logical* March data bit; the data
    // background maps it to the physical cell value.
    const bool physical =
        command.background.physical(command.value, cell.row, cell.col);
    if (command.is_read) {
      bool stored_after = stored;
      bool sensed = stored;
      if (faults_ != nullptr)
        sensed = faults_->read_result(cell, stored, &stored_after);
      if (stored_after != stored) cells_.set(cell.row, cell.col, stored_after);
      result.read_value = sensed;
      if (sensed != physical) result.mismatch = true;
      meter_.add(EnergySource::kSenseAmp, t.e_sense_amp_per_bit);
      meter_.add(EnergySource::kDataIo, t.e_data_io_per_bit);
      meter_.add(EnergySource::kPrechargeRestoreRead, t.e_read_restore());
      meter_.add(EnergySource::kCellRes, t.e_cell_res_dynamic());
    } else {
      bool effective = physical;
      if (faults_ != nullptr)
        effective = faults_->write_result(cell, stored, physical);
      cells_.set(cell.row, cell.col, effective);
      if (faults_ != nullptr)
        faults_->after_write(*this, cell, stored, effective);
      meter_.add(EnergySource::kWriteDriver, t.e_write_driver_per_bit);
      meter_.add(EnergySource::kDataIo, t.e_data_io_per_bit);
      meter_.add(EnergySource::kPrechargeRestoreWrite, t.e_write_restore());
    }
  }
  if (command.is_read)
    ++stats_.reads;
  else
    ++stats_.writes;
  if (result.mismatch) ++stats_.read_mismatches;
  return result;
}

CycleResult SramArray::cycle(const CycleCommand& command) {
  const Geometry& g = config_.geometry;
  SRAMLP_REQUIRE(command.row < g.rows, "row out of range");
  SRAMLP_REQUIRE(command.col_group < g.col_groups(), "column out of range");

  CycleResult result;
  const bool lp = config_.mode == Mode::kLowPowerTest;
  const std::size_t w = g.word_width;
  const std::size_t first_col = command.col_group * w;

  // Row hand-over bookkeeping (swap hazard in LP mode without restore).
  if (!active_row_ || *active_row_ != command.row)
    result.faulty_swaps = enter_row(command.row);
  stats_.faulty_swaps += result.faulty_swaps;

  charge_peripheral(command);

  // The operation itself (selected columns).
  const CycleResult op = execute_op(command);
  result.read_value = op.read_value;
  result.mismatch = op.mismatch;

  // Pre-charge activity snapshot for diagnostics (Fig. 4).
  std::fill(precharge_active_.begin(), precharge_active_.end(), !lp);
  for (std::size_t b = 0; b < w; ++b)
    precharge_active_[first_col + b] = true;

  if (!lp) {
    // Functional mode: every unselected column of the active row fights a
    // full RES against its live pre-charge circuit, every cycle.
    const auto others = static_cast<double>(g.cols - w);
    meter_.add(EnergySource::kPrechargeResFight,
               others * config_.tech.e_res_fight_per_cycle());
    meter_.add(EnergySource::kCellRes,
               others * config_.tech.e_cell_res_dynamic());
    stats_.full_res_column_cycles += g.cols - w;
    if (faults_ != nullptr) {
      for (std::size_t col : sensitive_by_row_[command.row]) {
        if (col < first_col || col >= first_col + w)
          faults_->on_res(*this, {command.row, col}, 1.0);
      }
    }
  } else if (command.restore_row_transition) {
    // One functional cycle: all pre-charge circuits on, restoring every
    // bit-line to VDD for the next row (paper Fig. 7) and re-exposing all
    // unselected columns to one full RES.
    for (std::size_t col = 0; col < g.cols; ++col) {
      if (col >= first_col && col < first_col + w) continue;
      recharge(col, EnergySource::kRowTransitionRestore);
      apply_full_res(command.row, col);
      precharge_active_[col] = true;
    }
    meter_.add(EnergySource::kLpTestDriver,
               config_.tech.e_lptest_driver(g.cols));
    ++stats_.restore_cycles;
  } else {
    // Steady LP cycle: only the follower group's pre-charge is on (driven
    // by the previous column's selection signal, Fig. 8).  The last group
    // of the scan has no follower (its CS line is not wrapped around).
    const bool ascending = command.scan == Scan::kAscending;
    const std::size_t groups = g.col_groups();
    std::optional<std::size_t> follower;
    if (ascending && command.col_group + 1 < groups)
      follower = command.col_group + 1;
    else if (!ascending && command.col_group > 0)
      follower = command.col_group - 1;
    if (follower) {
      for (std::size_t b = 0; b < w; ++b) {
        const std::size_t col = *follower * w + b;
        recharge(col, EnergySource::kPrechargeNextColumn);
        apply_full_res(command.row, col);
        precharge_active_[col] = true;
      }
    }
    // One control element switches per column-group advance (paper §5.5).
    if (!last_col_group_ || *last_col_group_ != command.col_group)
      meter_.add(EnergySource::kControlLogic,
                 static_cast<double>(w) *
                     config_.tech.e_control_element_switch());
  }

  // After the restore phase the selected columns sit at VDD; from the next
  // cycle on they decay again (WL still strobes this row every cycle).
  for (std::size_t b = 0; b < w; ++b) {
    const std::size_t col = first_col + b;
    if (lp && !command.restore_row_transition)
      begin_decay(col, /*pre_op=*/false);
    else {
      columns_[col].v_bl = config_.tech.vdd;
      columns_[col].v_blb = config_.tech.vdd;
      columns_[col].connected = false;
      columns_[col].since = cycle_;
    }
  }
  if (lp && command.restore_row_transition) {
    // All columns were restored; they stay pre-charged until the next row
    // entry re-connects them.
    for (std::size_t col = 0; col < g.cols; ++col) {
      columns_[col].connected = false;
      columns_[col].v_bl = config_.tech.vdd;
      columns_[col].v_blb = config_.tech.vdd;
      columns_[col].since = cycle_;
    }
  }

  restored_last_cycle_ = lp && command.restore_row_transition;
  last_col_group_ = command.col_group;
  ++cycle_;
  meter_.tick_cycle();
  ++stats_.cycles;
  return result;
}

void SramArray::idle(std::uint64_t cycles) {
  if (cycles == 0) return;
  const auto& t = config_.tech;
  const double n = static_cast<double>(cycles);
  meter_.add(EnergySource::kClockTree, n * t.e_clock_tree);
  meter_.add(EnergySource::kMemoryControl, n * t.e_control_base);
  // Word lines are low during the idle window: connected bit-lines stop
  // discharging.  Fold the decay accrued so far into the capture points
  // (clearing the active row below disables further lazy decay until the
  // next row entry re-stamps the state).
  for (std::size_t col = 0; col < columns_.size(); ++col)
    if (columns_[col].connected) settle(col);
  cycle_ += cycles;
  for (std::uint64_t i = 0; i < cycles; ++i) meter_.tick_cycle();
  stats_.cycles += cycles;
  // No row is active while idling; the next access re-enters its row.
  active_row_.reset();
  restored_last_cycle_ = false;
  if (faults_ != nullptr) faults_->on_idle(*this, cycles);
}

double SramArray::bitline_low_side_voltage(std::size_t col) const {
  SRAMLP_REQUIRE(col < config_.geometry.cols, "column out of range");
  double v_bl = 0.0;
  double v_blb = 0.0;
  evaluate(columns_[col], col, &v_bl, &v_blb);
  return std::min(v_bl, v_blb);
}

bool SramArray::precharge_was_active(std::size_t col) const {
  SRAMLP_REQUIRE(col < config_.geometry.cols, "column out of range");
  return precharge_active_[col];
}

}  // namespace sramlp::sram
