#include "sram/array.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>

#include "sram/bits.h"
#include "util/error.h"

namespace sramlp::sram {

using power::EnergySource;

namespace {

/// Accumulate @p value into @p acc @p count times.  Like
/// EnergyMeter::add(source, joules, count), the loop keeps the
/// floating-point result bit-identical to per-column accumulation.
inline void accumulate(double& acc, double value, std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) acc += value;
}

}  // namespace

double ArrayStats::alpha_post_op() const {
  if (cycles == 0) return 0.0;
  return (static_cast<double>(full_res_column_cycles) +
          decay_stress_equiv_post_op) /
         static_cast<double>(cycles);
}

double ArrayStats::alpha_total() const {
  if (cycles == 0) return 0.0;
  return alpha_post_op() +
         decay_stress_equiv_pre_op / static_cast<double>(cycles);
}

SramArray::SramArray(const SramConfig& config)
    : config_(config), cells_(config.geometry) {
  config_.geometry.validate();
  config_.tech.validate();
  SRAMLP_REQUIRE(config_.wordline_duty > 0.0 && config_.wordline_duty <= 1.0,
                 "word-line duty must be in (0, 1]");
  SRAMLP_REQUIRE(config_.swap_threshold_frac > 0.0 &&
                     config_.swap_threshold_frac < 1.0,
                 "swap threshold must be a fraction of VDD");
  const double vdd = config_.tech.vdd;
  const Geometry& g = config_.geometry;
  columns_.assign(g.cols, ColumnState{vdd, vdd, 0, false, false});
  sensitive_by_row_.assign(g.rows, {});

  // Per-cycle constants: each value is exactly what the engines previously
  // recomputed every cycle (pure functions of the fixed config).
  const auto& t = config_.tech;
  const auto bits = static_cast<double>(g.address_bits());
  const auto others = static_cast<double>(g.cols - g.word_width);
  e_.wordline = t.e_wordline(g.cols);
  e_.decoder = bits * t.e_decoder_per_address_bit;
  e_.address_bus = bits * t.e_addressbus_per_bit;
  e_.clock_tree = t.e_clock_tree;
  e_.control_base = t.e_control_base;
  e_.res_fight = t.e_res_fight_per_cycle();
  e_.cell_res = t.e_cell_res_dynamic();
  e_.others_res_fight = others * t.e_res_fight_per_cycle();
  e_.others_cell_res = others * t.e_cell_res_dynamic();
  e_.control_element_group =
      static_cast<double>(g.word_width) * t.e_control_element_switch();
  e_.lptest_driver = t.e_lptest_driver(g.cols);
  e_.sense_amp = t.e_sense_amp_per_bit;
  e_.data_io = t.e_data_io_per_bit;
  e_.read_restore = t.e_read_restore();
  e_.write_driver = t.e_write_driver_per_bit;
  e_.write_restore = t.e_write_restore();

  // Hoisted cohort closed-form constants: each is the exact left-to-right
  // subtree eval_cohort's scalar expressions compute from the config, so
  // table entries built from them carry identical bits.
  eval_k_.vdd = vdd;
  eval_k_.half_c = 0.5 * t.c_bitline;
  eval_k_.c_vdd = t.c_bitline * vdd;
  eval_k_.tau_over_duty = t.decay_tau_cycles / config_.wordline_duty;

  fast_ = config_.column_model == ColumnModel::kBitslicedCohort;
  if (fast_) {
    cohort_of_.assign(g.cols, kColPrecharged);
    always_materialized_.assign(g.cols, false);
    decay_memo_.reserve(256);
  } else {
    precharge_active_.assign(g.cols, config_.mode == Mode::kFunctional);
  }
}

void SramArray::set_mode(Mode mode) {
  config_.mode = mode;
  const double vdd = config_.tech.vdd;
  for (auto& s : columns_) s = ColumnState{vdd, vdd, cycle_, false, false};
  if (fast_) {
    cohorts_.clear();
    for (std::size_t col = 0; col < cohort_of_.size(); ++col)
      cohort_of_[col] =
          always_materialized_[col] ? kColMaterialized : kColPrecharged;
    snap_ = PrechargeSnapshot{};
  } else {
    precharge_active_.assign(config_.geometry.cols, mode == Mode::kFunctional);
  }
  active_row_.reset();
  last_col_group_.reset();
  restored_last_cycle_ = false;
}

void SramArray::attach_fault_model(CellFaultModel* model) {
  if (model == nullptr && faults_ == nullptr) return;  // nothing to clear
  faults_ = model;
  sensitive_by_row_.assign(config_.geometry.rows, {});
  if (fast_) std::fill(always_materialized_.begin(),
                       always_materialized_.end(), false);
  if (faults_ != nullptr) {
    faults_->on_attach(*this);
    // Fail fast on mis-specified faults: an out-of-range victim would
    // otherwise never fire (its coordinate compare never matches) and an
    // out-of-range aggressor would throw from force() deep inside a run.
    for (const CellCoord& cell : faults_->declared_cells())
      SRAMLP_REQUIRE(cell.row < config_.geometry.rows &&
                         cell.col < config_.geometry.cols,
                     "fault cell outside the array");
    for (const CellCoord& cell : faults_->res_sensitive_cells()) {
      SRAMLP_REQUIRE(cell.row < config_.geometry.rows &&
                         cell.col < config_.geometry.cols,
                     "RES-sensitive cell outside the array");
      sensitive_by_row_[cell.row].push_back(cell.col);
      if (fast_) always_materialized_[cell.col] = true;
    }
  }
  if (fast_) {
    // Sensitive columns need per-cycle on_res delivery while decaying, so
    // they leave cohort tracking for good; everything else stays bulk.
    for (std::size_t col = 0; col < cohort_of_.size(); ++col)
      if (always_materialized_[col] && cohort_of_[col] != kColMaterialized)
        materialize_column(col);
    // Row-sparse hook delivery: rows the model promises not to act on run
    // the word-parallel data path with no per-cell hook calls.
    all_rows_hooked_ = false;
    hooked_rows_.assign(config_.geometry.rows, false);
    if (faults_ != nullptr) {
      const auto rows = faults_->relevant_rows();
      if (!rows) {
        all_rows_hooked_ = true;
      } else {
        for (const std::size_t row : *rows) {
          SRAMLP_REQUIRE(row < config_.geometry.rows,
                         "relevant row outside the array");
          hooked_rows_[row] = true;
        }
      }
    }
  }
}

void SramArray::reset_measurements() {
  meter_.reset();
  stats_ = ArrayStats{};
}

double SramArray::decay_factor_slow(std::uint64_t elapsed) const {
  constexpr std::uint64_t kMemoCap = 4096;
  if (elapsed >= kMemoCap) {
    const double t = static_cast<double>(elapsed) * config_.wordline_duty;
    return std::exp(-t / config_.tech.decay_tau_cycles);
  }
  while (decay_memo_.size() <= elapsed) {
    const double t =
        static_cast<double>(decay_memo_.size()) * config_.wordline_duty;
    decay_memo_.push_back(std::exp(-t / config_.tech.decay_tau_cycles));
  }
  return decay_memo_[elapsed];
}

double SramArray::decayed(double v, std::uint64_t from_cycle) const {
  if (from_cycle >= cycle_) return v;  // decay starts at `from_cycle`
  return v * decay_factor(cycle_ - from_cycle);
}

void SramArray::evaluate(const ColumnState& s, std::size_t col, double* v_bl,
                         double* v_blb) const {
  *v_bl = s.v_bl;
  *v_blb = s.v_blb;
  if (!s.connected || !active_row_) return;
  // The cell of the active row drives its '0'-side node's bit-line low.
  // Paper Fig. 5 convention: storing '1' means node S (on BL) is at 0 V,
  // so a '1' cell discharges BL and a '0' cell discharges BLB.
  const bool value = cells_.get_unchecked(*active_row_, col);
  if (value)
    *v_bl = decayed(s.v_bl, s.since);
  else
    *v_blb = decayed(s.v_blb, s.since);
}

void SramArray::settle(std::size_t col) {
  ColumnState& s = columns_[col];
  double v_bl = s.v_bl;
  double v_blb = s.v_blb;
  evaluate(s, col, &v_bl, &v_blb);
  if (s.connected) {
    // Energy the cell dissipated draining the bit-line: comes from the
    // charge stored on C_BL, not from the supply.
    const double c = config_.tech.c_bitline;
    const double stress_j = 0.5 * c *
                            ((s.v_bl * s.v_bl - v_bl * v_bl) +
                             (s.v_blb * s.v_blb - v_blb * v_blb));
    if (stress_j > 0.0) meter_.add(EnergySource::kBitlineDecayStress, stress_j);
    // Stress expressed in full-RES column-cycle equivalents:
    // integral of v/VDD over connected cycles = (tau/duty) * dv / VDD.
    const double dv = (s.v_bl - v_bl) + (s.v_blb - v_blb);
    const double equiv = (config_.tech.decay_tau_cycles /
                          config_.wordline_duty) *
                         dv / config_.tech.vdd;
    if (s.pre_op_phase)
      stats_.decay_stress_equiv_pre_op += equiv;
    else
      stats_.decay_stress_equiv_post_op += equiv;
    // Deliver decaying-stress notifications to sensitive cells of the
    // active row in this column.
    if (faults_ != nullptr && active_row_) {
      for (std::size_t sensitive_col : sensitive_by_row_[*active_row_]) {
        if (sensitive_col != col) continue;
        const double low0 = std::min(s.v_bl, s.v_blb);
        const std::uint64_t elapsed =
            cycle_ > s.since ? cycle_ - s.since : 0;
        for (std::uint64_t step = 0; step < elapsed; ++step) {
          // Stress at `step` connected cycles after the capture point;
          // decays monotonically, so stop once it drops below 1 %.
          const double frac = decayed(low0, cycle_ - step) / config_.tech.vdd;
          if (frac <= 0.01) break;
          faults_->on_res(*this, {*active_row_, col}, frac);
        }
      }
    }
  }
  s.v_bl = v_bl;
  s.v_blb = v_blb;
  // A decay scheduled to start in the future keeps its start stamp.
  if (s.since < cycle_) s.since = cycle_;
}

void SramArray::recharge(std::size_t col, EnergySource source) {
  settle(col);
  ColumnState& s = columns_[col];
  const double vdd = config_.tech.vdd;
  const double dv = (vdd - s.v_bl) + (vdd - s.v_blb);
  if (dv > 0.0) meter_.add(source, config_.tech.c_bitline * vdd * dv);
  s.v_bl = vdd;
  s.v_blb = vdd;
  s.connected = false;
  s.pre_op_phase = false;
  s.since = cycle_;
}

void SramArray::begin_decay(std::size_t col, bool pre_op) {
  ColumnState& s = columns_[col];
  const double vdd = config_.tech.vdd;
  s.v_bl = vdd;
  s.v_blb = vdd;
  s.connected = true;
  s.pre_op_phase = pre_op;
  // Post-operation decay only starts once the restore phase has returned
  // the bit-lines to VDD, i.e. from the next cycle onward.
  s.since = pre_op ? cycle_ : cycle_ + 1;
}

std::uint32_t SramArray::enter_row(std::size_t row) {
  std::uint32_t swaps = 0;
  const bool had_row = active_row_.has_value();
  const bool lp = config_.mode == Mode::kLowPowerTest;
  if (lp) {
    const double vdd = config_.tech.vdd;
    const double threshold = config_.swap_threshold_frac * vdd;
    for (std::size_t col = 0; col < config_.geometry.cols; ++col) {
      // Settle under the OLD row first: the decay so far was driven by the
      // previous row's cell.
      settle(col);
      ColumnState& s = columns_[col];
      if (s.connected && !restored_last_cycle_) {
        // The bit-line pair may overpower the newly connected cell
        // (C_BL >> C_cellnode): a discharged line forces its side to 0.
        const bool bl_low = s.v_bl <= threshold;
        const bool blb_low = s.v_blb <= threshold;
        if (bl_low != blb_low) {
          // BL low  => implied stored value '1' (Fig. 5 convention);
          // BLB low => implied stored value '0'.
          const bool implied = bl_low;
          const bool stored = cells_.get_unchecked(row, col);
          if (stored != implied) {
            cells_.set_unchecked(row, col, implied);
            ++swaps;
          }
        }
      }
    }
  }
  active_row_ = row;
  if (lp) {
    // Every column of the new row is connected (common word line) with its
    // pre-charge off until selected: fresh pre-operation decay phase.
    for (std::size_t col = 0; col < config_.geometry.cols; ++col) {
      ColumnState& s = columns_[col];
      if (!s.connected) {
        // Pre-charged columns start a fresh decay from VDD.
        begin_decay(col, /*pre_op=*/true);
      } else {
        // Already-decayed columns keep their voltages, now driven by the
        // new row's cell (settled above); re-stamp the phase.
        s.pre_op_phase = true;
        s.since = cycle_;
      }
    }
  }
  if (had_row) ++stats_.row_transitions;
  return swaps;
}

void SramArray::apply_full_res(std::size_t row, std::size_t col) {
  meter_.add(EnergySource::kPrechargeResFight, e_.res_fight);
  meter_.add(EnergySource::kCellRes, e_.cell_res);
  ++stats_.full_res_column_cycles;
  if (faults_ != nullptr) {
    for (std::size_t sensitive_col : sensitive_by_row_[row]) {
      if (sensitive_col == col) faults_->on_res(*this, {row, col}, 1.0);
    }
  }
}

void SramArray::charge_peripheral(const CycleCommand& command) {
  (void)command;
  meter_.add(EnergySource::kWordline, e_.wordline);
  meter_.add(EnergySource::kDecoder, e_.decoder);
  meter_.add(EnergySource::kAddressBus, e_.address_bus);
  meter_.add(EnergySource::kClockTree, e_.clock_tree);
  meter_.add(EnergySource::kMemoryControl, e_.control_base);
}

void SramArray::op_bit(const CycleCommand& command, std::size_t col,
                       CycleResult* result) {
  const CellCoord cell{command.row, col};
  const bool stored = cells_.get_unchecked(cell.row, cell.col);
  // The command carries the *logical* March data bit; the data
  // background maps it to the physical cell value.
  const bool physical =
      command.background.physical(command.value, cell.row, cell.col);
  if (command.is_read) {
    bool stored_after = stored;
    bool sensed = stored;
    if (faults_ != nullptr)
      sensed = faults_->read_result(cell, stored, &stored_after);
    if (stored_after != stored)
      cells_.set_unchecked(cell.row, cell.col, stored_after);
    result->read_value = sensed;
    if (sensed != physical) {
      if (!result->mismatch) result->first_bad_col = col;
      result->mismatch = true;
      if (faults_ != nullptr) faults_->on_read_mismatch(cell);
    }
    meter_.add(EnergySource::kSenseAmp, e_.sense_amp);
    meter_.add(EnergySource::kDataIo, e_.data_io);
    meter_.add(EnergySource::kPrechargeRestoreRead, e_.read_restore);
    meter_.add(EnergySource::kCellRes, e_.cell_res);
  } else {
    bool effective = physical;
    if (faults_ != nullptr)
      effective = faults_->write_result(cell, stored, physical);
    cells_.set_unchecked(cell.row, cell.col, effective);
    if (faults_ != nullptr)
      faults_->after_write(*this, cell, stored, effective);
    meter_.add(EnergySource::kWriteDriver, e_.write_driver);
    meter_.add(EnergySource::kDataIo, e_.data_io);
    meter_.add(EnergySource::kPrechargeRestoreWrite, e_.write_restore);
  }
}

CycleResult SramArray::execute_op(const CycleCommand& command) {
  CycleResult result;
  const auto& t = config_.tech;
  const std::size_t w = config_.geometry.word_width;
  const std::size_t first_col = command.col_group * w;

  for (std::size_t b = 0; b < w; ++b) {
    const std::size_t col = first_col + b;
    // The selected column was pre-charged by the follower mechanism (or is
    // permanently pre-charged in functional mode); fold in any residual
    // decay before the operation drives the bit-lines.  Back-to-back
    // operations on the same column (multi-op March elements) are exempt:
    // the intervening bit-line movement is the operation's own swing,
    // already paid for by the read/write restore energy.
    ColumnState& s = columns_[col];
    if (s.connected && cycle_ - s.since <= 1 &&
        s.v_bl >= t.vdd - 1e-3 && s.v_blb >= t.vdd - 1e-3) {
      s.v_bl = t.vdd;
      s.v_blb = t.vdd;
      s.connected = false;
      s.pre_op_phase = false;
      s.since = cycle_;
    } else {
      recharge(col, EnergySource::kPrechargeNextColumn);
    }

    op_bit(command, col, &result);
  }
  if (command.is_read)
    ++stats_.reads;
  else
    ++stats_.writes;
  if (result.mismatch) ++stats_.read_mismatches;
  return result;
}

CycleResult SramArray::cycle(const CycleCommand& command) {
  const Geometry& g = config_.geometry;
  SRAMLP_REQUIRE(command.row < g.rows, "row out of range");
  SRAMLP_REQUIRE(command.col_group < g.col_groups(), "column out of range");
  return fast_ ? fast_cycle(command) : reference_cycle(command);
}

CycleResult SramArray::reference_cycle(const CycleCommand& command) {
  const Geometry& g = config_.geometry;
  CycleResult result;
  const bool lp = config_.mode == Mode::kLowPowerTest;
  const std::size_t w = g.word_width;
  const std::size_t first_col = command.col_group * w;

  // Row hand-over bookkeeping (swap hazard in LP mode without restore).
  if (!active_row_ || *active_row_ != command.row)
    result.faulty_swaps = enter_row(command.row);
  stats_.faulty_swaps += result.faulty_swaps;

  charge_peripheral(command);

  // The operation itself (selected columns).
  const CycleResult op = execute_op(command);
  result.read_value = op.read_value;
  result.mismatch = op.mismatch;
  result.first_bad_col = op.first_bad_col;

  // Pre-charge activity snapshot for diagnostics (Fig. 4).
  std::fill(precharge_active_.begin(), precharge_active_.end(), !lp);
  for (std::size_t b = 0; b < w; ++b)
    precharge_active_[first_col + b] = true;

  if (!lp) {
    // Functional mode: every unselected column of the active row fights a
    // full RES against its live pre-charge circuit, every cycle.
    meter_.add(EnergySource::kPrechargeResFight, e_.others_res_fight);
    meter_.add(EnergySource::kCellRes, e_.others_cell_res);
    stats_.full_res_column_cycles += g.cols - w;
    if (faults_ != nullptr) {
      for (std::size_t col : sensitive_by_row_[command.row]) {
        if (col < first_col || col >= first_col + w)
          faults_->on_res(*this, {command.row, col}, 1.0);
      }
    }
  } else if (command.restore_row_transition) {
    // One functional cycle: all pre-charge circuits on, restoring every
    // bit-line to VDD for the next row (paper Fig. 7) and re-exposing all
    // unselected columns to one full RES.
    for (std::size_t col = 0; col < g.cols; ++col) {
      if (col >= first_col && col < first_col + w) continue;
      recharge(col, EnergySource::kRowTransitionRestore);
      apply_full_res(command.row, col);
      precharge_active_[col] = true;
    }
    meter_.add(EnergySource::kLpTestDriver, e_.lptest_driver);
    ++stats_.restore_cycles;
  } else {
    // Steady LP cycle: only the follower group's pre-charge is on (driven
    // by the previous column's selection signal, Fig. 8).  The last group
    // of the scan has no follower (its CS line is not wrapped around).
    const bool ascending = command.scan == Scan::kAscending;
    const std::size_t groups = g.col_groups();
    std::optional<std::size_t> follower;
    if (ascending && command.col_group + 1 < groups)
      follower = command.col_group + 1;
    else if (!ascending && command.col_group > 0)
      follower = command.col_group - 1;
    if (follower) {
      for (std::size_t b = 0; b < w; ++b) {
        const std::size_t col = *follower * w + b;
        recharge(col, EnergySource::kPrechargeNextColumn);
        apply_full_res(command.row, col);
        precharge_active_[col] = true;
      }
    }
    // One control element switches per column-group advance (paper §5.5).
    if (!last_col_group_ || *last_col_group_ != command.col_group)
      meter_.add(EnergySource::kControlLogic, e_.control_element_group);
  }

  // After the restore phase the selected columns sit at VDD; from the next
  // cycle on they decay again (WL still strobes this row every cycle).
  for (std::size_t b = 0; b < w; ++b) {
    const std::size_t col = first_col + b;
    if (lp && !command.restore_row_transition)
      begin_decay(col, /*pre_op=*/false);
    else {
      columns_[col].v_bl = config_.tech.vdd;
      columns_[col].v_blb = config_.tech.vdd;
      columns_[col].connected = false;
      columns_[col].since = cycle_;
    }
  }
  if (lp && command.restore_row_transition) {
    // All columns were restored; they stay pre-charged until the next row
    // entry re-connects them.
    for (std::size_t col = 0; col < g.cols; ++col) {
      columns_[col].connected = false;
      columns_[col].v_bl = config_.tech.vdd;
      columns_[col].v_blb = config_.tech.vdd;
      columns_[col].since = cycle_;
    }
  }

  restored_last_cycle_ = lp && command.restore_row_transition;
  last_col_group_ = command.col_group;
  ++cycle_;
  meter_.tick_cycle();
  ++stats_.cycles;
  return result;
}

void SramArray::idle(std::uint64_t cycles) {
  if (fast_) {
    fast_idle(cycles);
    return;
  }
  reference_idle(cycles);
}

void SramArray::reference_idle(std::uint64_t cycles) {
  if (cycles == 0) return;
  const auto& t = config_.tech;
  // add_spread performs the same double(cycles) * e multiply-add these
  // paths always did; an attached trace additionally sees the block span.
  meter_.add_spread(EnergySource::kClockTree, t.e_clock_tree, cycles);
  meter_.add_spread(EnergySource::kMemoryControl, t.e_control_base, cycles);
  // Word lines are low during the idle window: connected bit-lines stop
  // discharging.  Fold the decay accrued so far into the capture points
  // (clearing the active row below disables further lazy decay until the
  // next row entry re-stamps the state).
  for (std::size_t col = 0; col < columns_.size(); ++col)
    if (columns_[col].connected) settle(col);
  cycle_ += cycles;
  meter_.tick_cycles(cycles);
  stats_.cycles += cycles;
  // No row is active while idling; the next access re-enters its row.
  active_row_.reset();
  restored_last_cycle_ = false;
  if (faults_ != nullptr) faults_->on_idle(*this, cycles);
}

// --- bitsliced / decay-cohort engine ----------------------------------------

SramArray::CohortEval SramArray::eval_cohort(const Cohort& cohort) const {
  // Cohort members hold both lines at VDD at the capture point; only the
  // side driven by the active row's cell decays, and every energy term is
  // side-symmetric, so one evaluation covers the whole cohort.  The
  // evaluation depends only on the elapsed connected cycles (plus fixed
  // config), so it is served from the grow-only table; every entry
  // mirrors settle()/recharge() exactly (the untouched side contributes
  // an exact 0.0 there), and elapsed 0 — no active row, or a decay
  // scheduled to start now or later — reproduces the undecayed case
  // bitwise (factor exp(-0.0) == 1.0).
  const std::uint64_t elapsed =
      (!active_row_ || cohort.start >= cycle_) ? 0 : cycle_ - cohort.start;
  return eval_elapsed(elapsed);
}

SramArray::CohortEval SramArray::eval_elapsed(std::uint64_t elapsed) const {
  constexpr std::uint64_t kTableCap = 4096;  // matches the decay-memo cap
  CohortEval e;
  if (elapsed >= kTableCap) {
    // Past the memo horizon: evaluate the closed form directly (the batch
    // kernel with n = 1 is the scalar expression tree).
    const double factor = decay_factor(elapsed);
    simd::cohort_eval_batch(&factor, 1, eval_k_, &e.v_low, &e.stress_j,
                            &e.dv, &e.equiv, &e.recharge_e);
    return e;
  }
  if (elapsed >= eval_table_.size()) grow_eval_table(elapsed);
  e.v_low = eval_table_.v_low[elapsed];
  e.stress_j = eval_table_.stress_j[elapsed];
  e.dv = eval_table_.dv[elapsed];
  e.equiv = eval_table_.equiv[elapsed];
  e.recharge_e = eval_table_.recharge_e[elapsed];
  return e;
}

void SramArray::grow_eval_table(std::uint64_t elapsed) const {
  const std::size_t old = eval_table_.size();
  std::size_t next = std::max<std::size_t>(
      {static_cast<std::size_t>(elapsed) + 1, 2 * old, 64});
  next = std::min<std::size_t>(next, 4096);
  decay_factor_slow(next - 1);  // the factor memo now covers [0, next)
  eval_table_.v_low.resize(next);
  eval_table_.stress_j.resize(next);
  eval_table_.dv.resize(next);
  eval_table_.equiv.resize(next);
  eval_table_.recharge_e.resize(next);
  simd::cohort_eval_batch(decay_memo_.data() + old, next - old, eval_k_,
                          eval_table_.v_low.data() + old,
                          eval_table_.stress_j.data() + old,
                          eval_table_.dv.data() + old,
                          eval_table_.equiv.data() + old,
                          eval_table_.recharge_e.data() + old);
}

void SramArray::cohort_settle_bulk(const CohortEval& eval, bool pre_op,
                                   std::uint64_t count) {
  if (eval.stress_j > 0.0)
    meter_.add(EnergySource::kBitlineDecayStress, eval.stress_j, count);
  accumulate(pre_op ? stats_.decay_stress_equiv_pre_op
                    : stats_.decay_stress_equiv_post_op,
             eval.equiv, count);
}

void SramArray::cohort_recharge_bulk(const CohortEval& eval,
                                     const Cohort& cohort,
                                     std::uint64_t count,
                                     EnergySource source) {
  cohort_settle_bulk(eval, cohort.pre_op, count);
  if (eval.dv > 0.0) meter_.add(source, eval.recharge_e, count);
}

void SramArray::full_res_bulk(std::uint64_t count) {
  meter_.add(EnergySource::kPrechargeResFight, e_.res_fight, count);
  meter_.add(EnergySource::kCellRes, e_.cell_res, count);
  stats_.full_res_column_cycles += count;
}

void SramArray::materialize_column(std::size_t col) {
  const std::uint32_t tag = cohort_of_[col];
  if (tag == kColMaterialized) return;
  const double vdd = config_.tech.vdd;
  if (tag == kColPrecharged) {
    columns_[col] = ColumnState{vdd, vdd, cycle_, false, false};
  } else {
    const Cohort& k = cohorts_[tag];
    columns_[col] = ColumnState{vdd, vdd, k.start, true, k.pre_op};
  }
  cohort_of_[col] = kColMaterialized;
}

void SramArray::compact_cohorts() {
  std::vector<std::uint32_t> remap(cohorts_.size(), kColPrecharged);
  std::vector<Cohort> live;
  for (auto& tag : cohort_of_) {
    if (tag == kColPrecharged || tag == kColMaterialized) continue;
    if (remap[tag] == kColPrecharged) {
      remap[tag] = static_cast<std::uint32_t>(live.size());
      live.push_back(cohorts_[tag]);
    }
    tag = remap[tag];
  }
  cohorts_ = std::move(live);
}

std::uint32_t SramArray::fast_enter_row(std::size_t row) {
  std::uint32_t swaps = 0;
  const bool had_row = active_row_.has_value();
  const bool lp = config_.mode == Mode::kLowPowerTest;
  if (lp) {
    const double vdd = config_.tech.vdd;
    const double threshold = config_.swap_threshold_frac * vdd;
    const std::size_t old_row = had_row ? *active_row_ : 0;
    // Phase 1 — settle everything under the OLD row, in column order.
    // Whole cohorts fold with one closed-form evaluation; the swap hazard
    // resolves per cohort (the depth of discharge is a cohort property)
    // with a word-parallel compare-and-copy against the old row's data.
    for_each_run(0, config_.geometry.cols,
                 [&](std::size_t col, std::size_t n, std::uint32_t tag) {
      if (tag == kColPrecharged) return;  // at VDD: nothing settles or swaps
      if (tag == kColMaterialized) {
        for (std::size_t c = col; c < col + n; ++c) {
          settle(c);
          ColumnState& s = columns_[c];
          if (s.connected && !restored_last_cycle_) {
            const bool bl_low = s.v_bl <= threshold;
            const bool blb_low = s.v_blb <= threshold;
            if (bl_low != blb_low) {
              const bool implied = bl_low;
              const bool stored = cells_.get_unchecked(row, c);
              if (stored != implied) {
                cells_.set_unchecked(row, c, implied);
                ++swaps;
              }
            }
          }
        }
        return;
      }
      const Cohort& k = cohorts_[tag];
      const CohortEval e = eval_cohort(k);
      cohort_settle_bulk(e, k.pre_op, n);
      if (!restored_last_cycle_ && e.v_low <= threshold) {
        // Exactly one side of every member is below threshold, and its
        // implied value is the old row's stored bit (that cell drove the
        // decay): overpowering copies the old row's data onto the new row.
        swaps += cells_.copy_row_range(row, old_row, col, n);
      }
      if (e.v_low < vdd) {
        // Partial voltage survives the hand-over: per-column state from
        // here on (the decayed side depends on the old row's data).
        for (std::size_t c = col; c < col + n; ++c) {
          const bool one = cells_.get_unchecked(old_row, c);
          columns_[c] = one ? ColumnState{e.v_low, vdd, cycle_, true, k.pre_op}
                            : ColumnState{vdd, e.v_low, cycle_, true, k.pre_op};
          cohort_of_[c] = kColMaterialized;
        }
      }
    });
    active_row_ = row;
    // Phase 2 — every column of the new row is connected with its
    // pre-charge off: fresh pre-operation decay.  All fully-charged
    // columns share one new cohort; materialized columns re-stamp.
    cohorts_.clear();
    cohorts_.push_back(Cohort{cycle_, /*pre_op=*/true});
    for (std::size_t col = 0; col < config_.geometry.cols; ++col) {
      if (cohort_of_[col] == kColMaterialized) {
        ColumnState& s = columns_[col];
        if (!s.connected) {
          begin_decay(col, /*pre_op=*/true);
        } else {
          s.pre_op_phase = true;
          s.since = cycle_;
        }
      } else {
        cohort_of_[col] = 0;
      }
    }
  } else {
    active_row_ = row;
  }
  if (had_row) ++stats_.row_transitions;
  return swaps;
}

CycleResult SramArray::fast_execute_op(const CycleCommand& command) {
  CycleResult result;
  const auto& t = config_.tech;
  const std::size_t w = config_.geometry.word_width;
  const std::size_t first_col = command.col_group * w;

  // Column-state phase: bring every selected column to pre-charged VDD,
  // folding residual decay exactly like the reference engine (including
  // its back-to-back multi-op exemption).
  for (std::size_t b = 0; b < w; ++b) {
    const std::size_t col = first_col + b;
    const std::uint32_t tag = cohort_of_[col];
    if (tag == kColPrecharged) continue;  // at VDD, disconnected: no energy
    if (tag == kColMaterialized) {
      ColumnState& s = columns_[col];
      if (s.connected && cycle_ - s.since <= 1 &&
          s.v_bl >= t.vdd - 1e-3 && s.v_blb >= t.vdd - 1e-3) {
        s.v_bl = t.vdd;
        s.v_blb = t.vdd;
        s.connected = false;
        s.pre_op_phase = false;
        s.since = cycle_;
      } else {
        recharge(col, EnergySource::kPrechargeNextColumn);
      }
      if (!always_materialized_[col]) cohort_of_[col] = kColPrecharged;
      continue;
    }
    const Cohort& k = cohorts_[tag];
    if (cycle_ - k.start <= 1) {
      // Back-to-back exemption: still at VDD, stays pre-charged for free.
      cohort_of_[col] = kColPrecharged;
    } else {
      materialize_column(col);
      recharge(col, EnergySource::kPrechargeNextColumn);
      cohort_of_[col] = kColPrecharged;
    }
  }

  // Operation phase.  Fault hooks are per-cell, so an attached model runs
  // the shared per-bit path; otherwise the whole group reads, compares
  // against the background and writes word-parallel (bit-oriented arrays
  // take the single-cell shortcut of the same math).
  if (faults_ != nullptr) {
    for (std::size_t b = 0; b < w; ++b)
      op_bit(command, first_col + b, &result);
  } else {
    if (w == 1) {
      const bool physical =
          command.background.physical(command.value, command.row, first_col);
      if (command.is_read) {
        const bool sensed = cells_.get_unchecked(command.row, first_col);
        if (sensed != physical) {
          result.mismatch = true;
          result.first_bad_col = first_col;
        }
        result.read_value = sensed;
      } else {
        cells_.set_unchecked(command.row, first_col, physical);
      }
    } else {
      // One 64-periodic word describes the whole group's expected physical
      // data (every background's column period divides 64), so the
      // fault-free data path compares / writes the full slice word-parallel;
      // only a mismatching read decomposes per 64-bit chunk.
      const std::uint64_t pattern =
          (command.value ? ~std::uint64_t{0} : std::uint64_t{0}) ^
          command.background.bits(command.row, first_col,
                                  std::min<std::size_t>(64, w));
      if (command.is_read) {
        if (cells_.row_matches_pattern(command.row, first_col, w, pattern)) {
          result.read_value = ((pattern >> ((w - 1) & 63)) & 1u) != 0;
        } else {
          for (std::size_t c0 = first_col; c0 < first_col + w; c0 += 64) {
            const std::size_t n =
                std::min<std::size_t>(64, first_col + w - c0);
            const std::uint64_t physical = pattern & low_bit_mask(n);
            const std::uint64_t sensed = cells_.row_bits(command.row, c0, n);
            if (sensed != physical) {
              if (!result.mismatch)
                result.first_bad_col =
                    c0 + static_cast<std::size_t>(
                             std::countr_zero(sensed ^ physical));
              result.mismatch = true;
            }
            result.read_value = ((sensed >> (n - 1)) & 1u) != 0;
          }
        }
      } else {
        cells_.fill_row_pattern(command.row, first_col, w, pattern);
      }
    }
    if (command.is_read) {
      meter_.add(EnergySource::kSenseAmp, e_.sense_amp, w);
      meter_.add(EnergySource::kDataIo, e_.data_io, w);
      meter_.add(EnergySource::kPrechargeRestoreRead, e_.read_restore, w);
      meter_.add(EnergySource::kCellRes, e_.cell_res, w);
    } else {
      meter_.add(EnergySource::kWriteDriver, e_.write_driver, w);
      meter_.add(EnergySource::kDataIo, e_.data_io, w);
      meter_.add(EnergySource::kPrechargeRestoreWrite, e_.write_restore, w);
    }
  }
  if (command.is_read)
    ++stats_.reads;
  else
    ++stats_.writes;
  if (result.mismatch) ++stats_.read_mismatches;
  return result;
}

void SramArray::fast_restore_cycle(std::size_t row, std::size_t first_col) {
  const Geometry& g = config_.geometry;
  const std::size_t w = g.word_width;
  // One functional cycle: all pre-charge circuits on (paper Fig. 7).
  // Recharge + full RES, cohort-bulk per run of equal decay state.
  const auto restore_run = [&](std::size_t col, std::size_t n,
                               std::uint32_t tag) {
    if (tag == kColPrecharged) {
      full_res_bulk(n);  // recharging a full bit-line pair costs nothing
    } else if (tag == kColMaterialized) {
      for (std::size_t c = col; c < col + n; ++c) {
        recharge(c, EnergySource::kRowTransitionRestore);
        apply_full_res(row, c);
      }
    } else {
      const Cohort& k = cohorts_[tag];
      const CohortEval e = eval_cohort(k);
      cohort_recharge_bulk(e, k, n, EnergySource::kRowTransitionRestore);
      full_res_bulk(n);
    }
  };
  for_each_run(0, first_col, restore_run);
  for_each_run(first_col + w, g.cols, restore_run);
  meter_.add(EnergySource::kLpTestDriver, e_.lptest_driver);
  ++stats_.restore_cycles;
  // All columns restored: everything stays pre-charged until the next row
  // entry re-connects it.
  for (std::size_t col = 0; col < g.cols; ++col) {
    if (cohort_of_[col] == kColMaterialized) {
      columns_[col].connected = false;
      columns_[col].v_bl = config_.tech.vdd;
      columns_[col].v_blb = config_.tech.vdd;
      columns_[col].since = cycle_;
    } else {
      cohort_of_[col] = kColPrecharged;
    }
  }
  cohorts_.clear();
}

CycleResult SramArray::fast_cycle(const CycleCommand& command) {
  const Geometry& g = config_.geometry;
  CycleResult result;
  const bool lp = config_.mode == Mode::kLowPowerTest;
  const std::size_t w = g.word_width;
  const std::size_t first_col = command.col_group * w;

  // Row hand-over bookkeeping (swap hazard in LP mode without restore).
  if (!active_row_ || *active_row_ != command.row)
    result.faulty_swaps = fast_enter_row(command.row);
  stats_.faulty_swaps += result.faulty_swaps;

  charge_peripheral(command);

  // The operation itself (selected columns).
  const CycleResult op = fast_execute_op(command);
  result.read_value = op.read_value;
  result.mismatch = op.mismatch;
  result.first_bad_col = op.first_bad_col;

  // Pre-charge activity snapshot: stored as the command outline, expanded
  // on demand by precharge_was_active() instead of an O(cols) refill.
  snap_.valid = true;
  snap_.all_on = !lp || command.restore_row_transition;
  snap_.first_col = first_col;
  snap_.width = w;
  snap_.has_follower = false;

  if (!lp) {
    // Functional mode: every unselected column of the active row fights a
    // full RES against its live pre-charge circuit, every cycle.
    meter_.add(EnergySource::kPrechargeResFight, e_.others_res_fight);
    meter_.add(EnergySource::kCellRes, e_.others_cell_res);
    stats_.full_res_column_cycles += g.cols - w;
    if (faults_ != nullptr) {
      for (std::size_t col : sensitive_by_row_[command.row]) {
        if (col < first_col || col >= first_col + w)
          faults_->on_res(*this, {command.row, col}, 1.0);
      }
    }
  } else if (command.restore_row_transition) {
    fast_restore_cycle(command.row, first_col);
  } else {
    // Steady LP cycle: only the follower group's pre-charge is on (driven
    // by the previous column's selection signal, Fig. 8).  The last group
    // of the scan has no follower (its CS line is not wrapped around).
    const bool ascending = command.scan == Scan::kAscending;
    const std::size_t groups = g.col_groups();
    std::optional<std::size_t> follower;
    if (ascending && command.col_group + 1 < groups)
      follower = command.col_group + 1;
    else if (!ascending && command.col_group > 0)
      follower = command.col_group - 1;
    if (follower) {
      const std::size_t fc = *follower * w;
      snap_.has_follower = true;
      snap_.follower_first = fc;
      for_each_run(fc, fc + w,
                   [&](std::size_t col, std::size_t n, std::uint32_t tag) {
        if (tag == kColPrecharged) {
          full_res_bulk(n);
        } else if (tag == kColMaterialized) {
          for (std::size_t c = col; c < col + n; ++c) {
            recharge(c, EnergySource::kPrechargeNextColumn);
            apply_full_res(command.row, c);
            if (!always_materialized_[c]) cohort_of_[c] = kColPrecharged;
          }
        } else {
          const Cohort& k = cohorts_[tag];
          const CohortEval e = eval_cohort(k);
          cohort_recharge_bulk(e, k, n, EnergySource::kPrechargeNextColumn);
          full_res_bulk(n);
          std::fill(cohort_of_.begin() + static_cast<std::ptrdiff_t>(col),
                    cohort_of_.begin() + static_cast<std::ptrdiff_t>(col + n),
                    kColPrecharged);
        }
      });
    }
    // One control element switches per column-group advance (paper §5.5).
    if (!last_col_group_ || *last_col_group_ != command.col_group)
      meter_.add(EnergySource::kControlLogic, e_.control_element_group);
  }

  // After the restore phase the selected columns sit at VDD; from the next
  // cycle on they decay again (WL still strobes this row every cycle).
  // (Restore cycles leave everything pre-charged via fast_restore_cycle.)
  if (lp && !command.restore_row_transition) {
    const std::uint32_t post_cohort =
        static_cast<std::uint32_t>(cohorts_.size());
    cohorts_.push_back(Cohort{cycle_ + 1, /*pre_op=*/false});
    for (std::size_t b = 0; b < w; ++b) {
      const std::size_t col = first_col + b;
      if (always_materialized_[col])
        begin_decay(col, /*pre_op=*/false);
      else
        cohort_of_[col] = post_cohort;
    }
    if (cohorts_.size() > 2 * g.cols + 64) compact_cohorts();
  } else if (!lp) {
    for (std::size_t b = 0; b < w; ++b) {
      const std::size_t col = first_col + b;
      if (cohort_of_[col] == kColMaterialized) {
        columns_[col].v_bl = config_.tech.vdd;
        columns_[col].v_blb = config_.tech.vdd;
        columns_[col].connected = false;
        columns_[col].since = cycle_;
      } else {
        cohort_of_[col] = kColPrecharged;
      }
    }
  }

  restored_last_cycle_ = lp && command.restore_row_transition;
  last_col_group_ = command.col_group;
  ++cycle_;
  meter_.tick_cycle();
  ++stats_.cycles;
  return result;
}

void SramArray::fast_idle(std::uint64_t cycles) {
  if (cycles == 0) return;
  const auto& t = config_.tech;
  meter_.add_spread(EnergySource::kClockTree, t.e_clock_tree, cycles);
  meter_.add_spread(EnergySource::kMemoryControl, t.e_control_base, cycles);
  // Word lines are low during the idle window: connected bit-lines stop
  // discharging.  Fold cohort decay in bulk; members keeping a partial
  // voltage across the window become materialized (their frozen state is
  // what the next row entry's swap check must see).
  const double vdd = t.vdd;
  for_each_run(0, config_.geometry.cols,
               [&](std::size_t col, std::size_t count, std::uint32_t tag) {
    if (tag == kColPrecharged) return;
    if (tag == kColMaterialized) {
      for (std::size_t c = col; c < col + count; ++c)
        if (columns_[c].connected) settle(c);
      return;
    }
    const Cohort& k = cohorts_[tag];
    const CohortEval e = eval_cohort(k);
    cohort_settle_bulk(e, k.pre_op, count);
    const std::uint64_t since = k.start < cycle_ ? cycle_ : k.start;
    for (std::size_t c = col; c < col + count; ++c) {
      const bool one =
          active_row_ && cells_.get_unchecked(*active_row_, c);
      columns_[c] = one ? ColumnState{e.v_low, vdd, since, true, k.pre_op}
                        : ColumnState{vdd, e.v_low, since, true, k.pre_op};
      cohort_of_[c] = kColMaterialized;
    }
  });
  cohorts_.clear();
  cycle_ += cycles;
  meter_.tick_cycles(cycles);
  stats_.cycles += cycles;
  // No row is active while idling; the next access re-enters its row.
  active_row_.reset();
  restored_last_cycle_ = false;
  if (faults_ != nullptr) faults_->on_idle(*this, cycles);
}

RunResult SramArray::execute_run(const RunCommand& run) {
  const Geometry& g = config_.geometry;
  SRAMLP_REQUIRE(run.ops != nullptr && run.op_count >= 1,
                 "run without operations");
  SRAMLP_REQUIRE(run.row < g.rows, "row out of range");
  SRAMLP_REQUIRE(run.group_count >= 1, "empty run");
  if (run.descending) {
    SRAMLP_REQUIRE(run.first_group < g.col_groups() &&
                       run.group_count <= run.first_group + 1,
                   "column run out of range");
  } else {
    SRAMLP_REQUIRE(run.first_group + run.group_count <= g.col_groups(),
                   "column run out of range");
  }
  // fast_run accumulates meter totals in registers via raw_totals().  A
  // bulk-fold-capable sink (PowerTrace) keeps the batch path: its window /
  // element blocks fold through the identical addition sequences, so both
  // totals and traces stay bit-identical to per-cycle delivery (the batch
  // executor's documented contract, pinned by test_bitsliced_parity.cpp).
  // A sink that needs the raw event stream (waveform writers) forces the
  // per-cycle path — every event delivered.
  const bool bulk_ok =
      !meter_.has_sink() || meter_.sink()->bulk_fold_supported();
  return fast_ && bulk_ok ? fast_run(run) : run_per_cycle(run);
}

RunResult SramArray::run_per_cycle(const RunCommand& run) {
  RunResult rr;
  CycleCommand cmd;
  cmd.row = run.row;
  cmd.background = run.background;
  cmd.scan = run.scan;
  std::size_t group = run.first_group;
  for (std::size_t k = 0; k < run.group_count; ++k) {
    cmd.col_group = group;
    for (std::size_t o = 0; o < run.op_count; ++o) {
      cmd.is_read = run.ops[o].is_read;
      cmd.value = run.ops[o].value;
      cmd.restore_row_transition = run.restore_last &&
                                   k + 1 == run.group_count &&
                                   o + 1 == run.op_count;
      const CycleResult r = fast_ ? fast_cycle(cmd) : reference_cycle(cmd);
      rr.faulty_swaps += r.faulty_swaps;
      if (cmd.is_read && r.mismatch) {
        ++rr.mismatches;
        if (rr.detection_count < RunResult::kDetectionCap)
          rr.detections[rr.detection_count++] = {o, group, r.first_bad_col};
      }
    }
    group = run.descending ? group - 1 : group + 1;
  }
  return rr;
}

RunResult SramArray::fast_run(const RunCommand& run) {
  // A sink can only be attached here when it supports bulk folding
  // (execute_run routes other sinks per-cycle); pick the matching
  // instantiation once per run.
  return meter_.has_sink() ? fast_run_impl<true>(run)
                           : fast_run_impl<false>(run);
}

template <bool kTraced>
RunResult SramArray::fast_run_impl(const RunCommand& run) {
  const Geometry& g = config_.geometry;
  const std::size_t w = g.word_width;
  const bool lp = config_.mode == Mode::kLowPowerTest;
  const double vdd = config_.tech.vdd;
  RunResult rr;

  // Row hand-over once for the whole run.
  bool entered = false;
  if (!active_row_ || *active_row_ != run.row) {
    rr.faulty_swaps = fast_enter_row(run.row);
    entered = true;
  }
  stats_.faulty_swaps += rr.faulty_swaps;

  bool have_mat = false;
  for (const std::uint32_t tag : cohort_of_) {
    if (tag == kColMaterialized) {
      have_mat = true;
      break;
    }
  }
  // Per-cell hooks are needed only on rows the fault model can act on;
  // everywhere else the data path runs word-parallel (the model promised
  // its hooks are no-ops there — see CellFaultModel::relevant_rows).
  const bool hooked =
      faults_ != nullptr && (all_rows_hooked_ || hooked_rows_[run.row]);

  // Meter accumulators and the hot statistics live in locals for the whole
  // run: each cycle performs exactly the additions the per-cycle path
  // performs, in the same order, so the written-back totals match it to
  // the bit.  store()/load() spill and reload them around the rare
  // per-column (materialized / restore) work that meters directly.
  // Fault hooks never touch the meter (they only see cells via force()),
  // so hook calls need no spill.
  constexpr auto I = [](EnergySource s) constexpr {
    return static_cast<std::size_t>(s);
  };
  auto& totals = meter_.raw_totals();
  // Traced runs additionally fold the sink's current-window and
  // current-element slot blocks: local copies receive the identical
  // per-slot addition sequences on_add would have performed, and are
  // written back at window boundaries and spill points — bit-identical
  // traces at batch speed (MeterSink::bulk_fold_supported contract).
  // The three mirrored accumulators of one source are interleaved as a
  // {window, element, total, pad} quad so one event's additions land in
  // one cache line and the window/element pair runs as a single lanewise
  // two-wide add; untraced runs keep the dense one-total-per-source
  // block.  Interleaving only regroups independent per-slot chains, so
  // the bits are unchanged.
  constexpr std::size_t kStride = kTraced ? 4 : 1;
  alignas(16) std::array<double, power::kEnergySourceCount * kStride> t{};
  power::MeterSink* const sink = kTraced ? meter_.sink() : nullptr;
  std::uint64_t win_cycles = 1;
  if constexpr (kTraced) win_cycles = sink->bulk_window_cycles();
  double* winp = nullptr;
  double* elemp = nullptr;
  std::uint64_t cur_window = 0;
  double equiv_post = 0.0;
  double equiv_pre = 0.0;
  std::uint64_t d_full_res = 0, d_reads = 0, d_writes = 0, d_mismatch = 0,
                d_cycles = 0;
  const auto load = [&] {
    equiv_post = stats_.decay_stress_equiv_post_op;
    equiv_pre = stats_.decay_stress_equiv_pre_op;
    if constexpr (kTraced) {
      // (Re-)acquire the sink's blocks: direct meter adds during a spill
      // fold windows and may reallocate the sink's slot storage.  The
      // meter's cycle counter equals cycle_ at every spill point, so the
      // current window is cycle_ / width on both paths.
      cur_window = cycle_ / win_cycles;
      winp = sink->bulk_window_slots(cur_window);
      elemp = sink->bulk_element_slots();
      for (std::size_t i = 0; i < power::kEnergySourceCount; ++i) {
        t[i * 4] = winp[i];
        t[i * 4 + 1] = elemp[i];
        t[i * 4 + 2] = totals[i];
      }
    } else {
      t = totals;
    }
  };
  const auto store = [&] {
    stats_.decay_stress_equiv_post_op = equiv_post;
    stats_.decay_stress_equiv_pre_op = equiv_pre;
    stats_.full_res_column_cycles += d_full_res;
    stats_.reads += d_reads;
    stats_.writes += d_writes;
    stats_.read_mismatches += d_mismatch;
    stats_.cycles += d_cycles;
    meter_.tick_cycles(d_cycles);
    d_full_res = d_reads = d_writes = d_mismatch = d_cycles = 0;
    if constexpr (kTraced) {
      for (std::size_t i = 0; i < power::kEnergySourceCount; ++i) {
        winp[i] = t[i * 4];
        elemp[i] = t[i * 4 + 1];
        totals[i] = t[i * 4 + 2];
      }
    } else {
      totals = t;
    }
  };
  // One metered event: the totals always; the trace's window / element
  // chains only for supply-drawn sources (the per-cycle sink skips
  // stored-charge stress the same way).  Mirroring an exact 0.0 is a
  // bitwise no-op on the non-negative accumulators, matching the sink's
  // zero-event skip.
  using V2 = double __attribute__((vector_size(16), may_alias));
  const auto acc = [&](EnergySource s, double e) {
    if constexpr (kTraced) {
      double* const p = t.data() + I(s) * 4;
      if (power::info(s).supply_drawn) {
        // Lanewise two-wide add: each lane is the identical scalar IEEE
        // addition, just issued as one aligned instruction.
        *reinterpret_cast<V2*>(p) += V2{e, e};
      }
      p[2] += e;
    } else {
      t[I(s)] += e;
    }
  };
  load();

  const std::size_t groups = g.col_groups();
  const bool ascending = run.scan == Scan::kAscending;
  // Virtual-cohort mode: a clean whole-row LP sweep entered this call with
  // no materialized columns has a fully predictable decay structure —
  // every selected column stays exempt, the follower is always the row's
  // pre-op cohort on its first recharge and pre-charged afterwards, and
  // each group's post-op decay start is an arithmetic function of its
  // position.  The loop then touches no cohort state at all; the row's
  // cohorts are written out once at the end (or consumed by the restore).
  const std::uint64_t row_entry_cycle = cycle_;
  const bool virt = lp && entered && !have_mat && cohorts_.size() == 1 &&
                    cohorts_[0].start == cycle_ && cohorts_[0].pre_op &&
                    run.group_count == groups &&
                    (run.descending ? run.first_group + 1 == groups
                                    : run.first_group == 0) &&
                    (run.descending != ascending);
  // Per-address operation counts and the run-edge bookkeeping are
  // loop-invariant: accumulate them per address / per run, not per cycle.
  std::uint64_t reads_per_addr = 0;
  for (std::size_t o = 0; o < run.op_count; ++o)
    if (run.ops[o].is_read) ++reads_per_addr;
  const std::uint64_t writes_per_addr = run.op_count - reads_per_addr;
  const bool first_group_advance =
      !last_col_group_ || *last_col_group_ != run.first_group;
  std::size_t group = run.first_group;
  for (std::size_t k = 0; k < run.group_count; ++k) {
    const std::size_t first_col = group * w;
    bool has_follower = false;
    std::size_t follower_first = 0;
    if (lp) {
      if (ascending && group + 1 < groups) {
        has_follower = true;
        follower_first = (group + 1) * w;
      } else if (!ascending && group > 0) {
        has_follower = true;
        follower_first = (group - 1) * w;
      }
    }
    const bool group_advance = k != 0 || first_group_advance;
    d_reads += reads_per_addr;
    d_writes += writes_per_addr;

    for (std::size_t o = 0; o < run.op_count; ++o) {
      const RunOp op = run.ops[o];
      const bool restore = run.restore_last && k + 1 == run.group_count &&
                           o + 1 == run.op_count;

      if constexpr (kTraced) {
        if (cycle_ / win_cycles != cur_window) {
          // Entering a new window with a cycle still to run: finish the
          // old block, acquire the new one (acquisition finalizes every
          // window below it).  Doing this before the cycle's first event
          // — rather than right after ++cycle_ — means a window past the
          // run's final event never materializes, matching the per-cycle
          // sink, which only creates a window when an add lands in it.
          for (std::size_t i = 0; i < power::kEnergySourceCount; ++i)
            winp[i] = t[i * 4];
          cur_window = cycle_ / win_cycles;
          winp = sink->bulk_window_slots(cur_window);
          for (std::size_t i = 0; i < power::kEnergySourceCount; ++i)
            t[i * 4] = winp[i];
        }
      }

      // --- peripheral (charge_peripheral) -----------------------------
      acc(EnergySource::kWordline, e_.wordline);
      acc(EnergySource::kDecoder, e_.decoder);
      acc(EnergySource::kAddressBus, e_.address_bus);
      acc(EnergySource::kClockTree, e_.clock_tree);
      acc(EnergySource::kMemoryControl, e_.control_base);

      // --- selected column state (fast_execute_op phase 1) ------------
      // Virtual mode: the selected group is provably exempt or
      // pre-charged on every cycle of the sweep — no state, no energy.
      // Functional runs without materialized columns are all-pre-charged
      // by construction.
      if (!virt && (lp || have_mat)) {
        for (std::size_t b = 0; b < w; ++b) {
          const std::size_t col = first_col + b;
          const std::uint32_t tag = cohort_of_[col];
          if (tag == kColPrecharged) continue;
          if (tag != kColMaterialized && cycle_ - cohorts_[tag].start <= 1) {
            cohort_of_[col] = kColPrecharged;  // back-to-back exemption
            continue;
          }
          if (tag == kColMaterialized) {
            ColumnState& s = columns_[col];
            if (s.connected && cycle_ - s.since <= 1 &&
                s.v_bl >= vdd - 1e-3 && s.v_blb >= vdd - 1e-3) {
              s.v_bl = vdd;
              s.v_blb = vdd;
              s.connected = false;
              s.pre_op_phase = false;
              s.since = cycle_;
              if (!always_materialized_[col])
                cohort_of_[col] = kColPrecharged;
              continue;
            }
          }
          store();
          if (cohort_of_[col] != kColMaterialized) materialize_column(col);
          recharge(col, EnergySource::kPrechargeNextColumn);
          if (!always_materialized_[col]) cohort_of_[col] = kColPrecharged;
          load();
        }
      }

      // --- operation phase --------------------------------------------
      bool mismatch = false;
      std::size_t first_bad_col = 0;
      if (hooked) {
        for (std::size_t b = 0; b < w; ++b) {
          const std::size_t col = first_col + b;
          const CellCoord cell{run.row, col};
          const bool stored_v = cells_.get_unchecked(cell.row, cell.col);
          const bool physical =
              run.background.physical(op.value, cell.row, cell.col);
          if (op.is_read) {
            bool stored_after = stored_v;
            const bool sensed =
                faults_->read_result(cell, stored_v, &stored_after);
            if (stored_after != stored_v)
              cells_.set_unchecked(cell.row, cell.col, stored_after);
            if (sensed != physical) {
              if (!mismatch) first_bad_col = col;
              mismatch = true;
              faults_->on_read_mismatch(cell);
            }
            acc(EnergySource::kSenseAmp, e_.sense_amp);
            acc(EnergySource::kDataIo, e_.data_io);
            acc(EnergySource::kPrechargeRestoreRead, e_.read_restore);
            acc(EnergySource::kCellRes, e_.cell_res);
          } else {
            const bool effective =
                faults_->write_result(cell, stored_v, physical);
            cells_.set_unchecked(cell.row, cell.col, effective);
            faults_->after_write(*this, cell, stored_v, effective);
            acc(EnergySource::kWriteDriver, e_.write_driver);
            acc(EnergySource::kDataIo, e_.data_io);
            acc(EnergySource::kPrechargeRestoreWrite, e_.write_restore);
          }
        }
      } else {
        if (w == 1) {
          const bool physical =
              run.background.physical(op.value, run.row, first_col);
          if (op.is_read) {
            if (cells_.get_unchecked(run.row, first_col) != physical) {
              mismatch = true;
              first_bad_col = first_col;
              // Attribution channel even on word-parallel rows: a model's
              // relevant_rows promise covers its hooks, not where a cell
              // it corrupted elsewhere gets read back.
              if (faults_ != nullptr)
                faults_->on_read_mismatch({run.row, first_col});
            }
          } else {
            cells_.set_unchecked(run.row, first_col, physical);
          }
        } else {
          // Word-parallel data path: one 64-periodic pattern word covers
          // the whole group (see fast_execute_op); mismatching reads —
          // the rare case — decompose per 64-bit chunk.
          const std::uint64_t pattern =
              (op.value ? ~std::uint64_t{0} : std::uint64_t{0}) ^
              run.background.bits(run.row, first_col,
                                  std::min<std::size_t>(64, w));
          if (op.is_read) {
            if (!cells_.row_matches_pattern(run.row, first_col, w,
                                            pattern)) {
              for (std::size_t c0 = first_col; c0 < first_col + w;
                   c0 += 64) {
                const std::size_t nb =
                    std::min<std::size_t>(64, first_col + w - c0);
                std::uint64_t diff = cells_.row_bits(run.row, c0, nb) ^
                                     (pattern & low_bit_mask(nb));
                if (diff != 0) {
                  if (!mismatch)
                    first_bad_col =
                        c0 +
                        static_cast<std::size_t>(std::countr_zero(diff));
                  mismatch = true;
                  if (faults_ != nullptr) {
                    for (; diff != 0; diff &= diff - 1)
                      faults_->on_read_mismatch(
                          {run.row, c0 + static_cast<std::size_t>(
                                             std::countr_zero(diff))});
                  }
                }
              }
            }
          } else {
            cells_.fill_row_pattern(run.row, first_col, w, pattern);
          }
        }
        if (op.is_read) {
          for (std::size_t b = 0; b < w; ++b) {
            acc(EnergySource::kSenseAmp, e_.sense_amp);
            acc(EnergySource::kDataIo, e_.data_io);
            acc(EnergySource::kPrechargeRestoreRead, e_.read_restore);
            acc(EnergySource::kCellRes, e_.cell_res);
          }
        } else {
          for (std::size_t b = 0; b < w; ++b) {
            acc(EnergySource::kWriteDriver, e_.write_driver);
            acc(EnergySource::kDataIo, e_.data_io);
            acc(EnergySource::kPrechargeRestoreWrite, e_.write_restore);
          }
        }
      }
      if (mismatch) {
        ++d_mismatch;
        ++rr.mismatches;
        if (rr.detection_count < RunResult::kDetectionCap)
          rr.detections[rr.detection_count++] = {o, group, first_bad_col};
      }

      // --- unselected columns -----------------------------------------
      if (!lp) {
        acc(EnergySource::kPrechargeResFight, e_.others_res_fight);
        acc(EnergySource::kCellRes, e_.others_cell_res);
        d_full_res += g.cols - w;
        if (faults_ != nullptr) {
          for (std::size_t col : sensitive_by_row_[run.row]) {
            if (col < first_col || col >= first_col + w)
              faults_->on_res(*this, {run.row, col}, 1.0);
          }
        }
      } else if (restore) {
        if (virt) {
          // Everything the restore recharges is a post-op cohort whose
          // decay start is arithmetic in its scan position; walk groups
          // in column order, exactly like the tag-driven path would.
          // Folded through the local accumulators (the unrolled
          // cohort_recharge_bulk + full_res_bulk repeated-addition
          // sequence) rather than spilling: a traced run would otherwise
          // pay one sink dispatch per bulk add for every group of the
          // row, which dominates the whole traced sweep.
          for (std::size_t gi = 0; gi < groups; ++gi) {
            if (gi == group) continue;
            const std::size_t scan_index =
                run.descending ? run.first_group - gi : gi;
            const Cohort kc{
                row_entry_cycle + run.op_count * (scan_index + 1),
                /*pre_op=*/false};
            const CohortEval ev = eval_cohort(kc);
            for (std::size_t b = 0; b < w; ++b) {
              if (ev.stress_j > 0.0)
                acc(EnergySource::kBitlineDecayStress, ev.stress_j);
              equiv_post += ev.equiv;
              if (ev.dv > 0.0)
                acc(EnergySource::kRowTransitionRestore, ev.recharge_e);
              acc(EnergySource::kPrechargeResFight, e_.res_fight);
              acc(EnergySource::kCellRes, e_.cell_res);
              ++d_full_res;
            }
          }
          acc(EnergySource::kLpTestDriver, e_.lptest_driver);
          ++stats_.restore_cycles;
          std::fill(cohort_of_.begin(), cohort_of_.end(), kColPrecharged);
          cohorts_.clear();
        } else {
          store();
          fast_restore_cycle(run.row, first_col);
          load();
        }
      } else {
        if (has_follower) {
          if (virt) {
            // First op on an address recharges the follower out of the
            // row's pre-op cohort; later ops find it pre-charged.
            if (o == 0) {
              const Cohort kc{row_entry_cycle, /*pre_op=*/true};
              const CohortEval ev = eval_cohort(kc);
              for (std::size_t b = 0; b < w; ++b) {
                if (ev.stress_j > 0.0)
                  acc(EnergySource::kBitlineDecayStress, ev.stress_j);
                equiv_pre += ev.equiv;
                if (ev.dv > 0.0)
                  acc(EnergySource::kPrechargeNextColumn, ev.recharge_e);
                acc(EnergySource::kPrechargeResFight, e_.res_fight);
                acc(EnergySource::kCellRes, e_.cell_res);
                ++d_full_res;
              }
            } else {
              for (std::size_t b = 0; b < w; ++b) {
                acc(EnergySource::kPrechargeResFight, e_.res_fight);
                acc(EnergySource::kCellRes, e_.cell_res);
                ++d_full_res;
              }
            }
          } else {
            for (std::size_t b = 0; b < w; ++b) {
              const std::size_t col = follower_first + b;
              const std::uint32_t tag = cohort_of_[col];
              if (tag == kColPrecharged) {
                acc(EnergySource::kPrechargeResFight, e_.res_fight);
                acc(EnergySource::kCellRes, e_.cell_res);
                ++d_full_res;
              } else if (tag == kColMaterialized) {
                store();
                recharge(col, EnergySource::kPrechargeNextColumn);
                apply_full_res(run.row, col);
                if (!always_materialized_[col])
                  cohort_of_[col] = kColPrecharged;
                load();
              } else {
                const Cohort& kc = cohorts_[tag];
                const CohortEval ev = eval_cohort(kc);
                if (ev.stress_j > 0.0)
                  acc(EnergySource::kBitlineDecayStress, ev.stress_j);
                if (kc.pre_op)
                  equiv_pre += ev.equiv;
                else
                  equiv_post += ev.equiv;
                if (ev.dv > 0.0)
                  acc(EnergySource::kPrechargeNextColumn, ev.recharge_e);
                acc(EnergySource::kPrechargeResFight, e_.res_fight);
                acc(EnergySource::kCellRes, e_.cell_res);
                ++d_full_res;
                cohort_of_[col] = kColPrecharged;
              }
            }
          }
        }
        if (o == 0 && group_advance)
          acc(EnergySource::kControlLogic, e_.control_element_group);

        // Selected group: post-operation decay from the next cycle on.
        // (Virtual mode defers the whole row's cohort write-out.)
        if (!virt) {
          const std::uint32_t post_cohort =
              static_cast<std::uint32_t>(cohorts_.size());
          cohorts_.push_back(Cohort{cycle_ + 1, /*pre_op=*/false});
          for (std::size_t b = 0; b < w; ++b) {
            const std::size_t col = first_col + b;
            if (always_materialized_[col])
              begin_decay(col, /*pre_op=*/false);
            else
              cohort_of_[col] = post_cohort;
          }
          if (cohorts_.size() > 2 * g.cols + 64) compact_cohorts();
        }
      }
      if (!lp && have_mat) {
        for (std::size_t b = 0; b < w; ++b) {
          const std::size_t col = first_col + b;
          if (cohort_of_[col] == kColMaterialized) {
            columns_[col].v_bl = vdd;
            columns_[col].v_blb = vdd;
            columns_[col].connected = false;
            columns_[col].since = cycle_;
          } else {
            cohort_of_[col] = kColPrecharged;
          }
        }
      }

      ++cycle_;
      ++d_cycles;
    }
    group = run.descending ? group - 1 : group + 1;
  }
  store();
  if (virt && !run.restore_last) {
    // Materialize the row's deferred cohort structure: one post-op cohort
    // per group, decay start arithmetic in the scan position — the exact
    // state the per-cycle path would have accumulated.
    cohorts_.clear();
    for (std::size_t gi = 0; gi < groups; ++gi) {
      const std::size_t scan_index =
          run.descending ? run.first_group - gi : gi;
      const std::uint32_t id = static_cast<std::uint32_t>(cohorts_.size());
      cohorts_.push_back(Cohort{
          row_entry_cycle + run.op_count * (scan_index + 1),
          /*pre_op=*/false});
      for (std::size_t b = 0; b < w; ++b) cohort_of_[gi * w + b] = id;
    }
  }
  // Run-edge bookkeeping: nothing inside the loop reads these, so the
  // per-cycle stores collapse to the final values.
  const std::size_t last_group =
      run.descending ? run.first_group - (run.group_count - 1)
                     : run.first_group + (run.group_count - 1);
  restored_last_cycle_ = lp && run.restore_last;
  last_col_group_ = last_group;

  // Diagnostics snapshot: the outline of the run's final cycle.
  snap_.valid = true;
  snap_.all_on = !lp || run.restore_last;
  snap_.first_col = last_group * w;
  snap_.width = w;
  snap_.has_follower = false;
  if (lp && !run.restore_last) {
    if (ascending && last_group + 1 < groups) {
      snap_.has_follower = true;
      snap_.follower_first = (last_group + 1) * w;
    } else if (!ascending && last_group > 0) {
      snap_.has_follower = true;
      snap_.follower_first = (last_group - 1) * w;
    }
  }
  return rr;
}

double SramArray::bitline_low_side_voltage(std::size_t col) const {
  SRAMLP_REQUIRE(col < config_.geometry.cols, "column out of range");
  double v_bl = 0.0;
  double v_blb = 0.0;
  if (!fast_ || cohort_of_[col] == kColMaterialized) {
    evaluate(columns_[col], col, &v_bl, &v_blb);
  } else if (cohort_of_[col] == kColPrecharged) {
    v_bl = config_.tech.vdd;
    v_blb = config_.tech.vdd;
  } else {
    const Cohort& k = cohorts_[cohort_of_[col]];
    const ColumnState ghost{config_.tech.vdd, config_.tech.vdd, k.start, true,
                            k.pre_op};
    evaluate(ghost, col, &v_bl, &v_blb);
  }
  return std::min(v_bl, v_blb);
}

bool SramArray::precharge_was_active(std::size_t col) const {
  SRAMLP_REQUIRE(col < config_.geometry.cols, "column out of range");
  if (!fast_) return precharge_active_[col];
  if (!snap_.valid) return config_.mode == Mode::kFunctional;
  if (snap_.all_on) return true;
  if (col >= snap_.first_col && col < snap_.first_col + snap_.width)
    return true;
  return snap_.has_follower && col >= snap_.follower_first &&
         col < snap_.follower_first + snap_.width;
}

}  // namespace sramlp::sram
