// Cycle-accurate SRAM array simulator with per-event energy accounting.
//
// The simulator models the paper's two-phase clock cycle (Fig. 2):
//   * operate phase — word line high; the selected column group's pre-charge
//     is off and the read/write executes; other columns behave per mode;
//   * restore phase — word line low; the selected columns' pre-charge
//     restores their bit-lines to VDD.
//
// Functional mode: every column's pre-charge circuit is always on, so all
// cells sharing the active word line except the selected group suffer a full
// Read Equivalent Stress each cycle (energy P_A per column per cycle drawn
// through the pre-charge keepers).
//
// Low-power test mode (the paper's contribution): only the selected column
// group and the group that immediately follows in scan order are pre-charged.
// Every other bit-line floats and is discharged by the cell it stays
// connected to (exponential decay, Fig. 6a); the energy dissipated that way
// comes from charge already stored on the bit-line, not from the supply.
// The follower group's pre-charge must recharge its decayed bit-lines (the
// cost of which the simulator meters explicitly) and sustains the single
// remaining full RES.  On the last operation before a row change the caller
// raises restore_row_transition, which re-enables every pre-charge circuit
// for that one cycle (Fig. 7) — omitting it reproduces the faulty-swap
// mechanism, which the simulator models faithfully.
//
// Bit-line voltages are tracked lazily (closed-form exponential decay from
// the last capture point), so a cycle costs O(word_width) amortised work
// and full 512x512 March runs complete in milliseconds.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "power/meter.h"
#include "power/technology.h"
#include "sram/background.h"
#include "sram/cell_array.h"
#include "sram/command.h"
#include "sram/fault_hooks.h"
#include "sram/geometry.h"

namespace sramlp::sram {

/// Static configuration of one simulated array.
struct SramConfig {
  Geometry geometry;
  power::TechnologyParams tech = power::TechnologyParams::tech_0p13um();
  Mode mode = Mode::kFunctional;
  /// Apply the one-cycle functional restore at row transitions (Fig. 7 fix).
  /// The TestSession honours this; disabling it reproduces faulty swaps.
  bool row_transition_restore = true;
  /// Fraction of the cycle the word line stays high (decay advances only
  /// while cells are connected to their bit-lines).
  double wordline_duty = 0.5;
  /// A floating bit-line below this fraction of VDD overpowers an opposing
  /// cell at row entry (bit-line capacitance >> cell node capacitance).
  double swap_threshold_frac = 0.5;
};

/// Counters accumulated over a run.
struct ArrayStats {
  std::uint64_t cycles = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_mismatches = 0;
  std::uint64_t faulty_swaps = 0;
  std::uint64_t row_transitions = 0;
  std::uint64_t restore_cycles = 0;
  /// Column-cycles of full RES (pre-charge fighting a connected cell).
  std::uint64_t full_res_column_cycles = 0;
  /// Integrated decaying stress in "full-RES column-cycle" equivalents,
  /// split by decay phase (the paper's α analysis covers the post-op tail).
  double decay_stress_equiv_post_op = 0.0;
  double decay_stress_equiv_pre_op = 0.0;

  /// Average stressed cells per cycle counting the post-operation tail plus
  /// the follower column — the paper's α (expected inside (2, 10)).
  double alpha_post_op() const;
  /// Same including the pre-operation decay the paper's analysis omits.
  double alpha_total() const;
};

/// The simulated memory.
class SramArray {
 public:
  explicit SramArray(const SramConfig& config);

  const SramConfig& config() const { return config_; }
  const Geometry& geometry() const { return config_.geometry; }
  Mode mode() const { return config_.mode; }

  /// Switch operating mode between runs; resets bit-line state to
  /// pre-charged (a functional settling period is assumed) but keeps data.
  void set_mode(Mode mode);

  /// Execute one clock cycle. In low-power test mode the caller must issue
  /// addresses word-line-after-word-line (the TestSession enforces this).
  CycleResult cycle(const CycleCommand& command);

  /// Idle for @p cycles clock cycles (March "Del" elements): no access,
  /// word lines low.  Only the clock tree and the control FSM burn energy;
  /// floating bit-lines hold their charge (no discharge path with the
  /// access transistors off).  Retention faults receive on_idle().
  void idle(std::uint64_t cycles);

  /// Attach (or clear) the behavioural fault model. Non-owning.
  void attach_fault_model(CellFaultModel* model);

  // --- direct data access (no energy, no hooks, no clocking) -------------
  bool peek(std::size_t row, std::size_t col) const {
    return cells_.get(row, col);
  }
  void poke(std::size_t row, std::size_t col, bool value) {
    cells_.set(row, col, value);
  }
  /// Fault-model backdoor used by coupling faults to strike victims.
  void force(CellCoord cell, bool value) {
    cells_.set(cell.row, cell.col, value);
  }
  CellArray& cells() { return cells_; }
  const CellArray& cells() const { return cells_; }

  const power::EnergyMeter& meter() const { return meter_; }
  power::EnergyMeter& meter() { return meter_; }
  const ArrayStats& stats() const { return stats_; }

  /// Average supply energy per cycle so far [J].
  double energy_per_cycle() const { return meter_.supply_per_cycle(); }

  /// Reset meters and statistics (keeps data and bit-line state).
  void reset_measurements();

  /// Current voltage of a column's cell-driven bit-line [V] (diagnostics;
  /// evaluates the lazy decay at the present cycle).
  double bitline_low_side_voltage(std::size_t col) const;

  /// True if the column's pre-charge circuit is on this cycle (diagnostic
  /// snapshot of the last executed cycle; Fig. 4 activity map).
  bool precharge_was_active(std::size_t col) const;

 private:
  /// Per-column bit-line pair, captured at cycle `since`.
  struct ColumnState {
    double v_bl = 0.0;
    double v_blb = 0.0;
    std::uint64_t since = 0;
    bool connected = false;      ///< decaying (WL high, pre-charge off)
    bool pre_op_phase = false;   ///< decay began at row entry (not post-op)
  };

  double decayed(double v, std::uint64_t from_cycle) const;
  /// Current (v_bl, v_blb) of a column, without mutating state.
  void evaluate(const ColumnState& s, std::size_t col, double* v_bl,
                double* v_blb) const;
  /// Fold elapsed decay into the capture point and meter the stress.
  void settle(std::size_t col);
  /// Settle, meter the recharge to VDD into @p source, mark pre-charged.
  void recharge(std::size_t col, power::EnergySource source);
  /// Mark a column as decaying from VDD starting now.
  void begin_decay(std::size_t col, bool pre_op);
  /// Row-entry bookkeeping: swap checks (when unrestored) + fresh decay.
  std::uint32_t enter_row(std::size_t row);
  /// Full RES on one column for one cycle (fight energy + hooks).
  void apply_full_res(std::size_t row, std::size_t col);
  void charge_peripheral(const CycleCommand& command);
  CycleResult execute_op(const CycleCommand& command);

  SramConfig config_;
  CellArray cells_;
  power::EnergyMeter meter_;
  ArrayStats stats_;
  CellFaultModel* faults_ = nullptr;
  /// Sensitive cells grouped by row (from the fault model).
  std::vector<std::vector<std::size_t>> sensitive_by_row_;

  std::vector<ColumnState> columns_;
  std::vector<bool> precharge_active_;  ///< last cycle's activity snapshot
  std::uint64_t cycle_ = 0;
  std::optional<std::size_t> active_row_;
  std::optional<std::size_t> last_col_group_;
  bool restored_last_cycle_ = false;
};

}  // namespace sramlp::sram
