// Cycle-accurate SRAM array simulator with per-event energy accounting.
//
// The simulator models the paper's two-phase clock cycle (Fig. 2):
//   * operate phase — word line high; the selected column group's pre-charge
//     is off and the read/write executes; other columns behave per mode;
//   * restore phase — word line low; the selected columns' pre-charge
//     restores their bit-lines to VDD.
//
// Functional mode: every column's pre-charge circuit is always on, so all
// cells sharing the active word line except the selected group suffer a full
// Read Equivalent Stress each cycle (energy P_A per column per cycle drawn
// through the pre-charge keepers).
//
// Low-power test mode (the paper's contribution): only the selected column
// group and the group that immediately follows in scan order are pre-charged.
// Every other bit-line floats and is discharged by the cell it stays
// connected to (exponential decay, Fig. 6a); the energy dissipated that way
// comes from charge already stored on the bit-line, not from the supply.
// The follower group's pre-charge must recharge its decayed bit-lines (the
// cost of which the simulator meters explicitly) and sustains the single
// remaining full RES.  On the last operation before a row change the caller
// raises restore_row_transition, which re-enables every pre-charge circuit
// for that one cycle (Fig. 7) — omitting it reproduces the faulty-swap
// mechanism, which the simulator models faithfully.
//
// Two column-state engines implement the same contract:
//
//   * ColumnModel::kBitslicedCohort (default) — cell data lives in the
//     64-cell-packed CellArray and is read/written/compared a word group at
//     a time; floating columns are grouped into *decay cohorts* keyed by
//     their decay-start cycle, so settling, recharging and stressing a
//     whole cohort costs one closed-form evaluation plus bulk meter
//     accumulation instead of per-column work.  Per-column ColumnState is
//     materialized lazily, only for columns something actually observes:
//     RES-sensitive columns of an attached fault model (which need
//     per-cycle on_res callbacks), columns left with partial bit-line
//     voltage across a non-restored row hand-over or an idle window, and
//     nothing else.  Diagnostics (bitline_low_side_voltage,
//     precharge_was_active) evaluate the cohort closed form on demand
//     without materializing.
//
//   * ColumnModel::kPerColumnReference — the original per-column engine,
//     kept as the executable specification.  The cohort path is required
//     (and regression-tested) to produce bit-identical supply energy,
//     ArrayStats and detections; EnergyMeter::add(source, joules, count)
//     performs bulk accumulation as repeated additions precisely so the
//     cohort path's per-source floating-point sums match the reference
//     path's addition-by-addition.
//
// Bit-line voltages are tracked lazily (closed-form exponential decay from
// the last capture point, memoized per integer cycle count), so a cycle
// costs O(word_width) amortised work and full 512x512 March runs complete
// in milliseconds.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "power/meter.h"
#include "power/technology.h"
#include "sram/background.h"
#include "sram/cell_array.h"
#include "sram/command.h"
#include "sram/fault_hooks.h"
#include "sram/geometry.h"
#include "sram/simd.h"

namespace sramlp::sram {

/// Which column-state engine executes the cycles (see file comment).
enum class ColumnModel {
  kBitslicedCohort,    ///< word-packed data + decay-cohort accounting (fast)
  kPerColumnReference, ///< original per-column engine (executable spec)
};

/// Static configuration of one simulated array.
struct SramConfig {
  Geometry geometry;
  power::TechnologyParams tech = power::TechnologyParams::tech_0p13um();
  Mode mode = Mode::kFunctional;
  /// Apply the one-cycle functional restore at row transitions (Fig. 7 fix).
  /// The TestSession honours this; disabling it reproduces faulty swaps.
  bool row_transition_restore = true;
  /// Fraction of the cycle the word line stays high (decay advances only
  /// while cells are connected to their bit-lines).
  double wordline_duty = 0.5;
  /// A floating bit-line below this fraction of VDD overpowers an opposing
  /// cell at row entry (bit-line capacitance >> cell node capacitance).
  double swap_threshold_frac = 0.5;
  /// Column-state engine; the reference model exists for parity tests.
  ColumnModel column_model = ColumnModel::kBitslicedCohort;
};

/// Counters accumulated over a run.
struct ArrayStats {
  std::uint64_t cycles = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_mismatches = 0;
  std::uint64_t faulty_swaps = 0;
  std::uint64_t row_transitions = 0;
  std::uint64_t restore_cycles = 0;
  /// Column-cycles of full RES (pre-charge fighting a connected cell).
  std::uint64_t full_res_column_cycles = 0;
  /// Integrated decaying stress in "full-RES column-cycle" equivalents,
  /// split by decay phase (the paper's α analysis covers the post-op tail).
  double decay_stress_equiv_post_op = 0.0;
  double decay_stress_equiv_pre_op = 0.0;

  /// Average stressed cells per cycle counting the post-operation tail plus
  /// the follower column — the paper's α (expected inside (2, 10)).
  double alpha_post_op() const;
  /// Same including the pre-operation decay the paper's analysis omits.
  double alpha_total() const;
};

/// The simulated memory.
class SramArray {
 public:
  explicit SramArray(const SramConfig& config);

  const SramConfig& config() const { return config_; }
  const Geometry& geometry() const { return config_.geometry; }
  Mode mode() const { return config_.mode; }
  ColumnModel column_model() const { return config_.column_model; }

  /// Switch operating mode between runs; resets bit-line state to
  /// pre-charged (a functional settling period is assumed) but keeps data.
  void set_mode(Mode mode);

  /// Execute one clock cycle. In low-power test mode the caller must issue
  /// addresses word-line-after-word-line (the TestSession enforces this).
  CycleResult cycle(const CycleCommand& command);

  /// Execute a whole-row batch of cycles (see RunCommand): group_count
  /// addresses in scan order, op_count operations each.  Supply energy,
  /// statistics, cell contents and detections are bit-identical to
  /// issuing the equivalent CycleCommands through cycle(); the bitsliced
  /// engine executes the batch with meter accumulators held in registers
  /// and per-cycle glue amortised over the row.
  RunResult execute_run(const RunCommand& run);

  /// Idle for @p cycles clock cycles (March "Del" elements): no access,
  /// word lines low.  Only the clock tree and the control FSM burn energy;
  /// floating bit-lines hold their charge (no discharge path with the
  /// access transistors off).  Retention faults receive on_idle().
  void idle(std::uint64_t cycles);

  /// Attach (or clear) the behavioural fault model. Non-owning.
  void attach_fault_model(CellFaultModel* model);

  // --- direct data access (no energy, no hooks, no clocking) -------------
  bool peek(std::size_t row, std::size_t col) const {
    return cells_.get(row, col);
  }
  void poke(std::size_t row, std::size_t col, bool value) {
    cells_.set(row, col, value);
  }
  /// Fault-model backdoor used by coupling faults to strike victims.
  void force(CellCoord cell, bool value) {
    cells_.set(cell.row, cell.col, value);
  }
  CellArray& cells() { return cells_; }
  const CellArray& cells() const { return cells_; }

  const power::EnergyMeter& meter() const { return meter_; }
  power::EnergyMeter& meter() { return meter_; }
  const ArrayStats& stats() const { return stats_; }

  /// Average supply energy per cycle so far [J].
  double energy_per_cycle() const { return meter_.supply_per_cycle(); }

  /// Reset meters and statistics.  Measurement-only: the electrical state
  /// is untouched — bit-line voltages, decay cohorts and lazily
  /// materialized per-column state all survive unchanged, so a reset in
  /// the middle of a run never perturbs subsequent decay, swap or
  /// detection behaviour (regression-tested).
  void reset_measurements();

  /// Current voltage of a column's cell-driven bit-line [V] (diagnostics;
  /// evaluates the lazy decay — or the column's cohort closed form — at
  /// the present cycle, without materializing per-column state).
  double bitline_low_side_voltage(std::size_t col) const;

  /// True if the column's pre-charge circuit is on this cycle (diagnostic
  /// snapshot of the last executed cycle; Fig. 4 activity map).
  bool precharge_was_active(std::size_t col) const;

 private:
  /// Per-column bit-line pair, captured at cycle `since`.
  struct ColumnState {
    double v_bl = 0.0;
    double v_blb = 0.0;
    std::uint64_t since = 0;
    bool connected = false;      ///< decaying (WL high, pre-charge off)
    bool pre_op_phase = false;   ///< decay began at row entry (not post-op)
  };

  // --- shared helpers ----------------------------------------------------
  double decayed(double v, std::uint64_t from_cycle) const;
  /// Memoized exp(-(elapsed * duty) / tau); same bits as computing it raw.
  double decay_factor(std::uint64_t elapsed) const {
    if (elapsed < decay_memo_.size()) return decay_memo_[elapsed];
    return decay_factor_slow(elapsed);
  }
  double decay_factor_slow(std::uint64_t elapsed) const;
  /// Current (v_bl, v_blb) of a column, without mutating state.
  void evaluate(const ColumnState& s, std::size_t col, double* v_bl,
                double* v_blb) const;
  /// Fold elapsed decay into the capture point and meter the stress.
  void settle(std::size_t col);
  /// Settle, meter the recharge to VDD into @p source, mark pre-charged.
  void recharge(std::size_t col, power::EnergySource source);
  /// Mark a column as decaying from VDD starting now.
  void begin_decay(std::size_t col, bool pre_op);
  /// Full RES on one column for one cycle (fight energy + hooks).
  void apply_full_res(std::size_t row, std::size_t col);
  void charge_peripheral(const CycleCommand& command);
  /// The read/write data-path of one selected cell (meters + fault hooks);
  /// shared verbatim by both column engines.
  void op_bit(const CycleCommand& command, std::size_t col,
              CycleResult* result);

  // --- per-column reference engine ---------------------------------------
  CycleResult reference_cycle(const CycleCommand& command);
  void reference_idle(std::uint64_t cycles);
  std::uint32_t enter_row(std::size_t row);
  CycleResult execute_op(const CycleCommand& command);

  // --- bitsliced / decay-cohort engine ------------------------------------
  /// A set of columns whose bit-lines all float from VDD since the same
  /// cycle; one closed-form evaluation covers every member.
  struct Cohort {
    std::uint64_t start = 0;  ///< decay-start cycle (may be one ahead)
    bool pre_op = false;      ///< decay began at row entry
  };
  /// Everything the bulk paths need to know about a cohort "now".
  struct CohortEval {
    double v_low = 0.0;      ///< decayed low-side voltage
    double stress_j = 0.0;   ///< settle: bit-line charge spent, per column
    double equiv = 0.0;      ///< settle: full-RES column-cycle equivalents
    double dv = 0.0;         ///< voltage deficit folded by a settle
    double recharge_e = 0.0; ///< supply energy to restore one pair to VDD
  };

  CycleResult fast_cycle(const CycleCommand& command);
  void fast_idle(std::uint64_t cycles);
  std::uint32_t fast_enter_row(std::size_t row);
  CycleResult fast_execute_op(const CycleCommand& command);
  /// The Fig. 7 all-column restore cycle's column work (recharge + RES +
  /// the everything-pre-charged tail), shared by fast_cycle and fast_run.
  void fast_restore_cycle(std::size_t row, std::size_t first_col);
  /// Per-cycle fallback for execute_run: the reference engine always, and
  /// the bitsliced engine when the attached meter sink needs the raw event
  /// stream (no bulk-fold support — e.g. a waveform writer).  Bulk-capable
  /// sinks (PowerTrace) stay on the batched fast path, which folds their
  /// window/element accumulators exactly like the meter totals.
  /// Dispatches to the active engine's cycle path, which is bit-identical
  /// to the batch executor.
  RunResult run_per_cycle(const RunCommand& run);
  RunResult fast_run(const RunCommand& run);
  /// The batch executor, compiled twice: untraced (meter totals only) and
  /// traced (additionally folding the sink's per-window / per-element
  /// accumulator blocks through the identical addition sequences).
  template <bool kTraced>
  RunResult fast_run_impl(const RunCommand& run);
  CohortEval eval_cohort(const Cohort& cohort) const;
  /// eval_cohort keyed by elapsed decay cycles, served from the grow-only
  /// SIMD-filled table below (scalar closed form past the table cap).
  CohortEval eval_elapsed(std::uint64_t elapsed) const;
  void grow_eval_table(std::uint64_t elapsed) const;
  /// Meter the settle of @p count cohort members (stress + α bookkeeping).
  void cohort_settle_bulk(const CohortEval& eval, bool pre_op,
                          std::uint64_t count);
  /// Settle + recharge-to-VDD of @p count cohort members into @p source.
  void cohort_recharge_bulk(const CohortEval& eval, const Cohort& cohort,
                            std::uint64_t count, power::EnergySource source);
  /// Full RES on @p count columns at once (no sensitive columns inside:
  /// those are always materialized and take the per-column path).
  void full_res_bulk(std::uint64_t count);
  /// Promote a cohort-tracked or pre-charged column to explicit
  /// ColumnState (exact: cohorts capture at VDD, decay stays lazy).
  void materialize_column(std::size_t col);
  /// Walk [begin, end) as maximal runs of columns sharing a state tag.
  template <typename Fn>
  void for_each_run(std::size_t begin, std::size_t end, Fn&& fn) const {
    std::size_t col = begin;
    while (col < end) {
      const std::uint32_t tag = cohort_of_[col];
      std::size_t run_end = col + 1;
      while (run_end < end && cohort_of_[run_end] == tag) ++run_end;
      fn(col, run_end - col, tag);
      col = run_end;
    }
  }
  void compact_cohorts();

  SramConfig config_;
  CellArray cells_;
  power::EnergyMeter meter_;
  ArrayStats stats_;
  CellFaultModel* faults_ = nullptr;
  /// Sensitive cells grouped by row (from the fault model).
  std::vector<std::vector<std::size_t>> sensitive_by_row_;

  /// Hot-loop constants derived from the technology + geometry once; every
  /// value is the identical product/call the engines previously computed
  /// per cycle (pure functions of config), cached for speed.
  struct PerCycleEnergies {
    double wordline = 0.0;
    double decoder = 0.0;
    double address_bus = 0.0;
    double clock_tree = 0.0;
    double control_base = 0.0;
    double res_fight = 0.0;
    double cell_res = 0.0;
    double others_res_fight = 0.0;  ///< (cols - w) columns of RES fight
    double others_cell_res = 0.0;
    double control_element_group = 0.0;  ///< w control elements switching
    double lptest_driver = 0.0;
    double sense_amp = 0.0;
    double data_io = 0.0;
    double read_restore = 0.0;
    double write_driver = 0.0;
    double write_restore = 0.0;
  };
  PerCycleEnergies e_;

  std::vector<ColumnState> columns_;
  std::vector<bool> precharge_active_;  ///< reference engine only
  std::uint64_t cycle_ = 0;
  std::optional<std::size_t> active_row_;
  std::optional<std::size_t> last_col_group_;
  bool restored_last_cycle_ = false;

  // --- bitsliced-engine state --------------------------------------------
  static constexpr std::uint32_t kColPrecharged = 0xFFFFFFFFu;
  static constexpr std::uint32_t kColMaterialized = 0xFFFFFFFEu;
  bool fast_ = true;                      ///< config_.column_model cached
  std::vector<std::uint32_t> cohort_of_;  ///< per-column state tag
  std::vector<Cohort> cohorts_;
  std::vector<bool> always_materialized_; ///< RES-sensitive columns
  /// Rows where the fault model's data-path hooks can act (from
  /// CellFaultModel::relevant_rows); other rows run word-parallel.
  std::vector<bool> hooked_rows_;
  bool all_rows_hooked_ = false;
  /// Last cycle's pre-charge activity, reconstructed on demand instead of
  /// refilling an O(cols) snapshot every cycle.
  struct PrechargeSnapshot {
    bool valid = false;
    bool all_on = false;
    std::size_t first_col = 0;
    std::size_t width = 0;
    bool has_follower = false;
    std::size_t follower_first = 0;
  };
  PrechargeSnapshot snap_;
  mutable std::vector<double> decay_memo_;  ///< exp factor per elapsed cycle
  /// Grow-only structure-of-arrays memo of eval_cohort by elapsed cycle:
  /// cohort evaluations depend only on (elapsed, fixed config), so one
  /// table serves every cohort of every run.  Filled in SIMD batches
  /// (simd::cohort_eval_batch) from the decay-factor memo; each entry is
  /// bit-identical to the scalar closed form.  Capped like decay_memo_.
  struct CohortEvalTable {
    std::vector<double> v_low;
    std::vector<double> stress_j;
    std::vector<double> dv;
    std::vector<double> equiv;
    std::vector<double> recharge_e;
    std::size_t size() const { return v_low.size(); }
  };
  mutable CohortEvalTable eval_table_;
  /// Hoisted constants of the cohort closed form (exact subtrees of the
  /// scalar expressions; see simd::CohortEvalConstants).
  simd::CohortEvalConstants eval_k_;
};

}  // namespace sramlp::sram
