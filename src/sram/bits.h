// Shared word-slice helpers for the bitsliced data paths.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sramlp::sram {

/// Mask selecting the low @p count bits of a word; well-defined for the
/// full 0..64 range (a plain shift would overflow at 64).
constexpr std::uint64_t low_bit_mask(std::size_t count) {
  return count >= 64 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << count) - 1;
}

}  // namespace sramlp::sram
