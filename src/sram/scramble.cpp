#include "sram/scramble.h"

#include "util/error.h"

namespace sramlp::sram {

void AddressScramble::validate_permutation(
    const std::vector<std::size_t>& map) {
  SRAMLP_REQUIRE(!map.empty(), "empty scramble map");
  std::vector<bool> seen(map.size(), false);
  for (std::size_t v : map) {
    SRAMLP_REQUIRE(v < map.size(), "scramble target out of range");
    SRAMLP_REQUIRE(!seen[v], "scramble map is not a permutation");
    seen[v] = true;
  }
}

std::vector<std::size_t> AddressScramble::invert(
    const std::vector<std::size_t>& map) {
  std::vector<std::size_t> inv(map.size());
  for (std::size_t i = 0; i < map.size(); ++i) inv[map[i]] = i;
  return inv;
}

AddressScramble::AddressScramble(std::vector<std::size_t> row_map,
                                 std::vector<std::size_t> col_map)
    : row_map_(std::move(row_map)), col_map_(std::move(col_map)) {
  validate_permutation(row_map_);
  validate_permutation(col_map_);
  row_inverse_ = invert(row_map_);
  col_inverse_ = invert(col_map_);
}

AddressScramble AddressScramble::identity(std::size_t rows,
                                          std::size_t col_groups) {
  std::vector<std::size_t> r(rows), c(col_groups);
  for (std::size_t i = 0; i < rows; ++i) r[i] = i;
  for (std::size_t i = 0; i < col_groups; ++i) c[i] = i;
  return AddressScramble(std::move(r), std::move(c));
}

AddressScramble AddressScramble::xor_fold(std::size_t rows,
                                          std::size_t col_groups,
                                          std::size_t row_mask,
                                          std::size_t col_mask) {
  std::vector<std::size_t> r(rows), c(col_groups);
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t v = i ^ row_mask;
    SRAMLP_REQUIRE(v < rows, "row XOR mask leaves the address space");
    r[i] = v;
  }
  for (std::size_t i = 0; i < col_groups; ++i) {
    const std::size_t v = i ^ col_mask;
    SRAMLP_REQUIRE(v < col_groups, "column XOR mask leaves the address space");
    c[i] = v;
  }
  return AddressScramble(std::move(r), std::move(c));
}

AddressScramble AddressScramble::row_bit_reversal(std::size_t rows,
                                                  std::size_t col_groups) {
  SRAMLP_REQUIRE(rows != 0 && (rows & (rows - 1)) == 0,
                 "bit reversal needs a power-of-two row count");
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < rows) ++bits;
  std::vector<std::size_t> r(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    std::size_t v = 0;
    for (std::size_t b = 0; b < bits; ++b)
      if (i & (std::size_t{1} << b)) v |= std::size_t{1} << (bits - 1 - b);
    r[i] = v;
  }
  std::vector<std::size_t> c(col_groups);
  for (std::size_t i = 0; i < col_groups; ++i) c[i] = i;
  return AddressScramble(std::move(r), std::move(c));
}

AddressScramble AddressScramble::custom(std::vector<std::size_t> row_map,
                                        std::vector<std::size_t> col_map) {
  return AddressScramble(std::move(row_map), std::move(col_map));
}

PhysicalAddress AddressScramble::to_physical(std::size_t logical_row,
                                             std::size_t logical_col) const {
  SRAMLP_REQUIRE(logical_row < rows() && logical_col < col_groups(),
                 "logical address out of range");
  return {row_map_[logical_row], col_map_[logical_col]};
}

PhysicalAddress AddressScramble::to_logical(std::size_t physical_row,
                                            std::size_t physical_col) const {
  SRAMLP_REQUIRE(physical_row < rows() && physical_col < col_groups(),
                 "physical address out of range");
  return {row_inverse_[physical_row], col_inverse_[physical_col]};
}

bool AddressScramble::is_identity() const {
  for (std::size_t i = 0; i < row_map_.size(); ++i)
    if (row_map_[i] != i) return false;
  for (std::size_t i = 0; i < col_map_.size(); ++i)
    if (col_map_[i] != i) return false;
  return true;
}

}  // namespace sramlp::sram
