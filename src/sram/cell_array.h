// Packed bit storage for the cell matrix.
//
// Cells are stored 64 per uint64_t word in row-major flat order, so besides
// the checked per-cell accessors the array exposes word-parallel primitives
// over up-to-64-column row slices: gather (row_bits), scatter
// (set_row_bits) and compare-and-copy (copy_row_bits).  The bitsliced
// SramArray fast path uses them for whole-word March writes, read-compare
// fault detection and the faulty-swap overpowering check, replacing
// per-cell loops with one or two word operations.
#pragma once

#include <cstdint>
#include <vector>

#include "sram/geometry.h"

namespace sramlp::sram {

/// rows x cols bit matrix with 64-cell packing.
class CellArray {
 public:
  explicit CellArray(const Geometry& geometry, bool fill = false);

  const Geometry& geometry() const { return geometry_; }

  bool get(std::size_t row, std::size_t col) const {
    check(row, col);
    return get_unchecked(row, col);
  }

  void set(std::size_t row, std::size_t col, bool value) {
    check(row, col);
    set_unchecked(row, col, value);
  }

  /// Unchecked accessors for validated hot paths (the cycle simulator
  /// bounds-checks the command once per cycle, not once per cell).
  bool get_unchecked(std::size_t row, std::size_t col) const {
    const std::size_t flat = row * geometry_.cols + col;
    return (words_[flat >> 6] >> (flat & 63)) & 1u;
  }

  void set_unchecked(std::size_t row, std::size_t col, bool value) {
    const std::size_t flat = row * geometry_.cols + col;
    const std::uint64_t mask = std::uint64_t{1} << (flat & 63);
    if (value)
      words_[flat >> 6] |= mask;
    else
      words_[flat >> 6] &= ~mask;
  }

  /// Gather @p count cells (1..64) of one row starting at @p col into the
  /// low bits of a word (bit b = cell at col + b).  Rows are packed flat,
  /// so the slice may straddle one word boundary.
  std::uint64_t row_bits(std::size_t row, std::size_t col,
                         std::size_t count) const;

  /// Scatter the low @p count bits of @p bits into one row at @p col.
  void set_row_bits(std::size_t row, std::size_t col, std::size_t count,
                    std::uint64_t bits);

  /// Overwrite @p count cells of @p dst_row at @p col with the matching
  /// cells of @p src_row; returns how many cells changed value.  This is
  /// the word-parallel core of the faulty-swap check: a discharged
  /// bit-line pair imposes the driving row's value on the newly connected
  /// row, flipping exactly the cells whose stored bit differs.
  std::uint32_t copy_row_bits(std::size_t dst_row, std::size_t src_row,
                              std::size_t col, std::size_t count);

  /// copy_row_bits over an arbitrarily wide slice (any @p count): when the
  /// two rows' word alignment matches, the interior runs word-at-a-time
  /// with a SIMD xor-popcount; otherwise it falls back to 64-bit chunks.
  /// Cell results are identical to chunked copy_row_bits either way.
  std::uint32_t copy_row_range(std::size_t dst_row, std::size_t src_row,
                               std::size_t col, std::size_t count);

  /// True when the @p count cells starting at (@p row, @p col) equal the
  /// 64-periodic bitstream whose bit at slice offset s is
  /// (pattern >> (s & 63)) & 1.  All March data backgrounds have column
  /// period 1 or 2, so a whole word group's expected physical data is one
  /// such stream; this is the word-parallel read-compare of the bitsliced
  /// engine's unhooked data path (SIMD over the interior words).
  bool row_matches_pattern(std::size_t row, std::size_t col,
                           std::size_t count, std::uint64_t pattern) const;

  /// Overwrite @p count cells starting at (@p row, @p col) with the same
  /// 64-periodic bitstream (word-parallel write of the unhooked path).
  void fill_row_pattern(std::size_t row, std::size_t col, std::size_t count,
                        std::uint64_t pattern);

  void fill(bool value);

  /// Number of cells currently holding 1.
  std::size_t popcount() const;

  /// True when every cell equals @p value.
  bool uniform(bool value) const;

 private:
  void check(std::size_t row, std::size_t col) const {
    SRAMLP_REQUIRE(row < geometry_.rows && col < geometry_.cols,
                   "cell coordinate outside the array");
  }

  Geometry geometry_;
  std::vector<std::uint64_t> words_;
};

}  // namespace sramlp::sram
