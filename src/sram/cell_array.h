// Packed bit storage for the cell matrix.
#pragma once

#include <cstdint>
#include <vector>

#include "sram/geometry.h"

namespace sramlp::sram {

/// rows x cols bit matrix with 64-cell packing.
class CellArray {
 public:
  explicit CellArray(const Geometry& geometry, bool fill = false);

  const Geometry& geometry() const { return geometry_; }

  bool get(std::size_t row, std::size_t col) const {
    check(row, col);
    const std::size_t flat = row * geometry_.cols + col;
    return (words_[flat >> 6] >> (flat & 63)) & 1u;
  }

  void set(std::size_t row, std::size_t col, bool value) {
    check(row, col);
    const std::size_t flat = row * geometry_.cols + col;
    const std::uint64_t mask = std::uint64_t{1} << (flat & 63);
    if (value)
      words_[flat >> 6] |= mask;
    else
      words_[flat >> 6] &= ~mask;
  }

  void fill(bool value);

  /// Number of cells currently holding 1.
  std::size_t popcount() const;

  /// True when every cell equals @p value.
  bool uniform(bool value) const;

 private:
  void check(std::size_t row, std::size_t col) const {
    SRAMLP_REQUIRE(row < geometry_.rows && col < geometry_.cols,
                   "cell coordinate outside the array");
  }

  Geometry geometry_;
  std::vector<std::uint64_t> words_;
};

}  // namespace sramlp::sram
