#include "sram/simd.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>

// The vector kernels are compiled with per-function target attributes and
// guarded by runtime dispatch, so the library still builds and runs on any
// x86-64 (or, scalar-only, on any architecture) regardless of -march.  On
// aarch64 ASIMD is part of the baseline ISA, so the NEON kernels need no
// target attributes or runtime probing at all.
#if !defined(SRAMLP_DISABLE_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define SRAMLP_SIMD_X86 1
#include <immintrin.h>
#elif !defined(SRAMLP_DISABLE_SIMD) && defined(__aarch64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define SRAMLP_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace sramlp::sram::simd {

namespace {

int rank(Level level) { return static_cast<int>(level); }

Level min_level(Level a, Level b) { return rank(a) <= rank(b) ? a : b; }

/// SRAMLP_SIMD caps (never raises) the hardware level: "scalar" pins the
/// fallback, "avx2" disables the AVX-512 variants on capable machines.
/// A level the build has no code for dispatches to scalar, so capping an
/// x86 machine at "neon" is an explicit scalar pin, not an error.
Level cap_from_env(Level hw) {
  const char* env = std::getenv("SRAMLP_SIMD");
  if (env == nullptr || env[0] == '\0') return hw;
  if (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "off") == 0 ||
      std::strcmp(env, "0") == 0)
    return Level::kScalar;
  if (std::strcmp(env, "neon") == 0) return min_level(hw, Level::kNeon);
  if (std::strcmp(env, "avx2") == 0) return min_level(hw, Level::kAvx2);
  if (std::strcmp(env, "avx512") == 0) return min_level(hw, Level::kAvx512);
  return hw;  // unknown value: keep the detected level
}

Level detect() {
  Level hw = Level::kScalar;
#if defined(SRAMLP_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) hw = Level::kAvx2;
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512vpopcntdq"))
    hw = Level::kAvx512;
#elif defined(SRAMLP_SIMD_NEON)
  hw = Level::kNeon;  // ASIMD is architecturally guaranteed on aarch64
#endif
  return cap_from_env(hw);
}

std::atomic<int> g_forced{-1};

}  // namespace

Level detected_level() {
  static const Level level = detect();
  return level;
}

Level active_level() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  const Level detected = detected_level();
  if (forced < 0) return detected;
  return min_level(static_cast<Level>(forced), detected);
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kNeon: return "neon";
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
  }
  return "?";
}

void set_level_for_testing(Level level) {
  g_forced.store(rank(min_level(level, detected_level())),
                 std::memory_order_relaxed);
}

void reset_level_for_testing() {
  g_forced.store(-1, std::memory_order_relaxed);
}

// --- cohort evaluation -------------------------------------------------------

namespace {

/// The executable specification: the exact expression tree of
/// SramArray::eval_cohort, one factor at a time.  Also the remainder loop
/// of the vector variants.
void cohort_eval_scalar(const double* factors, std::size_t n,
                        const CohortEvalConstants& k, double* v_low,
                        double* stress_j, double* dv, double* equiv,
                        double* recharge_e) {
  for (std::size_t i = 0; i < n; ++i) {
    const double v = k.vdd * factors[i];
    const double d = k.vdd - v;
    v_low[i] = v;
    stress_j[i] = k.half_c * (k.vdd * k.vdd - v * v);
    dv[i] = d;
    equiv[i] = k.tau_over_duty * d / k.vdd;
    recharge_e[i] = k.c_vdd * d;
  }
}

#ifdef SRAMLP_SIMD_X86

// Lane-exact: vmulpd/vsubpd/vdivpd are correctly-rounded IEEE-754 per
// lane, exactly like the scalar *, -, / above; the explicit intrinsics
// also make FMA contraction impossible whatever the target flags.
__attribute__((target("avx2"))) void cohort_eval_avx2(
    const double* factors, std::size_t n, const CohortEvalConstants& k,
    double* v_low, double* stress_j, double* dv, double* equiv,
    double* recharge_e) {
  const __m256d vdd = _mm256_set1_pd(k.vdd);
  const __m256d vdd2 = _mm256_mul_pd(vdd, vdd);
  const __m256d half_c = _mm256_set1_pd(k.half_c);
  const __m256d tau = _mm256_set1_pd(k.tau_over_duty);
  const __m256d c_vdd = _mm256_set1_pd(k.c_vdd);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d f = _mm256_loadu_pd(factors + i);
    const __m256d v = _mm256_mul_pd(vdd, f);
    const __m256d d = _mm256_sub_pd(vdd, v);
    _mm256_storeu_pd(v_low + i, v);
    _mm256_storeu_pd(
        stress_j + i,
        _mm256_mul_pd(half_c, _mm256_sub_pd(vdd2, _mm256_mul_pd(v, v))));
    _mm256_storeu_pd(dv + i, d);
    _mm256_storeu_pd(equiv + i, _mm256_div_pd(_mm256_mul_pd(tau, d), vdd));
    _mm256_storeu_pd(recharge_e + i, _mm256_mul_pd(c_vdd, d));
  }
  cohort_eval_scalar(factors + i, n - i, k, v_low + i, stress_j + i, dv + i,
                     equiv + i, recharge_e + i);
}

__attribute__((target("avx512f"))) void cohort_eval_avx512(
    const double* factors, std::size_t n, const CohortEvalConstants& k,
    double* v_low, double* stress_j, double* dv, double* equiv,
    double* recharge_e) {
  const __m512d vdd = _mm512_set1_pd(k.vdd);
  const __m512d vdd2 = _mm512_mul_pd(vdd, vdd);
  const __m512d half_c = _mm512_set1_pd(k.half_c);
  const __m512d tau = _mm512_set1_pd(k.tau_over_duty);
  const __m512d c_vdd = _mm512_set1_pd(k.c_vdd);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d f = _mm512_loadu_pd(factors + i);
    const __m512d v = _mm512_mul_pd(vdd, f);
    const __m512d d = _mm512_sub_pd(vdd, v);
    _mm512_storeu_pd(v_low + i, v);
    _mm512_storeu_pd(
        stress_j + i,
        _mm512_mul_pd(half_c, _mm512_sub_pd(vdd2, _mm512_mul_pd(v, v))));
    _mm512_storeu_pd(dv + i, d);
    _mm512_storeu_pd(equiv + i, _mm512_div_pd(_mm512_mul_pd(tau, d), vdd));
    _mm512_storeu_pd(recharge_e + i, _mm512_mul_pd(c_vdd, d));
  }
  cohort_eval_scalar(factors + i, n - i, k, v_low + i, stress_j + i, dv + i,
                     equiv + i, recharge_e + i);
}

#endif  // SRAMLP_SIMD_X86

#ifdef SRAMLP_SIMD_NEON

// Lane-exact like the x86 variants: vmulq_f64/vsubq_f64/vdivq_f64 are
// correctly-rounded IEEE-754 per lane and, as explicit intrinsics, can
// never be contracted into the fused vfmaq form.
void cohort_eval_neon(const double* factors, std::size_t n,
                      const CohortEvalConstants& k, double* v_low,
                      double* stress_j, double* dv, double* equiv,
                      double* recharge_e) {
  const float64x2_t vdd = vdupq_n_f64(k.vdd);
  const float64x2_t vdd2 = vmulq_f64(vdd, vdd);
  const float64x2_t half_c = vdupq_n_f64(k.half_c);
  const float64x2_t tau = vdupq_n_f64(k.tau_over_duty);
  const float64x2_t c_vdd = vdupq_n_f64(k.c_vdd);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t f = vld1q_f64(factors + i);
    const float64x2_t v = vmulq_f64(vdd, f);
    const float64x2_t d = vsubq_f64(vdd, v);
    vst1q_f64(v_low + i, v);
    vst1q_f64(stress_j + i,
              vmulq_f64(half_c, vsubq_f64(vdd2, vmulq_f64(v, v))));
    vst1q_f64(dv + i, d);
    vst1q_f64(equiv + i, vdivq_f64(vmulq_f64(tau, d), vdd));
    vst1q_f64(recharge_e + i, vmulq_f64(c_vdd, d));
  }
  cohort_eval_scalar(factors + i, n - i, k, v_low + i, stress_j + i, dv + i,
                     equiv + i, recharge_e + i);
}

#endif  // SRAMLP_SIMD_NEON

}  // namespace

void cohort_eval_batch(const double* factors, std::size_t n,
                       const CohortEvalConstants& k, double* v_low,
                       double* stress_j, double* dv, double* equiv,
                       double* recharge_e) {
#if defined(SRAMLP_SIMD_X86)
  switch (active_level()) {
    case Level::kAvx512:
      cohort_eval_avx512(factors, n, k, v_low, stress_j, dv, equiv,
                         recharge_e);
      return;
    case Level::kAvx2:
      cohort_eval_avx2(factors, n, k, v_low, stress_j, dv, equiv, recharge_e);
      return;
    case Level::kNeon: break;  // no NEON code in an x86 build: scalar
    case Level::kScalar: break;
  }
#elif defined(SRAMLP_SIMD_NEON)
  if (active_level() != Level::kScalar) {
    cohort_eval_neon(factors, n, k, v_low, stress_j, dv, equiv, recharge_e);
    return;
  }
#endif
  cohort_eval_scalar(factors, n, k, v_low, stress_j, dv, equiv, recharge_e);
}

// --- candidate-schedule scoring ---------------------------------------------

namespace {

/// The executable specification of search_score_batch, one lane at a time.
/// @p stride is the lane count of the FULL batch (the SoA row stride); the
/// vector variants reuse this loop for their remainder lanes by offsetting
/// the base pointers while keeping the original stride.
///
/// Window-walk state per lane: `fill` cycles and `acc` joules sit in the
/// current partial window; `peak` tracks the max closed-window energy.
/// Each slot contributes a head (closing the current window if it crosses),
/// m full windows of r*W each, and a tail that reopens the partial window.
/// Every step is a two-way select on one comparison, so the vector variants
/// express the identical tree with cmp+blend.
void search_score_scalar(const double* rates, const double* cycles,
                         std::size_t lanes, std::size_t stride,
                         std::size_t slots, double window, double* energy_j,
                         double* total_cycles, double* peak_window_j) {
  for (std::size_t l = 0; l < lanes; ++l) {
    double energy = 0.0;
    double cyc = 0.0;
    double fill = 0.0;
    double acc = 0.0;
    double peak = 0.0;
    for (std::size_t s = 0; s < slots; ++s) {
      const double r = rates[s * stride + l];
      const double c = cycles[s * stride + l];
      energy += r * c;
      cyc += c;
      const double avail = window - fill;
      const bool crosses = c >= avail;
      const double head = crosses ? avail : c;
      const double acc_head = acc + r * head;
      const double rem = crosses ? c - avail : 0.0;
      const double m = std::floor(rem / window);
      const double closed = crosses ? acc_head : 0.0;
      peak = std::max(peak, closed);
      const double mid = m >= 1.0 ? r * window : 0.0;
      peak = std::max(peak, mid);
      const double tail = rem - m * window;
      acc = crosses ? r * tail : acc_head;
      fill = crosses ? tail : fill + c;
    }
    // The trailing partial window is rated against the full window width by
    // PowerTrace, so its energy competes for the peak as-is.
    peak = std::max(peak, acc);
    energy_j[l] = energy;
    total_cycles[l] = cyc;
    peak_window_j[l] = peak;
  }
}

#ifdef SRAMLP_SIMD_X86

// Lane-exact: mul/sub/div/floor/max/cmp+blend only, each the correctly
// rounded IEEE-754 image of the scalar expression; no FMA can form from
// explicit intrinsics.
__attribute__((target("avx2"))) void search_score_avx2(
    const double* rates, const double* cycles, std::size_t lanes,
    std::size_t slots, double window, double* energy_j, double* total_cycles,
    double* peak_window_j) {
  const __m256d w = _mm256_set1_pd(window);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t l = 0;
  for (; l + 4 <= lanes; l += 4) {
    __m256d energy = zero;
    __m256d cyc = zero;
    __m256d fill = zero;
    __m256d acc = zero;
    __m256d peak = zero;
    for (std::size_t s = 0; s < slots; ++s) {
      const __m256d r = _mm256_loadu_pd(rates + s * lanes + l);
      const __m256d c = _mm256_loadu_pd(cycles + s * lanes + l);
      energy = _mm256_add_pd(energy, _mm256_mul_pd(r, c));
      cyc = _mm256_add_pd(cyc, c);
      const __m256d avail = _mm256_sub_pd(w, fill);
      const __m256d crosses = _mm256_cmp_pd(c, avail, _CMP_GE_OQ);
      const __m256d head = _mm256_blendv_pd(c, avail, crosses);
      const __m256d acc_head = _mm256_add_pd(acc, _mm256_mul_pd(r, head));
      const __m256d rem =
          _mm256_blendv_pd(zero, _mm256_sub_pd(c, avail), crosses);
      const __m256d m = _mm256_floor_pd(_mm256_div_pd(rem, w));
      const __m256d closed = _mm256_blendv_pd(zero, acc_head, crosses);
      peak = _mm256_max_pd(peak, closed);
      const __m256d mid = _mm256_blendv_pd(
          zero, _mm256_mul_pd(r, w), _mm256_cmp_pd(m, one, _CMP_GE_OQ));
      peak = _mm256_max_pd(peak, mid);
      const __m256d tail = _mm256_sub_pd(rem, _mm256_mul_pd(m, w));
      acc = _mm256_blendv_pd(acc_head, _mm256_mul_pd(r, tail), crosses);
      fill = _mm256_blendv_pd(_mm256_add_pd(fill, c), tail, crosses);
    }
    peak = _mm256_max_pd(peak, acc);
    _mm256_storeu_pd(energy_j + l, energy);
    _mm256_storeu_pd(total_cycles + l, cyc);
    _mm256_storeu_pd(peak_window_j + l, peak);
  }
  search_score_scalar(rates + l, cycles + l, lanes - l, lanes, slots, window,
                      energy_j + l, total_cycles + l, peak_window_j + l);
}

__attribute__((target("avx512f"))) void search_score_avx512(
    const double* rates, const double* cycles, std::size_t lanes,
    std::size_t slots, double window, double* energy_j, double* total_cycles,
    double* peak_window_j) {
  const __m512d w = _mm512_set1_pd(window);
  const __m512d zero = _mm512_setzero_pd();
  const __m512d one = _mm512_set1_pd(1.0);
  std::size_t l = 0;
  for (; l + 8 <= lanes; l += 8) {
    __m512d energy = zero;
    __m512d cyc = zero;
    __m512d fill = zero;
    __m512d acc = zero;
    __m512d peak = zero;
    for (std::size_t s = 0; s < slots; ++s) {
      const __m512d r = _mm512_loadu_pd(rates + s * lanes + l);
      const __m512d c = _mm512_loadu_pd(cycles + s * lanes + l);
      energy = _mm512_add_pd(energy, _mm512_mul_pd(r, c));
      cyc = _mm512_add_pd(cyc, c);
      const __m512d avail = _mm512_sub_pd(w, fill);
      const __mmask8 crosses = _mm512_cmp_pd_mask(c, avail, _CMP_GE_OQ);
      const __m512d head = _mm512_mask_blend_pd(crosses, c, avail);
      const __m512d acc_head = _mm512_add_pd(acc, _mm512_mul_pd(r, head));
      const __m512d rem =
          _mm512_mask_blend_pd(crosses, zero, _mm512_sub_pd(c, avail));
      const __m512d m = _mm512_roundscale_pd(
          _mm512_div_pd(rem, w), _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
      const __m512d closed = _mm512_mask_blend_pd(crosses, zero, acc_head);
      peak = _mm512_max_pd(peak, closed);
      const __m512d mid = _mm512_mask_blend_pd(
          _mm512_cmp_pd_mask(m, one, _CMP_GE_OQ), zero, _mm512_mul_pd(r, w));
      peak = _mm512_max_pd(peak, mid);
      const __m512d tail = _mm512_sub_pd(rem, _mm512_mul_pd(m, w));
      acc = _mm512_mask_blend_pd(crosses, acc_head, _mm512_mul_pd(r, tail));
      fill = _mm512_mask_blend_pd(crosses, _mm512_add_pd(fill, c), tail);
    }
    peak = _mm512_max_pd(peak, acc);
    _mm512_storeu_pd(energy_j + l, energy);
    _mm512_storeu_pd(total_cycles + l, cyc);
    _mm512_storeu_pd(peak_window_j + l, peak);
  }
  search_score_scalar(rates + l, cycles + l, lanes - l, lanes, slots, window,
                      energy_j + l, total_cycles + l, peak_window_j + l);
}

#endif  // SRAMLP_SIMD_X86

#ifdef SRAMLP_SIMD_NEON

// Lane-exact like the x86 variants; vbslq selects per lane off the vcgeq
// mask, vrndmq is floor, and explicit intrinsics prevent FMA contraction.
void search_score_neon(const double* rates, const double* cycles,
                       std::size_t lanes, std::size_t slots, double window,
                       double* energy_j, double* total_cycles,
                       double* peak_window_j) {
  const float64x2_t w = vdupq_n_f64(window);
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t one = vdupq_n_f64(1.0);
  std::size_t l = 0;
  for (; l + 2 <= lanes; l += 2) {
    float64x2_t energy = zero;
    float64x2_t cyc = zero;
    float64x2_t fill = zero;
    float64x2_t acc = zero;
    float64x2_t peak = zero;
    for (std::size_t s = 0; s < slots; ++s) {
      const float64x2_t r = vld1q_f64(rates + s * lanes + l);
      const float64x2_t c = vld1q_f64(cycles + s * lanes + l);
      energy = vaddq_f64(energy, vmulq_f64(r, c));
      cyc = vaddq_f64(cyc, c);
      const float64x2_t avail = vsubq_f64(w, fill);
      const uint64x2_t crosses = vcgeq_f64(c, avail);
      const float64x2_t head = vbslq_f64(crosses, avail, c);
      const float64x2_t acc_head = vaddq_f64(acc, vmulq_f64(r, head));
      const float64x2_t rem = vbslq_f64(crosses, vsubq_f64(c, avail), zero);
      const float64x2_t m = vrndmq_f64(vdivq_f64(rem, w));
      const float64x2_t closed = vbslq_f64(crosses, acc_head, zero);
      peak = vmaxq_f64(peak, closed);
      const float64x2_t mid =
          vbslq_f64(vcgeq_f64(m, one), vmulq_f64(r, w), zero);
      peak = vmaxq_f64(peak, mid);
      const float64x2_t tail = vsubq_f64(rem, vmulq_f64(m, w));
      acc = vbslq_f64(crosses, vmulq_f64(r, tail), acc_head);
      fill = vbslq_f64(crosses, tail, vaddq_f64(fill, c));
    }
    peak = vmaxq_f64(peak, acc);
    vst1q_f64(energy_j + l, energy);
    vst1q_f64(total_cycles + l, cyc);
    vst1q_f64(peak_window_j + l, peak);
  }
  search_score_scalar(rates + l, cycles + l, lanes - l, lanes, slots, window,
                      energy_j + l, total_cycles + l, peak_window_j + l);
}

#endif  // SRAMLP_SIMD_NEON

}  // namespace

void search_score_batch(const double* rates, const double* cycles,
                        std::size_t lanes, std::size_t slots,
                        double window_cycles, double* energy_j,
                        double* total_cycles, double* peak_window_j) {
#if defined(SRAMLP_SIMD_X86)
  switch (active_level()) {
    case Level::kAvx512:
      search_score_avx512(rates, cycles, lanes, slots, window_cycles,
                          energy_j, total_cycles, peak_window_j);
      return;
    case Level::kAvx2:
      search_score_avx2(rates, cycles, lanes, slots, window_cycles, energy_j,
                        total_cycles, peak_window_j);
      return;
    case Level::kNeon: break;  // no NEON code in an x86 build: scalar
    case Level::kScalar: break;
  }
#elif defined(SRAMLP_SIMD_NEON)
  if (active_level() != Level::kScalar) {
    search_score_neon(rates, cycles, lanes, slots, window_cycles, energy_j,
                      total_cycles, peak_window_j);
    return;
  }
#endif
  search_score_scalar(rates, cycles, lanes, lanes, slots, window_cycles,
                      energy_j, total_cycles, peak_window_j);
}

// --- word kernels ------------------------------------------------------------

namespace {

std::uint64_t popcount_scalar(const std::uint64_t* words, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i)
    total += static_cast<std::uint64_t>(std::popcount(words[i]));
  return total;
}

#ifdef SRAMLP_SIMD_X86

/// In-register nibble-LUT popcount (Mula): per-byte counts via PSHUFB,
/// horizontally summed with PSADBW.  Exact, like any popcount.
__attribute__((target("avx2"))) inline __m256i popcount_bytes_avx2(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

__attribute__((target("avx2"))) std::uint64_t horizontal_sum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(sum)) +
         static_cast<std::uint64_t>(
             _mm_cvtsi128_si64(_mm_unpackhi_epi64(sum, sum)));
}

__attribute__((target("avx2"))) std::uint64_t popcount_avx2(
    const std::uint64_t* words, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    acc = _mm256_add_epi64(
        acc, _mm256_sad_epu8(popcount_bytes_avx2(v), _mm256_setzero_si256()));
  }
  return horizontal_sum_epi64(acc) + popcount_scalar(words + i, n - i);
}

__attribute__((target("avx2"))) std::uint64_t xor_popcount_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    acc = _mm256_add_epi64(
        acc, _mm256_sad_epu8(popcount_bytes_avx2(v), _mm256_setzero_si256()));
  }
  std::uint64_t total = horizontal_sum_epi64(acc);
  for (; i < n; ++i)
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  return total;
}

__attribute__((target("avx2"))) bool all_words_equal_avx2(
    const std::uint64_t* words, std::size_t n, std::uint64_t pattern) {
  const __m256i p = _mm256_set1_epi64x(static_cast<long long>(pattern));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi64(v, p)) != -1) return false;
  }
  for (; i < n; ++i)
    if (words[i] != pattern) return false;
  return true;
}

__attribute__((target("avx512f,avx512vpopcntdq"))) std::uint64_t
popcount_avx512(const std::uint64_t* words, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v =
        _mm512_loadu_si512(reinterpret_cast<const void*>(words + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  return static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc)) +
         popcount_scalar(words + i, n - i);
}

__attribute__((target("avx512f,avx512vpopcntdq"))) std::uint64_t
xor_popcount_avx512(const std::uint64_t* a, const std::uint64_t* b,
                    std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_xor_si512(
        _mm512_loadu_si512(reinterpret_cast<const void*>(a + i)),
        _mm512_loadu_si512(reinterpret_cast<const void*>(b + i)));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::uint64_t total = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i)
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  return total;
}

__attribute__((target("avx512f"))) bool all_words_equal_avx512(
    const std::uint64_t* words, std::size_t n, std::uint64_t pattern) {
  const __m512i p = _mm512_set1_epi64(static_cast<long long>(pattern));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v =
        _mm512_loadu_si512(reinterpret_cast<const void*>(words + i));
    if (_mm512_cmpneq_epi64_mask(v, p) != 0) return false;
  }
  for (; i < n; ++i)
    if (words[i] != pattern) return false;
  return true;
}

#endif  // SRAMLP_SIMD_X86

#ifdef SRAMLP_SIMD_NEON

/// CNT counts bits per byte; ADDLV sums the 16 byte-counts (max 128, no
/// overflow) into one scalar.  Exact, like any popcount.
std::uint64_t popcount_neon(const std::uint64_t* words, std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t v = vreinterpretq_u8_u64(vld1q_u64(words + i));
    total += vaddlvq_u8(vcntq_u8(v));
  }
  return total + popcount_scalar(words + i, n - i);
}

std::uint64_t xor_popcount_neon(const std::uint64_t* a,
                                const std::uint64_t* b, std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    total += vaddlvq_u8(vcntq_u8(vreinterpretq_u8_u64(v)));
  }
  for (; i < n; ++i)
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  return total;
}

bool all_words_equal_neon(const std::uint64_t* words, std::size_t n,
                          std::uint64_t pattern) {
  const uint64x2_t p = vdupq_n_u64(pattern);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t eq = vceqq_u64(vld1q_u64(words + i), p);
    // Equal lanes are all-ones; a single zero 32-bit chunk means mismatch.
    if (vminvq_u32(vreinterpretq_u32_u64(eq)) != 0xffffffffu) return false;
  }
  for (; i < n; ++i)
    if (words[i] != pattern) return false;
  return true;
}

#endif  // SRAMLP_SIMD_NEON

}  // namespace

std::uint64_t popcount_words(const std::uint64_t* words, std::size_t n) {
#if defined(SRAMLP_SIMD_X86)
  switch (active_level()) {
    case Level::kAvx512: return popcount_avx512(words, n);
    case Level::kAvx2: return popcount_avx2(words, n);
    case Level::kNeon: break;  // no NEON code in an x86 build: scalar
    case Level::kScalar: break;
  }
#elif defined(SRAMLP_SIMD_NEON)
  if (active_level() != Level::kScalar) return popcount_neon(words, n);
#endif
  return popcount_scalar(words, n);
}

std::uint64_t xor_popcount_words(const std::uint64_t* a,
                                 const std::uint64_t* b, std::size_t n) {
#if defined(SRAMLP_SIMD_X86)
  switch (active_level()) {
    case Level::kAvx512: return xor_popcount_avx512(a, b, n);
    case Level::kAvx2: return xor_popcount_avx2(a, b, n);
    case Level::kNeon: break;  // no NEON code in an x86 build: scalar
    case Level::kScalar: break;
  }
#elif defined(SRAMLP_SIMD_NEON)
  if (active_level() != Level::kScalar) return xor_popcount_neon(a, b, n);
#endif
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i)
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  return total;
}

bool all_words_equal(const std::uint64_t* words, std::size_t n,
                     std::uint64_t pattern) {
#if defined(SRAMLP_SIMD_X86)
  switch (active_level()) {
    case Level::kAvx512: return all_words_equal_avx512(words, n, pattern);
    case Level::kAvx2: return all_words_equal_avx2(words, n, pattern);
    case Level::kNeon: break;  // no NEON code in an x86 build: scalar
    case Level::kScalar: break;
  }
#elif defined(SRAMLP_SIMD_NEON)
  if (active_level() != Level::kScalar)
    return all_words_equal_neon(words, n, pattern);
#endif
  for (std::size_t i = 0; i < n; ++i)
    if (words[i] != pattern) return false;
  return true;
}

}  // namespace sramlp::sram::simd
