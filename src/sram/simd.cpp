#include "sram/simd.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

// The vector kernels are compiled with per-function target attributes and
// guarded by runtime dispatch, so the library still builds and runs on any
// x86-64 (or, scalar-only, on any architecture) regardless of -march.  On
// aarch64 ASIMD is part of the baseline ISA, so the NEON kernels need no
// target attributes or runtime probing at all.
#if !defined(SRAMLP_DISABLE_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define SRAMLP_SIMD_X86 1
#include <immintrin.h>
#elif !defined(SRAMLP_DISABLE_SIMD) && defined(__aarch64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define SRAMLP_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace sramlp::sram::simd {

namespace {

int rank(Level level) { return static_cast<int>(level); }

Level min_level(Level a, Level b) { return rank(a) <= rank(b) ? a : b; }

/// SRAMLP_SIMD caps (never raises) the hardware level: "scalar" pins the
/// fallback, "avx2" disables the AVX-512 variants on capable machines.
/// A level the build has no code for dispatches to scalar, so capping an
/// x86 machine at "neon" is an explicit scalar pin, not an error.
Level cap_from_env(Level hw) {
  const char* env = std::getenv("SRAMLP_SIMD");
  if (env == nullptr || env[0] == '\0') return hw;
  if (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "off") == 0 ||
      std::strcmp(env, "0") == 0)
    return Level::kScalar;
  if (std::strcmp(env, "neon") == 0) return min_level(hw, Level::kNeon);
  if (std::strcmp(env, "avx2") == 0) return min_level(hw, Level::kAvx2);
  if (std::strcmp(env, "avx512") == 0) return min_level(hw, Level::kAvx512);
  return hw;  // unknown value: keep the detected level
}

Level detect() {
  Level hw = Level::kScalar;
#if defined(SRAMLP_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) hw = Level::kAvx2;
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512vpopcntdq"))
    hw = Level::kAvx512;
#elif defined(SRAMLP_SIMD_NEON)
  hw = Level::kNeon;  // ASIMD is architecturally guaranteed on aarch64
#endif
  return cap_from_env(hw);
}

std::atomic<int> g_forced{-1};

}  // namespace

Level detected_level() {
  static const Level level = detect();
  return level;
}

Level active_level() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  const Level detected = detected_level();
  if (forced < 0) return detected;
  return min_level(static_cast<Level>(forced), detected);
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kNeon: return "neon";
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
  }
  return "?";
}

void set_level_for_testing(Level level) {
  g_forced.store(rank(min_level(level, detected_level())),
                 std::memory_order_relaxed);
}

void reset_level_for_testing() {
  g_forced.store(-1, std::memory_order_relaxed);
}

// --- cohort evaluation -------------------------------------------------------

namespace {

/// The executable specification: the exact expression tree of
/// SramArray::eval_cohort, one factor at a time.  Also the remainder loop
/// of the vector variants.
void cohort_eval_scalar(const double* factors, std::size_t n,
                        const CohortEvalConstants& k, double* v_low,
                        double* stress_j, double* dv, double* equiv,
                        double* recharge_e) {
  for (std::size_t i = 0; i < n; ++i) {
    const double v = k.vdd * factors[i];
    const double d = k.vdd - v;
    v_low[i] = v;
    stress_j[i] = k.half_c * (k.vdd * k.vdd - v * v);
    dv[i] = d;
    equiv[i] = k.tau_over_duty * d / k.vdd;
    recharge_e[i] = k.c_vdd * d;
  }
}

#ifdef SRAMLP_SIMD_X86

// Lane-exact: vmulpd/vsubpd/vdivpd are correctly-rounded IEEE-754 per
// lane, exactly like the scalar *, -, / above; the explicit intrinsics
// also make FMA contraction impossible whatever the target flags.
__attribute__((target("avx2"))) void cohort_eval_avx2(
    const double* factors, std::size_t n, const CohortEvalConstants& k,
    double* v_low, double* stress_j, double* dv, double* equiv,
    double* recharge_e) {
  const __m256d vdd = _mm256_set1_pd(k.vdd);
  const __m256d vdd2 = _mm256_mul_pd(vdd, vdd);
  const __m256d half_c = _mm256_set1_pd(k.half_c);
  const __m256d tau = _mm256_set1_pd(k.tau_over_duty);
  const __m256d c_vdd = _mm256_set1_pd(k.c_vdd);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d f = _mm256_loadu_pd(factors + i);
    const __m256d v = _mm256_mul_pd(vdd, f);
    const __m256d d = _mm256_sub_pd(vdd, v);
    _mm256_storeu_pd(v_low + i, v);
    _mm256_storeu_pd(
        stress_j + i,
        _mm256_mul_pd(half_c, _mm256_sub_pd(vdd2, _mm256_mul_pd(v, v))));
    _mm256_storeu_pd(dv + i, d);
    _mm256_storeu_pd(equiv + i, _mm256_div_pd(_mm256_mul_pd(tau, d), vdd));
    _mm256_storeu_pd(recharge_e + i, _mm256_mul_pd(c_vdd, d));
  }
  cohort_eval_scalar(factors + i, n - i, k, v_low + i, stress_j + i, dv + i,
                     equiv + i, recharge_e + i);
}

__attribute__((target("avx512f"))) void cohort_eval_avx512(
    const double* factors, std::size_t n, const CohortEvalConstants& k,
    double* v_low, double* stress_j, double* dv, double* equiv,
    double* recharge_e) {
  const __m512d vdd = _mm512_set1_pd(k.vdd);
  const __m512d vdd2 = _mm512_mul_pd(vdd, vdd);
  const __m512d half_c = _mm512_set1_pd(k.half_c);
  const __m512d tau = _mm512_set1_pd(k.tau_over_duty);
  const __m512d c_vdd = _mm512_set1_pd(k.c_vdd);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d f = _mm512_loadu_pd(factors + i);
    const __m512d v = _mm512_mul_pd(vdd, f);
    const __m512d d = _mm512_sub_pd(vdd, v);
    _mm512_storeu_pd(v_low + i, v);
    _mm512_storeu_pd(
        stress_j + i,
        _mm512_mul_pd(half_c, _mm512_sub_pd(vdd2, _mm512_mul_pd(v, v))));
    _mm512_storeu_pd(dv + i, d);
    _mm512_storeu_pd(equiv + i, _mm512_div_pd(_mm512_mul_pd(tau, d), vdd));
    _mm512_storeu_pd(recharge_e + i, _mm512_mul_pd(c_vdd, d));
  }
  cohort_eval_scalar(factors + i, n - i, k, v_low + i, stress_j + i, dv + i,
                     equiv + i, recharge_e + i);
}

#endif  // SRAMLP_SIMD_X86

#ifdef SRAMLP_SIMD_NEON

// Lane-exact like the x86 variants: vmulq_f64/vsubq_f64/vdivq_f64 are
// correctly-rounded IEEE-754 per lane and, as explicit intrinsics, can
// never be contracted into the fused vfmaq form.
void cohort_eval_neon(const double* factors, std::size_t n,
                      const CohortEvalConstants& k, double* v_low,
                      double* stress_j, double* dv, double* equiv,
                      double* recharge_e) {
  const float64x2_t vdd = vdupq_n_f64(k.vdd);
  const float64x2_t vdd2 = vmulq_f64(vdd, vdd);
  const float64x2_t half_c = vdupq_n_f64(k.half_c);
  const float64x2_t tau = vdupq_n_f64(k.tau_over_duty);
  const float64x2_t c_vdd = vdupq_n_f64(k.c_vdd);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t f = vld1q_f64(factors + i);
    const float64x2_t v = vmulq_f64(vdd, f);
    const float64x2_t d = vsubq_f64(vdd, v);
    vst1q_f64(v_low + i, v);
    vst1q_f64(stress_j + i,
              vmulq_f64(half_c, vsubq_f64(vdd2, vmulq_f64(v, v))));
    vst1q_f64(dv + i, d);
    vst1q_f64(equiv + i, vdivq_f64(vmulq_f64(tau, d), vdd));
    vst1q_f64(recharge_e + i, vmulq_f64(c_vdd, d));
  }
  cohort_eval_scalar(factors + i, n - i, k, v_low + i, stress_j + i, dv + i,
                     equiv + i, recharge_e + i);
}

#endif  // SRAMLP_SIMD_NEON

}  // namespace

void cohort_eval_batch(const double* factors, std::size_t n,
                       const CohortEvalConstants& k, double* v_low,
                       double* stress_j, double* dv, double* equiv,
                       double* recharge_e) {
#if defined(SRAMLP_SIMD_X86)
  switch (active_level()) {
    case Level::kAvx512:
      cohort_eval_avx512(factors, n, k, v_low, stress_j, dv, equiv,
                         recharge_e);
      return;
    case Level::kAvx2:
      cohort_eval_avx2(factors, n, k, v_low, stress_j, dv, equiv, recharge_e);
      return;
    case Level::kNeon: break;  // no NEON code in an x86 build: scalar
    case Level::kScalar: break;
  }
#elif defined(SRAMLP_SIMD_NEON)
  if (active_level() != Level::kScalar) {
    cohort_eval_neon(factors, n, k, v_low, stress_j, dv, equiv, recharge_e);
    return;
  }
#endif
  cohort_eval_scalar(factors, n, k, v_low, stress_j, dv, equiv, recharge_e);
}

// --- word kernels ------------------------------------------------------------

namespace {

std::uint64_t popcount_scalar(const std::uint64_t* words, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i)
    total += static_cast<std::uint64_t>(std::popcount(words[i]));
  return total;
}

#ifdef SRAMLP_SIMD_X86

/// In-register nibble-LUT popcount (Mula): per-byte counts via PSHUFB,
/// horizontally summed with PSADBW.  Exact, like any popcount.
__attribute__((target("avx2"))) inline __m256i popcount_bytes_avx2(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

__attribute__((target("avx2"))) std::uint64_t horizontal_sum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(sum)) +
         static_cast<std::uint64_t>(
             _mm_cvtsi128_si64(_mm_unpackhi_epi64(sum, sum)));
}

__attribute__((target("avx2"))) std::uint64_t popcount_avx2(
    const std::uint64_t* words, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    acc = _mm256_add_epi64(
        acc, _mm256_sad_epu8(popcount_bytes_avx2(v), _mm256_setzero_si256()));
  }
  return horizontal_sum_epi64(acc) + popcount_scalar(words + i, n - i);
}

__attribute__((target("avx2"))) std::uint64_t xor_popcount_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    acc = _mm256_add_epi64(
        acc, _mm256_sad_epu8(popcount_bytes_avx2(v), _mm256_setzero_si256()));
  }
  std::uint64_t total = horizontal_sum_epi64(acc);
  for (; i < n; ++i)
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  return total;
}

__attribute__((target("avx2"))) bool all_words_equal_avx2(
    const std::uint64_t* words, std::size_t n, std::uint64_t pattern) {
  const __m256i p = _mm256_set1_epi64x(static_cast<long long>(pattern));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi64(v, p)) != -1) return false;
  }
  for (; i < n; ++i)
    if (words[i] != pattern) return false;
  return true;
}

__attribute__((target("avx512f,avx512vpopcntdq"))) std::uint64_t
popcount_avx512(const std::uint64_t* words, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v =
        _mm512_loadu_si512(reinterpret_cast<const void*>(words + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  return static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc)) +
         popcount_scalar(words + i, n - i);
}

__attribute__((target("avx512f,avx512vpopcntdq"))) std::uint64_t
xor_popcount_avx512(const std::uint64_t* a, const std::uint64_t* b,
                    std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_xor_si512(
        _mm512_loadu_si512(reinterpret_cast<const void*>(a + i)),
        _mm512_loadu_si512(reinterpret_cast<const void*>(b + i)));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::uint64_t total = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i)
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  return total;
}

__attribute__((target("avx512f"))) bool all_words_equal_avx512(
    const std::uint64_t* words, std::size_t n, std::uint64_t pattern) {
  const __m512i p = _mm512_set1_epi64(static_cast<long long>(pattern));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v =
        _mm512_loadu_si512(reinterpret_cast<const void*>(words + i));
    if (_mm512_cmpneq_epi64_mask(v, p) != 0) return false;
  }
  for (; i < n; ++i)
    if (words[i] != pattern) return false;
  return true;
}

#endif  // SRAMLP_SIMD_X86

#ifdef SRAMLP_SIMD_NEON

/// CNT counts bits per byte; ADDLV sums the 16 byte-counts (max 128, no
/// overflow) into one scalar.  Exact, like any popcount.
std::uint64_t popcount_neon(const std::uint64_t* words, std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t v = vreinterpretq_u8_u64(vld1q_u64(words + i));
    total += vaddlvq_u8(vcntq_u8(v));
  }
  return total + popcount_scalar(words + i, n - i);
}

std::uint64_t xor_popcount_neon(const std::uint64_t* a,
                                const std::uint64_t* b, std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    total += vaddlvq_u8(vcntq_u8(vreinterpretq_u8_u64(v)));
  }
  for (; i < n; ++i)
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  return total;
}

bool all_words_equal_neon(const std::uint64_t* words, std::size_t n,
                          std::uint64_t pattern) {
  const uint64x2_t p = vdupq_n_u64(pattern);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t eq = vceqq_u64(vld1q_u64(words + i), p);
    // Equal lanes are all-ones; a single zero 32-bit chunk means mismatch.
    if (vminvq_u32(vreinterpretq_u32_u64(eq)) != 0xffffffffu) return false;
  }
  for (; i < n; ++i)
    if (words[i] != pattern) return false;
  return true;
}

#endif  // SRAMLP_SIMD_NEON

}  // namespace

std::uint64_t popcount_words(const std::uint64_t* words, std::size_t n) {
#if defined(SRAMLP_SIMD_X86)
  switch (active_level()) {
    case Level::kAvx512: return popcount_avx512(words, n);
    case Level::kAvx2: return popcount_avx2(words, n);
    case Level::kNeon: break;  // no NEON code in an x86 build: scalar
    case Level::kScalar: break;
  }
#elif defined(SRAMLP_SIMD_NEON)
  if (active_level() != Level::kScalar) return popcount_neon(words, n);
#endif
  return popcount_scalar(words, n);
}

std::uint64_t xor_popcount_words(const std::uint64_t* a,
                                 const std::uint64_t* b, std::size_t n) {
#if defined(SRAMLP_SIMD_X86)
  switch (active_level()) {
    case Level::kAvx512: return xor_popcount_avx512(a, b, n);
    case Level::kAvx2: return xor_popcount_avx2(a, b, n);
    case Level::kNeon: break;  // no NEON code in an x86 build: scalar
    case Level::kScalar: break;
  }
#elif defined(SRAMLP_SIMD_NEON)
  if (active_level() != Level::kScalar) return xor_popcount_neon(a, b, n);
#endif
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i)
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  return total;
}

bool all_words_equal(const std::uint64_t* words, std::size_t n,
                     std::uint64_t pattern) {
#if defined(SRAMLP_SIMD_X86)
  switch (active_level()) {
    case Level::kAvx512: return all_words_equal_avx512(words, n, pattern);
    case Level::kAvx2: return all_words_equal_avx2(words, n, pattern);
    case Level::kNeon: break;  // no NEON code in an x86 build: scalar
    case Level::kScalar: break;
  }
#elif defined(SRAMLP_SIMD_NEON)
  if (active_level() != Level::kScalar)
    return all_words_equal_neon(words, n, pattern);
#endif
  for (std::size_t i = 0; i < n; ++i)
    if (words[i] != pattern) return false;
  return true;
}

}  // namespace sramlp::sram::simd
