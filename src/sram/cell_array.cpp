#include "sram/cell_array.h"

#include <bit>

namespace sramlp::sram {

CellArray::CellArray(const Geometry& geometry, bool fill_value)
    : geometry_(geometry) {
  geometry_.validate();
  words_.assign((geometry_.cells() + 63) / 64, 0);
  if (fill_value) fill(true);
}

void CellArray::fill(bool value) {
  const std::uint64_t pattern = value ? ~std::uint64_t{0} : 0;
  for (auto& w : words_) w = pattern;
  if (value) {
    // Clear the bits beyond the last cell so popcount stays exact.
    const std::size_t used = geometry_.cells() & 63;
    if (used != 0) words_.back() &= (std::uint64_t{1} << used) - 1;
  }
}

std::size_t CellArray::popcount() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_)
    total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool CellArray::uniform(bool value) const {
  const std::size_t ones = popcount();
  return value ? ones == geometry_.cells() : ones == 0;
}

}  // namespace sramlp::sram
