#include "sram/cell_array.h"

#include <algorithm>
#include <bit>

#include "sram/bits.h"
#include "sram/simd.h"

namespace sramlp::sram {

CellArray::CellArray(const Geometry& geometry, bool fill_value)
    : geometry_(geometry) {
  geometry_.validate();
  words_.assign((geometry_.cells() + 63) / 64, 0);
  if (fill_value) fill(true);
}

std::uint64_t CellArray::row_bits(std::size_t row, std::size_t col,
                                  std::size_t count) const {
  check(row, col);
  SRAMLP_REQUIRE(count >= 1 && count <= 64 && col + count <= geometry_.cols,
                 "row slice outside the array or wider than one word");
  const std::size_t flat = row * geometry_.cols + col;
  const std::size_t word = flat >> 6;
  const std::size_t off = flat & 63;
  std::uint64_t bits = words_[word] >> off;
  if (off + count > 64) bits |= words_[word + 1] << (64 - off);
  return bits & low_bit_mask(count);
}

void CellArray::set_row_bits(std::size_t row, std::size_t col,
                             std::size_t count, std::uint64_t bits) {
  check(row, col);
  SRAMLP_REQUIRE(count >= 1 && count <= 64 && col + count <= geometry_.cols,
                 "row slice outside the array or wider than one word");
  bits &= low_bit_mask(count);
  const std::size_t flat = row * geometry_.cols + col;
  const std::size_t word = flat >> 6;
  const std::size_t off = flat & 63;
  words_[word] = (words_[word] & ~(low_bit_mask(count) << off)) | (bits << off);
  if (off + count > 64) {
    const std::size_t spill = off + count - 64;
    const std::uint64_t spill_mask = low_bit_mask(spill);
    words_[word + 1] = (words_[word + 1] & ~spill_mask) |
                       ((bits >> (64 - off)) & spill_mask);
  }
}

std::uint32_t CellArray::copy_row_bits(std::size_t dst_row,
                                       std::size_t src_row, std::size_t col,
                                       std::size_t count) {
  const std::uint64_t src = row_bits(src_row, col, count);
  const std::uint64_t dst = row_bits(dst_row, col, count);
  const std::uint64_t flips = src ^ dst;
  if (flips != 0) set_row_bits(dst_row, col, count, src);
  return static_cast<std::uint32_t>(std::popcount(flips));
}

std::uint32_t CellArray::copy_row_range(std::size_t dst_row,
                                        std::size_t src_row, std::size_t col,
                                        std::size_t count) {
  check(dst_row, col);
  check(src_row, col);
  SRAMLP_REQUIRE(count >= 1 && col + count <= geometry_.cols,
                 "row slice outside the array");
  const std::size_t src_flat = src_row * geometry_.cols + col;
  const std::size_t dst_flat = dst_row * geometry_.cols + col;
  if ((src_flat & 63) != (dst_flat & 63)) {
    // Misaligned rows (cols not a multiple of 64): 64-bit chunks.
    std::uint32_t flips = 0;
    for (std::size_t c = col; c < col + count; c += 64)
      flips += copy_row_bits(dst_row, src_row, c,
                             std::min<std::size_t>(64, col + count - c));
    return flips;
  }
  // Aligned word streams.  The two slices never share a storage word:
  // their flat distance is |dst-src| * cols >= cols >= count, and equal
  // offsets make the word grids line up.
  const std::size_t off = dst_flat & 63;
  std::size_t sw = src_flat >> 6;
  std::size_t dw = dst_flat >> 6;
  std::size_t left = count;
  std::uint64_t flips = 0;
  if (off != 0) {
    const std::size_t n = std::min<std::size_t>(64 - off, left);
    const std::uint64_t mask = low_bit_mask(n) << off;
    const std::uint64_t diff = (words_[sw] ^ words_[dw]) & mask;
    flips += static_cast<std::uint64_t>(std::popcount(diff));
    words_[dw] ^= diff;
    left -= n;
    ++sw;
    ++dw;
  }
  const std::size_t full = left >> 6;
  if (full != 0) {
    flips += simd::xor_popcount_words(words_.data() + sw, words_.data() + dw,
                                      full);
    std::copy_n(words_.begin() + static_cast<std::ptrdiff_t>(sw), full,
                words_.begin() + static_cast<std::ptrdiff_t>(dw));
    sw += full;
    dw += full;
  }
  left &= 63;
  if (left != 0) {
    const std::uint64_t diff = (words_[sw] ^ words_[dw]) & low_bit_mask(left);
    flips += static_cast<std::uint64_t>(std::popcount(diff));
    words_[dw] ^= diff;
  }
  return static_cast<std::uint32_t>(flips);
}

bool CellArray::row_matches_pattern(std::size_t row, std::size_t col,
                                    std::size_t count,
                                    std::uint64_t pattern) const {
  check(row, col);
  SRAMLP_REQUIRE(count >= 1 && col + count <= geometry_.cols,
                 "row slice outside the array");
  const std::size_t flat = row * geometry_.cols + col;
  std::size_t word = flat >> 6;
  const std::size_t off = flat & 63;
  // The expected stream is 64-periodic from the slice start, so every
  // storage word it fully covers equals pattern rotated to the slice's
  // word alignment.
  const std::uint64_t expect = std::rotl(pattern, static_cast<int>(off));
  std::size_t left = count;
  if (off != 0) {
    const std::size_t n = std::min<std::size_t>(64 - off, left);
    if (((words_[word] ^ expect) & (low_bit_mask(n) << off)) != 0)
      return false;
    left -= n;
    ++word;
  }
  const std::size_t full = left >> 6;
  if (full != 0 &&
      !simd::all_words_equal(words_.data() + word, full, expect))
    return false;
  word += full;
  left &= 63;
  if (left != 0 && ((words_[word] ^ expect) & low_bit_mask(left)) != 0)
    return false;
  return true;
}

void CellArray::fill_row_pattern(std::size_t row, std::size_t col,
                                 std::size_t count, std::uint64_t pattern) {
  check(row, col);
  SRAMLP_REQUIRE(count >= 1 && col + count <= geometry_.cols,
                 "row slice outside the array");
  const std::size_t flat = row * geometry_.cols + col;
  std::size_t word = flat >> 6;
  const std::size_t off = flat & 63;
  const std::uint64_t expect = std::rotl(pattern, static_cast<int>(off));
  std::size_t left = count;
  if (off != 0) {
    const std::size_t n = std::min<std::size_t>(64 - off, left);
    const std::uint64_t mask = low_bit_mask(n) << off;
    words_[word] = (words_[word] & ~mask) | (expect & mask);
    left -= n;
    ++word;
  }
  const std::size_t full = left >> 6;
  std::fill_n(words_.begin() + static_cast<std::ptrdiff_t>(word), full,
              expect);
  word += full;
  left &= 63;
  if (left != 0) {
    const std::uint64_t mask = low_bit_mask(left);
    words_[word] = (words_[word] & ~mask) | (expect & mask);
  }
}

void CellArray::fill(bool value) {
  const std::uint64_t pattern = value ? ~std::uint64_t{0} : 0;
  for (auto& w : words_) w = pattern;
  if (value) {
    // Clear the bits beyond the last cell so popcount stays exact.
    const std::size_t used = geometry_.cells() & 63;
    if (used != 0) words_.back() &= (std::uint64_t{1} << used) - 1;
  }
}

std::size_t CellArray::popcount() const {
  return static_cast<std::size_t>(
      simd::popcount_words(words_.data(), words_.size()));
}

bool CellArray::uniform(bool value) const {
  const std::size_t ones = popcount();
  return value ? ones == geometry_.cells() : ones == 0;
}

}  // namespace sramlp::sram
