#include "sram/cell_array.h"

#include <bit>

#include "sram/bits.h"

namespace sramlp::sram {

CellArray::CellArray(const Geometry& geometry, bool fill_value)
    : geometry_(geometry) {
  geometry_.validate();
  words_.assign((geometry_.cells() + 63) / 64, 0);
  if (fill_value) fill(true);
}

std::uint64_t CellArray::row_bits(std::size_t row, std::size_t col,
                                  std::size_t count) const {
  check(row, col);
  SRAMLP_REQUIRE(count >= 1 && count <= 64 && col + count <= geometry_.cols,
                 "row slice outside the array or wider than one word");
  const std::size_t flat = row * geometry_.cols + col;
  const std::size_t word = flat >> 6;
  const std::size_t off = flat & 63;
  std::uint64_t bits = words_[word] >> off;
  if (off + count > 64) bits |= words_[word + 1] << (64 - off);
  return bits & low_bit_mask(count);
}

void CellArray::set_row_bits(std::size_t row, std::size_t col,
                             std::size_t count, std::uint64_t bits) {
  check(row, col);
  SRAMLP_REQUIRE(count >= 1 && count <= 64 && col + count <= geometry_.cols,
                 "row slice outside the array or wider than one word");
  bits &= low_bit_mask(count);
  const std::size_t flat = row * geometry_.cols + col;
  const std::size_t word = flat >> 6;
  const std::size_t off = flat & 63;
  words_[word] = (words_[word] & ~(low_bit_mask(count) << off)) | (bits << off);
  if (off + count > 64) {
    const std::size_t spill = off + count - 64;
    const std::uint64_t spill_mask = low_bit_mask(spill);
    words_[word + 1] = (words_[word + 1] & ~spill_mask) |
                       ((bits >> (64 - off)) & spill_mask);
  }
}

std::uint32_t CellArray::copy_row_bits(std::size_t dst_row,
                                       std::size_t src_row, std::size_t col,
                                       std::size_t count) {
  const std::uint64_t src = row_bits(src_row, col, count);
  const std::uint64_t dst = row_bits(dst_row, col, count);
  const std::uint64_t flips = src ^ dst;
  if (flips != 0) set_row_bits(dst_row, col, count, src);
  return static_cast<std::uint32_t>(std::popcount(flips));
}

void CellArray::fill(bool value) {
  const std::uint64_t pattern = value ? ~std::uint64_t{0} : 0;
  for (auto& w : words_) w = pattern;
  if (value) {
    // Clear the bits beyond the last cell so popcount stays exact.
    const std::size_t used = geometry_.cells() & 63;
    if (used != 0) words_.back() &= (std::uint64_t{1} << used) - 1;
  }
}

std::size_t CellArray::popcount() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_)
    total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool CellArray::uniform(bool value) const {
  const std::size_t ones = popcount();
  return value ? ones == geometry_.cells() : ones == 0;
}

}  // namespace sramlp::sram
