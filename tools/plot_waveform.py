#!/usr/bin/env python3
"""Plot a WaveformWriter CSV (power_explorer --waveform out.csv).

The CSV has one record per simulated cycle that drew energy:

    run,cycle,span,supply_j,<17 per-source columns>

`run` splits the file into March runs (a compare_modes pair emits run 0 =
functional, run 1 = low-power); `span` is the cycles the record covers
(idle March "Del" blocks arrive as ONE record spanning millions of
cycles); energy columns are totals over the span.

With matplotlib installed, renders a step plot per run (or per source
with --columns) to a window or --out FILE.  Without it, falls back to an
ASCII chart on stdout, so the tool works in bare containers and over ssh.

Examples:
    power_explorer 64 64 1 --waveform wave.csv
    tools/plot_waveform.py wave.csv
    tools/plot_waveform.py wave.csv --columns supply_j,precharge_res_fight
    tools/plot_waveform.py wave.csv --run 1 --rate --out lp.png
"""

import argparse
import csv
import sys

FIXED_FIELDS = ("run", "cycle", "span")


def read_waveform(path):
    """Parse the CSV into {run: [record...]}, record = dict of floats."""
    runs = {}
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or not set(FIXED_FIELDS).issubset(
            reader.fieldnames
        ):
            raise SystemExit(
                f"{path}: not a waveform CSV (expected columns "
                f"{', '.join(FIXED_FIELDS)}, supply_j, ...)"
            )
        energy_columns = [
            c for c in reader.fieldnames if c not in FIXED_FIELDS
        ]
        for row in reader:
            record = {"cycle": int(row["cycle"]), "span": int(row["span"])}
            for column in energy_columns:
                record[column] = float(row[column])
            runs.setdefault(int(row["run"]), []).append(record)
    return runs, energy_columns


def series_for(records, column, rate):
    """(cycles, values) for one column; --rate divides by the span."""
    cycles = [r["cycle"] for r in records]
    values = [
        r[column] / r["span"] if rate else r[column] for r in records
    ]
    return cycles, values


def ascii_plot(runs, columns, rate, width, height):
    for run in sorted(runs):
        for column in columns:
            cycles, values = series_for(runs[run], column, rate)
            if not cycles:
                continue
            label = f"run {run} — {column}" + (" (J/cycle)" if rate else " (J)")
            print(label)
            lo, hi = min(values), max(values)
            span_cycles = max(cycles[-1] - cycles[0], 1)
            # Bucket records into `width` columns by cycle, keep the max.
            buckets = [None] * width
            for cycle, value in zip(cycles, values):
                b = min(
                    (cycle - cycles[0]) * width // (span_cycles + 1),
                    width - 1,
                )
                if buckets[b] is None or value > buckets[b]:
                    buckets[b] = value
            scale = (hi - lo) or 1.0
            rows = []
            for level in range(height, 0, -1):
                threshold = lo + scale * (level - 0.5) / height
                rows.append(
                    "".join(
                        "#"
                        if v is not None and v >= threshold
                        else ("." if v is not None and level == 1 else " ")
                        for v in buckets
                    )
                )
            print(f"  max {hi:.3e}")
            for row in rows:
                print(f"  |{row}")
            print(f"  min {lo:.3e}  cycles {cycles[0]}..{cycles[-1]}")
            print()


def matplotlib_plot(runs, columns, rate, out):
    import matplotlib

    if out:
        matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, axes = plt.subplots(
        len(runs), 1, sharex=False, figsize=(10, 3 * len(runs)), squeeze=False
    )
    for axis, run in zip(axes[:, 0], sorted(runs)):
        for column in columns:
            cycles, values = series_for(runs[run], column, rate)
            axis.step(cycles, values, where="post", label=column)
        axis.set_title(f"run {run}")
        axis.set_xlabel("cycle")
        axis.set_ylabel("J/cycle" if rate else "J per record")
        axis.legend(fontsize="small")
        axis.grid(True, alpha=0.3)
    fig.tight_layout()
    if out:
        fig.savefig(out, dpi=150)
        print(f"wrote {out}")
    else:
        plt.show()


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("csv_path", help="WaveformWriter CSV file")
    parser.add_argument(
        "--columns",
        default="supply_j",
        help="comma-separated energy columns to plot (default supply_j); "
        "'all' plots every source column",
    )
    parser.add_argument(
        "--run", type=int, default=None, help="plot only this run ordinal"
    )
    parser.add_argument(
        "--rate",
        action="store_true",
        help="divide each record by its span (J/cycle instead of J/record, "
        "so idle Del blocks compare honestly with operation cycles)",
    )
    parser.add_argument("--out", default=None, help="write a PNG instead of showing")
    parser.add_argument(
        "--ascii",
        action="store_true",
        help="force the ASCII fallback even when matplotlib is available",
    )
    parser.add_argument("--width", type=int, default=72, help="ASCII chart width")
    parser.add_argument("--height", type=int, default=12, help="ASCII chart height")
    args = parser.parse_args()

    runs, energy_columns = read_waveform(args.csv_path)
    if args.run is not None:
        if args.run not in runs:
            raise SystemExit(
                f"run {args.run} not in file (has {sorted(runs)})"
            )
        runs = {args.run: runs[args.run]}
    if args.columns == "all":
        columns = energy_columns
    else:
        columns = [c.strip() for c in args.columns.split(",") if c.strip()]
        unknown = [c for c in columns if c not in energy_columns]
        if unknown:
            raise SystemExit(
                f"unknown column(s) {', '.join(unknown)}; "
                f"file has: {', '.join(energy_columns)}"
            )

    if not args.ascii:
        try:
            matplotlib_plot(runs, columns, args.rate, args.out)
            return
        except ImportError:
            print(
                "matplotlib not available; falling back to ASCII "
                "(install matplotlib for PNG output)",
                file=sys.stderr,
            )
    ascii_plot(runs, columns, args.rate, args.width, args.height)


if __name__ == "__main__":
    main()
