#!/usr/bin/env python3
"""Determinism lint: machine-check the repo's exactness invariants.

The whole dist/ + service stack rests on one promise: the same work item
produces the same BYTES whichever process, shard, worker or SIMD level
computes it.  That promise is easy to break with one innocent line — a
"%g" in a serializer, a clock read feeding a result, a float where the
parity-locked engines expect a double.  This lint scans src/ and tools/
for the known hazard classes and fails CI on any hit that is not in the
allowlist (ci/lint_allowlist.json), where every entry carries a one-line
justification.

Hazard classes
  double-format       printf-family float conversion that is not %.17g —
                      only 17 significant digits round-trip a double, so
                      anything else in an emit path silently drops bits.
  wall-clock          std::rand/srand/time()/chrono ::now() — any clock or
                      ambient-seeded RNG in result-affecting code makes
                      runs unrepeatable.  (util/rng.h's seeded xoshiro is
                      the sanctioned randomness.)
  float-arithmetic    `float` in src/power/ or src/engine/ — the engines
                      are parity-locked on double IEEE arithmetic; a
                      float narrows intermediate values differently per
                      optimization level.
  fp-contract         the root CMakeLists must pin -ffp-contract=off
                      (FMA contraction evaluates shared energy
                      expressions differently on FMA targets), and no
                      file may re-enable contraction or -ffast-math.
  random-device       std::random_device — hardware-entropy seeding in the
                      parity-locked subsystems (the schedule search's
                      restarts, the engines, the dist/ merge paths) makes
                      the same spec produce different bytes per run; every
                      RNG must be util::Rng keyed from serialized state
                      (e.g. SearchSpec::seed ^ restart index).
  unordered-iteration range-for over a std::unordered_{map,set} — their
                      iteration order is implementation-defined, so any
                      such loop that feeds a serializer or accumulates
                      floating-point sums is a nondeterminism hazard.
                      Flagged wholesale; provably order-insensitive
                      loops (pure counting, key erasure) get allowlisted.

Findings are keyed `rule|path|matched-text` (no line numbers), so
unrelated edits do not invalidate the allowlist; stale allowlist entries
fail the run to keep the file honest.

Usage: tools/lint/determinism_lint.py [--root REPO] [--allowlist FILE]
Exit 0 = clean, 1 = findings (or stale allowlist entries), 2 = bad usage.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

SOURCE_GLOBS = ("src/**/*.cpp", "src/**/*.h", "tools/**/*.cpp",
                "tools/**/*.h", "tools/**/*.py")

# printf-family float conversion specifier, e.g. %f, %5.2f, %-8g, %Le.
FLOAT_FORMAT = re.compile(r"%[-+ #0]*[\d*]*(?:\.[\d*]+)?[hlLqjzt]*[efgaEFGA]")
EXACT_FORMAT = "%.17g"

WALL_CLOCK = re.compile(
    r"std::rand\b|\bsrand\s*\(|[^_\w]time\s*\(\s*(?:NULL|nullptr|0|\))"
    r"|(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now"
    r"|\btime\.time\s*\(|\bdatetime\.now\b")

FLOAT_DECL = re.compile(r"\bfloat\b(?!\s*\*?\s*(?:&&|\())")
FLOAT_DIRS = ("src/power/", "src/engine/")

FP_CONTRACT_BAD = re.compile(r"-ffp-contract=(?:fast|on)|-ffast-math"
                             r"|__FP_FAST_FMA|#pragma\s+STDC\s+FP_CONTRACT\s+ON")

RANDOM_DEVICE = re.compile(r"\bstd::random_device\b|\brandom_device\b")

UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set)\s*<[^;{}]*?>\s+(\w+)\s*[;{=]")
RANGE_FOR = re.compile(r"for\s*\(\s*(?:const\s+)?auto[^:;)]*:\s*([\w.\->]+)\s*\)")


def finding_key(rule: str, path: str, match: str) -> str:
    return f"{rule}|{path}|{match.strip()}"


def scan(root: Path):
    findings = []  # (key, path, line_number, message)

    def add(rule, rel, lineno, match, message):
        findings.append((finding_key(rule, rel, match), rel, lineno, message))

    files = []
    for pattern in SOURCE_GLOBS:
        files.extend(sorted(root.glob(pattern)))
    # The lint's own pattern tables would match themselves.
    files = [f for f in files if "tools/lint" not in f.as_posix()]

    # Names declared anywhere as unordered containers; range-fors over
    # these identifiers are iteration-order hazards wherever they appear
    # (member declarations live in headers, the loops in their .cpp twin).
    unordered_names = set()
    texts = {}
    for path in files:
        try:
            text = path.read_text(encoding="utf-8")
        except UnicodeDecodeError:
            continue
        texts[path] = text
        for m in UNORDERED_DECL.finditer(text):
            unordered_names.add(m.group(1))

    for path, text in texts.items():
        rel = path.relative_to(root).as_posix()
        for lineno, line in enumerate(text.splitlines(), start=1):
            stripped = line.strip()
            # Pure comment lines don't execute (block-comment bodies use
            # the leading-'*' convention here).  #define lines stay in:
            # macros can hide format strings and flags.
            if stripped.startswith(("//", "* ", "*/", "/*")):
                continue

            for m in FLOAT_FORMAT.finditer(line):
                if m.group(0) != EXACT_FORMAT:
                    add("double-format", rel, lineno, m.group(0),
                        f"float conversion '{m.group(0)}' is not %.17g — "
                        "drops bits if this string ever reaches a result "
                        "artifact")

            for m in WALL_CLOCK.finditer(line):
                add("wall-clock", rel, lineno, m.group(0),
                    f"wall-clock / ambient randomness '{m.group(0).strip()}'"
                    " — results must not depend on when they were computed")

            if any(rel.startswith(d) for d in FLOAT_DIRS):
                for m in FLOAT_DECL.finditer(line):
                    add("float-arithmetic", rel, lineno, "float",
                        "`float` in a parity-locked double subsystem "
                        f"({rel}) — narrows differently per optimization "
                        "level")

            for m in RANDOM_DEVICE.finditer(line):
                add("random-device", rel, lineno, m.group(0),
                    f"'{m.group(0)}' — hardware entropy in a "
                    "parity-locked subsystem; seed util::Rng from "
                    "serialized state instead")

            for m in FP_CONTRACT_BAD.finditer(line):
                add("fp-contract", rel, lineno, m.group(0),
                    f"'{m.group(0)}' re-enables FP contraction / fast "
                    "math — breaks cross-engine bit-identity")

            for m in RANGE_FOR.finditer(line):
                container = m.group(1).split("->")[-1].split(".")[-1]
                if container in unordered_names:
                    add("unordered-iteration", rel, lineno,
                        f"for:{container}",
                        f"range-for over unordered container "
                        f"'{container}' — iteration order is "
                        "implementation-defined; must not feed a "
                        "serializer or FP accumulation")

    # Build-flag check: the determinism pin itself.
    cmake = root / "CMakeLists.txt"
    if cmake.exists():
        if "-ffp-contract=off" not in cmake.read_text(encoding="utf-8"):
            findings.append((
                "fp-contract|CMakeLists.txt|missing -ffp-contract=off",
                "CMakeLists.txt", 0,
                "root CMakeLists.txt no longer pins -ffp-contract=off — "
                "FMA targets will break engine parity"))
    else:
        findings.append(("fp-contract|CMakeLists.txt|missing file",
                         "CMakeLists.txt", 0, "root CMakeLists.txt missing"))
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parents[2],
                        help="repository root (default: two dirs up)")
    parser.add_argument("--allowlist", type=Path, default=None,
                        help="allowlist JSON (default: ROOT/ci/"
                             "lint_allowlist.json)")
    args = parser.parse_args()

    root = args.root.resolve()
    allowlist_path = args.allowlist or root / "ci" / "lint_allowlist.json"
    allowlist = {}
    if allowlist_path.exists():
        doc = json.loads(allowlist_path.read_text(encoding="utf-8"))
        for entry in doc["entries"]:
            if not entry.get("why", "").strip():
                print(f"lint: allowlist entry '{entry['key']}' has no "
                      "justification ('why')", file=sys.stderr)
                return 1
            allowlist[entry["key"]] = entry["why"]

    findings = scan(root)

    used = set()
    failed = False
    for key, rel, lineno, message in findings:
        if key in allowlist:
            used.add(key)
            continue
        failed = True
        print(f"{rel}:{lineno}: [{key.split('|', 1)[0]}] {message}")
        print(f"    allowlist key: {key}")

    for key in sorted(set(allowlist) - used):
        failed = True
        print(f"stale allowlist entry (nothing matches it any more): {key}")

    if failed:
        print(f"\ndeterminism lint: FAILED "
              f"({len(findings)} findings, {len(allowlist)} allowlisted)",
              file=sys.stderr)
        return 1
    print(f"determinism lint: clean "
          f"({len(findings)} findings, all allowlisted)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
