// sramlp_dist — the distributed sweep/campaign CLI.
//
// One binary, four roles (plus helpers), so a multi-host run needs nothing
// but this executable and scp:
//
//   example-job [--campaign]            emit a small demo job spec (stdout)
//   plan   --job J --shards K --dir D   write per-shard spec files
//   worker --spec S --out R             execute ONE shard, stream JSONL
//   run    --job J --shards K --workers N --dir D --out M
//                                       full local orchestration: spawns N
//                                       `sramlp_dist worker` subprocesses of
//                                       this very binary, retries crashes,
//                                       resumes complete shards, merges
//   merge  --job J --shards K --dir D --out M
//                                       merge shard JSONL files (e.g. copied
//                                       back from remote workers)
//   single --job J --out M              single-process reference run emitting
//                                       the identical merged document (CI
//                                       diffs `run` against this, byte for
//                                       byte)
//
// Multi-host recipe: `plan` here, scp one spec file per host, `worker`
// there, scp the JSONL back, `merge` here.  The merged document is
// bit-identical to `single` whatever the shard/worker/host split.
//
// Service mode (the long-running path — see dist/service.h):
//
//   serve    --listen A --workers N       coordinator daemon: accepts jobs
//                                         over a Unix/TCP socket, workers
//                                         steal small shards dynamically,
//                                         results are cached by fingerprint
//   work     --connect A                  one steal-protocol worker (extra
//                                         capacity, local or remote)
//   submit   --connect A --job J --out M  submit a job, stream the results,
//                                         write the merged document (byte-
//                                         identical to `single`)
//   stats    --connect A                  service counters as JSON, or
//            [--format prom]              Prometheus text exposition, or
//            [--watch [--interval MS]]    a live dashboard with rates
//   shutdown --connect A                  stop the daemon
//
// Observability (every subcommand): --log-level trace|debug|info|warn|
// error|off, --log-format human|jsonl, --log-file PATH (default stderr;
// SRAMLP_LOG sets the level too).  `serve`/`work` accept --trace-out F
// to dump a Chrome trace-event JSON of job/shard/lease/execute spans.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/sweep.h"
#include "dist/coordinator.h"
#include "dist/job.h"
#include "dist/service.h"
#include "dist/worker.h"
#include "io/serialize.h"
#include "march/algorithms.h"
#include "obs/clock.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "search/search.h"
#include "util/error.h"

namespace {

using namespace sramlp;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <subcommand> [options]\n"
      "\n"
      "  example-job [--campaign|--search] [--trace]      demo job spec -> stdout\n"
      "  plan   --job J --shards K --dir D [--strategy contiguous|strided]\n"
      "  worker --spec S --out R [--threads N] [--per-fault]\n"
      "  run    --job J --shards K --workers N --dir D --out M\n"
      "         [--strategy ...] [--threads N] [--no-resume] [--fork]\n"
      "         [--retries R]\n"
      "  merge  --job J --shards K --dir D --out M [--strategy ...]\n"
      "  single --job J --out M\n"
      "  serve  [--listen unix:/path|tcp:port] [--workers N] [--threads N]\n"
      "         [--points-per-shard P] [--cache-capacity C] [--spill F]\n"
      "         [--no-point-cache] [--slow-us U] [--trace-out F]\n"
      "  work   --connect A [--threads N] [--per-fault] [--slow-us U]\n"
      "         [--trace-out F]\n"
      "  submit --connect A --job J [--out M] [--expect-cache-hit]\n"
      "         [--submitter NAME]\n"
      "  stats  --connect A [--format json|prom]\n"
      "         [--watch [--interval MS] [--count N]]\n"
      "  shutdown --connect A\n"
      "\n"
      "  every subcommand: [--log-level trace|debug|info|warn|error|off]\n"
      "                    [--log-format human|jsonl] [--log-file PATH]\n"
      "                    [--log-max-bytes N]  (rotate PATH -> PATH.1 at N)\n",
      argv0);
  std::exit(2);
}

/// Tiny flag scanner: --name value pairs plus boolean switches.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool flag(const std::string& name) {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == name) {
        args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  std::optional<std::string> value(const std::string& name) {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) {
        std::string v = args_[i + 1];
        args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i),
                    args_.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        return v;
      }
    }
    return std::nullopt;
  }

  std::string require(const std::string& name) {
    auto v = value(name);
    if (!v) throw Error("missing required option " + name);
    return *v;
  }

  std::size_t number(const std::string& name, std::size_t fallback) {
    auto v = value(name);
    if (!v) return fallback;
    // std::stoull accepts (and wraps) negative input; reject anything that
    // is not a plain decimal count.
    if (v->empty() ||
        v->find_first_not_of("0123456789") != std::string::npos)
      throw Error("option " + name + " needs a non-negative integer, got '" +
                  *v + "'");
    return static_cast<std::size_t>(std::stoull(*v));
  }

  void reject_leftovers() const {
    if (!args_.empty()) throw Error("unrecognized argument '" + args_[0] + "'");
  }

 private:
  std::vector<std::string> args_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw Error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.good()) throw Error("cannot write " + path);
  out << content;
  if (!out.good()) throw Error("short write on " + path);
}

dist::JobSpec load_job(const std::string& path) {
  return dist::job_from_json(io::JsonValue::parse(read_file(path)));
}

/// Observability flags shared by every subcommand.  Consumed before
/// dispatch so reject_leftovers() never sees them.  A --log-level is also
/// exported as SRAMLP_LOG, so subprocesses this command spawns (serve's
/// local workers, run's shard workers) inherit the level.
void apply_logging_flags(Args& args) {
  const std::optional<std::string> level_text = args.value("--log-level");
  const std::optional<std::string> format_text = args.value("--log-format");
  const std::optional<std::string> file = args.value("--log-file");
  // --log-max-bytes N: rotate the log file to PATH.1 once it reaches N
  // bytes (obs::Logger keeps one rotated generation).  Only meaningful
  // with --log-file; the cap is ignored for the stderr sink.
  const std::size_t max_bytes = args.number("--log-max-bytes", 0);
  if (max_bytes > 0 && !file)
    throw Error("--log-max-bytes needs --log-file (stderr never rotates)");
  if (!level_text && !format_text && !file) return;
  const obs::LogLevel level = level_text
                                  ? obs::log_level_from_string(*level_text)
                                  : obs::Logger::global().level();
  obs::Logger::Format format = obs::Logger::Format::kHuman;
  if (format_text) {
    if (*format_text == "jsonl") {
      format = obs::Logger::Format::kJsonl;
    } else if (*format_text != "human") {
      throw Error("--log-format must be human or jsonl, got '" +
                  *format_text + "'");
    }
  }
  obs::Logger::global().configure(level, format,
                                  file ? *file : std::string(), max_bytes);
  if (level_text) ::setenv("SRAMLP_LOG", level_text->c_str(), 1);
}

dist::ShardStrategy strategy_arg(Args& args) {
  auto v = args.value("--strategy");
  return v ? dist::shard_strategy_from_slug(*v)
           : dist::ShardStrategy::kContiguous;
}

/// Absolute path of this binary, for spawning `worker` subprocesses.
std::string self_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

int cmd_example_job(Args& args) {
  const bool campaign = args.flag("--campaign");
  const bool search_job = args.flag("--search");
  // --trace: time-resolved power accounting on every run of the sweep
  // job; the sharded merge stays byte-identical to `single` (CI diffs
  // it).  Campaign reports reduce to per-fault verdicts, which carry no
  // trace — combining the flags would buy the traced-run cost for no
  // output, so it is an error rather than a silent no-op.
  const bool trace = args.flag("--trace");
  args.reject_leftovers();
  if (campaign && search_job)
    throw Error("--campaign and --search are mutually exclusive");
  if ((campaign || search_job) && trace)
    throw Error("--trace applies to sweep jobs only: campaign entries "
                "reduce to per-fault verdicts and would pay the traced-run "
                "cost without reporting a trace; search winners are traced "
                "internally by their cycle-accurate verification");
  dist::JobSpec job;
  if (search_job) {
    // A small peak-constrained schedule search: one restart per work
    // item, sized so the daemon e2e finishes in seconds while still
    // exercising reorder + idle-insertion moves and winner verification.
    job.kind = dist::JobSpec::Kind::kSearch;
    search::SearchSpec spec;
    spec.config.geometry = {16, 32, 1};
    spec.base = march::algorithms::march_c_minus();
    spec.window_cycles = 4 * spec.config.geometry.words();
    spec.seed = 7;
    spec.restarts = 4;
    spec.steps = 24;
    spec.beam_width = 4;
    spec.neighbors = 8;
    spec.idle_quantum = 512;
    spec.max_idle_quanta = 8;
    spec.max_front = 4;
    job.search = std::move(spec);
  } else if (campaign) {
    job.kind = dist::JobSpec::Kind::kCampaign;
    job.config.geometry = {16, 32, 1};
    job.test = march::algorithms::march_c_minus();
    job.faults = faults::standard_fault_library(job.config.geometry, 7, 2);
  } else {
    job.kind = dist::JobSpec::Kind::kSweep;
    job.grid.geometries = {{16, 32, 1}, {8, 64, 1}, {32, 16, 1}, {24, 48, 2}};
    job.grid.backgrounds = {sram::DataBackground::solid0(),
                            sram::DataBackground::checkerboard()};
    job.grid.algorithms = {march::algorithms::mats_plus(),
                           march::algorithms::march_c_minus()};
    if (trace)
      job.grid.base.trace =
          power::TraceConfig{.window_cycles = 32, .keep_windows = true};
  }
  std::fputs((dist::to_json(job).dump(2) + "\n").c_str(), stdout);
  return 0;
}

int cmd_plan(Args& args) {
  const dist::JobSpec job = load_job(args.require("--job"));
  const std::string dir = args.require("--dir");
  const std::size_t shards = args.number("--shards", 4);
  const dist::ShardStrategy strategy = strategy_arg(args);
  args.reject_leftovers();
  const dist::ShardPlan plan = dist::ShardPlan::make(job.size(), shards,
                                                     strategy);
  for (std::size_t s = 0; s < plan.shard_count; ++s)
    dist::write_shard_spec(dir, dist::ShardSpec{job, plan, s});
  std::printf("%zu work items -> %zu %s shard spec files in %s\n",
              plan.total, plan.shard_count, to_slug(strategy).c_str(),
              dir.c_str());
  std::printf("next: sramlp_dist worker --spec %s --out %s   (per shard,\n"
              "any host), then merge the result files back here\n",
              dist::shard_spec_path(dir, 0).c_str(),
              dist::shard_result_path(dir, 0).c_str());
  return 0;
}

int cmd_worker(Args& args) {
  const std::string spec_path = args.require("--spec");
  const std::string out_path = args.require("--out");
  dist::Worker::Options options;
  options.threads =
      static_cast<unsigned>(args.number("--threads", options.threads));
  if (args.flag("--per-fault")) options.batched_campaigns = false;
  args.reject_leftovers();
  const dist::ShardSpec spec =
      dist::shard_spec_from_json(io::JsonValue::parse(read_file(spec_path)));
  std::ofstream out(out_path, std::ios::out | std::ios::trunc);
  if (!out.good()) throw Error("cannot write " + out_path);
  dist::Worker(options).run(spec, out);
  out.close();
  if (!out.good()) throw Error("short write on " + out_path);
  return 0;
}

int cmd_run(Args& args, const char* argv0) {
  const std::string job_path = args.require("--job");
  const dist::JobSpec job = load_job(job_path);
  dist::Coordinator::Options options;
  options.shards = args.number("--shards", 4);
  options.max_workers =
      static_cast<unsigned>(args.number("--workers", options.max_workers));
  options.strategy = strategy_arg(args);
  options.work_dir = args.require("--dir");
  options.worker.threads =
      static_cast<unsigned>(args.number("--threads", options.worker.threads));
  options.retries = static_cast<unsigned>(args.number("--retries", 1));
  if (args.flag("--no-resume")) options.resume = false;
  const bool fork_mode = args.flag("--fork");
  const std::string out_path = args.require("--out");
  args.reject_leftovers();
  if (!fork_mode) {
    // The real protocol: subprocesses of this very binary via fork/exec.
    // Per-shard options (threads) travel on the worker's own command line.
    options.worker_command = {self_path(argv0),
                              "worker",
                              "--spec",
                              "{spec}",
                              "--out",
                              "{out}",
                              "--threads",
                              std::to_string(options.worker.threads)};
  }
  const dist::MergedResult merged = dist::Coordinator(options).run(job);
  write_file(out_path, merged_document(merged));
  std::printf("%zu work items over %zu shards / %u workers -> %s\n",
              job.size(), options.shards, options.max_workers,
              out_path.c_str());
  return 0;
}

int cmd_merge(Args& args) {
  const dist::JobSpec job = load_job(args.require("--job"));
  const std::string dir = args.require("--dir");
  const std::size_t shards = args.number("--shards", 4);
  const dist::ShardStrategy strategy = strategy_arg(args);
  const std::string out_path = args.require("--out");
  args.reject_leftovers();
  const dist::ShardPlan plan = dist::ShardPlan::make(job.size(), shards,
                                                     strategy);
  const dist::MergedResult merged = dist::merge_shard_files(job, plan, dir);
  write_file(out_path, merged_document(merged));
  std::printf("merged %zu shards -> %s\n", plan.shard_count,
              out_path.c_str());
  return 0;
}

int cmd_single(Args& args) {
  const dist::JobSpec job = load_job(args.require("--job"));
  const std::string out_path = args.require("--out");
  args.reject_leftovers();
  dist::MergedResult merged;
  merged.kind = job.kind;
  if (job.kind == dist::JobSpec::Kind::kSweep) {
    merged.sweep = core::SweepRunner().run(job.grid);
  } else if (job.kind == dist::JobSpec::Kind::kSearch) {
    // run_search is byte-identical at any thread count (one result slot
    // per restart, restart-order reduction), so the hardware default is
    // safe for a reference document.
    merged.search = search::run_search(*job.search).restarts;
  } else {
    core::CampaignRunner::Options options;
    options.batched = true;
    core::CampaignReport report =
        core::CampaignRunner(options).run(job.config, *job.test, job.faults);
    merged.campaign.algorithm = report.algorithm;
    merged.campaign.entries = std::move(report.entries);
  }
  write_file(out_path, merged_document(merged));
  std::printf("single-process reference -> %s\n", out_path.c_str());
  return 0;
}

int cmd_serve(Args& args, const char* argv0) {
  dist::Service::Options options;
  if (auto listen = args.value("--listen")) options.listen = *listen;
  options.points_per_shard =
      args.number("--points-per-shard", options.points_per_shard);
  options.cache.capacity =
      args.number("--cache-capacity", options.cache.capacity);
  if (auto spill = args.value("--spill")) options.cache.spill_path = *spill;
  if (args.flag("--no-point-cache")) options.point_cache = false;
  const std::size_t workers = args.number("--workers", 2);
  const std::size_t threads = args.number("--threads", 1);
  const std::size_t slow_us = args.number("--slow-us", 0);
  const std::optional<std::string> trace_out = args.value("--trace-out");
  args.reject_leftovers();
  if (trace_out) obs::Tracer::global().enable();

  dist::Service service(options);
  service.start();
  const std::string address = service.address();
  std::printf("sweep service listening on %s (%zu local workers)\n",
              address.c_str(), workers);
  std::fflush(stdout);

  // Local capacity: N `work` subprocesses of this very binary on the
  // resolved address.  Remote hosts add more with `sramlp_dist work`.
  const std::string self = self_path(argv0);
  std::vector<pid_t> children;
  for (std::size_t w = 0; w < workers; ++w) {
    std::vector<std::string> command = {self,        "work",
                                        "--connect", address,
                                        "--threads", std::to_string(threads)};
    if (slow_us > 0) {
      command.push_back("--slow-us");
      command.push_back(std::to_string(slow_us));
    }
    if (trace_out) {
      // Workers are separate processes with their own tracer rings; each
      // dumps to a per-worker sibling of the service's trace file.
      command.push_back("--trace-out");
      command.push_back(*trace_out + ".worker-" + std::to_string(w));
    }
    const pid_t pid = fork();
    SRAMLP_REQUIRE(pid >= 0, "fork failed");
    if (pid == 0) {
      std::vector<char*> argv_vec;
      argv_vec.reserve(command.size() + 1);
      for (std::string& arg : command) argv_vec.push_back(arg.data());
      argv_vec.push_back(nullptr);
      execv(argv_vec[0], argv_vec.data());
      _exit(127);
    }
    children.push_back(pid);
  }

  service.wait();  // until a `shutdown` request arrives
  for (const pid_t pid : children) {
    int status = 0;
    waitpid(pid, &status, 0);
  }
  if (trace_out) {
    obs::Tracer::global().write_chrome_json(*trace_out);
    std::printf("trace written to %s (load in Perfetto or chrome://tracing)\n",
                trace_out->c_str());
  }
  const dist::ServiceStats stats = service.stats();
  std::printf("service stopped: %llu jobs (%llu cache hits, %llu points "
              "from cache), %llu points executed, %llu shards "
              "(%llu requeued), cache hit rate %.3f\n",
              static_cast<unsigned long long>(stats.jobs_submitted),
              static_cast<unsigned long long>(stats.job_cache_hits),
              static_cast<unsigned long long>(stats.point_cache_hits),
              static_cast<unsigned long long>(stats.points_executed),
              static_cast<unsigned long long>(stats.shards_executed),
              static_cast<unsigned long long>(stats.shard_requeues),
              stats.cache.hit_rate());
  return 0;
}

int cmd_work(Args& args) {
  const std::string address = args.require("--connect");
  dist::ServiceWorker::Options options;
  options.threads =
      static_cast<unsigned>(args.number("--threads", options.threads));
  if (args.flag("--per-fault")) options.batched_campaigns = false;
  options.slow_point_us = args.number("--slow-us", 0);
  const std::optional<std::string> trace_out = args.value("--trace-out");
  args.reject_leftovers();
  if (trace_out) obs::Tracer::global().enable();
  const std::size_t points = dist::ServiceWorker(options).run(address);
  if (trace_out) obs::Tracer::global().write_chrome_json(*trace_out);
  std::printf("worker done: %zu points computed\n", points);
  return 0;
}

int cmd_submit(Args& args) {
  const std::string address = args.require("--connect");
  const dist::JobSpec job = load_job(args.require("--job"));
  const std::optional<std::string> out_path = args.value("--out");
  // CI hook: fail loudly when a resubmission that must be answered from
  // the cache was computed instead.
  const bool expect_cache_hit = args.flag("--expect-cache-hit");
  // Label for the service's per-submitter fairness counters
  // (sramlp_submitter_*_total{submitter="..."}); empty reads as
  // "anonymous" on the service side.
  const std::string submitter = args.value("--submitter").value_or("");
  args.reject_leftovers();
  const dist::SubmitResult result =
      dist::submit_job(address, job, 5000, {}, submitter);
  if (out_path) write_file(*out_path, result.document);
  std::printf("job done: %zu points (%zu from cache, %zu streamed), "
              "whole-job cache %s, service hit rate %.3f%s%s\n",
              result.total_points, result.cached_points,
              result.streamed_lines, result.cache_hit ? "HIT" : "miss",
              result.cache_hit_rate, out_path ? " -> " : "",
              out_path ? out_path->c_str() : "");
  if (expect_cache_hit && !result.cache_hit)
    throw Error("expected a whole-job cache hit; the job was computed");
  return 0;
}

void print_stats_json(const dist::ServiceStats& stats) {
  io::JsonValue doc = io::JsonValue::object();
  doc.set("jobs_submitted", io::JsonValue::integer(stats.jobs_submitted));
  doc.set("jobs_completed", io::JsonValue::integer(stats.jobs_completed));
  doc.set("jobs_failed", io::JsonValue::integer(stats.jobs_failed));
  doc.set("jobs_deduplicated",
          io::JsonValue::integer(stats.jobs_deduplicated));
  doc.set("job_cache_hits", io::JsonValue::integer(stats.job_cache_hits));
  doc.set("point_cache_hits", io::JsonValue::integer(stats.point_cache_hits));
  doc.set("points_executed", io::JsonValue::integer(stats.points_executed));
  doc.set("shards_executed", io::JsonValue::integer(stats.shards_executed));
  doc.set("shard_requeues", io::JsonValue::integer(stats.shard_requeues));
  doc.set("workers_connected",
          io::JsonValue::integer(stats.workers_connected));
  doc.set("workers_lost", io::JsonValue::integer(stats.workers_lost));
  doc.set("cache_entries", io::JsonValue::integer(stats.cache.entries));
  doc.set("cache_hit_rate", io::JsonValue::number(stats.cache.hit_rate()));
  std::fputs((doc.dump(2) + "\n").c_str(), stdout);
}

/// The --watch dashboard: totals plus client-side deltas and per-second
/// rates between consecutive samples (the service only ships totals, so
/// the derivative is computed here).  All display-only; rates use the
/// monotonic clock through the obs seam.
void watch_stats(const std::string& address, std::size_t interval_ms,
                 std::size_t count) {
  struct Row {
    const char* label;
    std::uint64_t (*pick)(const dist::ServiceStats&);
  };
  static const Row rows[] = {
      {"jobs_submitted", [](const dist::ServiceStats& s) {
         return s.jobs_submitted; }},
      {"jobs_completed", [](const dist::ServiceStats& s) {
         return s.jobs_completed; }},
      {"jobs_failed", [](const dist::ServiceStats& s) {
         return s.jobs_failed; }},
      {"job_cache_hits", [](const dist::ServiceStats& s) {
         return s.job_cache_hits; }},
      {"point_cache_hits", [](const dist::ServiceStats& s) {
         return s.point_cache_hits; }},
      {"points_executed", [](const dist::ServiceStats& s) {
         return s.points_executed; }},
      {"shards_executed", [](const dist::ServiceStats& s) {
         return s.shards_executed; }},
      {"shard_requeues", [](const dist::ServiceStats& s) {
         return s.shard_requeues; }},
      {"workers_connected", [](const dist::ServiceStats& s) {
         return s.workers_connected; }},
      {"workers_lost", [](const dist::ServiceStats& s) {
         return s.workers_lost; }},
  };
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  std::optional<dist::ServiceStats> prev;
  std::uint64_t prev_us = 0;
  for (std::size_t sample = 0; count == 0 || sample < count; ++sample) {
    const dist::ServiceStats stats = dist::query_stats(address);
    const std::uint64_t now_us = obs::monotonic_micros();
    if (tty)
      std::fputs("\033[H\033[2J", stdout);  // home + clear: redraw in place
    else if (sample > 0)
      std::fputs("---\n", stdout);
    const double dt = prev ? static_cast<double>(now_us - prev_us) * 1e-6
                           : 0.0;
    std::printf("%s  sample %zu  interval %zums\n", address.c_str(),
                sample + 1, interval_ms);
    std::printf("  %-20s %12s %10s %12s\n", "counter", "total", "delta",
                "rate");
    for (const Row& row : rows) {
      const std::uint64_t value = row.pick(stats);
      if (prev && dt > 0.0) {
        const std::uint64_t before = row.pick(*prev);
        const std::uint64_t delta = value >= before ? value - before : 0;
        std::printf("  %-20s %12llu %10llu %10.1f/s\n", row.label,
                    static_cast<unsigned long long>(value),
                    static_cast<unsigned long long>(delta),
                    static_cast<double>(delta) / dt);
      } else {
        std::printf("  %-20s %12llu %10s %12s\n", row.label,
                    static_cast<unsigned long long>(value), "-", "-");
      }
    }
    std::printf("  %-20s %12zu\n", "cache_entries", stats.cache.entries);
    std::printf("  %-20s %12.3f\n", "cache_hit_rate", stats.cache.hit_rate());
    std::fflush(stdout);
    prev = stats;
    prev_us = now_us;
    if (count != 0 && sample + 1 >= count) break;
    ::usleep(static_cast<useconds_t>(interval_ms) * 1000);
  }
}

int cmd_stats(Args& args) {
  const std::string address = args.require("--connect");
  std::string format = "json";
  if (const auto f = args.value("--format")) format = *f;
  const bool watch = args.flag("--watch");
  const std::size_t interval_ms = args.number("--interval", 1000);
  const std::size_t count = args.number("--count", 0);  // 0 = forever
  args.reject_leftovers();
  if (format == "prom") {
    if (watch)
      throw Error("--watch is a dashboard over the json view; scrape "
                  "--format prom with your collector instead");
    std::fputs(dist::query_metrics(address).prometheus.c_str(), stdout);
    return 0;
  }
  if (format != "json")
    throw Error("--format must be json or prom, got '" + format + "'");
  if (watch) {
    watch_stats(address, interval_ms == 0 ? 1000 : interval_ms, count);
    return 0;
  }
  print_stats_json(dist::query_stats(address));
  return 0;
}

int cmd_shutdown(Args& args) {
  const std::string address = args.require("--connect");
  args.reject_leftovers();
  dist::request_shutdown(address);
  std::printf("service shut down\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string subcommand = argv[1];
  Args args(argc, argv, 2);
  try {
    apply_logging_flags(args);
    if (subcommand == "example-job") return cmd_example_job(args);
    if (subcommand == "plan") return cmd_plan(args);
    if (subcommand == "worker") return cmd_worker(args);
    if (subcommand == "run") return cmd_run(args, argv[0]);
    if (subcommand == "merge") return cmd_merge(args);
    if (subcommand == "single") return cmd_single(args);
    if (subcommand == "serve") return cmd_serve(args, argv[0]);
    if (subcommand == "work") return cmd_work(args);
    if (subcommand == "submit") return cmd_submit(args);
    if (subcommand == "stats") return cmd_stats(args);
    if (subcommand == "shutdown") return cmd_shutdown(args);
    usage(argv[0]);
  } catch (const std::exception& e) {
    // Through the logger, so failures land in the same (possibly JSONL)
    // stream as everything else; the default sink is still stderr.  The
    // "sramlp_dist <cmd> failed" message is a greppable contract
    // (test_dist_cli asserts it).
    obs::log_error("cli", "sramlp_dist " + subcommand + " failed",
                   {obs::kv("error", e.what())});
    return 1;
  }
}
