// march_search — peak-constrained March schedule search front-end.
//
// Searches validity-preserving schedules (element reorders + inserted
// idle windows, search/schedule.h) of a base March test for the Pareto
// front over (peak-window power, test cycles), every winner re-verified
// cycle-accurate.  Two execution modes producing byte-identical output:
//
//   march_search [knobs] --out front.json            local (engine::
//                                                    parallel_for restarts)
//   march_search [knobs] --connect A --out front.json
//                                                    via a running
//                                                    `sramlp_dist serve`
//                                                    daemon (restarts are
//                                                    stolen by its workers
//                                                    and cached per index)
//
// The emitted document is exactly `sramlp_dist single` on the equivalent
// search job: {"kind":"search","restarts":[...],"front":[...]} with
// exact-round-trip doubles, so fronts can be diffed byte for byte across
// hosts, thread counts and shard splits.
//
// The human summary compares the searched front against the naive
// alternative at the same budget — keeping the base order and padding
// uniform idle after every element — which is the "how much test time
// does peak shaping actually cost" question the tool exists to answer.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "dist/job.h"
#include "dist/service.h"
#include "io/serialize.h"
#include "march/algorithms.h"
#include "obs/log.h"
#include "search/evaluator.h"
#include "search/schedule.h"
#include "search/search.h"
#include "search/serialize.h"
#include "util/error.h"

namespace {

using namespace sramlp;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "\n"
      "spec source (pick one, or use the knobs below):\n"
      "  --spec F            full search::SearchSpec JSON\n"
      "  --job F             dist job spec of kind 'search'\n"
      "                      (e.g. `sramlp_dist example-job --search`)\n"
      "\n"
      "knobs (defaults in parens):\n"
      "  --rows R --cols C --width W   geometry (16 32 1)\n"
      "  --algorithm march_c-|mats+    base test (march_c-)\n"
      "  --low-power                   low-power test mode pre-charge\n"
      "  --budget W                    peak budget in watts (0 = pure\n"
      "                                Pareto sweep, no constraint)\n"
      "  --budget-scale S              budget = S x the BASE schedule's\n"
      "                                peak (e.g. 0.97; overrides --budget)\n"
      "  --window N                    peak-window cycles (4 x words)\n"
      "  --seed S (1)  --restarts R (8)  --steps N (96)\n"
      "  --beam B (8)  --neighbors K (16)  --max-front F (8)\n"
      "  --idle-quantum Q (1024)  --max-idle-quanta M (16)\n"
      "\n"
      "execution:\n"
      "  --threads N         local restart fan-out (0 = hardware)\n"
      "  --connect A         submit to a sweep service instead\n"
      "  --submitter NAME    fairness label with --connect\n"
      "  --out F             write the Pareto JSON document (byte-identical\n"
      "                      to `sramlp_dist single` on the same job)\n"
      "  --quiet             suppress the human summary\n"
      "\n"
      "  [--log-level L] [--log-format human|jsonl] [--log-file PATH]\n"
      "  [--log-max-bytes N]\n",
      argv0);
  std::exit(2);
}

/// Tiny flag scanner (same contract as sramlp_dist's): --name value pairs
/// plus boolean switches, consumed as they are read.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool flag(const std::string& name) {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == name) {
        args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  std::optional<std::string> value(const std::string& name) {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) {
        std::string v = args_[i + 1];
        args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i),
                    args_.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        return v;
      }
    }
    return std::nullopt;
  }

  std::size_t number(const std::string& name, std::size_t fallback) {
    auto v = value(name);
    if (!v) return fallback;
    if (v->empty() || v->find_first_not_of("0123456789") != std::string::npos)
      throw Error("option " + name + " needs a non-negative integer, got '" +
                  *v + "'");
    return static_cast<std::size_t>(std::stoull(*v));
  }

  double real(const std::string& name, double fallback) {
    auto v = value(name);
    if (!v) return fallback;
    try {
      std::size_t used = 0;
      const double parsed = std::stod(*v, &used);
      if (used != v->size()) throw std::invalid_argument(*v);
      return parsed;
    } catch (const std::exception&) {
      throw Error("option " + name + " needs a number, got '" + *v + "'");
    }
  }

  void reject_leftovers() const {
    if (!args_.empty()) throw Error("unrecognized argument '" + args_[0] + "'");
  }

 private:
  std::vector<std::string> args_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw Error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.good()) throw Error("cannot write " + path);
  out << content;
  if (!out.good()) throw Error("short write on " + path);
}

void apply_logging_flags(Args& args) {
  const std::optional<std::string> level_text = args.value("--log-level");
  const std::optional<std::string> format_text = args.value("--log-format");
  const std::optional<std::string> file = args.value("--log-file");
  const std::size_t max_bytes = args.number("--log-max-bytes", 0);
  if (max_bytes > 0 && !file)
    throw Error("--log-max-bytes needs --log-file (stderr never rotates)");
  if (!level_text && !format_text && !file) return;
  const obs::LogLevel level = level_text
                                  ? obs::log_level_from_string(*level_text)
                                  : obs::Logger::global().level();
  obs::Logger::Format format = obs::Logger::Format::kHuman;
  if (format_text) {
    if (*format_text == "jsonl") {
      format = obs::Logger::Format::kJsonl;
    } else if (*format_text != "human") {
      throw Error("--log-format must be human or jsonl, got '" +
                  *format_text + "'");
    }
  }
  obs::Logger::global().configure(level, format,
                                  file ? *file : std::string(), max_bytes);
}

search::SearchSpec spec_from_args(Args& args) {
  if (const auto spec_path = args.value("--spec"))
    return io::search_spec_from_json(
        io::JsonValue::parse(read_file(*spec_path)));
  if (const auto job_path = args.value("--job")) {
    const dist::JobSpec job =
        dist::job_from_json(io::JsonValue::parse(read_file(*job_path)));
    if (job.kind != dist::JobSpec::Kind::kSearch || !job.search)
      throw Error("--job needs a job spec of kind 'search'");
    return *job.search;
  }
  search::SearchSpec spec;
  spec.config.geometry = {args.number("--rows", 16),
                          args.number("--cols", 32),
                          args.number("--width", 1)};
  if (args.flag("--low-power")) spec.config.mode = sram::Mode::kLowPowerTest;
  const std::string algorithm =
      args.value("--algorithm").value_or("march_c-");
  if (algorithm == "march_c-") {
    spec.base = march::algorithms::march_c_minus();
  } else if (algorithm == "mats+") {
    spec.base = march::algorithms::mats_plus();
  } else {
    throw Error("--algorithm must be march_c- or mats+, got '" + algorithm +
                "'");
  }
  spec.peak_budget_w = args.real("--budget", 0.0);
  spec.window_cycles =
      args.number("--window", 4 * spec.config.geometry.words());
  spec.seed = args.number("--seed", spec.seed);
  spec.restarts = args.number("--restarts", spec.restarts);
  spec.steps = args.number("--steps", spec.steps);
  spec.beam_width = args.number("--beam", spec.beam_width);
  spec.neighbors = args.number("--neighbors", spec.neighbors);
  spec.idle_quantum = args.number("--idle-quantum", spec.idle_quantum);
  spec.max_idle_quanta =
      args.number("--max-idle-quanta", spec.max_idle_quanta);
  spec.max_front = args.number("--max-front", spec.max_front);
  return spec;
}

/// Parse the front back out of the document — the summary reports what
/// was WRITTEN (local or service, computed or cache-replayed), not a
/// separate computation that could drift from it.
std::vector<search::ScheduleResult> front_of_document(
    const std::string& document) {
  const io::JsonValue doc = io::JsonValue::parse(document);
  const io::JsonValue& points = doc.at("front");
  std::vector<search::ScheduleResult> front;
  front.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    front.push_back(io::schedule_result_from_json(points.at(i)));
  return front;
}

int run(Args& args) {
  search::SearchSpec spec = spec_from_args(args);
  const double budget_scale = args.real("--budget-scale", 0.0);
  const std::size_t threads = args.number("--threads", 0);
  const std::optional<std::string> connect = args.value("--connect");
  const std::string submitter = args.value("--submitter").value_or("");
  const std::optional<std::string> out_path = args.value("--out");
  const bool quiet = args.flag("--quiet");
  args.reject_leftovers();
  spec.validate();

  // The base schedule's analytic score anchors both the --budget-scale
  // resolution and the summary; the evaluator is exactly the search's own
  // scoring path, so "base peak" here is the number the search optimises.
  search::ScheduleEvaluator evaluator(spec.config, *spec.base,
                                      spec.window_cycles);
  const search::Score base =
      evaluator.score_one(search::identity_candidate(evaluator.elements()));
  if (budget_scale > 0.0) spec.peak_budget_w = budget_scale * base.peak_power_w;

  std::string document;
  if (connect) {
    dist::JobSpec job;
    job.kind = dist::JobSpec::Kind::kSearch;
    job.search = spec;
    const dist::SubmitResult result =
        dist::submit_job(*connect, job, 5000, {}, submitter);
    document = result.document;
    if (!quiet)
      std::printf("service %s: %zu restarts (%zu from cache), whole-job "
                  "cache %s\n",
                  connect->c_str(), result.total_points, result.cached_points,
                  result.cache_hit ? "HIT" : "miss");
  } else {
    const search::SearchOutcome outcome =
        search::run_search(spec, static_cast<unsigned>(threads));
    dist::MergedResult merged;
    merged.kind = dist::JobSpec::Kind::kSearch;
    merged.search = outcome.restarts;
    document = dist::merged_document(merged);
  }
  if (out_path) write_file(*out_path, document);

  if (!quiet) {
    const std::vector<search::ScheduleResult> front =
        front_of_document(document);
    const search::PaddedBaseline naive = search::naive_idle_padding(spec);
    std::printf(
        "base %s on %zux%zux%zu (%s), window %llu cycles:\n"
        "  peak %.6f W, %llu cycles, %.6e J\n",
        spec.base->name().c_str(), spec.config.geometry.rows,
        spec.config.geometry.cols, spec.config.geometry.word_width,
        spec.config.mode == sram::Mode::kLowPowerTest ? "low-power"
                                                      : "functional",
        static_cast<unsigned long long>(spec.window_cycles),
        base.peak_power_w, static_cast<unsigned long long>(base.cycles),
        base.energy_j);
    if (spec.peak_budget_w > 0.0)
      std::printf("budget %.6f W (%.1f%% of base peak)\n", spec.peak_budget_w,
                  100.0 * spec.peak_budget_w / base.peak_power_w);
    std::printf("front (%zu points):\n", front.size());
    for (const search::ScheduleResult& point : front)
      std::printf("  peak %.6f W  %8llu cycles  %.6e J  %s\n",
                  point.peak_power_w,
                  static_cast<unsigned long long>(point.cycles),
                  point.energy_j,
                  point.verified ? "verified" : "UNVERIFIED");
    if (spec.peak_budget_w > 0.0) {
      const search::ScheduleResult* best = nullptr;
      for (const search::ScheduleResult& point : front)
        if (point.verified && point.peak_power_w <= spec.peak_budget_w &&
            (!best || point.cycles < best->cycles))
          best = &point;
      if (naive.meets_budget)
        std::printf("naive idle padding meets the budget at %llu cycles "
                    "(peak %.6f W)\n",
                    static_cast<unsigned long long>(naive.score.cycles),
                    naive.score.peak_power_w);
      else
        std::printf("naive idle padding CANNOT meet the budget within the "
                    "idle allowance (best peak %.6f W)\n",
                    naive.score.peak_power_w);
      if (best) {
        std::printf("search meets the budget at %llu cycles (peak %.6f W)",
                    static_cast<unsigned long long>(best->cycles),
                    best->peak_power_w);
        if (naive.meets_budget && naive.score.cycles > 0.0)
          std::printf(", %.1f%% of the naive schedule's time",
                      100.0 * static_cast<double>(best->cycles) /
                          naive.score.cycles);
        std::printf("\n");
      } else {
        std::printf("search found NO verified schedule under the budget\n");
      }
    }
    if (out_path) std::printf("front written to %s\n", out_path->c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  if (args.flag("--help") || args.flag("-h")) usage(argv[0]);
  try {
    apply_logging_flags(args);
    return run(args);
  } catch (const std::exception& e) {
    obs::log_error("cli", "march_search failed", {obs::kv("error", e.what())});
    return 1;
  }
}
