// The peak-constrained schedule search (src/search/): the memoized batch
// evaluator against the traced analytic engine, the validity-preserving
// move set, SIMD bit-identity of the scoring kernel, end-to-end
// determinism (threads / shards / service), cycle-accurate winner
// verification, and the acceptance anchor — a budget the base March C-
// violates, met by the search at no more test time than naive uniform
// idle padding.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "dist/coordinator.h"
#include "dist/job.h"
#include "dist/service.h"
#include "dist/shard.h"
#include "dist/worker.h"
#include "engine/analytic_backend.h"
#include "march/algorithms.h"
#include "search/evaluator.h"
#include "search/schedule.h"
#include "search/search.h"
#include "search/serialize.h"
#include "sram/simd.h"
#include "util/error.h"

namespace {

using namespace sramlp;
using search::Candidate;
using search::MoveLimits;
using search::ScheduleEvaluator;
using search::SearchSpec;
using search::StateCond;
using sram::simd::Level;

core::SessionConfig small_config() {
  core::SessionConfig config;
  config.geometry = {8, 16, 1};  // 128 words
  return config;
}

/// Small spec the whole suite shares: 6-element March C- on 128 words,
/// thermal-scale window (straddles element boundaries).
SearchSpec small_spec() {
  SearchSpec spec;
  spec.config = small_config();
  spec.base = march::algorithms::march_c_minus();
  spec.window_cycles = 512;
  spec.seed = 7;
  spec.restarts = 3;
  spec.steps = 12;
  spec.beam_width = 4;
  spec.neighbors = 8;
  spec.idle_quantum = 128;
  spec.max_idle_quanta = 8;
  spec.max_front = 4;
  return spec;
}

std::vector<StateCond> conds_of(const march::MarchTest& test) {
  std::vector<StateCond> conds;
  for (const march::MarchElement& element : test.elements())
    conds.push_back(search::element_state(element));
  return conds;
}

std::vector<Level> available_levels() {
  std::vector<Level> out{Level::kScalar};
  for (const Level l : {Level::kNeon, Level::kAvx2, Level::kAvx512})
    if (sram::simd::detected_level() >= l) out.push_back(l);
  return out;
}

struct LevelGuard {
  ~LevelGuard() { sram::simd::reset_level_for_testing(); }
};

/// The canonical merged document of a single-process run — every
/// distributed path's byte-diff target.
std::string single_document(const SearchSpec& spec, unsigned threads = 1) {
  dist::MergedResult merged;
  merged.kind = dist::JobSpec::Kind::kSearch;
  merged.search = search::run_search(spec, threads).restarts;
  return dist::merged_document(merged);
}

dist::JobSpec search_job(const SearchSpec& spec) {
  dist::JobSpec job;
  job.kind = dist::JobSpec::Kind::kSearch;
  job.search = spec;
  return job;
}

// --- evaluator vs the traced analytic engine ---------------------------------

TEST(SearchEvaluator, MatchesTracedAnalyticEngineOnMutatedSchedule) {
  const core::SessionConfig config = small_config();
  const march::MarchTest base = march::algorithms::march_c_minus();
  const std::size_t n = base.elements().size();
  const std::uint64_t window = 512;
  ScheduleEvaluator evaluator(config, base, window);

  // A reordered, idle-padded candidate (swap the two w1 ascents, pad two
  // interior slots with different idle amounts).
  Candidate candidate = search::identity_candidate(n);
  std::swap(candidate.order[1], candidate.order[3]);
  ASSERT_TRUE(search::order_is_valid(conds_of(base), candidate.order));
  candidate.idle_after[1] = 384;
  candidate.idle_after[3] = 128;

  const search::Score score = evaluator.score_one(candidate);
  const march::MarchTest schedule =
      search::build_schedule(base, candidate, "mutated");

  core::SessionConfig traced = config;
  power::TraceConfig trace;
  trace.window_cycles = window;
  traced.trace = trace;
  core::TestSession session(traced);
  engine::AnalyticBackend backend(config.tech, config.geometry);
  const core::SessionResult run = session.run(schedule, backend);

  // Same closed-form rates on both sides; the only divergence allowed is
  // summation order (rate*cycles vs per-cycle spreading), ~1 ulp.
  EXPECT_EQ(run.cycles, static_cast<std::uint64_t>(score.cycles));
  EXPECT_NEAR(run.supply_energy_j, score.energy_j,
              1e-9 * std::abs(score.energy_j));
  ASSERT_TRUE(run.trace.has_value());
  EXPECT_NEAR(run.trace->peak_power_w, score.peak_power_w,
              1e-9 * score.peak_power_w);
}

TEST(SearchEvaluator, IdentityCandidateMatchesBaseTest) {
  const core::SessionConfig config = small_config();
  const march::MarchTest base = march::algorithms::march_c_minus();
  ScheduleEvaluator evaluator(config, base, 512);
  const search::Score score =
      evaluator.score_one(search::identity_candidate(base.elements().size()));

  std::uint64_t cycles = 0;
  for (std::size_t i = 0; i < base.elements().size(); ++i)
    cycles += base.element_cycles(i, config.geometry.words());
  EXPECT_EQ(static_cast<std::uint64_t>(score.cycles), cycles);
  EXPECT_GT(score.energy_j, 0.0);
  EXPECT_GT(score.peak_power_w, 0.0);
}

// --- element_cycles under schedule mutation, both engines --------------------

TEST(ScheduleCycles, ElementCyclesBoundariesUnderMutation) {
  const core::SessionConfig config = small_config();
  const std::size_t words = config.geometry.words();
  const march::MarchTest base = march::algorithms::march_c_minus();
  const std::size_t n = base.elements().size();

  Candidate candidate = search::identity_candidate(n);
  std::swap(candidate.order[2], candidate.order[4]);  // r1,w0 <-> r1,w0
  ASSERT_TRUE(search::order_is_valid(conds_of(base), candidate.order));
  candidate.idle_after[0] = 1;      // boundary: a single pause cycle
  candidate.idle_after[2] = 1000;   // non-multiple of anything
  const march::MarchTest schedule =
      search::build_schedule(base, candidate, "mutated");

  // Per-element boundary accounting: pauses report their own cycles,
  // operations scale with the address count; zero-idle slots insert no
  // element at all.
  ASSERT_EQ(schedule.elements().size(), n + 2);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < schedule.elements().size(); ++i) {
    const march::MarchElement& element = schedule.elements()[i];
    const std::uint64_t cycles = schedule.element_cycles(i, words);
    if (element.is_pause())
      EXPECT_EQ(cycles, element.pause_cycles);
    else
      EXPECT_EQ(cycles, element.ops.size() * words);
    total += cycles;
  }
  EXPECT_EQ(schedule.element_cycles(1, words), 1u);
  // element_cycles must not depend on the address count for pauses.
  EXPECT_EQ(schedule.element_cycles(1, 1), 1u);

  // Both engines must walk exactly these cycles.
  core::TestSession cycle_accurate(config);
  const core::SessionResult measured = cycle_accurate.run(schedule);
  EXPECT_EQ(measured.cycles, total);
  EXPECT_EQ(measured.mismatches, 0u);

  core::TestSession analytic_session(config);
  engine::AnalyticBackend backend(config.tech, config.geometry);
  EXPECT_EQ(analytic_session.run(schedule, backend).cycles, total);
}

// --- validity-preserving moves -----------------------------------------------

TEST(ScheduleMoves, MarchCMinusChainRules) {
  const march::MarchTest base = march::algorithms::march_c_minus();
  const std::vector<StateCond> conds = conds_of(base);
  ASSERT_EQ(conds.size(), 6u);

  // Identity is valid.
  EXPECT_TRUE(
      search::order_is_valid(conds, search::identity_candidate(6).order));
  // U(r1,w0) cannot run while cells hold 0.
  EXPECT_FALSE(search::order_is_valid(conds, {0, 2, 1, 3, 4, 5}));
  // Swapping the two (r0,w1) ascents keeps every pre-condition satisfied.
  EXPECT_TRUE(search::order_is_valid(conds, {0, 3, 2, 1, 4, 5}));
  // Nothing may precede the initialising write.
  EXPECT_FALSE(search::order_is_valid(conds, {1, 0, 2, 3, 4, 5}));
}

TEST(ScheduleMoves, RandomWalkPreservesValidityAndLimits) {
  const march::MarchTest base = march::algorithms::march_c_minus();
  const std::vector<StateCond> conds = conds_of(base);
  const std::size_t n = conds.size();
  const MoveLimits limits{128, 8};
  util::Rng rng(42);

  Candidate candidate = search::identity_candidate(n);
  std::size_t applied = 0;
  for (std::size_t k = 0; k < 2000; ++k) {
    if (!search::apply_random_move(candidate, conds, limits, rng)) continue;
    ++applied;
    EXPECT_TRUE(search::order_is_valid(conds, candidate.order));
    // First and last elements stay pinned.
    EXPECT_EQ(candidate.order.front(), 0u);
    EXPECT_EQ(candidate.order.back(), n - 1);
    // Trailing idle never appears; the idle budget holds.
    EXPECT_EQ(candidate.idle_after.back(), 0u);
    std::uint64_t idle = 0;
    for (const std::uint64_t cycles : candidate.idle_after) {
      EXPECT_EQ(cycles % limits.idle_quantum, 0u);
      idle += cycles;
    }
    EXPECT_LE(idle, limits.idle_quantum * limits.max_idle_quanta);
    // The permutation stays a permutation.
    const std::set<std::size_t> unique(candidate.order.begin(),
                                       candidate.order.end());
    EXPECT_EQ(unique.size(), n);
  }
  EXPECT_GT(applied, 500u);  // the move set actually moves
}

// --- SIMD kernel bit-identity ------------------------------------------------

TEST(SearchScoreBatch, BitIdenticalAcrossLevelsAndBatchSizes) {
  LevelGuard guard;
  util::Rng rng(99);
  for (const std::size_t lanes : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 17u}) {
    const std::size_t slots = 12;
    std::vector<double> rates(slots * lanes);
    std::vector<double> cycles(slots * lanes);
    for (std::size_t i = 0; i < slots * lanes; ++i) {
      rates[i] = 1e-12 * static_cast<double>(1 + rng.next_below(1000));
      // Mix zero-cycle no-op slots in: the evaluator's idle slots.
      cycles[i] = static_cast<double>(rng.next_below(5) == 0
                                          ? 0
                                          : 64 * (1 + rng.next_below(40)));
    }
    sram::simd::set_level_for_testing(Level::kScalar);
    std::vector<double> energy_ref(lanes), cycles_ref(lanes), peak_ref(lanes);
    sram::simd::search_score_batch(rates.data(), cycles.data(), lanes, slots,
                                   512.0, energy_ref.data(),
                                   cycles_ref.data(), peak_ref.data());
    for (const Level level : available_levels()) {
      sram::simd::set_level_for_testing(level);
      std::vector<double> energy(lanes), total(lanes), peak(lanes);
      sram::simd::search_score_batch(rates.data(), cycles.data(), lanes,
                                     slots, 512.0, energy.data(),
                                     total.data(), peak.data());
      for (std::size_t l = 0; l < lanes; ++l) {
        EXPECT_EQ(energy[l], energy_ref[l])
            << sram::simd::level_name(level) << " lane " << l;
        EXPECT_EQ(total[l], cycles_ref[l])
            << sram::simd::level_name(level) << " lane " << l;
        EXPECT_EQ(peak[l], peak_ref[l])
            << sram::simd::level_name(level) << " lane " << l;
      }
    }
  }
}

TEST(SearchScoreBatch, PeakWindowSemanticsMatchPowerTrace) {
  // One lane, hand-checkable: two slots of 100 cycles at rates 2 and 4
  // (J/cycle), window 64.  Windows: [0,64) all r=2 -> 128; [64,128) 36*2 +
  // 28*4 = 184; [128,192) 64*4 = 256; [192,200) partial, 8*4 = 32 (rated
  // against the full window by PowerTrace rules -> still 32 J energy).
  const double rates[] = {2.0, 4.0};
  const double cycles[] = {100.0, 100.0};
  double energy = 0.0, total = 0.0, peak = 0.0;
  sram::simd::set_level_for_testing(Level::kScalar);
  LevelGuard guard;
  sram::simd::search_score_batch(rates, cycles, 1, 2, 64.0, &energy, &total,
                                 &peak);
  EXPECT_EQ(total, 200.0);
  EXPECT_EQ(energy, 600.0);
  EXPECT_EQ(peak, 256.0);
}

// --- determinism -------------------------------------------------------------

TEST(SearchDeterminism, RestartIsPureFunctionOfSpecAndIndex) {
  const SearchSpec spec = small_spec();
  const search::RestartResult a = search::run_restart(spec, 1);
  const search::RestartResult b = search::run_restart(spec, 1);
  EXPECT_EQ(io::to_json(a).dump(), io::to_json(b).dump());
  EXPECT_FALSE(a.front.empty());
}

TEST(SearchDeterminism, ByteIdenticalAcrossThreadCounts) {
  const SearchSpec spec = small_spec();
  EXPECT_EQ(single_document(spec, 1), single_document(spec, 4));
}

TEST(SearchDeterminism, SeedChangesTheTrajectory) {
  SearchSpec spec = small_spec();
  const std::string doc = single_document(spec);
  spec.seed = 8;
  // Different seed explores differently (fronts may coincide on a tiny
  // instance, but the serialized restarts as a whole should not).
  EXPECT_NE(single_document(spec), doc);
}

// --- winner verification -----------------------------------------------------

TEST(SearchVerification, EveryFrontPointIsCycleAccurateVerified) {
  const SearchSpec spec = small_spec();
  const search::SearchOutcome outcome = search::run_search(spec, 2);
  ASSERT_FALSE(outcome.front.empty());
  const double tolerance = search::verify_tolerance(spec.config);
  for (const search::ScheduleResult& point : outcome.front) {
    EXPECT_TRUE(point.verified) << point.schedule.name();
    EXPECT_GT(point.verified_peak_w, 0.0);
    EXPECT_LE(std::abs(point.peak_power_w - point.verified_peak_w),
              tolerance * point.verified_peak_w);
    // The schedule is runnable and coverage-preserving: re-run it here
    // and require a mismatch-free pass of the exact length.
    core::TestSession session(spec.config);
    const core::SessionResult run = session.run(point.schedule);
    EXPECT_EQ(run.mismatches, 0u);
    EXPECT_EQ(run.cycles, point.cycles);
  }
}

// --- the acceptance anchor: budget met at <= naive padding time --------------

TEST(SearchBudget, BeatsNaiveIdlePaddingAtTheSameBudget) {
  SearchSpec spec = small_spec();
  spec.restarts = 4;
  spec.steps = 24;
  spec.max_idle_quanta = 16;

  // A budget the base schedule violates.
  const double base_peak =
      ScheduleEvaluator(spec.config, *spec.base, spec.window_cycles)
          .score_one(search::identity_candidate(spec.base->elements().size()))
          .peak_power_w;
  spec.peak_budget_w = 0.97 * base_peak;

  const search::PaddedBaseline naive = search::naive_idle_padding(spec);
  ASSERT_TRUE(naive.meets_budget);
  ASSERT_GT(naive.score.cycles, 0.0);

  const search::SearchOutcome outcome = search::run_search(spec, 2);
  const search::ScheduleResult* best = nullptr;
  for (const search::ScheduleResult& point : outcome.front) {
    if (!point.verified || point.peak_power_w > spec.peak_budget_w) continue;
    if (best == nullptr || point.cycles < best->cycles) best = &point;
  }
  ASSERT_NE(best, nullptr) << "search found no verified schedule under the "
                              "budget the naive padding meets";
  EXPECT_LE(best->cycles, static_cast<std::uint64_t>(naive.score.cycles));
}

// --- dist: shards and the service --------------------------------------------

TEST(SearchDist, ShardedWorkersMergeByteIdenticalToSingleProcess) {
  const SearchSpec spec = small_spec();
  const dist::JobSpec job = search_job(spec);
  const std::string reference = single_document(spec);

  const dist::ShardPlan plan =
      dist::ShardPlan::make(job.size(), 2, dist::ShardStrategy::kStrided);
  std::vector<dist::ShardResult> results;
  for (std::size_t s = 0; s < plan.shard_count; ++s) {
    std::stringstream stream;
    dist::Worker().run(dist::ShardSpec{job, plan, s}, stream);
    results.push_back(dist::parse_shard_results(stream, job, plan, s));
    ASSERT_TRUE(results.back().complete);
  }
  const dist::MergedResult merged =
      dist::merge_shard_results(job, plan, results);
  EXPECT_EQ(dist::merged_document(merged), reference);
}

TEST(SearchDist, JobSpecRoundTripsAndFingerprintCoversSearchKnobs) {
  const SearchSpec spec = small_spec();
  dist::JobSpec job = search_job(spec);
  const dist::JobSpec round =
      dist::job_from_json(io::JsonValue::parse(dist::to_json(job).dump()));
  EXPECT_EQ(round.fingerprint(), job.fingerprint());
  EXPECT_EQ(dist::to_json(round).dump(), dist::to_json(job).dump());

  dist::JobSpec other = search_job(spec);
  other.search->seed = spec.seed + 1;
  EXPECT_NE(other.fingerprint(), job.fingerprint());
  other = search_job(spec);
  other.search->window_cycles = spec.window_cycles * 2;
  EXPECT_NE(other.fingerprint(), job.fingerprint());
}

TEST(SearchService, ByteIdenticalCachedOnResubmitAndFairnessCounters) {
  const SearchSpec spec = small_spec();
  const dist::JobSpec job = search_job(spec);
  const std::string reference = single_document(spec);

  dist::Service::Options options;
  options.listen = "tcp:0";
  options.points_per_shard = 1;
  dist::Service service(options);
  service.start();
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w)
    workers.emplace_back(
        [&service] { dist::ServiceWorker().run(service.address()); });

  const dist::SubmitResult first =
      dist::submit_job(service.address(), job, 5000, {}, "alice");
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.document, reference);

  const dist::SubmitResult second =
      dist::submit_job(service.address(), job, 5000, {}, "bob");
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.document, reference);

  // Per-submitter fairness counters are Prometheus-visible: alice queued,
  // leased and completed; bob's resubmit was a cache hit (queued and
  // completed, no leases required).
  const std::string prom =
      dist::query_metrics(service.address()).prometheus;
  EXPECT_NE(prom.find("sramlp_submitter_jobs_queued_total"
                      "{submitter=\"alice\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("sramlp_submitter_jobs_completed_total"
                      "{submitter=\"alice\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("sramlp_submitter_jobs_queued_total"
                      "{submitter=\"bob\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("sramlp_submitter_jobs_completed_total"
                      "{submitter=\"bob\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("sramlp_submitter_shards_leased_total"
                      "{submitter=\"alice\"}"),
            std::string::npos);

  service.request_stop();
  service.wait();
  for (std::thread& t : workers) t.join();
}

// --- serialization round trips -----------------------------------------------

TEST(SearchSerialize, SpecAndResultsRoundTripExactly) {
  const SearchSpec spec = small_spec();
  const io::JsonValue spec_json = io::to_json(spec);
  const SearchSpec round = io::search_spec_from_json(
      io::JsonValue::parse(spec_json.dump()));
  EXPECT_EQ(io::to_json(round).dump(), spec_json.dump());

  const search::RestartResult restart = search::run_restart(spec, 0);
  const io::JsonValue json = io::to_json(restart);
  const search::RestartResult parsed =
      io::restart_result_from_json(io::JsonValue::parse(json.dump()));
  EXPECT_EQ(io::to_json(parsed).dump(), json.dump());
}

TEST(SearchSpec, ValidateRejectsBrokenSpecs) {
  SearchSpec spec = small_spec();
  spec.base.reset();
  EXPECT_THROW(spec.validate(), Error);
  spec = small_spec();
  spec.restarts = 0;
  EXPECT_THROW(spec.validate(), Error);
  spec = small_spec();
  power::TraceConfig trace;
  trace.window_cycles = 64;
  spec.config.trace = trace;
  EXPECT_THROW(spec.validate(), Error);
}

}  // namespace
