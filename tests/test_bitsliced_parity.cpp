// Bit-exact parity between the two SramArray column engines: the default
// bitsliced/decay-cohort fast path must reproduce the per-column reference
// engine to the last bit — supply energy, every per-source meter total,
// ArrayStats, detections, faulty swaps and cell contents — across
// functional, low-power, restore-disabled and single-fault runs, on square
// and awkward (non-square, non-power-of-two, word-oriented) geometries.
// Also covers the whole-row batch executor (StreamRun / execute_run)
// against the per-step path, and the lazy column state surviving
// reset_measurements().
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/session.h"
#include "engine/cycle_accurate_backend.h"
#include "faults/models.h"
#include "march/algorithms.h"
#include "power/energy_source.h"
#include "power/trace.h"
#include "sram/array.h"

namespace {

using namespace sramlp;
using core::SessionConfig;
using core::SessionResult;
using core::TestSession;
using sram::ColumnModel;
using sram::CycleCommand;
using sram::Mode;
using sram::SramArray;
using sram::SramConfig;

void expect_meters_identical(const power::EnergyMeter& a,
                             const power::EnergyMeter& b,
                             const std::string& where) {
  EXPECT_EQ(a.cycles(), b.cycles()) << where;
  for (std::size_t i = 0; i < power::kEnergySourceCount; ++i) {
    const auto source = static_cast<power::EnergySource>(i);
    EXPECT_EQ(a.total(source), b.total(source))
        << where << " source=" << power::to_string(source);
  }
  EXPECT_EQ(a.supply_total(), b.supply_total()) << where;
}

void expect_stats_identical(const sram::ArrayStats& a,
                            const sram::ArrayStats& b,
                            const std::string& where) {
  EXPECT_EQ(a.cycles, b.cycles) << where;
  EXPECT_EQ(a.reads, b.reads) << where;
  EXPECT_EQ(a.writes, b.writes) << where;
  EXPECT_EQ(a.read_mismatches, b.read_mismatches) << where;
  EXPECT_EQ(a.faulty_swaps, b.faulty_swaps) << where;
  EXPECT_EQ(a.row_transitions, b.row_transitions) << where;
  EXPECT_EQ(a.restore_cycles, b.restore_cycles) << where;
  EXPECT_EQ(a.full_res_column_cycles, b.full_res_column_cycles) << where;
  EXPECT_EQ(a.decay_stress_equiv_post_op, b.decay_stress_equiv_post_op)
      << where;
  EXPECT_EQ(a.decay_stress_equiv_pre_op, b.decay_stress_equiv_pre_op)
      << where;
}

void expect_results_identical(const SessionResult& ref,
                              const SessionResult& fast,
                              const std::string& where) {
  EXPECT_EQ(ref.cycles, fast.cycles) << where;
  EXPECT_EQ(ref.supply_energy_j, fast.supply_energy_j) << where;
  EXPECT_EQ(ref.energy_per_cycle_j, fast.energy_per_cycle_j) << where;
  EXPECT_EQ(ref.mismatches, fast.mismatches) << where;
  expect_meters_identical(ref.meter, fast.meter, where);
  expect_stats_identical(ref.stats, fast.stats, where);
  ASSERT_EQ(ref.first_detections.size(), fast.first_detections.size())
      << where;
  for (std::size_t i = 0; i < ref.first_detections.size(); ++i) {
    EXPECT_EQ(ref.first_detections[i].element,
              fast.first_detections[i].element)
        << where << " det " << i;
    EXPECT_EQ(ref.first_detections[i].op, fast.first_detections[i].op)
        << where << " det " << i;
    EXPECT_EQ(ref.first_detections[i].row, fast.first_detections[i].row)
        << where << " det " << i;
    EXPECT_EQ(ref.first_detections[i].col_group,
              fast.first_detections[i].col_group)
        << where << " det " << i;
    EXPECT_EQ(ref.first_detections[i].col, fast.first_detections[i].col)
        << where << " det " << i;
  }
}

/// Run @p test under both column engines and require bit-exact agreement,
/// including final cell contents.
void expect_session_parity_specs(SessionConfig config,
                                 const march::MarchTest& test,
                                 const std::vector<faults::FaultSpec>& specs,
                                 const std::string& where) {
  SessionResult results[2];
  std::vector<bool> cells[2];
  for (int m = 0; m < 2; ++m) {
    config.column_model = m == 0 ? ColumnModel::kPerColumnReference
                                 : ColumnModel::kBitslicedCohort;
    TestSession session(config);
    faults::FaultSet set(specs);
    if (!specs.empty()) session.attach_fault_model(&set);
    results[m] = session.run(test);
    for (std::size_t r = 0; r < config.geometry.rows; ++r)
      for (std::size_t c = 0; c < config.geometry.cols; ++c)
        cells[m].push_back(session.array().peek(r, c));
  }
  expect_results_identical(results[0], results[1], where);
  EXPECT_EQ(cells[0], cells[1]) << where << " (cell contents)";
}

void expect_session_parity(const SessionConfig& config,
                           const march::MarchTest& test,
                           const faults::FaultSpec* fault,
                           const std::string& where) {
  std::vector<faults::FaultSpec> specs;
  if (fault != nullptr) specs.push_back(*fault);
  expect_session_parity_specs(config, test, specs, where);
}

SessionConfig grid_config(Mode mode, std::size_t rows, std::size_t cols,
                          std::size_t word_width = 1) {
  SessionConfig cfg;
  cfg.geometry = {rows, cols, word_width};
  cfg.mode = mode;
  return cfg;
}

// --- fault-free parity across modes, geometries, backgrounds ----------------

TEST(BitslicedParity, FaultFreeAcrossModesAndAwkwardGeometries) {
  // Non-square, non-power-of-two and word-oriented organisations exercise
  // the packing and cohort math off the easy 512x512 path.
  struct Geo {
    std::size_t rows, cols, w;
  };
  const Geo geos[] = {{8, 8, 1}, {48, 96, 1}, {33, 17, 1}, {16, 96, 4}};
  for (const auto& test :
       {march::algorithms::mats_plus(), march::algorithms::march_c_minus()}) {
    for (const Geo& geo : geos) {
      for (const Mode mode : {Mode::kFunctional, Mode::kLowPowerTest}) {
        SessionConfig cfg = grid_config(mode, geo.rows, geo.cols, geo.w);
        const std::string where =
            test.name() + " " + std::to_string(geo.rows) + "x" +
            std::to_string(geo.cols) + "/w" + std::to_string(geo.w) +
            (mode == Mode::kFunctional ? " F" : " LP");
        expect_session_parity(cfg, test, nullptr, where);
      }
    }
  }
}

TEST(BitslicedParity, PaperWidthRowsWithDeepDecay) {
  // 512-column rows push pre-op decay thousands of cycles deep (the decay
  // factor underflows to exactly 0.0 past ~e^-700) and exercise the memo
  // cap; a reduced row count keeps the reference engine affordable.
  for (const Mode mode : {Mode::kFunctional, Mode::kLowPowerTest}) {
    SessionConfig cfg = grid_config(mode, 8, 512);
    expect_session_parity(cfg, march::algorithms::march_c_minus(), nullptr,
                          mode == Mode::kFunctional ? "8x512 F" : "8x512 LP");
  }
}

TEST(BitslicedParity, BackgroundsAndInvertedData) {
  const auto test = march::algorithms::march_c_minus();
  for (const auto kind : sram::DataBackground::kinds()) {
    SessionConfig cfg = grid_config(Mode::kLowPowerTest, 12, 24);
    cfg.background = sram::DataBackground(kind);
    expect_session_parity(cfg, test, nullptr,
                          "background " + cfg.background.name());
  }
  SessionConfig cfg = grid_config(Mode::kLowPowerTest, 12, 24);
  cfg.invert_background = true;
  expect_session_parity(cfg, test, nullptr, "inverted background");
}

TEST(BitslicedParity, DelayElementsAndIdleWindows) {
  SessionConfig cfg = grid_config(Mode::kLowPowerTest, 6, 16);
  expect_session_parity(cfg, march::algorithms::march_g_with_delays(),
                        nullptr, "march G with delays");
}

// --- restore-disabled (faulty-swap) parity ----------------------------------

TEST(BitslicedParity, RestoreDisabledReproducesFaultySwapsExactly) {
  for (const auto& geo : {std::pair<std::size_t, std::size_t>{8, 32},
                          std::pair<std::size_t, std::size_t>{33, 17}}) {
    SessionConfig cfg = grid_config(Mode::kLowPowerTest, geo.first,
                                    geo.second);
    cfg.row_transition_restore = false;
    expect_session_parity(cfg, march::algorithms::mats_plus(), nullptr,
                          "restore-disabled " + std::to_string(geo.first) +
                              "x" + std::to_string(geo.second));
  }
}

// --- single-fault parity ------------------------------------------------------

TEST(BitslicedParity, SingleFaultRunsAcrossKinds) {
  const auto test = march::algorithms::march_sr();
  const faults::FaultSpec specs[] = {
      {.kind = faults::FaultKind::kStuckAt1, .victim = {3, 5}},
      {.kind = faults::FaultKind::kTransitionUp, .victim = {7, 0}},
      {.kind = faults::FaultKind::kReadDestructive, .victim = {1, 14}},
      {.kind = faults::FaultKind::kCouplingInversion,
       .victim = {2, 9},
       .aggressor = {5, 4}},
      {.kind = faults::FaultKind::kResSensitive,
       .victim = {4, 11},
       .res_threshold = 12.0},
  };
  for (const auto& spec : specs) {
    for (const Mode mode : {Mode::kFunctional, Mode::kLowPowerTest}) {
      SessionConfig cfg = grid_config(mode, 12, 20);
      expect_session_parity(cfg, test, &spec,
                            spec.describe() +
                                (mode == Mode::kFunctional ? " F" : " LP"));
    }
  }
}

// Dynamic write-then-read faults force relevant_rows() to nullopt (the
// global write-history tracking matters everywhere), so every row must
// keep per-cell hooks — the all-rows-hooked path of the batch executor.
TEST(BitslicedParity, DynamicFaultDisablesRowSparseHooks) {
  const faults::FaultSpec spec{
      .kind = faults::FaultKind::kDynamicReadDestructive, .victim = {5, 7}};
  faults::FaultSet set({spec});
  ASSERT_FALSE(set.relevant_rows().has_value());
  for (const Mode mode : {Mode::kFunctional, Mode::kLowPowerTest}) {
    SessionConfig cfg = grid_config(mode, 12, 20);
    // March SR contains the w,r pair that sensitises dRDF.
    expect_session_parity(cfg, march::algorithms::march_sr(), &spec,
                          mode == Mode::kFunctional ? "dRDF F" : "dRDF LP");
  }
}

// A mixed set: row-sparse hooks must cover the union of victim and
// aggressor rows, and the cohort math must survive several models at once.
TEST(BitslicedParity, MixedFaultSetUnionOfRelevantRows) {
  const std::vector<faults::FaultSpec> specs = {
      {.kind = faults::FaultKind::kStuckAt0, .victim = {1, 2}},
      {.kind = faults::FaultKind::kCouplingIdempotent,
       .victim = {9, 15},
       .aggressor = {3, 4},
       .aggressor_up = true,
       .forced_value = true},
      {.kind = faults::FaultKind::kResSensitive,
       .victim = {6, 10},
       .res_threshold = 10.0},
  };
  for (const Mode mode : {Mode::kFunctional, Mode::kLowPowerTest}) {
    SessionConfig cfg = grid_config(mode, 12, 20);
    expect_session_parity_specs(cfg, march::algorithms::march_c_minus(),
                                specs,
                                mode == Mode::kFunctional ? "mixed F"
                                                          : "mixed LP");
  }
}

TEST(BitslicedParity, DataRetentionFaultThroughDelays) {
  const faults::FaultSpec spec{.kind = faults::FaultKind::kDataRetention,
                               .victim = {2, 3},
                               .forced_value = true,
                               .retention_idle_cycles = 900};
  SessionConfig cfg = grid_config(Mode::kLowPowerTest, 4, 8);
  expect_session_parity(cfg, march::algorithms::march_g_with_delays(), &spec,
                        "data retention");
}

// --- batch executor vs per-step path -----------------------------------------

TEST(BitslicedParity, BatchedRunsMatchPerStepExecution) {
  for (const Mode mode : {Mode::kFunctional, Mode::kLowPowerTest}) {
    SessionConfig cfg = grid_config(mode, 24, 48);
    const auto test = march::algorithms::march_c_minus();

    TestSession per_step_session(cfg);
    engine::CycleAccurateBackend per_step(per_step_session.array(),
                                          /*batch_runs=*/false);
    const auto a = per_step_session.run(test, per_step);

    TestSession batched_session(cfg);
    engine::CycleAccurateBackend batched(batched_session.array(),
                                         /*batch_runs=*/true);
    const auto b = batched_session.run(test, batched);

    expect_results_identical(a, b, mode == Mode::kFunctional
                                       ? "batched F"
                                       : "batched LP");
  }
}

// --- direct-drive parity (arbitrary command sequences) ------------------------

TEST(BitslicedParity, DirectDriveWithSwapsIdleAndModeSwitch) {
  const std::size_t rows = 4, cols = 24;
  SramConfig base;
  base.geometry = {rows, cols, 1};
  base.mode = Mode::kLowPowerTest;
  base.row_transition_restore = false;
  SramConfig ref_cfg = base;
  ref_cfg.column_model = ColumnModel::kPerColumnReference;
  SramConfig fast_cfg = base;
  fast_cfg.column_model = ColumnModel::kBitslicedCohort;
  SramArray ref(ref_cfg), fast(fast_cfg);

  const auto drive = [&](SramArray& a) {
    // Row 1 holds the complement of what row 0 drives -> swaps on entry.
    for (std::size_t c = 0; c < cols; ++c) a.poke(1, c, false);
    CycleCommand cmd;
    for (std::size_t c = 0; c < cols; ++c) {
      cmd.row = 0;
      cmd.col_group = c;
      cmd.is_read = false;
      cmd.value = true;
      a.cycle(cmd);
    }
    // Hop to row 1 without restore: the swap hazard fires.
    cmd.row = 1;
    cmd.col_group = 0;
    cmd.is_read = true;
    cmd.value = false;
    a.cycle(cmd);
    // Partial column walk, an idle window, then a row re-entry.
    for (std::size_t c = 1; c < 9; ++c) {
      cmd.col_group = c;
      cmd.is_read = (c % 2) == 0;
      cmd.value = (c % 3) == 0;
      a.cycle(cmd);
    }
    a.idle(40);
    cmd.row = 2;
    for (std::size_t c = 0; c < cols; ++c) {
      cmd.col_group = c;
      cmd.is_read = false;
      cmd.value = (c % 2) != 0;
      cmd.restore_row_transition = c == cols - 1;
      a.cycle(cmd);
    }
    cmd.restore_row_transition = false;
    // Descending scan across a fresh row.
    cmd.row = 3;
    cmd.scan = sram::Scan::kDescending;
    for (std::size_t c = cols; c-- > 0;) {
      cmd.col_group = c;
      cmd.is_read = false;
      cmd.value = true;
      a.cycle(cmd);
    }
    // Mode switch keeps data and resets bit-lines identically.
    a.set_mode(Mode::kFunctional);
    cmd.scan = sram::Scan::kAscending;
    for (std::size_t c = 0; c < cols; ++c) {
      cmd.row = 1;
      cmd.col_group = c;
      cmd.is_read = true;
      cmd.value = true;
      a.cycle(cmd);
    }
  };
  drive(ref);
  drive(fast);

  expect_meters_identical(ref.meter(), fast.meter(), "direct drive");
  expect_stats_identical(ref.stats(), fast.stats(), "direct drive");
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      EXPECT_EQ(ref.peek(r, c), fast.peek(r, c)) << r << "," << c;
  for (std::size_t c = 0; c < cols; ++c) {
    EXPECT_EQ(ref.bitline_low_side_voltage(c),
              fast.bitline_low_side_voltage(c))
        << "column " << c;
    EXPECT_EQ(ref.precharge_was_active(c), fast.precharge_was_active(c))
        << "column " << c;
  }
}

// --- probe/sink tracing: totals invariant, traces engine-identical -----------

void expect_traces_identical(const power::TraceSummary& a,
                             const power::TraceSummary& b,
                             const std::string& where) {
  EXPECT_EQ(a.window_cycles, b.window_cycles) << where;
  EXPECT_EQ(a.total_cycles, b.total_cycles) << where;
  EXPECT_EQ(a.windows, b.windows) << where;
  EXPECT_EQ(a.peak_window, b.peak_window) << where;
  EXPECT_EQ(a.peak_window_energy_j, b.peak_window_energy_j) << where;
  EXPECT_EQ(a.peak_power_w, b.peak_power_w) << where;
  EXPECT_EQ(a.supply_energy_j, b.supply_energy_j) << where;
  EXPECT_EQ(a.average_power_w, b.average_power_w) << where;
  ASSERT_EQ(a.elements.size(), b.elements.size()) << where;
  for (std::size_t e = 0; e < a.elements.size(); ++e) {
    EXPECT_EQ(a.elements[e].element, b.elements[e].element) << where;
    EXPECT_EQ(a.elements[e].start_cycle, b.elements[e].start_cycle) << where;
    EXPECT_EQ(a.elements[e].cycles, b.elements[e].cycles) << where;
    EXPECT_EQ(a.elements[e].supply_energy_j, b.elements[e].supply_energy_j)
        << where << " element " << e;
    EXPECT_EQ(a.elements[e].precharge_energy_j,
              b.elements[e].precharge_energy_j)
        << where << " element " << e;
  }
  EXPECT_EQ(a.window_supply_j, b.window_supply_j) << where;
}

// Attaching a trace sink must not move a single bit of the scalar totals
// (the cycle-accurate path switches from the register-accumulator batch
// executor to the per-cycle path — the documented-identical route), and
// the two column engines, which emit the same per-source event sequences
// at the same cycles, must produce bit-identical traces.
TEST(BitslicedParity, TracingKeepsTotalsBitIdenticalAndTracesEngineEqual) {
  struct Case {
    const char* name;
    march::MarchTest test;
    Mode mode;
    bool restore;
  };
  const Case cases[] = {
      {"C- F", march::algorithms::march_c_minus(), Mode::kFunctional, true},
      {"C- LP", march::algorithms::march_c_minus(), Mode::kLowPowerTest,
       true},
      {"C- LP no-restore", march::algorithms::march_c_minus(),
       Mode::kLowPowerTest, false},
      {"G delays LP", march::algorithms::march_g_with_delays(),
       Mode::kLowPowerTest, true},
  };
  for (const Case& c : cases) {
    SessionResult traced[2];
    for (int m = 0; m < 2; ++m) {
      SessionConfig cfg = grid_config(c.mode, 12, 24);
      cfg.row_transition_restore = c.restore;
      cfg.column_model = m == 0 ? ColumnModel::kPerColumnReference
                                : ColumnModel::kBitslicedCohort;
      const SessionResult untraced = TestSession(cfg).run(c.test);
      cfg.trace = power::TraceConfig{.window_cycles = 16,
                                     .keep_windows = true};
      traced[m] = TestSession(cfg).run(c.test);
      const std::string where = std::string(c.name) +
                                (m == 0 ? " ref" : " fast") +
                                " traced-vs-untraced";
      expect_results_identical(untraced, traced[m], where);
      ASSERT_TRUE(traced[m].trace.has_value()) << where;
    }
    expect_results_identical(traced[0], traced[1],
                             std::string(c.name) + " cross-engine");
    expect_traces_identical(*traced[0].trace, *traced[1].trace,
                            std::string(c.name) + " trace");
  }
}

// Same invariants with a fault model attached: the hooked per-cell data
// path and the RES-sensitive materialized columns must meter identically
// through the probe.
TEST(BitslicedParity, TracingWithFaultsKeepsTotalsBitIdentical) {
  const std::vector<faults::FaultSpec> specs = {
      {.kind = faults::FaultKind::kStuckAt1, .victim = {3, 5}},
      {.kind = faults::FaultKind::kResSensitive,
       .victim = {6, 10},
       .res_threshold = 10.0},
  };
  for (const Mode mode : {Mode::kFunctional, Mode::kLowPowerTest}) {
    SessionResult traced[2];
    for (int m = 0; m < 2; ++m) {
      SessionConfig cfg = grid_config(mode, 12, 20);
      cfg.column_model = m == 0 ? ColumnModel::kPerColumnReference
                                : ColumnModel::kBitslicedCohort;
      SessionResult untraced;
      {
        TestSession session(cfg);
        faults::FaultSet set(specs);
        session.attach_fault_model(&set);
        untraced = session.run(march::algorithms::march_c_minus());
      }
      cfg.trace = power::TraceConfig{.window_cycles = 16,
                                     .keep_windows = true};
      {
        TestSession session(cfg);
        faults::FaultSet set(specs);
        session.attach_fault_model(&set);
        traced[m] = session.run(march::algorithms::march_c_minus());
      }
      const std::string where = std::string(mode == Mode::kFunctional
                                                ? "faulty F"
                                                : "faulty LP") +
                                (m == 0 ? " ref" : " fast");
      expect_results_identical(untraced, traced[m], where);
    }
    expect_traces_identical(*traced[0].trace, *traced[1].trace,
                            mode == Mode::kFunctional ? "faulty F trace"
                                                      : "faulty LP trace");
  }
}

// The bulk-window traced fast path: a batched traced run folds whole runs
// into the sink's window/element slot blocks; the per-step path delivers
// every event through MeterSink::on_add.  Same per-slot additions in the
// same order — totals AND trace summaries must match to the bit, across
// awkward geometries, word widths (including multi-word groups), the
// restore-disabled schedule and fault models.
TEST(BitslicedParity, TracedBatchedRunsMatchPerStepExecution) {
  struct Case {
    std::size_t rows, cols, w;
    Mode mode;
    bool restore;
    bool faulty;
  };
  const Case cases[] = {
      {12, 24, 1, Mode::kFunctional, true, false},
      {12, 24, 1, Mode::kLowPowerTest, true, true},
      {33, 17, 1, Mode::kLowPowerTest, true, false},
      {33, 17, 1, Mode::kFunctional, true, true},
      {33, 17, 1, Mode::kLowPowerTest, false, false},
      {48, 96, 4, Mode::kLowPowerTest, true, false},
      {48, 96, 4, Mode::kFunctional, true, false},
      {4, 256, 128, Mode::kLowPowerTest, true, false},
      {4, 256, 128, Mode::kLowPowerTest, false, false},
  };
  const auto test = march::algorithms::march_c_minus();
  for (const Case& c : cases) {
    SessionConfig cfg = grid_config(c.mode, c.rows, c.cols, c.w);
    cfg.row_transition_restore = c.restore;
    cfg.trace = power::TraceConfig{.window_cycles = 48, .keep_windows = true};
    const std::string where =
        std::to_string(c.rows) + "x" + std::to_string(c.cols) + " w" +
        std::to_string(c.w) +
        (c.mode == Mode::kFunctional ? " F" : " LP") +
        (c.restore ? "" : " no-restore") + (c.faulty ? " faulty" : "");
    SessionResult res[2];
    for (int p = 0; p < 2; ++p) {
      TestSession session(cfg);
      faults::FaultSet set({{.kind = faults::FaultKind::kStuckAt1,
                             .victim = {3, 5}}});
      if (c.faulty) session.attach_fault_model(&set);
      engine::CycleAccurateBackend backend(session.array(),
                                           /*batch_runs=*/p == 1);
      res[p] = session.run(test, backend);
    }
    expect_results_identical(res[0], res[1], where);
    ASSERT_TRUE(res[0].trace.has_value() && res[1].trace.has_value())
        << where;
    expect_traces_identical(*res[0].trace, *res[1].trace, where);
  }
}

// --- reset_measurements is measurement-only -----------------------------------

TEST(BitslicedParity, ResetMeasurementsPreservesLazyColumnState) {
  SramConfig cfg;
  cfg.geometry = {2, 16, 1};
  cfg.mode = Mode::kLowPowerTest;
  SramArray a(cfg);
  CycleCommand cmd;
  cmd.is_read = false;
  cmd.value = true;
  for (std::size_t c = 0; c < 8; ++c) {
    cmd.col_group = c;
    a.cycle(cmd);
  }
  // Columns 0..6 are decaying cohorts now; snapshot their voltages.
  std::vector<double> before;
  for (std::size_t c = 0; c < 16; ++c)
    before.push_back(a.bitline_low_side_voltage(c));
  EXPECT_LT(before[0], cfg.tech.vdd);

  a.reset_measurements();
  EXPECT_EQ(a.meter().supply_total(), 0.0);
  EXPECT_EQ(a.stats().cycles, 0u);
  for (std::size_t c = 0; c < 16; ++c)
    EXPECT_EQ(a.bitline_low_side_voltage(c), before[c]) << "column " << c;

  // The swap hazard still sees the pre-reset decay: entering row 1 with
  // opposing data must swap exactly as it would have without the reset.
  for (std::size_t c = 0; c < 16; ++c) a.poke(1, c, false);
  cmd.row = 1;
  cmd.col_group = 0;
  cmd.is_read = true;
  cmd.value = false;
  const auto r = a.cycle(cmd);
  EXPECT_GT(r.faulty_swaps, 0u);
}

}  // namespace
