// Tests of the modified pre-charge control logic (paper Fig. 8): the
// element's truth table (exhaustive), whole-row controller semantics per
// phase, boundary handling, switching activity, transistor budget, and the
// transmission-gate vs pass-transistor timing claim (§4).
#include <gtest/gtest.h>

#include "ctrl/delay.h"
#include "ctrl/precharge_control.h"
#include "util/error.h"

namespace {

using namespace sramlp;
using ctrl::ElementInputs;
using ctrl::Phase;
using ctrl::PrechargeController;

// --- the per-column element -----------------------------------------------

// Exhaustive truth table: NPr_j = (LPtest AND NOT CS_j) ? NOT CS_prev : Pr_j.
TEST(ControlElement, ExhaustiveTruthTable) {
  for (int mask = 0; mask < 16; ++mask) {
    ElementInputs in;
    in.lptest = (mask & 1) != 0;
    in.cs_j = (mask & 2) != 0;
    in.cs_prev = (mask & 4) != 0;
    in.pr_j = (mask & 8) != 0;
    const bool expected =
        (in.lptest && !in.cs_j) ? !in.cs_prev : in.pr_j;
    EXPECT_EQ(ctrl::element_npr(in), expected) << "mask=" << mask;
  }
}

// The paper's described behaviours, spelled out:
TEST(ControlElement, FunctionalModeRoutesFormerPrechargeSignal) {
  for (bool pr : {false, true}) {
    ElementInputs in;
    in.lptest = false;
    in.pr_j = pr;
    in.cs_prev = true;  // must be ignored
    EXPECT_EQ(ctrl::element_npr(in), pr);
  }
}

TEST(ControlElement, SelectedColumnForcedFunctionalInLpMode) {
  // "The NAND gate forces the functional mode for the column when it is
  //  selected for a read/write operation."
  ElementInputs in;
  in.lptest = true;
  in.cs_j = true;
  in.pr_j = true;   // operate phase: pre-charge off
  in.cs_prev = true;
  EXPECT_TRUE(ctrl::element_npr(in));
  in.pr_j = false;  // restore phase: pre-charge on
  EXPECT_FALSE(ctrl::element_npr(in));
}

TEST(ControlElement, NeighbourSelectionPrechargesFollower) {
  // "When LPtest is ON, the signal CS of a column j drives the pre-charge
  //  of the next column j+1" (active low).
  ElementInputs in;
  in.lptest = true;
  in.cs_j = false;
  in.cs_prev = true;  // neighbour selected
  EXPECT_FALSE(ctrl::element_npr(in));  // pre-charge ON
  in.cs_prev = false;
  EXPECT_TRUE(ctrl::element_npr(in));   // pre-charge OFF
}

// --- transistor budget -------------------------------------------------------

TEST(ControlElement, TenTransistorsPerColumn) {
  EXPECT_EQ(ctrl::kTransistorsPerElement, 10);
  PrechargeController c(512);
  EXPECT_EQ(c.added_transistors(), 5120);
  EXPECT_EQ(c.added_transistors(/*bidirectional=*/true), 512 * 16);
}

// --- whole-row controller ------------------------------------------------------

TEST(Controller, FunctionalModeKeepsEveryPrechargeOn) {
  PrechargeController c(8);
  PrechargeController::CycleInputs in;
  in.lptest = false;
  in.selected = 3;
  in.phase = Phase::kRestore;
  c.evaluate(in);
  EXPECT_EQ(c.active_precharge_count(), 8u);
  // Operate phase: only the selected column's pre-charge pauses.
  in.phase = Phase::kOperate;
  const auto& npr = c.evaluate(in);
  EXPECT_EQ(c.active_precharge_count(), 7u);
  EXPECT_TRUE(npr[3]);
}

TEST(Controller, LpOperatePhaseOnlyFollowerOn) {
  PrechargeController c(8);
  PrechargeController::CycleInputs in;
  in.lptest = true;
  in.selected = 3;
  in.phase = Phase::kOperate;
  const auto& npr = c.evaluate(in);
  // Selected column: pre-charge off (operation in flight); follower (4): on.
  EXPECT_TRUE(npr[3]);
  EXPECT_FALSE(npr[4]);
  EXPECT_EQ(c.active_precharge_count(), 1u);
}

TEST(Controller, LpRestorePhaseSelectedAndFollowerOn) {
  PrechargeController c(8);
  PrechargeController::CycleInputs in;
  in.lptest = true;
  in.selected = 3;
  in.phase = Phase::kRestore;
  const auto& npr = c.evaluate(in);
  EXPECT_FALSE(npr[3]);  // restoring its bit-lines
  EXPECT_FALSE(npr[4]);  // follower held ready
  EXPECT_EQ(c.active_precharge_count(), 2u);
}

TEST(Controller, DescendingScanMirrorsFollower) {
  PrechargeController c(8);
  PrechargeController::CycleInputs in;
  in.lptest = true;
  in.selected = 3;
  in.ascending = false;
  in.phase = Phase::kOperate;
  const auto& npr = c.evaluate(in);
  EXPECT_FALSE(npr[2]);  // follower is now column 2
  EXPECT_TRUE(npr[4]);
}

TEST(Controller, LastColumnSelectionFeedsNothing) {
  // "The CS signal of the last column is not connected to the first
  //  column pre-charge control."
  PrechargeController c(8);
  PrechargeController::CycleInputs in;
  in.lptest = true;
  in.selected = 7;
  in.phase = Phase::kOperate;
  const auto& npr = c.evaluate(in);
  EXPECT_TRUE(npr[0]);  // column 0 not pre-charged by wrap-around
  EXPECT_EQ(c.active_precharge_count(), 0u);  // 7 off (operating), rest off
}

TEST(Controller, ForceFunctionalRestoresEveryColumn) {
  PrechargeController c(8);
  PrechargeController::CycleInputs in;
  in.lptest = true;
  in.selected = 7;
  in.phase = Phase::kRestore;
  in.force_functional = true;
  c.evaluate(in);
  EXPECT_EQ(c.active_precharge_count(), 8u);
}

TEST(Controller, IdleLpRowHasNoPrechargeActivity) {
  PrechargeController c(8);
  PrechargeController::CycleInputs in;
  in.lptest = true;
  in.selected.reset();
  in.phase = Phase::kOperate;
  c.evaluate(in);
  EXPECT_EQ(c.active_precharge_count(), 0u);
}

// Paper §5 source 5: "only one control element switching for each column
// changing" — at cycle granularity the advance toggles O(1) outputs, not
// O(columns).
TEST(Controller, ColumnAdvanceTogglesFewOutputs) {
  PrechargeController c(64);
  PrechargeController::CycleInputs in;
  in.lptest = true;
  in.phase = Phase::kOperate;
  in.selected = 10;
  c.evaluate(in);
  const std::uint64_t before = c.switching_events();
  in.selected = 11;
  c.evaluate(in);
  const std::uint64_t toggles = c.switching_events() - before;
  EXPECT_GE(toggles, 1u);
  EXPECT_LE(toggles, 3u);
}

TEST(Controller, SteadySelectionTogglesNothing) {
  PrechargeController c(16);
  PrechargeController::CycleInputs in;
  in.lptest = true;
  in.phase = Phase::kOperate;
  in.selected = 5;
  c.evaluate(in);
  const std::uint64_t before = c.switching_events();
  c.evaluate(in);
  EXPECT_EQ(c.switching_events(), before);
}

TEST(Controller, RejectsBadInputs) {
  EXPECT_THROW(PrechargeController(1), Error);
  PrechargeController c(4);
  PrechargeController::CycleInputs in;
  in.selected = 9;
  EXPECT_THROW(c.evaluate(in), Error);
}

// --- §4 design choice: transmission gate vs single pass transistor -----------

TEST(PassDeviceTiming, TransmissionGateFullRailBothEdges) {
  const auto rising =
      ctrl::measure_pass_edge(circuit::PassDevice::kTransmissionGate, true);
  const auto falling =
      ctrl::measure_pass_edge(circuit::PassDevice::kTransmissionGate, false);
  EXPECT_TRUE(rising.reaches_full_rail);
  EXPECT_TRUE(falling.reaches_full_rail);
  EXPECT_LT(rising.delay_s, 200e-12);
  EXPECT_LT(falling.delay_s, 200e-12);
}

TEST(PassDeviceTiming, NmosPassLosesTheRisingRail) {
  const auto rising = ctrl::measure_pass_edge(
      circuit::PassDevice::kNmosPassTransistor, true);
  EXPECT_FALSE(rising.reaches_full_rail);
  EXPECT_LT(rising.v_final, 1.6 - 0.25);  // roughly a threshold below VDD
  const auto falling = ctrl::measure_pass_edge(
      circuit::PassDevice::kNmosPassTransistor, false);
  EXPECT_TRUE(falling.reaches_full_rail);
}

}  // namespace
