// Unit tests of the behavioural fault models, exercised directly through a
// small array (detection-level properties live in test_detection.cpp).
#include <gtest/gtest.h>

#include "faults/models.h"
#include "sram/array.h"
#include "util/error.h"

namespace {

using namespace sramlp;
using faults::FaultKind;
using faults::FaultSet;
using faults::FaultSpec;
using sram::CycleCommand;
using sram::Mode;
using sram::SramArray;
using sram::SramConfig;

SramArray make_array(FaultSet& set, Mode mode = Mode::kFunctional) {
  SramConfig cfg;
  cfg.geometry = {8, 8, 1};
  cfg.mode = mode;
  SramArray a(cfg);
  a.attach_fault_model(&set);
  return a;
}

CycleCommand wr(std::size_t row, std::size_t col, bool value) {
  CycleCommand c;
  c.row = row;
  c.col_group = col;
  c.is_read = false;
  c.value = value;
  return c;
}

CycleCommand rd(std::size_t row, std::size_t col, bool expected) {
  CycleCommand c;
  c.row = row;
  c.col_group = col;
  c.is_read = true;
  c.value = expected;
  return c;
}

TEST(FaultModels, StuckAt0IgnoresWrites) {
  FaultSet set({FaultSpec{.kind = FaultKind::kStuckAt0, .victim = {2, 2}}});
  auto a = make_array(set);
  a.cycle(wr(2, 2, true));
  const auto r = a.cycle(rd(2, 2, true));
  EXPECT_FALSE(r.read_value);
  EXPECT_TRUE(r.mismatch);
}

TEST(FaultModels, StuckAt1ReadsOneEvenWhenUntouched) {
  FaultSet set({FaultSpec{.kind = FaultKind::kStuckAt1, .victim = {0, 5}}});
  auto a = make_array(set);
  const auto r = a.cycle(rd(0, 5, false));
  EXPECT_TRUE(r.read_value);
  EXPECT_TRUE(r.mismatch);
}

TEST(FaultModels, TransitionUpFailsOnlyUpWrites) {
  FaultSet set(
      {FaultSpec{.kind = FaultKind::kTransitionUp, .victim = {1, 1}}});
  auto a = make_array(set);
  a.cycle(wr(1, 1, true));  // 0 -> 1 fails
  EXPECT_FALSE(a.peek(1, 1));
  a.poke(1, 1, true);
  a.cycle(wr(1, 1, false));  // 1 -> 0 still works
  EXPECT_FALSE(a.peek(1, 1));
  a.cycle(wr(1, 1, true));   // fails again
  EXPECT_FALSE(a.peek(1, 1));
}

TEST(FaultModels, TransitionDownFailsOnlyDownWrites) {
  FaultSet set(
      {FaultSpec{.kind = FaultKind::kTransitionDown, .victim = {1, 1}}});
  auto a = make_array(set);
  a.cycle(wr(1, 1, true));
  EXPECT_TRUE(a.peek(1, 1));
  a.cycle(wr(1, 1, false));  // 1 -> 0 fails
  EXPECT_TRUE(a.peek(1, 1));
}

TEST(FaultModels, WriteDisturbFlipsOnNonTransitionWrite) {
  FaultSet set(
      {FaultSpec{.kind = FaultKind::kWriteDisturb, .victim = {3, 3}}});
  auto a = make_array(set);
  a.cycle(wr(3, 3, false));  // cell already 0: non-transition write flips it
  EXPECT_TRUE(a.peek(3, 3));
  a.cycle(wr(3, 3, false));  // 1 -> 0 transition write works normally
  EXPECT_FALSE(a.peek(3, 3));
}

TEST(FaultModels, ReadDestructiveFlipsAndReturnsFlip) {
  FaultSet set(
      {FaultSpec{.kind = FaultKind::kReadDestructive, .victim = {4, 4}}});
  auto a = make_array(set);
  const auto r = a.cycle(rd(4, 4, false));
  EXPECT_TRUE(r.read_value);  // returns the flipped value
  EXPECT_TRUE(r.mismatch);
  EXPECT_TRUE(a.peek(4, 4));  // cell flipped
}

TEST(FaultModels, DeceptiveReadReturnsOldValueButFlips) {
  FaultSet set({FaultSpec{.kind = FaultKind::kDeceptiveReadDestructive,
                          .victim = {4, 4}}});
  auto a = make_array(set);
  const auto first = a.cycle(rd(4, 4, false));
  EXPECT_FALSE(first.read_value);  // deceptively correct
  EXPECT_FALSE(first.mismatch);
  EXPECT_TRUE(a.peek(4, 4));       // but the cell flipped
  const auto second = a.cycle(rd(4, 4, false));
  EXPECT_TRUE(second.mismatch);    // the second read exposes it
}

TEST(FaultModels, IncorrectReadLeavesCellIntact) {
  FaultSet set(
      {FaultSpec{.kind = FaultKind::kIncorrectRead, .victim = {5, 5}}});
  auto a = make_array(set);
  const auto r = a.cycle(rd(5, 5, false));
  EXPECT_TRUE(r.read_value);
  EXPECT_TRUE(r.mismatch);
  EXPECT_FALSE(a.peek(5, 5));
}

TEST(FaultModels, CouplingInversionTriggersOnMatchingEdge) {
  FaultSpec f;
  f.kind = FaultKind::kCouplingInversion;
  f.victim = {2, 3};
  f.aggressor = {2, 4};
  f.aggressor_up = true;
  FaultSet set({f});
  auto a = make_array(set);
  a.poke(2, 3, false);
  a.cycle(wr(2, 4, true));  // aggressor 0 -> 1: victim inverts
  EXPECT_TRUE(a.peek(2, 3));
  a.cycle(wr(2, 4, false));  // 1 -> 0: wrong edge, nothing happens
  EXPECT_TRUE(a.peek(2, 3));
  a.cycle(wr(2, 4, true));   // up again: inverts back
  EXPECT_FALSE(a.peek(2, 3));
}

TEST(FaultModels, CouplingIdempotentForcesValue) {
  FaultSpec f;
  f.kind = FaultKind::kCouplingIdempotent;
  f.victim = {1, 6};
  f.aggressor = {1, 7};
  f.aggressor_up = false;  // falling edge
  f.forced_value = true;
  FaultSet set({f});
  auto a = make_array(set);
  a.poke(1, 7, true);
  a.cycle(wr(1, 7, false));  // aggressor 1 -> 0
  EXPECT_TRUE(a.peek(1, 6));
  // Repeating the same edge keeps forcing the same value (idempotent).
  a.poke(1, 6, false);
  a.poke(1, 7, true);
  a.cycle(wr(1, 7, false));
  EXPECT_TRUE(a.peek(1, 6));
}

TEST(FaultModels, CouplingStateCoercesAccessesWhileAggressorHolds) {
  FaultSpec f;
  f.kind = FaultKind::kCouplingState;
  f.victim = {3, 0};
  f.aggressor = {3, 1};
  f.aggressor_state = true;
  f.forced_value = false;
  FaultSet set({f});
  auto a = make_array(set);
  a.poke(3, 0, true);
  a.poke(3, 1, true);  // aggressor in the coercing state
  const auto r = a.cycle(rd(3, 0, true));
  EXPECT_FALSE(r.read_value);
  EXPECT_TRUE(r.mismatch);
  // Aggressor leaves the state: victim behaves normally again.
  a.poke(3, 1, false);
  a.poke(3, 0, true);
  const auto r2 = a.cycle(rd(3, 0, true));
  EXPECT_FALSE(r2.mismatch);
}

TEST(FaultModels, ResSensitiveFliesUnderThreshold) {
  FaultSpec f;
  f.kind = FaultKind::kResSensitive;
  f.victim = {0, 3};
  f.res_threshold = 10.0;
  FaultSet set({f});
  auto a = make_array(set, Mode::kFunctional);
  // Operate elsewhere in the same row: cell (0,3) accumulates full RES
  // every cycle; after 10 cycles it flips.
  for (int i = 0; i < 9; ++i) a.cycle(rd(0, 0, false));
  EXPECT_FALSE(a.peek(0, 3));
  EXPECT_FALSE(set.res_fault_fired());
  a.cycle(rd(0, 0, false));
  EXPECT_TRUE(set.res_fault_fired());
  EXPECT_TRUE(a.peek(0, 3));
  EXPECT_NEAR(set.res_stress_accumulated(), 10.0, 1e-9);
}

TEST(FaultModels, ResSensitiveAccumulatesSlowlyInLpMode) {
  FaultSpec f;
  f.kind = FaultKind::kResSensitive;
  f.victim = {0, 3};
  f.res_threshold = 10.0;
  FaultSet set({f});
  auto a = make_array(set, Mode::kLowPowerTest);
  for (int i = 0; i < 10; ++i) a.cycle(rd(0, 0, false));
  // Only follower/decay stress reaches the cell: far below functional.
  EXPECT_FALSE(set.res_fault_fired());
  EXPECT_LT(set.res_stress_accumulated(), 8.0);
}

TEST(FaultModels, ResetStateClearsAccumulation) {
  FaultSpec f;
  f.kind = FaultKind::kResSensitive;
  f.victim = {0, 3};
  f.res_threshold = 5.0;
  FaultSet set({f});
  auto a = make_array(set);
  for (int i = 0; i < 6; ++i) a.cycle(rd(0, 0, false));
  EXPECT_TRUE(set.res_fault_fired());
  set.reset_state();
  EXPECT_FALSE(set.res_fault_fired());
  EXPECT_EQ(set.res_stress_accumulated(), 0.0);
}

TEST(FaultModels, DescribeMentionsKindAndLocation) {
  FaultSpec f;
  f.kind = FaultKind::kCouplingIdempotent;
  f.victim = {3, 4};
  f.aggressor = {3, 5};
  const std::string d = f.describe();
  EXPECT_NE(d.find("CFid"), std::string::npos);
  EXPECT_NE(d.find("(3,4)"), std::string::npos);
  EXPECT_NE(d.find("(3,5)"), std::string::npos);
}

TEST(FaultModels, LibraryIsDeterministicAndInBounds) {
  const sram::Geometry g{16, 16, 1};
  const auto a = faults::standard_fault_library(g, 5);
  const auto b = faults::standard_fault_library(g, 5);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 20u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].victim, b[i].victim);
    EXPECT_LT(a[i].victim.row, g.rows);
    EXPECT_LT(a[i].victim.col, g.cols);
    if (faults::is_coupling(a[i].kind)) {
      EXPECT_FALSE(a[i].aggressor == a[i].victim);
    }
  }
}

// Regression: on a single-column geometry the aggressor used to be drawn
// at column - 1, wrapping to SIZE_MAX and throwing from CellArray::check
// deep inside a run.  Single-column libraries now use row neighbours.
TEST(FaultModels, LibraryHandlesSingleColumnGeometries) {
  const sram::Geometry g{8, 1, 1};
  const auto lib = faults::standard_fault_library(g, 3);
  std::size_t coupling = 0;
  for (const auto& f : lib) {
    EXPECT_LT(f.victim.row, g.rows);
    EXPECT_LT(f.victim.col, g.cols);
    if (faults::is_coupling(f.kind)) {
      ++coupling;
      EXPECT_LT(f.aggressor.row, g.rows) << f.describe();
      EXPECT_LT(f.aggressor.col, g.cols) << f.describe();
      EXPECT_FALSE(f.aggressor == f.victim) << f.describe();
    }
  }
  EXPECT_GT(coupling, 0u);
}

// A 1x1 array has no neighbour at all: the library simply skips the
// two-cell kinds instead of fabricating an out-of-range aggressor.
TEST(FaultModels, LibrarySkipsCouplingOnOneByOne) {
  const auto lib = faults::standard_fault_library({1, 1, 1}, 3);
  EXPECT_FALSE(lib.empty());
  for (const auto& f : lib) {
    EXPECT_FALSE(faults::is_coupling(f.kind)) << f.describe();
    EXPECT_EQ(f.victim.row, 0u);
    EXPECT_EQ(f.victim.col, 0u);
  }
}

// Mis-specified coordinates fail fast at attach (for every fault kind),
// not by silently never firing or by throwing mid-run from force().
TEST(FaultModels, AttachRejectsOutOfRangeVictimsAndAggressors) {
  SramConfig cfg;
  cfg.geometry = {8, 8, 1};

  FaultSpec victim_oob;
  victim_oob.kind = FaultKind::kStuckAt0;
  victim_oob.victim = {8, 0};  // row one past the end
  FaultSet bad_victim({victim_oob});
  SramArray a(cfg);
  EXPECT_THROW(a.attach_fault_model(&bad_victim), Error);

  FaultSpec aggr_oob;
  aggr_oob.kind = FaultKind::kCouplingIdempotent;
  aggr_oob.victim = {3, 7};
  aggr_oob.aggressor = {3, 8};  // column one past the end
  FaultSet bad_aggressor({aggr_oob});
  SramArray b(cfg);
  EXPECT_THROW(b.attach_fault_model(&bad_aggressor), Error);

  FaultSpec fine;
  fine.kind = FaultKind::kCouplingIdempotent;
  fine.victim = {3, 7};
  fine.aggressor = {3, 6};
  FaultSet good({fine});
  SramArray c(cfg);
  EXPECT_NO_THROW(c.attach_fault_model(&good));
}

TEST(FaultModels, RejectsDegenerateSpecs) {
  FaultSpec f;
  f.kind = FaultKind::kCouplingInversion;
  f.victim = {1, 1};
  f.aggressor = {1, 1};
  FaultSet set;
  EXPECT_THROW(set.add(f), Error);
  FaultSpec g;
  g.kind = FaultKind::kResSensitive;
  g.res_threshold = 0.0;
  EXPECT_THROW(set.add(g), Error);
}

TEST(FaultModels, EveryKindHasAName) {
  for (auto kind :
       {FaultKind::kStuckAt0, FaultKind::kStuckAt1, FaultKind::kTransitionUp,
        FaultKind::kTransitionDown, FaultKind::kWriteDisturb,
        FaultKind::kReadDestructive, FaultKind::kDeceptiveReadDestructive,
        FaultKind::kIncorrectRead, FaultKind::kCouplingInversion,
        FaultKind::kCouplingIdempotent, FaultKind::kCouplingState,
        FaultKind::kDynamicReadDestructive, FaultKind::kResSensitive,
        FaultKind::kDataRetention})
    EXPECT_FALSE(faults::to_string(kind).empty());
}


TEST(FaultModels, DynamicReadDestructiveNeedsImmediateWriteThenRead) {
  FaultSet set({FaultSpec{.kind = FaultKind::kDynamicReadDestructive,
                          .victim = {2, 2}}});
  auto a = make_array(set);
  // Write then immediately read the victim: the read destroys the cell and
  // returns the flipped value.
  a.cycle(wr(2, 2, true));
  const auto r = a.cycle(rd(2, 2, true));
  EXPECT_FALSE(r.read_value);
  EXPECT_TRUE(r.mismatch);
  EXPECT_FALSE(a.peek(2, 2));
}

TEST(FaultModels, DynamicReadDestructiveInertWithoutTheSequence) {
  FaultSet set({FaultSpec{.kind = FaultKind::kDynamicReadDestructive,
                          .victim = {2, 2}}});
  auto a = make_array(set);
  a.poke(2, 2, true);
  // Plain read (no preceding write): harmless.
  auto r = a.cycle(rd(2, 2, true));
  EXPECT_FALSE(r.mismatch);
  EXPECT_TRUE(a.peek(2, 2));
  // Write victim, operate elsewhere, then read: the pair is broken.
  a.cycle(wr(2, 2, true));
  a.cycle(rd(0, 0, false));
  r = a.cycle(rd(2, 2, true));
  EXPECT_FALSE(r.mismatch);
  EXPECT_TRUE(a.peek(2, 2));
}

TEST(FaultModels, DynamicReadDestructiveResetWithState) {
  FaultSet set({FaultSpec{.kind = FaultKind::kDynamicReadDestructive,
                          .victim = {1, 1}}});
  auto a = make_array(set);
  a.cycle(wr(1, 1, true));
  set.reset_state();  // forget the pending write
  const auto r = a.cycle(rd(1, 1, true));
  EXPECT_FALSE(r.mismatch);
}

}  // namespace
