// tools/sramlp_dist CLI error paths, driven through the real binary: every
// operator mistake must exit with a clear one-line diagnostic (exit code
// 1), never a crash, a stack trace or a silent success.  The binary path
// arrives from CMake as SRAMLP_DIST_BIN; when the tools are not built the
// suite skips.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

#ifndef SRAMLP_DIST_BIN
#define SRAMLP_DIST_BIN ""
#endif

/// Fresh per-fixture scratch directory under the system temp dir.
class DistCli : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::string(SRAMLP_DIST_BIN).empty())
      GTEST_SKIP() << "sramlp_dist binary not built";
    dir_ = fs::temp_directory_path() /
           ("sramlp_dist_cli_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    if (!dir_.empty()) fs::remove_all(dir_);
  }

  struct CliResult {
    int exit_code = -1;      ///< -1 when the process did not exit normally
    std::string output;      ///< stdout + stderr
  };

  /// Run `sramlp_dist <args>`, capturing combined output.
  CliResult run_cli(const std::string& args) const {
    const fs::path capture = dir_ / "cli_capture.txt";
    const std::string command = std::string(SRAMLP_DIST_BIN) + " " + args +
                                " >" + capture.string() + " 2>&1";
    const int status = std::system(command.c_str());
    CliResult result;
    if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
    std::ifstream in(capture);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    result.output = buffer.str();
    return result;
  }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  void write_file(const std::string& name, const std::string& content) const {
    std::ofstream out(dir_ / name);
    out << content;
  }

  /// Emit the demo sweep job spec to @p name inside the scratch dir.
  void emit_example_job(const std::string& name,
                        const std::string& flags = "") const {
    const CliResult job = run_cli("example-job " + flags);
    ASSERT_EQ(job.exit_code, 0) << job.output;
    write_file(name, job.output);
  }

  fs::path dir_;
};

TEST_F(DistCli, MalformedJobJsonFailsWithParseDiagnostic) {
  write_file("bad.json", "{ \"kind\": \"sweep\", ");
  const CliResult r =
      run_cli("plan --job " + path("bad.json") + " --shards 2 --dir " +
              path("work"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("sramlp_dist plan failed"), std::string::npos)
      << r.output;
  // The diagnostic names the JSON problem, not just "failed".
  EXPECT_NE(r.output.find("JSON"), std::string::npos) << r.output;
}

TEST_F(DistCli, UnreadableJobFileFailsCleanly) {
  const CliResult r = run_cli("single --job " + path("nonexistent.json") +
                              " --out " + path("out.json"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("cannot open"), std::string::npos) << r.output;
}

TEST_F(DistCli, MergeWithMissingResultFileNamesTheFile) {
  emit_example_job("job.json");
  fs::create_directories(dir_ / "empty_work");
  const CliResult r =
      run_cli("merge --job " + path("job.json") + " --shards 3 --dir " +
              path("empty_work") + " --out " + path("merged.json"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("cannot open shard result file"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("shard_0000.jsonl"), std::string::npos) << r.output;
}

TEST_F(DistCli, MergeRefusesForeignFingerprintResults) {
  // Produce complete result files for the SWEEP job...
  emit_example_job("sweep.json");
  const CliResult run = run_cli(
      "run --job " + path("sweep.json") + " --shards 3 --workers 2 --dir " +
      path("work") + " --out " + path("merged.json"));
  ASSERT_EQ(run.exit_code, 0) << run.output;
  // ...then try to merge them as the CAMPAIGN job: the fingerprint in
  // every result header belongs to a different job and must be refused.
  emit_example_job("campaign.json", "--campaign");
  const CliResult r = run_cli("merge --job " + path("campaign.json") +
                              " --shards 3 --dir " + path("work") +
                              " --out " + path("bad_merge.json"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("belongs to a different job"), std::string::npos)
      << r.output;
  EXPECT_FALSE(fs::exists(dir_ / "bad_merge.json"));
}

TEST_F(DistCli, MissingRequiredOptionIsNamed) {
  const CliResult r = run_cli("plan --shards 2 --dir " + path("work"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("missing required option --job"),
            std::string::npos)
      << r.output;
}

TEST_F(DistCli, UnknownArgumentIsRejected) {
  emit_example_job("job.json");
  const CliResult r = run_cli("single --job " + path("job.json") + " --out " +
                              path("out.json") + " --frobnicate");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("unrecognized argument '--frobnicate'"),
            std::string::npos)
      << r.output;
}

TEST_F(DistCli, ExampleJobTraceFlagEmitsTraceConfig) {
  const CliResult r = run_cli("example-job --trace");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"trace\""), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"window_cycles\""), std::string::npos)
      << r.output;
}

TEST_F(DistCli, ExampleJobRejectsCampaignTraceCombination) {
  // Campaign entries carry no trace: silently paying the traced-run cost
  // would be a trap, so the flag combination is an explicit error.
  const CliResult r = run_cli("example-job --campaign --trace");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("--trace applies to sweep jobs only"),
            std::string::npos)
      << r.output;
}

}  // namespace
