// The probe/sink metering layer: PowerTrace window/element accounting,
// the EnergyMeter's event forwarding (which must never change the scalar
// totals), and the end-to-end traced session surface.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/session.h"
#include "march/algorithms.h"
#include "power/trace.h"
#include "util/error.h"

namespace {

using namespace sramlp;
using power::EnergySource;
using power::PowerTrace;
using power::TraceConfig;
using power::TraceSummary;

// --- PowerTrace accumulation -------------------------------------------------

TEST(PowerTrace, WindowAccumulationPeakAndPowerConversion) {
  PowerTrace trace(TraceConfig{.window_cycles = 10, .keep_windows = true},
                   2e-9);
  trace.begin_element(0, 0);
  trace.on_add(EnergySource::kClockTree, 1e-12, 1, 0);    // window 0
  trace.on_add(EnergySource::kClockTree, 1e-12, 3, 25);   // window 2, bulk
  trace.on_add(EnergySource::kSenseAmp, 2e-12, 1, 29);    // window 2
  const TraceSummary s = trace.summarize(40);
  EXPECT_EQ(s.window_cycles, 10u);
  EXPECT_EQ(s.total_cycles, 40u);
  EXPECT_EQ(s.windows, 4u);
  ASSERT_EQ(s.window_supply_j.size(), 4u);
  EXPECT_EQ(s.window_supply_j[0], 1e-12);
  EXPECT_EQ(s.window_supply_j[1], 0.0);
  EXPECT_EQ(s.window_supply_j[2], ((1e-12 + 1e-12) + 1e-12) + 2e-12);
  EXPECT_EQ(s.window_supply_j[3], 0.0);
  EXPECT_EQ(s.peak_window, 2u);
  EXPECT_EQ(s.peak_window_energy_j, s.window_supply_j[2]);
  EXPECT_DOUBLE_EQ(s.peak_power_w, s.window_supply_j[2] / (10 * 2e-9));
  EXPECT_DOUBLE_EQ(s.average_power_w, s.supply_energy_j / (40 * 2e-9));
}

TEST(PowerTrace, SpreadSplitsUniformlyAcrossWindows) {
  PowerTrace trace(TraceConfig{.window_cycles = 8, .keep_windows = true},
                   0.0);
  // 20 cycles starting at cycle 4: the three windows overlap 4, 8, 8
  // cycles at 1 J per cycle.
  trace.on_spread(EnergySource::kClockTree, 20.0, 4, 20);
  const TraceSummary s = trace.summarize(24);
  ASSERT_EQ(s.window_supply_j.size(), 3u);
  EXPECT_DOUBLE_EQ(s.window_supply_j[0], 4.0);
  EXPECT_DOUBLE_EQ(s.window_supply_j[1], 8.0);
  EXPECT_DOUBLE_EQ(s.window_supply_j[2], 8.0);
  EXPECT_EQ(s.peak_window, 1u);  // ties keep the FIRST peak window
  EXPECT_EQ(s.peak_power_w, 0.0);  // no clock period given
  ASSERT_EQ(s.elements.size(), 1u);  // implicit element 0
  EXPECT_EQ(s.elements[0].supply_energy_j, 20.0);
}

TEST(PowerTrace, NonSupplySourcesStayOutside) {
  PowerTrace trace(TraceConfig{.window_cycles = 4}, 1e-9);
  // Bit-line decay stress spends stored charge, not supply current.
  trace.on_add(EnergySource::kBitlineDecayStress, 5e-12, 7, 0);
  trace.on_spread(EnergySource::kBitlineDecayStress, 1e-12, 0, 4);
  const TraceSummary s = trace.summarize(4);
  EXPECT_EQ(s.supply_energy_j, 0.0);
  EXPECT_EQ(s.peak_window_energy_j, 0.0);
  EXPECT_TRUE(s.elements.empty());
}

TEST(PowerTrace, ElementAttributionAndCycleSpans) {
  PowerTrace trace(TraceConfig{.window_cycles = 16}, 1e-9);
  trace.begin_element(0, 0);
  trace.on_add(EnergySource::kPrechargeResFight, 1e-12, 2, 3);
  trace.begin_element(1, 10);
  trace.on_add(EnergySource::kSenseAmp, 3e-12, 1, 12);
  trace.begin_element(1, 10);  // idempotent while unchanged
  const TraceSummary s = trace.summarize(30);
  ASSERT_EQ(s.elements.size(), 2u);
  EXPECT_EQ(s.elements[0].element, 0u);
  EXPECT_EQ(s.elements[0].start_cycle, 0u);
  EXPECT_EQ(s.elements[0].cycles, 10u);
  EXPECT_EQ(s.elements[0].supply_energy_j, 1e-12 + 1e-12);
  EXPECT_EQ(s.elements[0].precharge_energy_j, 1e-12 + 1e-12);
  EXPECT_EQ(s.elements[1].element, 1u);
  EXPECT_EQ(s.elements[1].cycles, 20u);
  EXPECT_EQ(s.elements[1].supply_energy_j, 3e-12);
  EXPECT_EQ(s.elements[1].precharge_energy_j, 0.0);
}

TEST(PowerTrace, RejectsBadConfiguration) {
  EXPECT_THROW(PowerTrace(TraceConfig{.window_cycles = 0}, 1e-9), Error);
  EXPECT_THROW(PowerTrace(TraceConfig{}, -1.0), Error);
  PowerTrace trace(TraceConfig{}, 1e-9);
  EXPECT_THROW(trace.add_supply_block(-1.0, 0, 4), Error);
}

// --- EnergyMeter event forwarding --------------------------------------------

struct RecordingSink final : power::MeterSink {
  struct Event {
    EnergySource source;
    double joules;
    std::uint64_t count;
    std::uint64_t cycle;
    bool spread;
    std::uint64_t cycles;
  };
  std::vector<Event> events;
  void on_add(EnergySource source, double joules, std::uint64_t count,
              std::uint64_t cycle) override {
    events.push_back({source, joules, count, cycle, false, 0});
  }
  void on_spread(EnergySource source, double joules,
                 std::uint64_t first_cycle, std::uint64_t cycles) override {
    events.push_back({source, joules, 0, first_cycle, true, cycles});
  }
};

TEST(EnergyMeterSink, ForwardsEventsWithoutChangingTotals) {
  power::EnergyMeter plain;
  power::EnergyMeter probed;
  RecordingSink sink;
  probed.attach_sink(&sink);
  const auto drive = [](power::EnergyMeter& m) {
    m.add(EnergySource::kSenseAmp, 0.1);
    m.tick_cycle();
    m.add(EnergySource::kSenseAmp, 0.1, 7);
    m.add_spread(EnergySource::kClockTree, 0.25, 8);
    m.tick_cycles(8);
  };
  drive(plain);
  drive(probed);
  // The probe is transparent: attaching a sink changes no accumulator bit.
  EXPECT_EQ(plain.cycles(), probed.cycles());
  for (std::size_t i = 0; i < power::kEnergySourceCount; ++i) {
    const auto source = static_cast<EnergySource>(i);
    EXPECT_EQ(plain.total(source), probed.total(source))
        << power::to_string(source);
  }
  ASSERT_EQ(sink.events.size(), 3u);
  EXPECT_EQ(sink.events[0].source, EnergySource::kSenseAmp);
  EXPECT_EQ(sink.events[0].joules, 0.1);
  EXPECT_EQ(sink.events[0].count, 1u);
  EXPECT_EQ(sink.events[0].cycle, 0u);
  EXPECT_EQ(sink.events[1].count, 7u);
  EXPECT_EQ(sink.events[1].cycle, 1u);
  EXPECT_TRUE(sink.events[2].spread);
  EXPECT_EQ(sink.events[2].joules, 8.0 * 0.25);
  EXPECT_EQ(sink.events[2].cycle, 1u);   // block starts at the current cycle
  EXPECT_EQ(sink.events[2].cycles, 8u);
}

TEST(EnergyMeterSink, CopiesAndMovesDropTheSink) {
  power::EnergyMeter meter;
  RecordingSink sink;
  meter.attach_sink(&sink);
  meter.add(EnergySource::kSenseAmp, 1.0);
  ASSERT_TRUE(meter.has_sink());

  const power::EnergyMeter copied(meter);
  EXPECT_FALSE(copied.has_sink());
  EXPECT_EQ(copied.total(EnergySource::kSenseAmp), 1.0);

  power::EnergyMeter assigned;
  assigned = meter;
  EXPECT_FALSE(assigned.has_sink());

  const power::EnergyMeter moved(std::move(meter));
  EXPECT_FALSE(moved.has_sink());
  EXPECT_EQ(moved.total(EnergySource::kSenseAmp), 1.0);
}

TEST(EnergyMeterSink, RawTotalsRefusedWhileSinkAttached) {
  power::EnergyMeter meter;
  EXPECT_NO_THROW(meter.raw_totals());
  RecordingSink sink;
  meter.attach_sink(&sink);
  EXPECT_THROW(meter.raw_totals(), Error);
  meter.attach_sink(nullptr);
  EXPECT_NO_THROW(meter.raw_totals());
}

TEST(EnergyMeterSink, ResetKeepsTheSink) {
  power::EnergyMeter meter;
  RecordingSink sink;
  meter.attach_sink(&sink);
  meter.add(EnergySource::kSenseAmp, 1.0);
  meter.reset();
  EXPECT_TRUE(meter.has_sink());
  meter.add(EnergySource::kSenseAmp, 1.0);
  EXPECT_EQ(sink.events.size(), 2u);
}

// --- end-to-end traced sessions ----------------------------------------------

TEST(SessionTrace, TracedRunReportsWindowsAndElements) {
  core::SessionConfig cfg;
  cfg.geometry = {8, 16, 1};
  cfg.mode = sram::Mode::kLowPowerTest;
  cfg.trace = power::TraceConfig{.window_cycles = 32, .keep_windows = true};
  core::TestSession session(cfg);
  const auto test = march::algorithms::march_c_minus();
  const auto result = session.run(test);

  ASSERT_TRUE(result.trace.has_value());
  const TraceSummary& trace = *result.trace;
  EXPECT_EQ(trace.window_cycles, 32u);
  EXPECT_EQ(trace.total_cycles, result.cycles);
  EXPECT_EQ(trace.windows, (result.cycles + 31) / 32);
  EXPECT_EQ(trace.window_supply_j.size(), trace.windows);

  // One attribution entry per March element, spanning exactly the cycles
  // the sequencer assigns to it.
  const std::size_t words = 8 * 16;
  ASSERT_EQ(trace.elements.size(), test.elements().size());
  std::uint64_t cursor = 0;
  double element_sum = 0.0;
  for (std::size_t e = 0; e < trace.elements.size(); ++e) {
    EXPECT_EQ(trace.elements[e].element, e);
    EXPECT_EQ(trace.elements[e].start_cycle, cursor);
    EXPECT_EQ(trace.elements[e].cycles, test.element_cycles(e, words));
    EXPECT_GT(trace.elements[e].supply_energy_j, 0.0) << "element " << e;
    EXPECT_GE(trace.elements[e].supply_energy_j,
              trace.elements[e].precharge_energy_j);
    element_sum += trace.elements[e].supply_energy_j;
    cursor += trace.elements[e].cycles;
  }
  EXPECT_EQ(cursor, result.cycles);

  // The trace redistributes the run's supply energy without inventing or
  // losing any (association differs, so compare within a few ulps' worth).
  const double tol = 1e-9 * result.supply_energy_j;
  EXPECT_NEAR(trace.supply_energy_j, result.supply_energy_j, tol);
  EXPECT_NEAR(element_sum, result.supply_energy_j, tol);

  EXPECT_LT(trace.peak_window, trace.windows);
  EXPECT_GT(trace.peak_window_energy_j, 0.0);
  // The peak window can be no cooler than the average window.
  EXPECT_GE(trace.peak_window_energy_j,
            trace.supply_energy_j / static_cast<double>(trace.windows) -
                tol);
  EXPECT_GT(trace.peak_power_w, 0.0);
  EXPECT_GE(trace.peak_power_w, trace.average_power_w - 1e-12);
}

TEST(SessionTrace, UntracedRunsCarryNoTrace) {
  core::SessionConfig cfg;
  cfg.geometry = {4, 8, 1};
  const auto result =
      core::TestSession(cfg).run(march::algorithms::mats_plus());
  EXPECT_FALSE(result.trace.has_value());
}

TEST(SessionTrace, DelayElementsSpreadIdleEnergy) {
  core::SessionConfig cfg;
  cfg.geometry = {4, 8, 1};
  cfg.mode = sram::Mode::kLowPowerTest;
  cfg.trace = power::TraceConfig{.window_cycles = 64, .keep_windows = true};
  const auto test = march::algorithms::march_g_with_delays();
  const auto result = core::TestSession(cfg).run(test);
  ASSERT_TRUE(result.trace.has_value());
  const TraceSummary& trace = *result.trace;

  bool saw_pause = false;
  for (const power::ElementEnergy& e : trace.elements) {
    if (!test.elements()[e.element].is_pause()) continue;
    saw_pause = true;
    EXPECT_EQ(e.cycles, test.elements()[e.element].pause_cycles);
    // An idle window burns exactly the clock tree and the control FSM.
    const double n = static_cast<double>(e.cycles);
    EXPECT_DOUBLE_EQ(e.supply_energy_j,
                     n * cfg.tech.e_clock_tree + n * cfg.tech.e_control_base);
    EXPECT_EQ(e.precharge_energy_j, 0.0);
  }
  EXPECT_TRUE(saw_pause);

  // The idle spread reaches the windows inside the pause: every window
  // fully inside an idle block holds the idle rate, not zero.
  const power::ElementEnergy* pause = nullptr;
  for (const auto& e : trace.elements)
    if (test.elements()[e.element].is_pause()) pause = &e;
  ASSERT_NE(pause, nullptr);
  const std::uint64_t mid_window =
      (pause->start_cycle + pause->cycles / 2) / trace.window_cycles;
  const double idle_window_energy =
      static_cast<double>(trace.window_cycles) *
      (cfg.tech.e_clock_tree + cfg.tech.e_control_base);
  EXPECT_NEAR(trace.window_supply_j[mid_window], idle_window_energy,
              1e-9 * idle_window_energy);
}

}  // namespace
