// Tests of the BIST controller: program compilation, FSM sequencing
// equivalence with TestSession, comparator behaviour, restore pulses, and
// lock-step cross-validation of the behavioural array's pre-charge
// activity against the gate-level Fig. 8 controller.
#include <gtest/gtest.h>

#include "core/bist.h"
#include "core/session.h"
#include "ctrl/precharge_control.h"
#include "faults/models.h"
#include "march/algorithms.h"
#include "util/error.h"

namespace {

using namespace sramlp;
using core::BistController;
using core::BistProgram;
using sram::Mode;

sram::SramConfig array_config(Mode mode, std::size_t rows = 8,
                              std::size_t cols = 8) {
  sram::SramConfig cfg;
  cfg.geometry = {rows, cols, 1};
  cfg.mode = mode;
  return cfg;
}

// --- program compilation ----------------------------------------------------

TEST(BistProgram, CompilesRomAndElementRecords) {
  const auto p = BistProgram::compile(march::algorithms::march_c_minus());
  EXPECT_EQ(p.name(), "March C-");
  EXPECT_EQ(p.rom().size(), 10u);       // total operations
  EXPECT_EQ(p.elements().size(), 6u);   // elements
  EXPECT_FALSE(p.elements()[0].descending);  // B -> ascending
  EXPECT_FALSE(p.elements()[1].descending);  // U
  EXPECT_TRUE(p.elements()[3].descending);   // D
  // First op of element 1 is r0.
  const auto& op = p.rom()[p.elements()[1].first_op];
  EXPECT_TRUE(op.is_read);
  EXPECT_FALSE(op.value);
}

TEST(BistProgram, CycleCountFormula) {
  const auto p = BistProgram::compile(march::algorithms::mats_plus());
  EXPECT_EQ(p.cycle_count(512, 512), 5ull * 512 * 512);
  EXPECT_EQ(p.cycle_count(8, 8), 5ull * 64);
}

// --- FSM equivalence with TestSession ----------------------------------------

// The FSM must produce byte-identical results to the software sequencer:
// same cycle count, same energy, same final array contents.
TEST(BistController, MatchesTestSessionExactly) {
  for (const auto& test :
       {march::algorithms::mats_plus(), march::algorithms::march_c_minus(),
        march::algorithms::march_sr()}) {
    for (const Mode mode : {Mode::kFunctional, Mode::kLowPowerTest}) {
      // Reference: TestSession.
      core::SessionConfig scfg;
      scfg.geometry = {8, 8, 1};
      scfg.mode = mode;
      core::TestSession session(scfg);
      const auto reference = session.run(test);

      // Device under test: the BIST FSM.
      sram::SramArray array(array_config(mode));
      BistController::Options opt;
      opt.mode = mode;
      BistController bist(BistProgram::compile(test), array.geometry(), opt);
      const auto outcome = bist.run(array);

      EXPECT_EQ(outcome.cycles, reference.cycles) << test.name();
      EXPECT_EQ(outcome.fails, reference.mismatches) << test.name();
      EXPECT_EQ(outcome.restore_pulses, reference.stats.restore_cycles)
          << test.name();
      EXPECT_NEAR(array.meter().supply_total(),
                  reference.supply_energy_j,
                  1e-9 * reference.supply_energy_j)
          << test.name();
      for (std::size_t r = 0; r < 8; ++r)
        for (std::size_t c = 0; c < 8; ++c)
          EXPECT_EQ(array.peek(r, c), session.array().peek(r, c))
              << test.name();
    }
  }
}

TEST(BistController, ComparatorLatchesFails) {
  sram::SramArray array(array_config(Mode::kFunctional));
  faults::FaultSet set({faults::FaultSpec{
      .kind = faults::FaultKind::kStuckAt1, .victim = {3, 3}}});
  array.attach_fault_model(&set);

  BistController bist(BistProgram::compile(march::algorithms::march_c_minus()),
                      array.geometry(), {});
  const auto outcome = bist.run(array);
  EXPECT_TRUE(outcome.fail_latch);
  EXPECT_GT(outcome.fails, 0u);
}

TEST(BistController, StepBeyondDoneThrows) {
  sram::SramArray array(array_config(Mode::kFunctional, 2, 2));
  BistController bist(BistProgram::compile(march::algorithms::mats()),
                      array.geometry(), {});
  bist.run(array);
  EXPECT_TRUE(bist.done());
  EXPECT_FALSE(bist.peek().has_value());
  EXPECT_THROW(bist.step(array), Error);
}

TEST(BistController, GeometryMismatchRejected) {
  sram::SramArray array(array_config(Mode::kFunctional, 4, 4));
  BistController bist(BistProgram::compile(march::algorithms::mats()),
                      {8, 8, 1}, {});
  EXPECT_THROW(bist.step(array), Error);
}

// --- restore pulses and the LPtest line ---------------------------------------

TEST(BistController, RestorePulsesOncePerRowHandOver) {
  const std::size_t rows = 4;
  sram::SramArray array(array_config(Mode::kLowPowerTest, rows, 8));
  BistController::Options opt;
  opt.mode = Mode::kLowPowerTest;
  BistController bist(BistProgram::compile(march::algorithms::mats_plus()),
                      array.geometry(), opt);
  const auto outcome = bist.run(array);
  // MATS+ = 3 elements; each element crosses rows-1 boundaries, plus the
  // element hand-overs whose first row differs (B->U stays at row 0; U
  // ends at row 3, D starts at row 3 -> no transition).
  EXPECT_EQ(outcome.restore_pulses, array.stats().row_transitions);
  EXPECT_EQ(array.stats().faulty_swaps, 0u);
}

TEST(BistController, LptestLineDropsDuringRestoreCycle) {
  sram::SramArray array(array_config(Mode::kLowPowerTest, 2, 4));
  BistController::Options opt;
  opt.mode = Mode::kLowPowerTest;
  BistController bist(BistProgram::compile(march::algorithms::mats()),
                      array.geometry(), opt);
  std::size_t drops = 0;
  while (!bist.done()) {
    const auto cmd = bist.peek();
    const bool level = bist.lptest_level();
    EXPECT_EQ(level, !cmd->restore_row_transition);
    if (!level) ++drops;
    bist.step(array);
  }
  EXPECT_EQ(drops, array.stats().restore_cycles);
}

TEST(BistController, FunctionalModeKeepsLptestLow) {
  sram::SramArray array(array_config(Mode::kFunctional, 2, 4));
  BistController bist(BistProgram::compile(march::algorithms::mats()),
                      array.geometry(), {});
  while (!bist.done()) {
    EXPECT_FALSE(bist.lptest_level());
    bist.step(array);
  }
}

// --- cross-layer validation: behavioural array vs gate-level netlist ----------

// Drive the Fig. 8 gate-level controller in lock-step with the FSM and
// require its restore-phase pre-charge pattern to match the behavioural
// array's activity snapshot on every cycle of a full March test.
TEST(BistController, GateLevelControllerAgreesWithArrayActivity) {
  const std::size_t cols = 8;
  for (const Mode mode : {Mode::kFunctional, Mode::kLowPowerTest}) {
    sram::SramArray array(array_config(mode, 4, cols));
    BistController::Options opt;
    opt.mode = mode;
    BistController bist(
        BistProgram::compile(march::algorithms::march_c_minus()),
        array.geometry(), opt);
    ctrl::PrechargeController gates(cols);

    while (!bist.done()) {
      const auto cmd = bist.peek();
      ctrl::PrechargeController::CycleInputs in;
      in.lptest = mode == Mode::kLowPowerTest;
      in.selected = cmd->col_group;
      in.ascending = cmd->scan == sram::Scan::kAscending;
      in.force_functional = cmd->restore_row_transition;
      // The array's activity snapshot is "was the pre-charge on at any
      // point of the cycle", which corresponds to the restore phase
      // (every circuit that is on during operate is also on during
      // restore, plus the selected column joins in).
      in.phase = ctrl::Phase::kRestore;
      const auto& npr = gates.evaluate(in);

      bist.step(array);
      for (std::size_t j = 0; j < cols; ++j)
        EXPECT_EQ(!npr[j], array.precharge_was_active(j))
            << "mode " << static_cast<int>(mode) << " col " << j;
    }
  }
}

}  // namespace
