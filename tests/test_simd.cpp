// The SIMD dispatch seam (sram/simd.h): every vector kernel is a drop-in
// BIT-IDENTICAL replacement for its always-compiled scalar specification.
// The suite pins
//  * the kernels directly — cohort_eval_batch and the word kernels produce
//    the same bits at every available dispatch level, across batch sizes
//    that exercise full vectors, remainders and empty inputs;
//  * whole sessions — forcing the scalar level must not move a bit of a
//    run's meter totals, stats or trace relative to the vector levels, on
//    awkward geometries and word-oriented arrays;
//  * the dispatch contract itself — set_level_for_testing clamps to the
//    detected capability and reset restores it.
// On hardware without a level's code (no AVX2/AVX-512, or kNeon forced on
// an x86 build) the vector cases collapse to scalar re-runs and the suite
// still passes (that IS the clamping contract) — so every level below the
// detected one is exercised unconditionally, including kNeon, which runs
// its real kernels on aarch64 builds and the scalar fallback elsewhere.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/session.h"
#include "march/algorithms.h"
#include "power/energy_source.h"
#include "sram/simd.h"

namespace {

using namespace sramlp;
using sram::simd::Level;

/// Every level up to the detected one (always at least scalar).  Levels
/// whose code the build does not carry (kNeon on x86) dispatch to scalar,
/// so each entry is safe to force — and on an aarch64 build kNeon pins the
/// real 2-lane kernels against the scalar specification.
std::vector<Level> available_levels() {
  std::vector<Level> out{Level::kScalar};
  for (const Level l : {Level::kNeon, Level::kAvx2, Level::kAvx512})
    if (sram::simd::detected_level() >= l) out.push_back(l);
  return out;
}

struct LevelGuard {
  ~LevelGuard() { sram::simd::reset_level_for_testing(); }
};

/// splitmix64: deterministic word / factor streams for the kernel tests.
std::uint64_t mix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

TEST(SimdDispatch, ForcedLevelClampsToDetected) {
  LevelGuard guard;
  sram::simd::set_level_for_testing(Level::kAvx512);
  EXPECT_LE(static_cast<int>(sram::simd::active_level()),
            static_cast<int>(sram::simd::detected_level()));
  sram::simd::set_level_for_testing(Level::kScalar);
  EXPECT_EQ(sram::simd::active_level(), Level::kScalar);
  sram::simd::reset_level_for_testing();
  EXPECT_EQ(sram::simd::active_level(), sram::simd::detected_level());
  for (const Level l :
       {Level::kScalar, Level::kNeon, Level::kAvx2, Level::kAvx512})
    EXPECT_STRNE(sram::simd::level_name(l), "");
}

// Sizes chosen to hit empty input, single lanes, partial vectors and
// several full vectors plus remainder at every vector width (2, 4 and 8).
constexpr std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31,
                                  64, 100};

TEST(SimdKernels, CohortEvalBatchBitIdenticalAcrossLevels) {
  LevelGuard guard;
  const sram::simd::CohortEvalConstants k{
      /*vdd=*/1.6, /*half_c=*/0.5 * 250e-15, /*c_vdd=*/250e-15 * 1.6,
      /*tau_over_duty=*/1.0e4 / 0.5};
  for (const std::size_t n : kSizes) {
    std::uint64_t state = 42 + n;
    std::vector<double> factors(n);
    for (double& f : factors)
      f = static_cast<double>(mix(state) >> 11) * 0x1.0p-53;  // [0, 1)
    std::vector<std::vector<std::vector<double>>> out;
    for (const Level level : available_levels()) {
      out.emplace_back(5, std::vector<double>(n, -1.0));
      sram::simd::set_level_for_testing(level);
      sram::simd::cohort_eval_batch(factors.data(), n, k,
                                    out.back()[0].data(),
                                    out.back()[1].data(),
                                    out.back()[2].data(),
                                    out.back()[3].data(),
                                    out.back()[4].data());
    }
    for (std::size_t pass = 1; pass < out.size(); ++pass)
      for (std::size_t arr = 0; arr < 5; ++arr)
        for (std::size_t i = 0; i < n; ++i)
          EXPECT_EQ(out[0][arr][i], out[pass][arr][i])
              << "n=" << n << " array=" << arr << " i=" << i << " level "
              << sram::simd::level_name(available_levels()[pass]);
  }
}

TEST(SimdKernels, WordKernelsBitIdenticalAcrossLevels) {
  LevelGuard guard;
  for (const std::size_t n : kSizes) {
    std::uint64_t state = 7 + n;
    std::vector<std::uint64_t> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = mix(state);
      b[i] = mix(state);
    }
    const std::uint64_t pattern = 0xaaaaaaaaaaaaaaaaull;
    std::vector<std::uint64_t> uniform(n, pattern);
    const std::vector<Level> levels = available_levels();
    std::vector<std::uint64_t> pop(levels.size()), xpop(levels.size());
    std::vector<int> eq_uniform(levels.size()), eq_dirty(levels.size());
    for (std::size_t pass = 0; pass < levels.size(); ++pass) {
      sram::simd::set_level_for_testing(levels[pass]);
      pop[pass] = sram::simd::popcount_words(a.data(), n);
      xpop[pass] = sram::simd::xor_popcount_words(a.data(), b.data(), n);
      eq_uniform[pass] =
          sram::simd::all_words_equal(uniform.data(), n, pattern) ? 1 : 0;
      // Flip one bit somewhere past the first full vector when possible.
      std::vector<std::uint64_t> dirty = uniform;
      if (n != 0) dirty[n - 1] ^= 1ull << 63;
      eq_dirty[pass] =
          sram::simd::all_words_equal(dirty.data(), n, pattern) ? 1 : 0;
    }
    for (std::size_t pass = 1; pass < levels.size(); ++pass) {
      const std::string where =
          "n=" + std::to_string(n) + " level " +
          sram::simd::level_name(levels[pass]);
      EXPECT_EQ(pop[0], pop[pass]) << where;
      EXPECT_EQ(xpop[0], xpop[pass]) << where;
      EXPECT_EQ(eq_uniform[0], eq_uniform[pass]) << where;
      EXPECT_EQ(eq_dirty[0], eq_dirty[pass]) << where;
    }
    EXPECT_EQ(eq_uniform[0], 1) << "n=" << n;
    EXPECT_EQ(eq_dirty[0], n == 0 ? 1 : 0) << "n=" << n;
  }
}

// Whole-session invariance: dispatch level must be invisible in every
// measured number.  Covers the traced bulk path too (the window/element
// folding rides on the same kernels).
TEST(SimdSessions, RunsBitIdenticalAcrossLevels) {
  LevelGuard guard;
  struct Geo {
    std::size_t rows, cols, w;
  };
  const auto test = march::algorithms::march_c_minus();
  for (const Geo g : {Geo{33, 17, 1}, Geo{48, 96, 4}}) {
    for (const sram::Mode mode :
         {sram::Mode::kFunctional, sram::Mode::kLowPowerTest}) {
      std::vector<core::SessionResult> runs;
      for (const Level level : available_levels()) {
        sram::simd::set_level_for_testing(level);
        core::SessionConfig cfg;
        cfg.geometry = {g.rows, g.cols, g.w};
        cfg.mode = mode;
        cfg.trace = power::TraceConfig{.window_cycles = 32,
                                       .keep_windows = true};
        runs.push_back(core::TestSession(cfg).run(test));
      }
      for (std::size_t r = 1; r < runs.size(); ++r) {
        const std::string where =
            std::to_string(g.rows) + "x" + std::to_string(g.cols) +
            " level " + sram::simd::level_name(available_levels()[r]);
        EXPECT_EQ(runs[0].cycles, runs[r].cycles) << where;
        EXPECT_EQ(runs[0].supply_energy_j, runs[r].supply_energy_j) << where;
        for (std::size_t i = 0; i < power::kEnergySourceCount; ++i) {
          const auto s = static_cast<power::EnergySource>(i);
          EXPECT_EQ(runs[0].meter.total(s), runs[r].meter.total(s))
              << where << " " << power::to_string(s);
        }
        ASSERT_TRUE(runs[0].trace.has_value() && runs[r].trace.has_value());
        EXPECT_EQ(runs[0].trace->peak_window_energy_j,
                  runs[r].trace->peak_window_energy_j)
            << where;
        EXPECT_EQ(runs[0].trace->window_supply_j, runs[r].trace->window_supply_j)
            << where;
      }
    }
  }
}

}  // namespace
