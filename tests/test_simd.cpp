// The SIMD dispatch seam (sram/simd.h): every vector kernel is a drop-in
// BIT-IDENTICAL replacement for its always-compiled scalar specification.
// The suite pins
//  * the kernels directly — cohort_eval_batch and the word kernels produce
//    the same bits at every available dispatch level, across batch sizes
//    that exercise full vectors, remainders and empty inputs;
//  * whole sessions — forcing the scalar level must not move a bit of a
//    run's meter totals, stats or trace relative to the vector levels, on
//    awkward geometries and word-oriented arrays;
//  * the dispatch contract itself — set_level_for_testing clamps to the
//    detected capability and reset restores it.
// On hardware without AVX2/AVX-512 the vector cases collapse to scalar
// re-runs and the suite still passes (that IS the clamping contract).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/session.h"
#include "march/algorithms.h"
#include "power/energy_source.h"
#include "sram/simd.h"

namespace {

using namespace sramlp;
using sram::simd::Level;

/// Levels this machine can actually run (always at least scalar).
std::vector<Level> available_levels() {
  std::vector<Level> out{Level::kScalar};
  if (sram::simd::detected_level() >= Level::kAvx2)
    out.push_back(Level::kAvx2);
  if (sram::simd::detected_level() >= Level::kAvx512)
    out.push_back(Level::kAvx512);
  return out;
}

struct LevelGuard {
  ~LevelGuard() { sram::simd::reset_level_for_testing(); }
};

/// splitmix64: deterministic word / factor streams for the kernel tests.
std::uint64_t mix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

TEST(SimdDispatch, ForcedLevelClampsToDetected) {
  LevelGuard guard;
  sram::simd::set_level_for_testing(Level::kAvx512);
  EXPECT_LE(static_cast<int>(sram::simd::active_level()),
            static_cast<int>(sram::simd::detected_level()));
  sram::simd::set_level_for_testing(Level::kScalar);
  EXPECT_EQ(sram::simd::active_level(), Level::kScalar);
  sram::simd::reset_level_for_testing();
  EXPECT_EQ(sram::simd::active_level(), sram::simd::detected_level());
  for (const Level l : {Level::kScalar, Level::kAvx2, Level::kAvx512})
    EXPECT_STRNE(sram::simd::level_name(l), "");
}

// Sizes chosen to hit empty input, single lanes, partial vectors and
// several full vectors plus remainder at both vector widths (4 and 8).
constexpr std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31,
                                  64, 100};

TEST(SimdKernels, CohortEvalBatchBitIdenticalAcrossLevels) {
  LevelGuard guard;
  const sram::simd::CohortEvalConstants k{
      /*vdd=*/1.6, /*half_c=*/0.5 * 250e-15, /*c_vdd=*/250e-15 * 1.6,
      /*tau_over_duty=*/1.0e4 / 0.5};
  for (const std::size_t n : kSizes) {
    std::uint64_t state = 42 + n;
    std::vector<double> factors(n);
    for (double& f : factors)
      f = static_cast<double>(mix(state) >> 11) * 0x1.0p-53;  // [0, 1)
    std::vector<std::vector<double>> out[2];
    for (int pass = 0; pass < 2; ++pass) {
      out[pass].assign(5, std::vector<double>(n, -1.0));
      sram::simd::set_level_for_testing(pass == 0
                                            ? Level::kScalar
                                            : sram::simd::detected_level());
      sram::simd::cohort_eval_batch(factors.data(), n, k,
                                    out[pass][0].data(), out[pass][1].data(),
                                    out[pass][2].data(), out[pass][3].data(),
                                    out[pass][4].data());
    }
    for (std::size_t arr = 0; arr < 5; ++arr)
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[0][arr][i], out[1][arr][i])
            << "n=" << n << " array=" << arr << " i=" << i;
  }
}

TEST(SimdKernels, WordKernelsBitIdenticalAcrossLevels) {
  LevelGuard guard;
  for (const std::size_t n : kSizes) {
    std::uint64_t state = 7 + n;
    std::vector<std::uint64_t> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = mix(state);
      b[i] = mix(state);
    }
    const std::uint64_t pattern = 0xaaaaaaaaaaaaaaaaull;
    std::vector<std::uint64_t> uniform(n, pattern);
    std::vector<std::uint64_t> pop(2), xpop(2);
    std::vector<int> eq_uniform(2), eq_dirty(2);
    for (int pass = 0; pass < 2; ++pass) {
      sram::simd::set_level_for_testing(pass == 0
                                            ? Level::kScalar
                                            : sram::simd::detected_level());
      pop[static_cast<std::size_t>(pass)] =
          sram::simd::popcount_words(a.data(), n);
      xpop[static_cast<std::size_t>(pass)] =
          sram::simd::xor_popcount_words(a.data(), b.data(), n);
      eq_uniform[static_cast<std::size_t>(pass)] =
          sram::simd::all_words_equal(uniform.data(), n, pattern) ? 1 : 0;
      // Flip one bit somewhere past the first full vector when possible.
      std::vector<std::uint64_t> dirty = uniform;
      if (n != 0) dirty[n - 1] ^= 1ull << 63;
      eq_dirty[static_cast<std::size_t>(pass)] =
          sram::simd::all_words_equal(dirty.data(), n, pattern) ? 1 : 0;
    }
    EXPECT_EQ(pop[0], pop[1]) << "n=" << n;
    EXPECT_EQ(xpop[0], xpop[1]) << "n=" << n;
    EXPECT_EQ(eq_uniform[0], eq_uniform[1]) << "n=" << n;
    EXPECT_EQ(eq_dirty[0], eq_dirty[1]) << "n=" << n;
    EXPECT_EQ(eq_uniform[0], 1) << "n=" << n;
    EXPECT_EQ(eq_dirty[0], n == 0 ? 1 : 0) << "n=" << n;
  }
}

// Whole-session invariance: dispatch level must be invisible in every
// measured number.  Covers the traced bulk path too (the window/element
// folding rides on the same kernels).
TEST(SimdSessions, RunsBitIdenticalAcrossLevels) {
  LevelGuard guard;
  struct Geo {
    std::size_t rows, cols, w;
  };
  const auto test = march::algorithms::march_c_minus();
  for (const Geo g : {Geo{33, 17, 1}, Geo{48, 96, 4}}) {
    for (const sram::Mode mode :
         {sram::Mode::kFunctional, sram::Mode::kLowPowerTest}) {
      std::vector<core::SessionResult> runs;
      for (const Level level : available_levels()) {
        sram::simd::set_level_for_testing(level);
        core::SessionConfig cfg;
        cfg.geometry = {g.rows, g.cols, g.w};
        cfg.mode = mode;
        cfg.trace = power::TraceConfig{.window_cycles = 32,
                                       .keep_windows = true};
        runs.push_back(core::TestSession(cfg).run(test));
      }
      for (std::size_t r = 1; r < runs.size(); ++r) {
        const std::string where =
            std::to_string(g.rows) + "x" + std::to_string(g.cols) +
            " level " + sram::simd::level_name(available_levels()[r]);
        EXPECT_EQ(runs[0].cycles, runs[r].cycles) << where;
        EXPECT_EQ(runs[0].supply_energy_j, runs[r].supply_energy_j) << where;
        for (std::size_t i = 0; i < power::kEnergySourceCount; ++i) {
          const auto s = static_cast<power::EnergySource>(i);
          EXPECT_EQ(runs[0].meter.total(s), runs[r].meter.total(s))
              << where << " " << power::to_string(s);
        }
        ASSERT_TRUE(runs[0].trace.has_value() && runs[r].trace.has_value());
        EXPECT_EQ(runs[0].trace->peak_window_energy_j,
                  runs[r].trace->peak_window_energy_j)
            << where;
        EXPECT_EQ(runs[0].trace->window_supply_j, runs[r].trace->window_supply_j)
            << where;
      }
    }
  }
}

}  // namespace
