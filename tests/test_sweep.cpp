// Tests of the batched sweep-grid layer: deterministic point ordering
// whatever the thread count, backend routing (analytic for fault-free
// restored points, cycle-accurate otherwise), forced-backend agreement,
// and the single-mode executor campaigns use.
#include <gtest/gtest.h>

#include "core/fault_campaign.h"
#include "core/sweep.h"
#include "faults/models.h"
#include "march/algorithms.h"
#include "util/error.h"

namespace {

using namespace sramlp;
using core::BackendChoice;
using core::SessionConfig;
using core::SweepGrid;
using core::SweepRunner;

SweepGrid small_grid() {
  SweepGrid grid;
  grid.geometries = {{8, 16, 1}, {4, 32, 1}, {6, 24, 2}};
  grid.backgrounds = {sram::DataBackground::solid0(),
                      sram::DataBackground::checkerboard()};
  grid.algorithms = {march::algorithms::mats_plus(),
                     march::algorithms::march_c_minus()};
  return grid;
}

TEST(SweepGrid, IndexingRoundTrips) {
  const SweepGrid grid = small_grid();
  EXPECT_EQ(grid.size(), 3u * 2u * 2u);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::size_t g = 0, b = 0, a = 0;
    grid.split(i, &g, &b, &a);
    EXPECT_EQ((g * grid.backgrounds.size() + b) * grid.algorithms.size() + a,
              i);
    const SessionConfig cfg = grid.config_at(i);
    EXPECT_EQ(cfg.geometry, grid.geometries[g]);
    EXPECT_EQ(cfg.background, grid.backgrounds[b]);
  }
  EXPECT_THROW(grid.config_at(grid.size()), Error);
}

TEST(SweepRunner, ParallelGridBitIdenticalToSerial) {
  const SweepGrid grid = small_grid();
  const auto serial = SweepRunner({1, BackendChoice::kAuto}).run(grid);
  const auto parallel = SweepRunner({4, BackendChoice::kAuto}).run(grid);
  ASSERT_EQ(serial.size(), grid.size());
  ASSERT_EQ(parallel.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(serial[i].index, i);
    EXPECT_EQ(parallel[i].index, i);
    EXPECT_EQ(serial[i].algorithm, parallel[i].algorithm);
    EXPECT_EQ(serial[i].backend, parallel[i].backend);
    EXPECT_EQ(serial[i].prr.prr, parallel[i].prr.prr) << i;
    EXPECT_EQ(serial[i].prr.functional.supply_energy_j,
              parallel[i].prr.functional.supply_energy_j)
        << i;
    EXPECT_EQ(serial[i].prr.low_power.supply_energy_j,
              parallel[i].prr.low_power.supply_energy_j)
        << i;
  }
}

// run_indices is run()'s arithmetic applied to a subset: any partition of
// the index space, evaluated piecewise and reassembled, must be
// bit-identical to the whole-grid call — the property the distributed
// worker stands on.
TEST(SweepRunner, RunIndicesMatchesWholeGridSlots) {
  const SweepGrid grid = small_grid();
  const SweepRunner runner;
  const auto whole = runner.run(grid);
  // An awkward partition: strided pieces plus an out-of-order remainder.
  const std::vector<std::vector<std::size_t>> pieces = {
      {0, 3, 6, 9}, {11, 1, 7}, {2, 4, 5, 8, 10}};
  for (const auto& piece : pieces) {
    const auto part = runner.run_indices(grid, piece);
    ASSERT_EQ(part.size(), piece.size());
    for (std::size_t j = 0; j < piece.size(); ++j) {
      const auto& a = part[j];
      const auto& b = whole[piece[j]];
      EXPECT_EQ(a.index, b.index);
      EXPECT_EQ(a.backend, b.backend);
      EXPECT_EQ(a.prr.prr, b.prr.prr) << piece[j];
      EXPECT_EQ(a.prr.functional.supply_energy_j,
                b.prr.functional.supply_energy_j)
          << piece[j];
      EXPECT_EQ(a.prr.low_power.supply_energy_j,
                b.prr.low_power.supply_energy_j)
          << piece[j];
    }
  }
  EXPECT_THROW(runner.run_indices(grid, {grid.size()}), Error);
}

TEST(SweepRunner, RoutesFaultFreeRestoredPointsToAnalytic) {
  SessionConfig cfg;
  cfg.geometry = {8, 16, 1};
  EXPECT_EQ(SweepRunner::route(cfg, /*has_faults=*/false),
            BackendChoice::kAnalytic);
  EXPECT_EQ(SweepRunner::route(cfg, /*has_faults=*/true),
            BackendChoice::kCycleAccurate);
  cfg.row_transition_restore = false;
  EXPECT_EQ(SweepRunner::route(cfg, /*has_faults=*/false),
            BackendChoice::kCycleAccurate);
}

TEST(SweepRunner, ForcedBackendsAgreeOnFaultFreePoints) {
  SweepGrid grid;
  grid.geometries = {{8, 64, 1}};
  grid.algorithms = {march::algorithms::march_c_minus()};
  const auto sim =
      SweepRunner({1, BackendChoice::kCycleAccurate}).run(grid);
  const auto ana = SweepRunner({1, BackendChoice::kAnalytic}).run(grid);
  EXPECT_EQ(sim[0].backend, BackendChoice::kCycleAccurate);
  EXPECT_EQ(ana[0].backend, BackendChoice::kAnalytic);
  EXPECT_EQ(sim[0].prr.functional.cycles, ana[0].prr.functional.cycles);
  EXPECT_NEAR(ana[0].prr.prr, sim[0].prr.prr, 0.02);
}

TEST(SweepRunner, RunPointRejectsFaultsOnAnalyticBackend) {
  SessionConfig cfg;
  cfg.geometry = {8, 8, 1};
  faults::FaultSet set({faults::FaultSpec{
      .kind = faults::FaultKind::kStuckAt1, .victim = {2, 3}, .aggressor = {}}});
  const SweepRunner forced_analytic({1, BackendChoice::kAnalytic});
  EXPECT_THROW(
      forced_analytic.run_point(cfg, march::algorithms::mats_plus(), &set),
      Error);
  // kAuto routes the same call to the cycle-accurate engine instead.
  const SweepRunner automatic;
  const auto cmp =
      automatic.run_point(cfg, march::algorithms::march_c_minus(), &set);
  EXPECT_TRUE(cmp.functional.detected());
  EXPECT_TRUE(cmp.low_power.detected());
}

TEST(SweepRunner, RunModeHonoursConfiguredMode) {
  SessionConfig cfg;
  // Wide enough that the low-power mode actually saves energy (narrow
  // arrays sit past the crossover the E10 sweep demonstrates).
  cfg.geometry = {8, 128, 1};
  cfg.mode = sram::Mode::kLowPowerTest;
  const SweepRunner runner;
  const auto lp = runner.run_mode(cfg, march::algorithms::mats_plus());
  EXPECT_EQ(lp.mode, sram::Mode::kLowPowerTest);
  cfg.mode = sram::Mode::kFunctional;
  const auto f = runner.run_mode(cfg, march::algorithms::mats_plus());
  EXPECT_EQ(f.mode, sram::Mode::kFunctional);
  EXPECT_LT(lp.energy_per_cycle_j, f.energy_per_cycle_j);
}

}  // namespace
