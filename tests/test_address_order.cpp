// Property tests for address orders (March DOF-1): every generator must
// produce a permutation of the address space, the down sequence must be the
// exact reverse of the up sequence, and only the word-line-after-word-line
// order qualifies for the low-power test mode.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "march/address_order.h"
#include "util/error.h"

namespace {

using namespace sramlp;
using march::Address;
using march::AddressOrder;
using march::AddressOrderKind;
using march::Direction;

using GeometryParam = std::tuple<std::size_t, std::size_t>;  // rows, cols

class AddressOrderProperty
    : public ::testing::TestWithParam<GeometryParam> {};

std::vector<AddressOrder> all_orders(std::size_t rows, std::size_t cols) {
  std::vector<AddressOrder> orders;
  orders.push_back(AddressOrder::word_line_after_word_line(rows, cols));
  orders.push_back(AddressOrder::fast_row(rows, cols));
  orders.push_back(AddressOrder::pseudo_random(rows, cols, 123));
  orders.push_back(AddressOrder::address_complement(rows, cols));
  orders.push_back(AddressOrder::gray_code(rows, cols));
  return orders;
}

// DOF-1's requirement: "all addresses occur exactly once".
TEST_P(AddressOrderProperty, EveryGeneratorIsAPermutation) {
  const auto [rows, cols] = GetParam();
  for (const auto& order : all_orders(rows, cols)) {
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (const Address& a : order.sequence()) {
      EXPECT_LT(a.row, rows);
      EXPECT_LT(a.col, cols);
      seen.insert({a.row, a.col});
    }
    EXPECT_EQ(seen.size(), rows * cols) << to_string(order.kind());
  }
}

// The paper: "(down) is the reverse of (up)".
TEST_P(AddressOrderProperty, DownIsExactReverseOfUp) {
  const auto [rows, cols] = GetParam();
  for (const auto& order : all_orders(rows, cols)) {
    const std::size_t n = order.size();
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(order.at(i, Direction::kDown),
                order.at(n - 1 - i, Direction::kUp))
          << to_string(order.kind());
  }
}

TEST_P(AddressOrderProperty, OnlyWlawlSequencesQualifyForLpMode) {
  const auto [rows, cols] = GetParam();
  const auto canonical =
      AddressOrder::word_line_after_word_line(rows, cols).sequence();
  for (const auto& order : all_orders(rows, cols)) {
    // Degenerate geometries can make other generators coincide with the
    // canonical order (e.g. fast-row with a single row), so the property
    // is about the sequence, not the generator kind.
    const bool expected = order.sequence() == canonical;
    EXPECT_EQ(order.is_word_line_after_word_line(), expected)
        << to_string(order.kind());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AddressOrderProperty,
    ::testing::Values(GeometryParam{1, 2}, GeometryParam{2, 2},
                      GeometryParam{4, 8}, GeometryParam{8, 4},
                      GeometryParam{16, 16}, GeometryParam{5, 7},
                      GeometryParam{3, 32}));

TEST(AddressOrder, WlawlVisitsRowsInOrder) {
  const auto order = AddressOrder::word_line_after_word_line(3, 4);
  const auto& seq = order.sequence();
  ASSERT_EQ(seq.size(), 12u);
  EXPECT_EQ(seq[0], (Address{0, 0}));
  EXPECT_EQ(seq[3], (Address{0, 3}));
  EXPECT_EQ(seq[4], (Address{1, 0}));   // next word line
  EXPECT_EQ(seq[11], (Address{2, 3}));
}

TEST(AddressOrder, FastRowVisitsColumnsSlowest) {
  const auto order = AddressOrder::fast_row(3, 4);
  const auto& seq = order.sequence();
  EXPECT_EQ(seq[0], (Address{0, 0}));
  EXPECT_EQ(seq[1], (Address{1, 0}));
  EXPECT_EQ(seq[3], (Address{0, 1}));
}

TEST(AddressOrder, AddressComplementAlternatesEnds) {
  const auto order = AddressOrder::address_complement(2, 3);
  const auto& seq = order.sequence();
  EXPECT_EQ(seq[0], (Address{0, 0}));
  EXPECT_EQ(seq[1], (Address{1, 2}));  // complement of the first address
  EXPECT_EQ(seq[2], (Address{0, 1}));
}

TEST(AddressOrder, PseudoRandomIsSeedDeterministic) {
  const auto a = AddressOrder::pseudo_random(8, 8, 42);
  const auto b = AddressOrder::pseudo_random(8, 8, 42);
  const auto c = AddressOrder::pseudo_random(8, 8, 43);
  EXPECT_EQ(a.sequence(), b.sequence());
  EXPECT_NE(a.sequence(), c.sequence());
}

TEST(AddressOrder, CustomValidatesPermutation) {
  EXPECT_NO_THROW(AddressOrder::custom(
      1, 2, {Address{0, 1}, Address{0, 0}}));
  // Duplicate address.
  EXPECT_THROW(
      AddressOrder::custom(1, 2, {Address{0, 0}, Address{0, 0}}), Error);
  // Wrong length.
  EXPECT_THROW(AddressOrder::custom(1, 2, {Address{0, 0}}), Error);
  // Out of range.
  EXPECT_THROW(
      AddressOrder::custom(1, 2, {Address{0, 0}, Address{1, 0}}), Error);
}

TEST(AddressOrder, AtRejectsOutOfRangeStep) {
  const auto order = AddressOrder::word_line_after_word_line(2, 2);
  EXPECT_THROW(order.at(4, Direction::kUp), Error);
}

TEST(AddressOrder, KindNamesAreUnique) {
  std::set<std::string> names;
  for (auto kind : {AddressOrderKind::kWordLineAfterWordLine,
                    AddressOrderKind::kFastRow, AddressOrderKind::kPseudoRandom,
                    AddressOrderKind::kAddressComplement,
                    AddressOrderKind::kGrayCode, AddressOrderKind::kCustom})
    names.insert(march::to_string(kind));
  EXPECT_EQ(names.size(), 6u);
}

}  // namespace
