// The distributed-execution subsystem: shard-plan ownership invariants,
// the worker JSONL protocol, and the acceptance anchor — a sharded run
// (any shard count, any worker count, including crash-retry and a resume
// over a killed worker's partial file) merges to results bit-identical to
// a single-process SweepRunner::run / CampaignRunner::run.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/fault_campaign.h"
#include "core/sweep.h"
#include "dist/coordinator.h"
#include "dist/job.h"
#include "dist/shard.h"
#include "dist/worker.h"
#include "io/serialize.h"
#include "march/algorithms.h"
#include "util/error.h"

namespace {

namespace fs = std::filesystem;
using namespace sramlp;
using dist::JobSpec;
using dist::ShardPlan;
using dist::ShardStrategy;

/// Fresh per-test scratch directory under the system temp dir.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("sramlp_dist_test_" + tag + "_" +
               std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

JobSpec small_sweep_job() {
  JobSpec job;
  job.kind = JobSpec::Kind::kSweep;
  job.grid.geometries = {{8, 16, 1}, {4, 32, 1}, {6, 24, 2}};
  job.grid.backgrounds = {sram::DataBackground::solid0(),
                          sram::DataBackground::checkerboard()};
  job.grid.algorithms = {march::algorithms::mats_plus(),
                         march::algorithms::march_c_minus()};
  return job;  // 12 points
}

JobSpec small_campaign_job() {
  JobSpec job;
  job.kind = JobSpec::Kind::kCampaign;
  job.config.geometry = {8, 8, 1};
  job.test = march::algorithms::march_c_minus();
  job.faults = faults::standard_fault_library(job.config.geometry, 11);
  return job;
}

void expect_points_identical(const core::SweepPointResult& a,
                             const core::SweepPointResult& b,
                             const std::string& where) {
  EXPECT_EQ(a.index, b.index) << where;
  EXPECT_EQ(a.geometry, b.geometry) << where;
  EXPECT_EQ(a.background, b.background) << where;
  EXPECT_EQ(a.algorithm, b.algorithm) << where;
  EXPECT_EQ(a.backend, b.backend) << where;
  EXPECT_EQ(a.prr.prr, b.prr.prr) << where;
  const auto expect_sessions_identical = [&](const core::SessionResult& x,
                                             const core::SessionResult& y) {
    EXPECT_EQ(x.algorithm, y.algorithm) << where;
    EXPECT_EQ(x.mode, y.mode) << where;
    EXPECT_EQ(x.fell_back_to_functional, y.fell_back_to_functional) << where;
    EXPECT_EQ(x.cycles, y.cycles) << where;
    EXPECT_EQ(x.supply_energy_j, y.supply_energy_j) << where;
    EXPECT_EQ(x.energy_per_cycle_j, y.energy_per_cycle_j) << where;
    EXPECT_EQ(x.mismatches, y.mismatches) << where;
    EXPECT_EQ(x.meter.cycles(), y.meter.cycles()) << where;
    for (std::size_t s = 0; s < power::kEnergySourceCount; ++s) {
      const auto source = static_cast<power::EnergySource>(s);
      EXPECT_EQ(x.meter.total(source), y.meter.total(source))
          << where << " source " << power::to_string(source);
    }
    EXPECT_EQ(x.stats.reads, y.stats.reads) << where;
    EXPECT_EQ(x.stats.writes, y.stats.writes) << where;
    EXPECT_EQ(x.stats.restore_cycles, y.stats.restore_cycles) << where;
    ASSERT_EQ(x.first_detections.size(), y.first_detections.size()) << where;
    for (std::size_t d = 0; d < x.first_detections.size(); ++d) {
      EXPECT_EQ(x.first_detections[d].row, y.first_detections[d].row);
      EXPECT_EQ(x.first_detections[d].col, y.first_detections[d].col);
    }
  };
  expect_sessions_identical(a.prr.functional, b.prr.functional);
  expect_sessions_identical(a.prr.low_power, b.prr.low_power);
}

void expect_entries_identical(const core::CampaignEntry& a,
                              const core::CampaignEntry& b,
                              const std::string& where) {
  EXPECT_EQ(a.spec.kind, b.spec.kind) << where;
  EXPECT_TRUE(a.spec.victim == b.spec.victim) << where;
  EXPECT_EQ(a.detected_functional, b.detected_functional) << where;
  EXPECT_EQ(a.detected_low_power, b.detected_low_power) << where;
  EXPECT_EQ(a.mismatches_functional, b.mismatches_functional) << where;
  EXPECT_EQ(a.mismatches_low_power, b.mismatches_low_power) << where;
}

// --- ShardPlan ---------------------------------------------------------------

TEST(ShardPlan, EveryIndexOwnedExactlyOnce) {
  for (const auto strategy :
       {ShardStrategy::kContiguous, ShardStrategy::kStrided}) {
    for (const std::size_t total : {1u, 7u, 12u, 100u}) {
      for (const std::size_t shards : {1u, 3u, 5u, 12u, 17u}) {
        const ShardPlan plan = ShardPlan::make(total, shards, strategy);
        std::vector<int> seen(total, 0);
        std::size_t sizes = 0;
        for (std::size_t s = 0; s < shards; ++s) {
          const auto indices = plan.indices_of(s);
          EXPECT_EQ(indices.size(), plan.size_of(s));
          sizes += indices.size();
          for (const std::size_t i : indices) {
            ASSERT_LT(i, total);
            ++seen[i];
            EXPECT_EQ(plan.owner_of(i), s)
                << dist::to_slug(strategy) << " total " << total << " shard "
                << s << " index " << i;
          }
        }
        EXPECT_EQ(sizes, total);
        for (std::size_t i = 0; i < total; ++i) EXPECT_EQ(seen[i], 1);
      }
    }
  }
}

TEST(ShardPlan, ContiguousRunsAreConsecutiveAndBalanced) {
  const ShardPlan plan = ShardPlan::contiguous(10, 4);  // 3+3+2+2
  EXPECT_EQ(plan.indices_of(0), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(plan.indices_of(1), (std::vector<std::size_t>{3, 4, 5}));
  EXPECT_EQ(plan.indices_of(2), (std::vector<std::size_t>{6, 7}));
  EXPECT_EQ(plan.indices_of(3), (std::vector<std::size_t>{8, 9}));
}

TEST(ShardPlan, StridedInterleaves) {
  const ShardPlan plan = ShardPlan::strided(7, 3);
  EXPECT_EQ(plan.indices_of(0), (std::vector<std::size_t>{0, 3, 6}));
  EXPECT_EQ(plan.indices_of(1), (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(plan.indices_of(2), (std::vector<std::size_t>{2, 5}));
}

TEST(ShardPlan, JsonRoundTripAndValidation) {
  const ShardPlan plan = ShardPlan::strided(99, 7);
  const ShardPlan back = dist::shard_plan_from_json(
      io::JsonValue::parse(dist::to_json(plan).dump()));
  EXPECT_EQ(back, plan);
  EXPECT_THROW(ShardPlan::make(5, 0, ShardStrategy::kContiguous), Error);
  EXPECT_THROW(plan.owner_of(99), Error);
  EXPECT_THROW(plan.indices_of(7), Error);
}

// --- job / shard spec round trips --------------------------------------------

TEST(JobSpec, SweepJobRoundTripPreservesFingerprint) {
  const JobSpec job = small_sweep_job();
  const JobSpec back =
      dist::job_from_json(io::JsonValue::parse(dist::to_json(job).dump(2)));
  EXPECT_EQ(back.kind, JobSpec::Kind::kSweep);
  EXPECT_EQ(back.size(), job.size());
  EXPECT_EQ(back.fingerprint(), job.fingerprint());
}

TEST(JobSpec, CampaignJobRoundTripPreservesFingerprint) {
  const JobSpec job = small_campaign_job();
  const JobSpec back =
      dist::job_from_json(io::JsonValue::parse(dist::to_json(job).dump()));
  EXPECT_EQ(back.kind, JobSpec::Kind::kCampaign);
  EXPECT_EQ(back.size(), job.size());
  EXPECT_EQ(back.fingerprint(), job.fingerprint());
  // Different jobs get different fingerprints.
  JobSpec other = job;
  other.faults.pop_back();
  EXPECT_NE(other.fingerprint(), job.fingerprint());
}

TEST(ShardSpec, ValidatesShardAgainstPlan) {
  const JobSpec job = small_sweep_job();
  dist::ShardSpec spec{job, ShardPlan::contiguous(job.size(), 3), 3};
  EXPECT_THROW(spec.validate(), Error);  // shard index == shard_count
  spec.shard = 2;
  spec.plan.total = 5;  // stale plan for a different job size
  EXPECT_THROW(spec.validate(), Error);
}

// --- worker protocol ---------------------------------------------------------

TEST(Worker, ShardStreamsParseBackAndMatchDirectExecution) {
  const JobSpec job = small_sweep_job();
  const ShardPlan plan = ShardPlan::strided(job.size(), 4);
  const auto reference = core::SweepRunner().run(job.grid);
  for (std::size_t s = 0; s < plan.shard_count; ++s) {
    std::ostringstream out;
    dist::Worker().run(dist::ShardSpec{job, plan, s}, out);
    std::istringstream in(out.str());
    const dist::ShardResult result =
        dist::parse_shard_results(in, job, plan, s);
    EXPECT_TRUE(result.complete) << "shard " << s;
    ASSERT_EQ(result.sweep.size(), plan.size_of(s));
    for (const auto& point : result.sweep)
      expect_points_identical(point, reference[point.index],
                              "shard " + std::to_string(s));
  }
}

TEST(Worker, TruncatedStreamReportsIncomplete) {
  const JobSpec job = small_sweep_job();
  const ShardPlan plan = ShardPlan::contiguous(job.size(), 2);
  std::ostringstream out;
  dist::Worker().run(dist::ShardSpec{job, plan, 0}, out);
  const std::string full = out.str();
  // Chop the trailer (and half a point line) off: a killed worker's file.
  const std::string truncated = full.substr(0, full.size() * 2 / 3);
  std::istringstream in(truncated);
  const dist::ShardResult result =
      dist::parse_shard_results(in, job, plan, 0);
  EXPECT_FALSE(result.complete);
}

TEST(Worker, StreamOfDifferentJobReportsIncomplete) {
  const JobSpec job = small_sweep_job();
  const ShardPlan plan = ShardPlan::contiguous(job.size(), 2);
  std::ostringstream out;
  dist::Worker().run(dist::ShardSpec{job, plan, 0}, out);
  JobSpec other = job;
  other.grid.base.wordline_duty = 0.25;  // same size, different job
  std::istringstream in(out.str());
  EXPECT_FALSE(dist::parse_shard_results(in, other, plan, 0).complete);
}

// --- the acceptance anchor: sharded == single-process ------------------------

TEST(Coordinator, SweepMergeBitIdenticalToSingleProcess) {
  const JobSpec job = small_sweep_job();
  const auto reference = core::SweepRunner().run(job.grid);
  for (const auto strategy :
       {ShardStrategy::kContiguous, ShardStrategy::kStrided}) {
    // Shard counts around and past the point count; workers beyond shards.
    for (const std::size_t shards : {1u, 5u, 16u}) {
      TempDir dir("sweep_" + dist::to_slug(strategy) + "_" +
                  std::to_string(shards));
      dist::Coordinator::Options options;
      options.shards = shards;
      options.max_workers = 3;
      options.strategy = strategy;
      options.work_dir = dir.str();
      const dist::MergedResult merged =
          dist::Coordinator(options).run(job);
      ASSERT_EQ(merged.sweep.size(), reference.size());
      for (std::size_t i = 0; i < reference.size(); ++i)
        expect_points_identical(merged.sweep[i], reference[i],
                                dist::to_slug(strategy) + "/" +
                                    std::to_string(shards) + " point " +
                                    std::to_string(i));
    }
  }
}

TEST(Coordinator, CampaignMergeBitIdenticalToSingleProcess) {
  const JobSpec job = small_campaign_job();
  const auto reference = core::CampaignRunner().run(
      job.config, *job.test, job.faults);
  TempDir dir("campaign");
  dist::Coordinator::Options options;
  options.shards = 4;
  options.max_workers = 4;
  options.work_dir = dir.str();
  const dist::MergedResult merged = dist::Coordinator(options).run(job);
  ASSERT_EQ(merged.campaign.entries.size(), reference.entries.size());
  EXPECT_EQ(merged.campaign.algorithm, reference.algorithm);
  for (std::size_t i = 0; i < reference.entries.size(); ++i)
    expect_entries_identical(merged.campaign.entries[i],
                             reference.entries[i],
                             "entry " + std::to_string(i));
  EXPECT_EQ(merged.campaign.modes_agree(), reference.modes_agree());
  EXPECT_EQ(merged.campaign.detected_functional(),
            reference.detected_functional());
}

TEST(Coordinator, RetriesACrashedWorkerOnce) {
  const JobSpec job = small_sweep_job();
  const auto reference = core::SweepRunner().run(job.grid);
  TempDir dir("retry");
  dist::Coordinator::Options options;
  options.shards = 3;
  options.max_workers = 2;
  options.work_dir = dir.str();
  options.crash_first_attempt_of_shard = 1;  // first attempt dies silently
  const dist::MergedResult merged = dist::Coordinator(options).run(job);
  ASSERT_EQ(merged.sweep.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i)
    expect_points_identical(merged.sweep[i], reference[i],
                            "point " + std::to_string(i));
  // With retries exhausted the same crash is a hard error.
  TempDir dir2("retry_exhausted");
  options.work_dir = dir2.str();
  options.retries = 0;
  EXPECT_THROW(dist::Coordinator(options).run(job), Error);
}

TEST(Coordinator, ResumesOverAKilledWorkersPartialFile) {
  const JobSpec job = small_sweep_job();
  const auto reference = core::SweepRunner().run(job.grid);
  const ShardPlan plan = ShardPlan::contiguous(job.size(), 4);
  TempDir dir("resume");

  // Simulate a run killed mid-flight: shards 0 and 2 completed, shard 1's
  // worker died mid-write (truncated file), shard 3 never started.
  for (const std::size_t s : {std::size_t{0}, std::size_t{2}}) {
    std::ofstream out(dist::shard_result_path(dir.str(), s));
    dist::Worker().run(dist::ShardSpec{job, plan, s}, out);
  }
  {
    std::ostringstream full;
    dist::Worker().run(dist::ShardSpec{job, plan, 1}, full);
    std::ofstream out(dist::shard_result_path(dir.str(), 1));
    out << full.str().substr(0, full.str().size() / 2);
  }

  dist::Coordinator::Options options;
  options.shards = 4;
  options.max_workers = 2;
  options.work_dir = dir.str();
  const dist::MergedResult merged = dist::Coordinator(options).run(job);
  for (std::size_t i = 0; i < reference.size(); ++i)
    expect_points_identical(merged.sweep[i], reference[i],
                            "point " + std::to_string(i));
}

TEST(Coordinator, ResumeSkipsCompleteShardsEntirely) {
  const JobSpec job = small_sweep_job();
  TempDir dir("resume_skip");
  dist::Coordinator::Options options;
  options.shards = 4;
  options.max_workers = 2;
  options.work_dir = dir.str();
  const dist::MergedResult first = dist::Coordinator(options).run(job);

  // Second run: every shard's file is already complete, so no subprocess
  // may launch — force the point by making any launch fail outright.
  options.worker_command = {"/nonexistent/worker/binary"};
  const dist::MergedResult second = dist::Coordinator(options).run(job);
  for (std::size_t i = 0; i < first.sweep.size(); ++i)
    expect_points_identical(second.sweep[i], first.sweep[i],
                            "point " + std::to_string(i));

  // With resume off the same options must actually try (and fail).
  options.resume = false;
  EXPECT_THROW(dist::Coordinator(options).run(job), Error);
}

// Traced jobs cross the process boundary too: the TraceSummary must
// survive the JSONL protocol bit-exactly, so a sharded traced run merges
// identical to the single-process reference (the CI byte-diff covers the
// full CLI path on top of this).
TEST(Coordinator, TracedSweepMergeBitIdenticalToSingleProcess) {
  JobSpec job = small_sweep_job();
  job.grid.base.trace =
      power::TraceConfig{.window_cycles = 16, .keep_windows = true};
  const auto reference = core::SweepRunner().run(job.grid);
  TempDir dir("traced_sweep");
  dist::Coordinator::Options options;
  options.shards = 5;
  options.max_workers = 3;
  options.work_dir = dir.str();
  const dist::MergedResult merged = dist::Coordinator(options).run(job);
  ASSERT_EQ(merged.sweep.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const std::string where = "traced point " + std::to_string(i);
    expect_points_identical(merged.sweep[i], reference[i], where);
    // The serialized documents — traces included — must match byte for
    // byte, which subsumes every double of the summary.
    EXPECT_EQ(io::to_json(merged.sweep[i]).dump(),
              io::to_json(reference[i]).dump())
        << where;
    ASSERT_TRUE(merged.sweep[i].prr.low_power.trace.has_value()) << where;
    EXPECT_GT(merged.sweep[i].prr.low_power.trace->peak_window_energy_j, 0.0)
        << where;
  }
}

TEST(MergeShardFiles, RefusesIncompleteAndForeignFiles) {
  const JobSpec job = small_sweep_job();
  const ShardPlan plan = ShardPlan::contiguous(job.size(), 2);
  TempDir dir("merge_refuse");
  {
    std::ofstream out(dist::shard_result_path(dir.str(), 0));
    dist::Worker().run(dist::ShardSpec{job, plan, 0}, out);
  }
  // Shard 1 missing entirely.
  EXPECT_THROW(dist::merge_shard_files(job, plan, dir.str()), Error);
  // Shard 1 present but written by a different job.
  JobSpec other = job;
  other.grid.base.wordline_duty = 0.25;
  {
    std::ofstream out(dist::shard_result_path(dir.str(), 1));
    dist::Worker().run(dist::ShardSpec{other, plan, 1}, out);
  }
  EXPECT_THROW(dist::merge_shard_files(job, plan, dir.str()), Error);
}

}  // namespace
