// Detection-level properties of the whole stack (fault campaign):
//  * March SS detects every static fault in the library;
//  * detection is independent of the address order (March DOF-1, the
//    property the paper's technique rests on);
//  * low-power test mode detects exactly what functional mode detects
//    (the paper's correctness requirement);
//  * the §4 caveat: RES-count-sensitive behaviour needs functional mode.
#include <gtest/gtest.h>

#include "core/fault_campaign.h"
#include "march/algorithms.h"

namespace {

using namespace sramlp;
using core::SessionConfig;
using faults::FaultKind;
using faults::FaultSpec;
using sram::Mode;

constexpr std::size_t kRows = 8;
constexpr std::size_t kCols = 8;

SessionConfig config() {
  SessionConfig cfg;
  cfg.geometry = {kRows, kCols, 1};
  return cfg;
}

// The standard library now spans the full space the paper's §4 argues
// about: the static simple faults PLUS dynamic dRDF, RES-sensitive and
// data-retention instances.
std::vector<FaultSpec> expanded_library() {
  auto lib = faults::standard_fault_library({kRows, kCols, 1}, 11);
  return lib;
}

// March SS covers all static simple (single-cell and two-cell coupling)
// faults — its defining property in the literature — and, having
// write-then-read pairs, the dynamic dRDF as well.  Only the delay-needing
// retention faults escape it (March SS has no "Del" element).
TEST(Detection, MarchSsDetectsEveryStaticFault) {
  const auto report = core::run_fault_campaign(
      config(), march::algorithms::march_ss(), expanded_library());
  std::size_t retention = 0;
  for (const auto& e : report.entries) {
    if (e.spec.kind == FaultKind::kDataRetention) {
      ++retention;
      EXPECT_FALSE(e.detected_functional) << e.spec.describe();
      continue;
    }
    EXPECT_TRUE(e.detected_functional) << e.spec.describe();
  }
  EXPECT_GT(retention, 0u);
  EXPECT_DOUBLE_EQ(
      report.coverage_functional(),
      static_cast<double>(report.entries.size() - retention) /
          static_cast<double>(report.entries.size()));
}

// Only March G's delay elements sensitise the library's data-retention
// faults — and both pauses matter (each polarity needs one).
TEST(Detection, MarchGDelaysCoverTheRetentionFaults) {
  const auto report = core::run_fault_campaign(
      config(), march::algorithms::march_g_with_delays(),
      expanded_library());
  for (const auto& e : report.entries) {
    if (e.spec.kind != FaultKind::kDataRetention) continue;
    EXPECT_TRUE(e.detected_functional) << e.spec.describe();
    EXPECT_TRUE(e.detected_low_power) << e.spec.describe();
  }
}

// The paper's correctness requirement: switching to the low-power test
// mode must not change any detection verdict, for any algorithm — with the
// one documented exception (§4): RES-sensitive cells NEED functional-mode
// stress, so their verdicts may legitimately differ.
TEST(Detection, LowPowerModeDetectsExactlyWhatFunctionalDoes) {
  for (const auto& test : march::algorithms::table1()) {
    const auto report =
        core::run_fault_campaign(config(), test, expanded_library());
    for (const auto& e : report.entries) {
      if (e.spec.kind == FaultKind::kResSensitive) continue;
      EXPECT_EQ(e.detected_functional, e.detected_low_power)
          << test.name() << ": " << e.spec.describe();
    }
  }
}

// §4 with the library's own parameters: on a wide row the RES threshold
// (3x the column count) sits above the low-power exposure but below one
// functional sweep, so the expanded library exhibits the paper's headline
// separation out of the box.
TEST(Detection, LibraryResFaultsSeparateModesOnWideRows) {
  SessionConfig wide = config();
  wide.geometry = {8, 64, 1};
  const auto report = core::run_fault_campaign(
      wide, march::algorithms::march_c_minus(),
      faults::standard_fault_library(wide.geometry, 11));
  std::size_t res = 0;
  for (const auto& e : report.entries) {
    if (e.spec.kind != FaultKind::kResSensitive) continue;
    ++res;
    EXPECT_TRUE(e.detected_functional) << e.spec.describe();
    EXPECT_FALSE(e.detected_low_power) << e.spec.describe();
  }
  EXPECT_GT(res, 0u);
  EXPECT_FALSE(report.modes_agree());  // the documented exception
}

// Every March algorithm at least detects stuck-at faults.
TEST(Detection, EveryAlgorithmDetectsStuckAtFaults) {
  std::vector<FaultSpec> safs;
  for (std::size_t i = 0; i < 4; ++i) {
    safs.push_back(FaultSpec{.kind = FaultKind::kStuckAt0,
                             .victim = {i, 2 * i}});
    safs.push_back(FaultSpec{.kind = FaultKind::kStuckAt1,
                             .victim = {i + 1, 7 - i}});
  }
  for (const auto& test : march::algorithms::all()) {
    const auto report = core::run_fault_campaign(config(), test, safs);
    EXPECT_DOUBLE_EQ(report.coverage_functional(), 1.0) << test.name();
    EXPECT_TRUE(report.modes_agree()) << test.name();
  }
}

// DRDF needs a double read (or read-after-read): MATS+ lacks one, March SS
// has them — the classic separation.
TEST(Detection, DeceptiveReadSeparatesMatsPlusFromMarchSs) {
  std::vector<FaultSpec> drdf{
      FaultSpec{.kind = FaultKind::kDeceptiveReadDestructive,
                .victim = {3, 3}}};
  const auto mats = core::run_fault_campaign(
      config(), march::algorithms::mats_plus(), drdf);
  const auto ss = core::run_fault_campaign(
      config(), march::algorithms::march_ss(), drdf);
  EXPECT_FALSE(mats.entries[0].detected_functional);
  EXPECT_TRUE(ss.entries[0].detected_functional);
}

// March DOF-1: "the fault detection properties are independent of the
// utilized address sequence".  Run the campaign under several orders in
// functional mode and require identical verdicts.
class DetectionOrderIndependence
    : public ::testing::TestWithParam<const char*> {};

march::AddressOrder make_order(const std::string& kind) {
  if (kind == "fast-row") return march::AddressOrder::fast_row(kRows, kCols);
  if (kind == "pseudo-random")
    return march::AddressOrder::pseudo_random(kRows, kCols, 99);
  if (kind == "address-complement")
    return march::AddressOrder::address_complement(kRows, kCols);
  if (kind == "gray") return march::AddressOrder::gray_code(kRows, kCols);
  return march::AddressOrder::word_line_after_word_line(kRows, kCols);
}

TEST_P(DetectionOrderIndependence, SameVerdictsAsCanonicalOrder) {
  const auto library = expanded_library();
  const auto test = march::algorithms::march_ss();

  SessionConfig base = config();
  base.mode = Mode::kFunctional;

  SessionConfig alt = base;
  alt.order = make_order(GetParam());

  for (const auto& spec : library) {
    // DOF-1's guarantee covers the static (and dynamic two-operation)
    // fault space; a RES-sensitive flip is a timing event — WHEN the
    // stress total crosses the threshold depends on the visit order, so
    // its verdict legitimately may differ between orders.
    if (spec.kind == FaultKind::kResSensitive) continue;
    const bool canonical = core::detects_fault(base, test, spec);
    const bool reordered = core::detects_fault(alt, test, spec);
    EXPECT_EQ(canonical, reordered)
        << GetParam() << " changed the verdict for " << spec.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, DetectionOrderIndependence,
                         ::testing::Values("fast-row", "pseudo-random",
                                           "address-complement", "gray"));

// Paper §4 caveat: algorithms that rely on functional-mode stress (here: a
// RES-count-sensitive cell) must run in functional mode; the low-power mode
// removes the stress that activates them.  The contrast needs a reasonably
// wide row: functional stress scales with the column count while LP stress
// is bounded by the follower plus the short decay tail.
TEST(Detection, ResSensitiveFaultNeedsFunctionalMode) {
  SessionConfig wide = config();
  wide.geometry = {8, 64, 1};

  FaultSpec f;
  f.kind = FaultKind::kResSensitive;
  f.victim = {4, 5};
  // Far below one element's functional-mode sweep (~64 ops/row x rows of
  // stress), far above the LP-mode exposure (~a dozen equivalents/element).
  f.res_threshold = 5.0 * 64.0;

  const auto report = core::run_fault_campaign(
      wide, march::algorithms::march_c_minus(), {f});
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_TRUE(report.entries[0].detected_functional);
  EXPECT_FALSE(report.entries[0].detected_low_power);
  EXPECT_FALSE(report.modes_agree());  // the documented exception
}

TEST(Detection, CampaignReportArithmetic) {
  std::vector<FaultSpec> two{
      FaultSpec{.kind = FaultKind::kStuckAt0, .victim = {0, 0}},
      FaultSpec{.kind = FaultKind::kStuckAt1, .victim = {1, 1}}};
  const auto report = core::run_fault_campaign(
      config(), march::algorithms::march_c_minus(), two);
  EXPECT_EQ(report.entries.size(), 2u);
  EXPECT_EQ(report.detected_functional(), 2u);
  EXPECT_EQ(report.detected_low_power(), 2u);
  EXPECT_DOUBLE_EQ(report.coverage_functional(), 1.0);
  EXPECT_DOUBLE_EQ(report.coverage_low_power(), 1.0);
  EXPECT_EQ(report.algorithm, "March C-");
}


// The dynamic dRDF<w;r> fault needs a write-then-read pair inside a March
// element: March SS and March SR have one, MATS+ and March C- do not.
TEST(Detection, DynamicReadDestructiveSeparatesAlgorithms) {
  std::vector<FaultSpec> drdf{
      FaultSpec{.kind = FaultKind::kDynamicReadDestructive,
                .victim = {4, 4}}};
  const auto detects = [&](const march::MarchTest& test) {
    return core::run_fault_campaign(config(), test, drdf)
        .entries[0]
        .detected_functional;
  };
  EXPECT_FALSE(detects(march::algorithms::mats_plus()));
  EXPECT_FALSE(detects(march::algorithms::march_c_minus()));
  EXPECT_TRUE(detects(march::algorithms::march_ss()));
  EXPECT_TRUE(detects(march::algorithms::march_sr()));
  EXPECT_TRUE(detects(march::algorithms::march_g()));
  // Mode equivalence holds for the dynamic fault as well.
  const auto report = core::run_fault_campaign(
      config(), march::algorithms::march_ss(), drdf);
  EXPECT_TRUE(report.modes_agree());
}

}  // namespace
