// Corpus-replay driver for toolchains without libFuzzer (GCC).  Links in
// place of the libFuzzer runtime and feeds every file named on the
// command line (directories are walked recursively) to the harness's
// LLVMFuzzerTestOneInput — enough to replay the checked-in seed corpus
// and any crash artifact a real fuzzing run produced elsewhere.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int run_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <corpus file or directory>...\n"
                 "(standalone replay driver; build with clang for real "
                 "coverage-guided fuzzing)\n",
                 argv[0]);
    return 2;
  }
  std::size_t executed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path path(argv[i]);
    if (std::filesystem::is_directory(path)) {
      // Sorted for a reproducible replay order.
      std::vector<std::filesystem::path> files;
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path))
        if (entry.is_regular_file()) files.push_back(entry.path());
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        if (run_file(file) != 0) return 1;
        ++executed;
      }
    } else {
      if (run_file(path) != 0) return 1;
      ++executed;
    }
  }
  std::fprintf(stderr, "replayed %zu corpus inputs, no crashes\n", executed);
  return 0;
}
