// Fuzz harness for io::JsonValue::parse — the parser every wire byte in
// the dist/ subsystem goes through (shard result files, the service
// protocol, the result-cache spill).  Untrusted input must either parse
// or throw sramlp::Error; anything else (crash, hang, stack overflow) is
// a finding.  First catch: unbounded recursion — a frame of a few
// thousand '[' bytes overflowed the stack until parse grew its
// kMaxParseDepth cap (regression-tested in tests/test_io.cpp).
//
// Accepted input is additionally held to the round-trip contract the
// merge pipeline relies on: dump() must reparse, and reparse to the SAME
// bytes — equal values produce equal documents.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "io/json.h"
#include "util/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Giant inputs only probe allocator throughput, not parser logic.
  if (size > (1u << 20)) return 0;
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  sramlp::io::JsonValue parsed;
  try {
    parsed = sramlp::io::JsonValue::parse(text);
  } catch (const sramlp::Error&) {
    return 0;  // rejected cleanly: the only acceptable failure mode
  }

  // Round-trip stability: what we emit must be parseable, and a second
  // emit must be byte-identical (insertion order + the exact number
  // lanes make documents deterministic).
  const std::string once = parsed.dump();
  const sramlp::io::JsonValue reparsed = sramlp::io::JsonValue::parse(once);
  if (reparsed.dump() != once) __builtin_trap();
  return 0;
}
