// Fuzz harness for the LineChannel frame decoder — the byte stream a
// sweep-service daemon reads from whoever connects to its socket.  The
// fuzz input is fed through a real socketpair so the exact recv loop,
// buffering and newline splitting under test are the production ones.
//
// Contract under arbitrary bytes: receive() yields zero or more parsed
// documents and then std::nullopt (dead peer / EOF); garbled or
// truncated frames read as end-of-stream.  It must never crash, hang or
// leak, and every document it does yield must be re-emittable as valid
// JSON (the service forwards received frames verbatim to listeners).
#include <sys/socket.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "io/framing.h"
#include "io/json.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Stay well inside the default AF_UNIX send buffer so the single
  // blocking send below cannot stall the harness.
  if (size > (32u << 10)) return 0;

  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return 0;
  if (size > 0) {
    const ssize_t sent = ::send(fds[1], data, size, MSG_NOSIGNAL);
    if (sent < 0 || static_cast<std::size_t>(sent) != size) {
      ::close(fds[1]);
      ::close(fds[0]);
      return 0;
    }
  }
  ::close(fds[1]);  // EOF after the fuzz bytes, like a peer hanging up

  sramlp::io::LineChannel channel{sramlp::io::Socket(fds[0])};
  while (const std::optional<sramlp::io::JsonValue> frame =
             channel.receive()) {
    const std::string line = frame->dump();
    if (sramlp::io::JsonValue::parse(line).dump() != line) __builtin_trap();
  }
  return 0;
}
