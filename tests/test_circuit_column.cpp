// Device-level tests of the paper's Fig. 5 column fixture: floating
// bit-line discharge (Fig. 6a/6b), RES fight (functional mode), faulty
// swap at the row hand-over (Fig. 6c) and its restore fix (Fig. 7).
#include <gtest/gtest.h>

#include "circuit/subcircuits.h"
#include "circuit/transient.h"
#include "core/paper_reference.h"
#include "util/error.h"
#include "power/technology.h"
#include "util/units.h"

namespace {

using namespace sramlp;
using namespace sramlp::circuit;

TransientResult run_fixture(const ColumnFixture& f, double dt = 0.2e-12) {
  TransientOptions opt;
  opt.t_end = f.t_end;
  opt.dt = dt;
  opt.sample_every = 20e-12;
  return simulate(f.circuit,
                  {f.bl, f.blb, f.s0, f.sb0, f.s1, f.sb1, f.vdd_pre},
                  opt);
}

// Fig. 6a: with the pre-charge off, the cell's '0'-side node progressively
// discharges its bit-line to logic 0 in nearly nine 3 ns clock cycles.
TEST(ColumnFixture, FloatingBitlineDischargesInAboutNineCycles) {
  ColumnConfig cfg;
  cfg.scenario = PrechargeScenario::kAlwaysOff;
  const auto f = build_column_fixture(cfg);
  const auto r = run_fixture(f);

  const auto& bl = r.wave("bl");
  const double threshold = 0.05 * cfg.vdd;
  const auto t_cross = bl.time_of_crossing(threshold, /*rising=*/false);
  ASSERT_TRUE(t_cross.has_value()) << "BL never discharged";
  const double cycles = *t_cross / cfg.clock_period;
  EXPECT_GT(cycles, 5.0);
  EXPECT_LT(cycles, 13.0);
  // The paper quotes "nearly nine"; stay within ~±40 % of that.
  EXPECT_NEAR(cycles, core::paper_claims::kDischargeCycles,
              0.4 * core::paper_claims::kDischargeCycles);
}

// Fig. 6a: node SB (at VDD) meeting BLB (at VDD) has no effect on either.
TEST(ColumnFixture, HighSideUnaffected) {
  ColumnConfig cfg;
  cfg.scenario = PrechargeScenario::kAlwaysOff;
  const auto f = build_column_fixture(cfg);
  const auto r = run_fixture(f);

  EXPECT_GT(r.wave("blb").min_value(), 0.9 * cfg.vdd);
  EXPECT_GT(r.wave("sb0").at(cfg.handover_cycle * cfg.clock_period * 0.9),
            0.9 * cfg.vdd);
}

// Fig. 6b: once the bit-line has discharged, the cell is no longer
// stressed — the cell keeps its value throughout.
TEST(ColumnFixture, DrivingCellKeepsItsValueWhileDischarging) {
  ColumnConfig cfg;
  cfg.scenario = PrechargeScenario::kAlwaysOff;
  const auto f = build_column_fixture(cfg);
  const auto r = run_fixture(f);

  const double t_before_handover =
      (cfg.handover_cycle - 0.5) * cfg.clock_period;
  // Cell 0 stores '1' (S low, SB high, Fig. 5 convention).
  EXPECT_LT(r.wave("s0").at(t_before_handover), 0.3);
  EXPECT_GT(r.wave("sb0").at(t_before_handover), 1.3);
}

// Functional mode: the pre-charge keeper holds the bit-line near VDD and a
// steady fight current flows — the source of the paper's P_A.  The measured
// current must agree with the cycle simulator's technology constant.
TEST(ColumnFixture, ResFightCurrentMatchesTechnologyCalibration) {
  ColumnConfig cfg;
  cfg.scenario = PrechargeScenario::kAlwaysOn;
  cfg.cycles = 6.0;
  cfg.handover_cycle = 5.0;
  const auto f = build_column_fixture(cfg);
  const auto r = run_fixture(f);

  // Bit-line barely droops while the keeper is on.
  EXPECT_GT(r.wave("bl").min_value(), 0.85 * cfg.vdd);

  // Average current drawn through the pre-charge rail during the first
  // 4 cycles of steady fight.
  const double window = 4.0 * cfg.clock_period;
  double delivered = 0.0;
  for (std::size_t i = 0; i < f.circuit.nodes().size(); ++i) {
    if (f.circuit.nodes()[i].name == "vdd_pre")
      delivered = r.energy().node_delivery[i];
  }
  const double i_avg = delivered / (cfg.vdd * f.t_end) *
                       (f.t_end / window) * (window / window);
  const double i_fight = delivered / (cfg.vdd * f.t_end);

  const auto tech = power::TechnologyParams::tech_0p13um();
  // The device-level fight current should match the cycle-level constant
  // within 50 % (the constant represents the WL-high-half average).
  EXPECT_GT(i_fight, 0.3 * tech.res_fight_current);
  EXPECT_LT(i_fight, 3.0 * tech.res_fight_current);
  (void)i_avg;
}

// Fig. 6c / Fig. 7 problem: after the hand-over the discharged bit-line
// pair overwrites the opposite-valued cell of the next row.
TEST(ColumnFixture, FaultySwapWithoutRestore) {
  ColumnConfig cfg;
  cfg.scenario = PrechargeScenario::kAlwaysOff;
  const auto f = build_column_fixture(cfg);
  const auto r = run_fixture(f);

  // Cell 1 stored '0' (S high); after the hand-over it is flipped to the
  // bit-line-implied value '1' (S low) — the faulty swap.
  EXPECT_GT(r.wave("s1").front_value(), 1.3);
  EXPECT_LT(r.wave("s1").back_value(), 0.3);
  EXPECT_GT(r.wave("sb1").back_value(), 1.3);
}

// Fig. 7 fix: pre-charging all bit-lines for one clock cycle before the row
// transition preserves the next row's data.
TEST(ColumnFixture, RestoreCyclePreventsTheSwap) {
  ColumnConfig cfg;
  cfg.scenario = PrechargeScenario::kRestoreAtHandover;
  const auto f = build_column_fixture(cfg);
  const auto r = run_fixture(f);

  // Bit-lines are back near VDD just before the hand-over...
  const double t_handover = cfg.handover_cycle * cfg.clock_period;
  EXPECT_GT(r.wave("bl").at(t_handover - 50e-12), 0.9 * cfg.vdd);
  // ...and cell 1 keeps its '0' (S stays high).
  EXPECT_GT(r.wave("s1").back_value(), 1.3);
}

// Data-background independence (the paper stresses the restore preserves
// it): the swap hazard and its fix behave identically with inverted data.
TEST(ColumnFixture, RestoreWorksForInvertedBackground) {
  ColumnConfig cfg;
  cfg.cell0_value = false;
  cfg.cell1_value = true;
  cfg.scenario = PrechargeScenario::kRestoreAtHandover;
  const auto f = build_column_fixture(cfg);
  const auto r = run_fixture(f);
  // Cell 1 stores '1' (S low) and must keep it.
  EXPECT_LT(r.wave("s1").back_value(), 0.3);
}

TEST(ColumnFixture, SwapHappensForInvertedBackgroundWithoutRestore) {
  ColumnConfig cfg;
  cfg.cell0_value = false;  // discharges BLB instead of BL
  cfg.cell1_value = true;
  cfg.scenario = PrechargeScenario::kAlwaysOff;
  const auto f = build_column_fixture(cfg);
  const auto r = run_fixture(f);
  const auto& blb = r.wave("blb");
  EXPECT_LT(blb.back_value(), 0.2);        // BLB discharged this time
  EXPECT_GT(r.wave("s1").back_value(), 1.3);  // cell 1 flipped to '0'
}

TEST(ColumnFixture, RejectsHandoverOutsideWindow) {
  ColumnConfig cfg;
  cfg.handover_cycle = 20.0;
  cfg.cycles = 14.0;
  EXPECT_THROW(build_column_fixture(cfg), sramlp::Error);
}


// Physics invariant of the integrator: over any window, energy delivered
// by the sources plus energy released by discharging capacitors equals the
// energy dissipated in the branches.
TEST(ColumnFixture, EnergyIsConserved) {
  ColumnConfig cfg;
  cfg.scenario = PrechargeScenario::kAlwaysOff;
  const auto f = build_column_fixture(cfg);
  const auto r = run_fixture(f);

  // Energy released by the free capacitive nodes (positive = discharged).
  const auto released_by = [&](const char* name, double c) {
    const auto& w = r.wave(name);
    const double v0 = w.front_value();
    const double v1 = w.back_value();
    return 0.5 * c * (v0 * v0 - v1 * v1);
  };
  double released = released_by("bl", cfg.c_bitline) +
                    released_by("blb", cfg.c_bitline) +
                    released_by("s0", cfg.c_cellnode) +
                    released_by("sb0", cfg.c_cellnode) +
                    released_by("s1", cfg.c_cellnode) +
                    released_by("sb1", cfg.c_cellnode);

  double delivered = 0.0;
  for (double e : r.energy().node_delivery) delivered += e;
  double dissipated = 0.0;
  for (double e : r.energy().branch_dissipation) dissipated += e;

  ASSERT_GT(dissipated, 1e-14);  // the BL discharge is hundreds of fJ
  EXPECT_NEAR(delivered + released, dissipated,
              0.02 * dissipated + 1e-15);
}

}  // namespace
